#include "curb/crypto/u256.hpp"

#include <bit>
#include <stdexcept>

namespace curb::crypto {

namespace {
__extension__ typedef unsigned __int128 u128;
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.size() > 64) throw std::invalid_argument{"U256::from_hex: too long"};
  U256 out;
  auto nibble = [](char c) -> std::uint64_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint64_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint64_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint64_t>(c - 'A' + 10);
    throw std::invalid_argument{"U256::from_hex: invalid character"};
  };
  for (const char c : hex) {
    // out = out * 16 + nibble
    out = out << 4;
    out.limbs_[0] |= nibble(c);
  }
  return out;
}

U256 U256::from_bytes(std::span<const std::uint8_t, 32> bytes) {
  U256 out;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | bytes[static_cast<std::size_t>((3 - limb) * 8 + b)];
    }
    out.limbs_[limb] = v;
  }
  return out;
}

std::array<std::uint8_t, 32> U256::to_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int b = 0; b < 8; ++b) {
      out[static_cast<std::size_t>((3 - limb) * 8 + b)] =
          static_cast<std::uint8_t>(limbs_[limb] >> (56 - 8 * b));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  const auto bytes = to_bytes();
  return curb::crypto::to_hex(std::span<const std::uint8_t>{bytes});
}

int U256::highest_bit() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) return i * 64 + (63 - std::countl_zero(limbs_[i]));
  }
  return -1;
}

bool U256::add_with_carry(const U256& a, const U256& b, U256& out) {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limbs_[i]) + b.limbs_[i] + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry != 0;
}

bool U256::sub_with_borrow(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a.limbs_[i]) - b.limbs_[i] - borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) != 0 ? 1 : 0;
  }
  return borrow != 0;
}

std::array<std::uint64_t, 8> U256::mul_wide(const U256& a, const U256& b) {
  std::array<std::uint64_t, 8> out{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur =
          static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

U256 U256::operator<<(unsigned n) const {
  if (n >= 256) return U256{};
  U256 out;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= limbs_[src - 1] >> (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::operator>>(unsigned n) const {
  if (n >= 256) return U256{};
  U256 out;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    const unsigned src = static_cast<unsigned>(i) + limb_shift;
    if (src < 4) {
      v = limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) v |= limbs_[src + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::add_mod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  const bool carry = add_with_carry(a, b, sum);
  if (carry || sum >= m) {
    U256 reduced;
    sub_with_borrow(sum, m, reduced);
    return reduced;
  }
  return sum;
}

U256 U256::sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  if (sub_with_borrow(a, b, diff)) {
    U256 wrapped;
    add_with_carry(diff, m, wrapped);
    return wrapped;
  }
  return diff;
}

U256 U256::mul_mod(const U256& a, const U256& b, const U256& m) {
  // Russian-peasant multiplication: result accumulates b * bit_i(a) with a
  // doubling of b each step, all modulo m. Correct for any m, no special
  // structure assumed; the secp256k1 field layer overrides this with a
  // faster reduction for its fixed prime.
  U256 result;
  U256 addend = reduce(b, m);
  const int top = a.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (a.bit(i)) result = add_mod(result, addend, m);
    addend = add_mod(addend, addend, m);
  }
  return result;
}

U256 U256::pow_mod(const U256& a, const U256& e, const U256& m) {
  U256 result{1};
  U256 base = reduce(a, m);
  const int top = e.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(i)) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
  }
  return result;
}

U256 U256::inv_mod_prime(const U256& a, const U256& m) {
  if (a.is_zero()) throw std::domain_error{"inv_mod_prime: zero has no inverse"};
  U256 exp;
  sub_with_borrow(m, U256{2}, exp);
  return pow_mod(a, exp, m);
}

U256 U256::reduce(const U256& a, const U256& m) {
  if (m.is_zero()) throw std::domain_error{"reduce: zero modulus"};
  if (a < m) return a;
  // Binary long division: align m's top bit with a's, subtract down.
  U256 rem = a;
  const int shift = a.highest_bit() - m.highest_bit();
  for (int s = shift; s >= 0; --s) {
    const U256 shifted = m << static_cast<unsigned>(s);
    if (shifted <= rem) {
      U256 next;
      sub_with_borrow(rem, shifted, next);
      rem = next;
    }
  }
  return rem;
}

U256 U256::reduce_wide(const std::array<std::uint64_t, 8>& a, const U256& m) {
  // Fold the high 256 bits in bit by bit: r = hi * 2^256 + lo (mod m).
  // Compute 2^256 mod m once, then hi * that (mod m) + lo (mod m).
  const U256 lo{a[0], a[1], a[2], a[3]};
  const U256 hi{a[4], a[5], a[6], a[7]};
  if (hi.is_zero()) return reduce(lo, m);
  // two_256 = 2^256 mod m, built by doubling 2^255 mod m.
  U256 two_255 = reduce(U256{0, 0, 0, 0x8000000000000000ULL}, m);
  const U256 two_256 = add_mod(two_255, two_255, m);
  const U256 hi_part = mul_mod(reduce(hi, m), two_256, m);
  return add_mod(hi_part, reduce(lo, m), m);
}

}  // namespace curb::crypto
