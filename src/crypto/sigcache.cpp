#include "curb/crypto/sigcache.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace curb::crypto {
namespace {

/// The key is already a SHA-256 output, so its first eight bytes are as
/// uniform as a hash function gets — no further mixing needed.
struct KeyHash {
  std::size_t operator()(const Hash256& key) const noexcept {
    std::uint64_t h = 0;
    std::memcpy(&h, key.data(), sizeof(h));
    return static_cast<std::size_t>(h);
  }
};

[[nodiscard]] Hash256 cache_key(const PublicKey& pub, const Hash256& digest,
                                const Signature& sig) {
  Sha256 hasher;
  const auto pub_bytes = pub.to_bytes();
  const auto sig_bytes = sig.to_bytes();
  hasher.update(std::span<const std::uint8_t>{pub_bytes});
  hasher.update(std::span<const std::uint8_t>{digest});
  hasher.update(std::span<const std::uint8_t>{sig_bytes});
  return hasher.finish();
}

[[nodiscard]] bool env_enables_cache() {
  const char* value = std::getenv("CURB_SIG_CACHE");
  if (value == nullptr) return true;
  const std::string_view v{value};
  return !(v == "0" || v == "off" || v == "false");
}

constexpr std::size_t kDefaultCapacity = 1u << 20;

}  // namespace

struct SigCache::Impl {
  mutable std::mutex mu;
  std::unordered_map<Hash256, bool, KeyHash> entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t capacity = kDefaultCapacity;
  bool enabled = true;
};

SigCache::SigCache() : impl_{new Impl} { impl_->enabled = env_enables_cache(); }

SigCache& SigCache::instance() {
  static SigCache cache;
  return cache;
}

bool SigCache::verify(const PublicKey& pub, const Hash256& digest,
                      const Signature& sig) {
  if (!enabled()) return crypto::verify(pub, digest, sig);
  const Hash256 key = cache_key(pub, digest, sig);
  {
    const std::lock_guard<std::mutex> lock{impl_->mu};
    const auto it = impl_->entries.find(key);
    if (it != impl_->entries.end()) {
      ++impl_->hits;
      return it->second;
    }
  }
  const bool ok = crypto::verify(pub, digest, sig);
  const std::lock_guard<std::mutex> lock{impl_->mu};
  if (!impl_->enabled) return ok;  // raced with set_enabled(false)
  ++impl_->misses;
  if (impl_->entries.size() >= impl_->capacity) {
    impl_->entries.clear();
    ++impl_->evictions;
  }
  impl_->entries.emplace(key, ok);
  return ok;
}

SigCacheStats SigCache::stats() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return SigCacheStats{impl_->hits, impl_->misses, impl_->entries.size(),
                       impl_->evictions};
}

void SigCache::clear() {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->entries.clear();
}

void SigCache::set_enabled(bool enabled) {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->enabled = enabled;
  if (!enabled) impl_->entries.clear();
}

bool SigCache::enabled() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->enabled;
}

void SigCache::set_capacity(std::size_t max_entries) {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->capacity = max_entries == 0 ? 1 : max_entries;
}

bool verify_cached(const PublicKey& pub, const Hash256& digest,
                   const Signature& sig) {
  return SigCache::instance().verify(pub, digest, sig);
}

}  // namespace curb::crypto
