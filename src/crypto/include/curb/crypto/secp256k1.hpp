#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "curb/crypto/sha256.hpp"
#include "curb/crypto/u256.hpp"

namespace curb::crypto {

/// secp256k1 curve arithmetic: y^2 = x^3 + 7 over F_p,
///   p = 2^256 - 2^32 - 977.
/// Implemented from scratch (Jacobian coordinates, fast reduction for the
/// pseudo-Mersenne prime) to replace the paper's pure-Python ECDSA stack.
/// Not constant-time: this is a protocol simulation, not a wallet.
namespace secp256k1 {

/// Field prime p.
[[nodiscard]] const U256& field_prime();
/// Group order n.
[[nodiscard]] const U256& group_order();
/// Generator point G in affine coordinates.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  bool operator==(const AffinePoint&) const = default;
};
[[nodiscard]] const AffinePoint& generator();

// --- Field arithmetic mod p (fast pseudo-Mersenne reduction) ---
[[nodiscard]] U256 fe_add(const U256& a, const U256& b);
[[nodiscard]] U256 fe_sub(const U256& a, const U256& b);
[[nodiscard]] U256 fe_mul(const U256& a, const U256& b);
[[nodiscard]] U256 fe_sqr(const U256& a);
[[nodiscard]] U256 fe_inv(const U256& a);

/// Jacobian point (X, Y, Z); affine = (X/Z^2, Y/Z^3). Z = 0 encodes infinity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint infinity() { return {U256{1}, U256{1}, U256{}}; }
  [[nodiscard]] static JacobianPoint from_affine(const AffinePoint& p);
  [[nodiscard]] bool is_infinity() const { return z.is_zero(); }
  [[nodiscard]] AffinePoint to_affine() const;
};

[[nodiscard]] JacobianPoint point_double(const JacobianPoint& p);
[[nodiscard]] JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q);
/// Scalar multiplication k*P (double-and-add, MSB first).
[[nodiscard]] JacobianPoint scalar_mul(const U256& k, const JacobianPoint& p);
/// k*G.
[[nodiscard]] JacobianPoint scalar_mul_base(const U256& k);

/// True iff (x, y) satisfies the curve equation (and is not infinity).
[[nodiscard]] bool on_curve(const AffinePoint& p);

}  // namespace secp256k1

/// ECDSA signature (r, s) over secp256k1 with SHA-256 digests.
struct Signature {
  U256 r;
  U256 s;

  bool operator==(const Signature&) const = default;
  [[nodiscard]] std::array<std::uint8_t, 64> to_bytes() const;
  [[nodiscard]] static Signature from_bytes(std::span<const std::uint8_t, 64> bytes);
};

/// Compressed SEC1 public key (33 bytes: 0x02/0x03 prefix + x coordinate).
/// Used directly as a controller's identity, mirroring the paper's "broadcast
/// pk as its ID" initialization step.
struct PublicKey {
  secp256k1::AffinePoint point;

  bool operator==(const PublicKey&) const = default;
  [[nodiscard]] std::array<std::uint8_t, 33> to_bytes() const;
  [[nodiscard]] static std::optional<PublicKey> from_bytes(
      std::span<const std::uint8_t, 33> bytes);
  /// Hex of the compressed encoding — a stable printable node identity.
  [[nodiscard]] std::string to_hex() const;
};

/// Key pair with deterministic derivation from a seed (reproducible runs).
class KeyPair {
 public:
  /// Derive a valid private key from an arbitrary seed string.
  [[nodiscard]] static KeyPair from_seed(std::string_view seed);
  /// Construct from a raw private scalar in [1, n-1].
  [[nodiscard]] static KeyPair from_private(const U256& d);

  [[nodiscard]] const U256& private_key() const { return d_; }
  [[nodiscard]] const PublicKey& public_key() const { return pub_; }

  /// Sign a 32-byte message digest (deterministic nonce, RFC6979-flavoured).
  [[nodiscard]] Signature sign(const Hash256& digest) const;

 private:
  KeyPair(U256 d, PublicKey pub) : d_{d}, pub_{pub} {}
  U256 d_;
  PublicKey pub_;
};

/// Verify an ECDSA signature over a 32-byte digest.
[[nodiscard]] bool verify(const PublicKey& pub, const Hash256& digest, const Signature& sig);

}  // namespace curb::crypto
