#pragma once

#include <cstddef>
#include <vector>

#include "curb/crypto/sha256.hpp"

namespace curb::crypto {

/// Merkle tree over SHA-256 with Bitcoin-style odd-node duplication.
/// Blocks in the Curb chain commit to their transaction list through the
/// Merkle root; proofs let a light verifier check a single transaction's
/// inclusion without the full block body.
class MerkleTree {
 public:
  /// Build from leaf hashes. An empty leaf set has the all-zero root.
  explicit MerkleTree(std::vector<Hash256> leaves);

  [[nodiscard]] const Hash256& root() const { return levels_.back().front(); }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  struct ProofStep {
    Hash256 sibling;
    bool sibling_on_right;  // true: hash(current || sibling), else reversed
  };
  using Proof = std::vector<ProofStep>;

  /// Inclusion proof for the leaf at `index`; throws std::out_of_range.
  [[nodiscard]] Proof prove(std::size_t index) const;

  /// Verify a proof against a root.
  [[nodiscard]] static bool verify(const Hash256& leaf, const Proof& proof,
                                   const Hash256& root);

  /// Convenience: root of a list of leaves without keeping the tree.
  [[nodiscard]] static Hash256 root_of(const std::vector<Hash256>& leaves);

  /// Combine two child hashes into a parent hash.
  [[nodiscard]] static Hash256 combine(const Hash256& left, const Hash256& right);

 private:
  std::size_t leaf_count_;
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves
};

}  // namespace curb::crypto
