#pragma once

#include <cstddef>
#include <cstdint>

#include "curb/crypto/secp256k1.hpp"
#include "curb/crypto/sha256.hpp"

namespace curb::crypto {

/// Counters exported through obs metrics (see CurbNetwork runtime gauges).
struct SigCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;
};

/// Process-wide digest-keyed signature-verification cache.
///
/// ECDSA verification is pure: the verdict for a (pubkey, digest, signature)
/// tuple never changes, so every one of the 3f+1 replicas re-verifying the
/// same transaction can share one scalar multiplication. The cache key is
/// SHA-256 over the tuple's canonical encoding (33 + 32 + 64 bytes), so a
/// corrupt-fault payload — whose digest necessarily differs — can never
/// collide with a pristine entry's verdict. Negative verdicts are cached
/// too: a byzantine replica replaying a bad signature pays full price once.
///
/// Determinism: a cache hit returns exactly what re-verification would, so
/// simulation behaviour is identical with the cache on or off; only host
/// time changes. Eviction is a deterministic wholesale clear at capacity —
/// no recency state, no host-order dependence.
class SigCache {
 public:
  /// The process-wide instance used by verify_cached().
  [[nodiscard]] static SigCache& instance();

  /// Like crypto::verify, but consults the cache first. Thread-safe.
  [[nodiscard]] bool verify(const PublicKey& pub, const Hash256& digest,
                            const Signature& sig);

  [[nodiscard]] SigCacheStats stats() const;

  /// Drop every entry (counters keep accumulating; entries goes to zero).
  void clear();

  /// Toggle at runtime (tests; also set from CURB_SIG_CACHE=0 at startup).
  /// Disabled means every call falls through to crypto::verify.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Entry limit before the wholesale clear-on-full eviction (min 1).
  void set_capacity(std::size_t max_entries);

 private:
  SigCache();

  struct Impl;
  Impl* impl_;  // leaked intentionally: process-lifetime singleton state
};

/// Drop-in replacement for crypto::verify that goes through the
/// process-wide cache.
[[nodiscard]] bool verify_cached(const PublicKey& pub, const Hash256& digest,
                                 const Signature& sig);

}  // namespace curb::crypto
