#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace curb::crypto {

/// 32-byte digest value with hashing/ordering support so it can key maps.
using Hash256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch: the paper's
/// stack used pure-Python hashing; we provide the equivalent primitive for
/// block hashes, transaction ids, Merkle trees, and ECDSA message digests.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  [[nodiscard]] Hash256 finish();

  [[nodiscard]] static Hash256 digest(std::span<const std::uint8_t> data);
  [[nodiscard]] static Hash256 digest(std::string_view data);
  /// SHA-256d (double hash), the flavour used for block ids in many chains.
  [[nodiscard]] static Hash256 double_digest(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Lowercase hex encoding of arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::string to_hex(const Hash256& h);
/// Strict decoder: throws std::invalid_argument on odd length or non-hex.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Short printable prefix of a hash (for logs and traces).
[[nodiscard]] std::string short_hex(const Hash256& h, std::size_t bytes = 4);

}  // namespace curb::crypto
