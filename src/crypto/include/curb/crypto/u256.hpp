#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "curb/crypto/sha256.hpp"

namespace curb::crypto {

/// Unsigned 256-bit integer stored as four little-endian 64-bit limbs.
/// Provides exactly the arithmetic secp256k1 ECDSA needs: add/sub with
/// carry, widening multiply, modular reduction, and modular inverse. This
/// replaces the arbitrary-precision integers the paper's pure-Python ECDSA
/// relied on.
class U256 {
 public:
  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t lo) : limbs_{lo, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limbs_{l0, l1, l2, l3} {}

  /// Parse a big-endian hex string (up to 64 hex digits, no 0x prefix).
  [[nodiscard]] static U256 from_hex(std::string_view hex);
  /// Interpret a 32-byte big-endian buffer (e.g. a SHA-256 digest).
  [[nodiscard]] static U256 from_bytes(std::span<const std::uint8_t, 32> bytes);
  [[nodiscard]] static U256 from_hash(const Hash256& h) {
    return from_bytes(std::span<const std::uint8_t, 32>{h});
  }

  [[nodiscard]] std::array<std::uint8_t, 32> to_bytes() const;  // big-endian
  [[nodiscard]] std::string to_hex() const;                     // 64 lowercase digits

  [[nodiscard]] constexpr bool is_zero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  [[nodiscard]] constexpr bool is_odd() const { return (limbs_[0] & 1) != 0; }
  [[nodiscard]] constexpr std::uint64_t limb(int i) const { return limbs_[i]; }
  [[nodiscard]] bool bit(int i) const {
    return ((limbs_[i / 64] >> (i % 64)) & 1ULL) != 0;
  }
  /// Index of highest set bit, or -1 for zero.
  [[nodiscard]] int highest_bit() const;

  constexpr auto operator<=>(const U256& rhs) const {
    for (int i = 3; i >= 0; --i) {
      if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
    }
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const U256&) const = default;

  /// a + b, returning the carry-out bit.
  static bool add_with_carry(const U256& a, const U256& b, U256& out);
  /// a - b, returning the borrow-out bit (true if a < b).
  static bool sub_with_borrow(const U256& a, const U256& b, U256& out);
  /// Full 256x256 -> 512-bit product as eight little-endian limbs.
  static std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b);

  U256 operator<<(unsigned n) const;
  U256 operator>>(unsigned n) const;

  // --- Modular arithmetic (all operands must already be < m) ---
  [[nodiscard]] static U256 add_mod(const U256& a, const U256& b, const U256& m);
  [[nodiscard]] static U256 sub_mod(const U256& a, const U256& b, const U256& m);
  /// Generic shift-and-add modular multiplication; O(256) modular additions.
  [[nodiscard]] static U256 mul_mod(const U256& a, const U256& b, const U256& m);
  /// Modular exponentiation by squaring (used for Fermat inversion).
  [[nodiscard]] static U256 pow_mod(const U256& a, const U256& e, const U256& m);
  /// Modular inverse for prime modulus m (Fermat: a^(m-2) mod m).
  [[nodiscard]] static U256 inv_mod_prime(const U256& a, const U256& m);
  /// Reduce an arbitrary 256-bit value modulo m (binary long division).
  [[nodiscard]] static U256 reduce(const U256& a, const U256& m);
  /// Reduce a 512-bit value modulo m.
  [[nodiscard]] static U256 reduce_wide(const std::array<std::uint64_t, 8>& a, const U256& m);

 private:
  std::array<std::uint64_t, 4> limbs_{0, 0, 0, 0};
};

}  // namespace curb::crypto
