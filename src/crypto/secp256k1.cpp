#include "curb/crypto/secp256k1.hpp"

#include <stdexcept>

#include "curb/prof/profiler.hpp"

namespace curb::crypto {

namespace secp256k1 {

namespace {
__extension__ typedef unsigned __int128 u128;

// p = 2^256 - 2^32 - 977; 2^256 ≡ 2^32 + 977 (mod p).
constexpr std::uint64_t kReduceC = (1ULL << 32) + 977ULL;

const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
const U256 kGx = U256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy = U256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// Multiply a 4-limb value by a 64-bit constant, producing 5 limbs.
std::array<std::uint64_t, 5> mul_small(const std::array<std::uint64_t, 4>& a,
                                       std::uint64_t k) {
  std::array<std::uint64_t, 5> out{};
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a[i]) * k + carry;
    out[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  out[4] = carry;
  return out;
}

/// Reduce an 8-limb (512-bit) value modulo p using the pseudo-Mersenne
/// identity 2^256 ≡ 2^32 + 977, folding twice then conditionally subtracting.
U256 reduce_p(const std::array<std::uint64_t, 8>& t) {
  const std::array<std::uint64_t, 4> lo{t[0], t[1], t[2], t[3]};
  const std::array<std::uint64_t, 4> hi{t[4], t[5], t[6], t[7]};

  // fold1 = lo + hi * (2^32 + 977): at most 256 + 64 + 1 bits -> 5 limbs + carry.
  const auto hi_c = mul_small(hi, kReduceC);
  std::array<std::uint64_t, 5> acc{};
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(lo[i]) + hi_c[i] + carry;
    acc[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  acc[4] = hi_c[4] + carry;  // cannot overflow: hi_c[4] < 2^33

  // Second fold: acc[4] * (2^32 + 977) added into the low 256 bits.
  const u128 fold = static_cast<u128>(acc[4]) * kReduceC;
  U256 result{acc[0], acc[1], acc[2], acc[3]};
  U256 addend{static_cast<std::uint64_t>(fold), static_cast<std::uint64_t>(fold >> 64), 0, 0};
  U256 sum;
  if (U256::add_with_carry(result, addend, sum)) {
    // A carry past 2^256 means one more fold of exactly 2^32 + 977.
    U256 folded;
    U256::add_with_carry(sum, U256{kReduceC}, folded);
    sum = folded;
  }
  while (sum >= kP) {
    U256 next;
    U256::sub_with_borrow(sum, kP, next);
    sum = next;
  }
  return sum;
}

}  // namespace

const U256& field_prime() { return kP; }
const U256& group_order() { return kN; }

const AffinePoint& generator() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

U256 fe_add(const U256& a, const U256& b) { return U256::add_mod(a, b, kP); }
U256 fe_sub(const U256& a, const U256& b) { return U256::sub_mod(a, b, kP); }

U256 fe_mul(const U256& a, const U256& b) { return reduce_p(U256::mul_wide(a, b)); }
U256 fe_sqr(const U256& a) { return fe_mul(a, a); }

U256 fe_inv(const U256& a) {
  if (a.is_zero()) throw std::domain_error{"fe_inv: zero"};
  // Fermat: a^(p-2); square-and-multiply with the fast field multiply.
  U256 exp;
  U256::sub_with_borrow(kP, U256{2}, exp);
  U256 result{1};
  U256 base = a;
  const int top = exp.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (exp.bit(i)) result = fe_mul(result, base);
    base = fe_sqr(base);
  }
  return result;
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return infinity();
  return {p.x, p.y, U256{1}};
}

AffinePoint JacobianPoint::to_affine() const {
  if (is_infinity()) return {U256{}, U256{}, true};
  const U256 z_inv = fe_inv(z);
  const U256 z_inv2 = fe_sqr(z_inv);
  const U256 z_inv3 = fe_mul(z_inv2, z_inv);
  return {fe_mul(x, z_inv2), fe_mul(y, z_inv3), false};
}

JacobianPoint point_double(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::infinity();
  const U256 y2 = fe_sqr(p.y);
  const U256 s = fe_mul(fe_mul(U256{4}, p.x), y2);           // S = 4*X*Y^2
  const U256 m = fe_mul(U256{3}, fe_sqr(p.x));               // M = 3*X^2 (a = 0)
  const U256 x3 = fe_sub(fe_sqr(m), fe_mul(U256{2}, s));     // X' = M^2 - 2S
  const U256 y4 = fe_sqr(y2);
  const U256 y3 = fe_sub(fe_mul(m, fe_sub(s, x3)), fe_mul(U256{8}, y4));
  const U256 z3 = fe_mul(fe_mul(U256{2}, p.y), p.z);         // Z' = 2*Y*Z
  return {x3, y3, z3};
}

JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const U256 z1_2 = fe_sqr(p.z);
  const U256 z2_2 = fe_sqr(q.z);
  const U256 u1 = fe_mul(p.x, z2_2);
  const U256 u2 = fe_mul(q.x, z1_2);
  const U256 s1 = fe_mul(p.y, fe_mul(z2_2, q.z));
  const U256 s2 = fe_mul(q.y, fe_mul(z1_2, p.z));
  if (u1 == u2) {
    if (s1 != s2) return JacobianPoint::infinity();
    return point_double(p);
  }
  const U256 h = fe_sub(u2, u1);
  const U256 r = fe_sub(s2, s1);
  const U256 h2 = fe_sqr(h);
  const U256 h3 = fe_mul(h2, h);
  const U256 u1h2 = fe_mul(u1, h2);
  const U256 x3 = fe_sub(fe_sub(fe_sqr(r), h3), fe_mul(U256{2}, u1h2));
  const U256 y3 = fe_sub(fe_mul(r, fe_sub(u1h2, x3)), fe_mul(s1, h3));
  const U256 z3 = fe_mul(h, fe_mul(p.z, q.z));
  return {x3, y3, z3};
}

JacobianPoint scalar_mul(const U256& k, const JacobianPoint& p) {
  JacobianPoint acc = JacobianPoint::infinity();
  const int top = k.highest_bit();
  for (int i = top; i >= 0; --i) {
    acc = point_double(acc);
    if (k.bit(i)) acc = point_add(acc, p);
  }
  return acc;
}

JacobianPoint scalar_mul_base(const U256& k) {
  return scalar_mul(k, JacobianPoint::from_affine(generator()));
}

bool on_curve(const AffinePoint& p) {
  if (p.infinity) return false;
  if (p.x >= kP || p.y >= kP) return false;
  const U256 lhs = fe_sqr(p.y);
  const U256 rhs = fe_add(fe_mul(fe_sqr(p.x), p.x), U256{7});
  return lhs == rhs;
}

}  // namespace secp256k1

namespace {

using secp256k1::AffinePoint;
using secp256k1::JacobianPoint;

/// Hash arbitrary material down to a scalar in [1, n-1].
U256 hash_to_scalar(std::span<const std::uint8_t> material) {
  const U256 n = secp256k1::group_order();
  std::vector<std::uint8_t> buf{material.begin(), material.end()};
  buf.push_back(0);
  for (std::uint8_t counter = 0;; ++counter) {
    buf.back() = counter;
    const Hash256 h = Sha256::digest(std::span<const std::uint8_t>{buf});
    const U256 candidate = U256::reduce(U256::from_hash(h), n);
    if (!candidate.is_zero()) return candidate;
  }
}

/// Recover the y coordinate for a compressed key: y^2 = x^3 + 7,
/// sqrt via y = (x^3+7)^((p+1)/4) since p ≡ 3 (mod 4).
std::optional<U256> sqrt_mod_p(const U256& a) {
  const U256 p = secp256k1::field_prime();
  // exp = (p + 1) / 4
  U256 exp;
  U256::add_with_carry(p, U256{1}, exp);  // p + 1 fits: p < 2^256 - 1
  exp = exp >> 2;
  const U256 root = U256::pow_mod(a, exp, p);
  if (secp256k1::fe_mul(root, root) != U256::reduce(a, p)) return std::nullopt;
  return root;
}

}  // namespace

std::array<std::uint8_t, 64> Signature::to_bytes() const {
  std::array<std::uint8_t, 64> out{};
  const auto rb = r.to_bytes();
  const auto sb = s.to_bytes();
  std::copy(rb.begin(), rb.end(), out.begin());
  std::copy(sb.begin(), sb.end(), out.begin() + 32);
  return out;
}

Signature Signature::from_bytes(std::span<const std::uint8_t, 64> bytes) {
  return Signature{U256::from_bytes(bytes.subspan<0, 32>()),
                   U256::from_bytes(bytes.subspan<32, 32>())};
}

std::array<std::uint8_t, 33> PublicKey::to_bytes() const {
  std::array<std::uint8_t, 33> out{};
  out[0] = point.y.is_odd() ? 0x03 : 0x02;
  const auto xb = point.x.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

std::optional<PublicKey> PublicKey::from_bytes(std::span<const std::uint8_t, 33> bytes) {
  if (bytes[0] != 0x02 && bytes[0] != 0x03) return std::nullopt;
  const U256 x = U256::from_bytes(bytes.subspan<1, 32>());
  if (x >= secp256k1::field_prime()) return std::nullopt;
  const U256 rhs =
      secp256k1::fe_add(secp256k1::fe_mul(secp256k1::fe_sqr(x), x), U256{7});
  const auto y = sqrt_mod_p(rhs);
  if (!y) return std::nullopt;
  U256 y_final = *y;
  const bool want_odd = bytes[0] == 0x03;
  if (y_final.is_odd() != want_odd) {
    y_final = secp256k1::fe_sub(U256{}, y_final);  // p - y
  }
  const AffinePoint p{x, y_final, false};
  if (!secp256k1::on_curve(p)) return std::nullopt;
  return PublicKey{p};
}

std::string PublicKey::to_hex() const {
  const auto bytes = to_bytes();
  return curb::crypto::to_hex(std::span<const std::uint8_t>{bytes});
}

KeyPair KeyPair::from_seed(std::string_view seed) {
  const Hash256 h = Sha256::digest(seed);
  std::array<std::uint8_t, 32> material = h;
  return from_private(hash_to_scalar(std::span<const std::uint8_t>{material}));
}

KeyPair KeyPair::from_private(const U256& d) {
  const prof::Scope scope{"crypto.keygen"};
  if (d.is_zero() || d >= secp256k1::group_order()) {
    throw std::invalid_argument{"KeyPair: private key out of range"};
  }
  const AffinePoint q = secp256k1::scalar_mul_base(d).to_affine();
  return KeyPair{d, PublicKey{q}};
}

Signature KeyPair::sign(const Hash256& digest) const {
  const prof::Scope scope{"crypto.sign"};
  const U256 n = secp256k1::group_order();
  const U256 z = U256::reduce(U256::from_hash(digest), n);

  // Deterministic nonce: hash(private || digest || counter), RFC6979 spirit.
  std::vector<std::uint8_t> material;
  const auto db = d_.to_bytes();
  material.insert(material.end(), db.begin(), db.end());
  material.insert(material.end(), digest.begin(), digest.end());

  for (std::uint8_t attempt = 0;; ++attempt) {
    std::vector<std::uint8_t> m = material;
    m.push_back(attempt);
    const U256 k = hash_to_scalar(std::span<const std::uint8_t>{m});
    const AffinePoint rp = secp256k1::scalar_mul_base(k).to_affine();
    const U256 r = U256::reduce(rp.x, n);
    if (r.is_zero()) continue;
    const U256 k_inv = U256::inv_mod_prime(k, n);
    const U256 rd = U256::mul_mod(r, d_, n);
    const U256 s = U256::mul_mod(k_inv, U256::add_mod(z, rd, n), n);
    if (s.is_zero()) continue;
    return Signature{r, s};
  }
}

bool verify(const PublicKey& pub, const Hash256& digest, const Signature& sig) {
  const prof::Scope scope{"crypto.verify"};
  const U256 n = secp256k1::group_order();
  if (sig.r.is_zero() || sig.r >= n || sig.s.is_zero() || sig.s >= n) return false;
  if (!secp256k1::on_curve(pub.point)) return false;

  const U256 z = U256::reduce(U256::from_hash(digest), n);
  const U256 w = U256::inv_mod_prime(sig.s, n);
  const U256 u1 = U256::mul_mod(z, w, n);
  const U256 u2 = U256::mul_mod(sig.r, w, n);

  const JacobianPoint p1 = secp256k1::scalar_mul_base(u1);
  const JacobianPoint p2 =
      secp256k1::scalar_mul(u2, JacobianPoint::from_affine(pub.point));
  const AffinePoint sum = secp256k1::point_add(p1, p2).to_affine();
  if (sum.infinity) return false;
  return U256::reduce(sum.x, n) == sig.r;
}

}  // namespace curb::crypto
