#include "curb/crypto/merkle.hpp"

#include <stdexcept>

#include "curb/prof/profiler.hpp"

namespace curb::crypto {

Hash256 MerkleTree::combine(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>{left});
  h.update(std::span<const std::uint8_t>{right});
  return h.finish();
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves) : leaf_count_{leaves.size()} {
  const prof::Scope scope{"crypto.merkle_build"};
  if (leaves.empty()) {
    levels_.push_back({Hash256{}});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(combine(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleTree::Proof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) throw std::out_of_range{"MerkleTree::prove: bad index"};
  Proof proof;
  std::size_t pos = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    const Hash256& sib_hash = sibling < nodes.size() ? nodes[sibling] : nodes[pos];
    proof.push_back({sib_hash, pos % 2 == 0});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, const Proof& proof, const Hash256& root) {
  Hash256 current = leaf;
  for (const auto& step : proof) {
    current = step.sibling_on_right ? combine(current, step.sibling)
                                    : combine(step.sibling, current);
  }
  return current == root;
}

Hash256 MerkleTree::root_of(const std::vector<Hash256>& leaves) {
  return MerkleTree{leaves}.root();
}

}  // namespace curb::crypto
