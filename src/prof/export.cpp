#include "curb/prof/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace curb::prof {

namespace {

std::string sanitize_frame(const std::string& label) {
  std::string out = label.empty() ? std::string{"(anonymous)"} : label;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return out;
}

void collapsed_walk(const Profiler& profiler, std::uint32_t node,
                    const std::string& prefix, std::ostream& out) {
  const auto& n = profiler.nodes()[node];
  const std::string path =
      prefix.empty() ? sanitize_frame(n.label) : prefix + ";" + sanitize_frame(n.label);
  const std::uint64_t self = profiler.exclusive_ns(node);
  if (self > 0) out << path << " " << self << "\n";
  for (const std::uint32_t child : n.children) {
    collapsed_walk(profiler, child, path, out);
  }
}

void chrome_walk(const Profiler& profiler, std::uint32_t node, std::uint64_t start_ns,
                 bool& first, std::ostream& out) {
  const auto& n = profiler.nodes()[node];
  if (!first) out << ",\n";
  first = false;
  char buf[64];
  out << "{\"name\":\"" << sanitize_frame(n.label)
      << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(start_ns) / 1000.0);
  out << buf << ",\"dur\":";
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(n.inclusive_ns) / 1000.0);
  out << buf << ",\"args\":{\"calls\":" << n.calls
      << ",\"exclusive_ns\":" << profiler.exclusive_ns(node) << "}}";
  std::uint64_t child_start = start_ns;
  for (const std::uint32_t child : n.children) {
    chrome_walk(profiler, child, child_start, first, out);
    child_start += profiler.nodes()[child].inclusive_ns;
  }
}

}  // namespace

void write_collapsed(const Profiler& profiler, std::ostream& out) {
  for (const std::uint32_t top : profiler.nodes()[0].children) {
    collapsed_walk(profiler, top, "", out);
  }
}

void write_chrome_profile(const Profiler& profiler, std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  std::uint64_t start = 0;
  for (const std::uint32_t top : profiler.nodes()[0].children) {
    chrome_walk(profiler, top, start, first, out);
    start += profiler.nodes()[top].inclusive_ns;
  }
  out << (first ? "" : "\n") << "]}\n";
}

std::vector<FoldedLine> parse_collapsed(std::istream& in) {
  std::vector<FoldedLine> lines;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      throw std::runtime_error{"collapsed line " + std::to_string(lineno) +
                               ": expected 'frames value'"};
    }
    FoldedLine folded;
    std::size_t parsed = 0;
    try {
      folded.value = std::stoull(line.substr(space + 1), &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != line.size() - space - 1) {
      throw std::runtime_error{"collapsed line " + std::to_string(lineno) +
                               ": bad value"};
    }
    std::size_t begin = 0;
    while (begin <= space) {
      std::size_t end = line.find(';', begin);
      if (end == std::string::npos || end > space) end = space;
      if (end == begin) {
        throw std::runtime_error{"collapsed line " + std::to_string(lineno) +
                                 ": empty frame"};
      }
      folded.frames.push_back(line.substr(begin, end - begin));
      begin = end + 1;
    }
    lines.push_back(std::move(folded));
  }
  return lines;
}

void write_profile_report(const std::vector<FoldedLine>& lines, std::ostream& out,
                          std::size_t top_n) {
  std::uint64_t total = 0;
  std::map<std::string, std::uint64_t> by_component;
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> by_leaf;  // ns, stacks
  for (const FoldedLine& line : lines) {
    if (line.frames.empty()) continue;
    total += line.value;
    const std::string& leaf = line.frames.back();
    const std::size_t dot = leaf.find('.');
    by_component[dot == std::string::npos ? leaf : leaf.substr(0, dot)] += line.value;
    auto& entry = by_leaf[leaf];
    entry.first += line.value;
    entry.second += 1;
  }

  out << "host-time profile: " << lines.size() << " stacks, total "
      << static_cast<double>(total) / 1e6 << " ms\n\n";
  if (total == 0) {
    out << "(empty profile)\n";
    return;
  }

  out << "component shares (exclusive time)\n";
  std::vector<std::pair<std::string, std::uint64_t>> components{by_component.begin(),
                                                                by_component.end()};
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  char buf[160];
  for (const auto& [component, ns] : components) {
    std::snprintf(buf, sizeof buf, "  %-12s %10.3f ms  %6.2f%%\n", component.c_str(),
                  static_cast<double>(ns) / 1e6,
                  100.0 * static_cast<double>(ns) / static_cast<double>(total));
    out << buf;
  }

  out << "\ntop self-time labels\n";
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::size_t>>> leaves{
      by_leaf.begin(), by_leaf.end()};
  std::sort(leaves.begin(), leaves.end(), [](const auto& a, const auto& b) {
    return a.second.first > b.second.first;
  });
  if (top_n != 0 && leaves.size() > top_n) leaves.resize(top_n);
  for (const auto& [label, entry] : leaves) {
    std::snprintf(buf, sizeof buf, "  %-28s %10.3f ms  %6.2f%%  (%zu stacks)\n",
                  label.c_str(), static_cast<double>(entry.first) / 1e6,
                  100.0 * static_cast<double>(entry.first) / static_cast<double>(total),
                  entry.second);
    out << buf;
  }
}

bool export_collapsed(const Profiler& profiler, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write_collapsed(profiler, out);
  return static_cast<bool>(out);
}

bool export_chrome_profile(const Profiler& profiler, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write_chrome_profile(profiler, out);
  return static_cast<bool>(out);
}

}  // namespace curb::prof
