#pragma once

// Bench-trajectory comparison: parse two BENCH_results.json files and flag
// per-metric regressions. This is the gate every later performance PR runs
// against — `curb-prof perf-diff BENCH_baseline.json BENCH_results.json`.
//
// Virtual-time metrics (latency, phases, message counts) are deterministic
// per seed and diff hard; `host.*` metrics are wall-clock measurements of
// the machine that produced the file and only ever warn.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace curb::prof {

/// Minimal JSON value (objects keep insertion order). Exactly the subset the
/// curb exporters emit; good enough to round-trip-validate them in tests.
struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document (throws std::runtime_error on malformed
/// input or trailing garbage).
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// One BENCH_results.json entry, flattened: every numeric field becomes a
/// dotted metric ("metrics.latency_ms", "e2e_us.p99_us",
/// "phases.dispatch.share_pct", "host.wall_ms", ...). Array elements carrying
/// a "phase"/"component" name key are flattened under that name.
struct BenchEntry {
  std::string bench;
  std::vector<std::pair<std::string, std::string>> params;  // file order
  std::map<std::string, double> values;

  /// Stable identity used to match entries across files.
  [[nodiscard]] std::string key() const;
};

/// Parse a BENCH_results.json array (throws std::runtime_error).
[[nodiscard]] std::vector<BenchEntry> parse_bench_json(std::istream& in);
[[nodiscard]] std::vector<BenchEntry> parse_bench_entries(const JsonValue& root);

struct PerfDiffOptions {
  /// Relative-change gate for virtual-time metrics, percent.
  double threshold_pct = 10.0;
  /// Relative-change gate for host.* and memory.* metrics, percent (always
  /// warn-only — both measure the build/machine, not the protocol).
  double host_threshold_pct = 50.0;
  /// Absolute change below this is ignored regardless of relative size.
  double floor = 0.0;
  /// Downgrade every regression to a warning (CI smoke mode: the gate only
  /// hard-fails on parse errors).
  bool warn_only = false;
};

struct MetricDelta {
  enum class Status : std::uint8_t { kRegressed, kWarned, kImproved };

  std::string entry;   // BenchEntry::key()
  std::string metric;  // flattened metric name
  double base = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  // signed relative change vs |base| (base==0 -> vs 1)
  Status status = Status::kWarned;
};

struct PerfDiffResult {
  std::vector<MetricDelta> deltas;        // beyond-threshold changes only
  std::vector<std::string> only_base;      // entries missing from the candidate
  std::vector<std::string> only_candidate; // entries missing from the baseline
  std::size_t entries_compared = 0;
  std::size_t metrics_compared = 0;

  [[nodiscard]] std::size_t regressions() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] std::size_t improvements() const;
};

/// True when a larger value of `metric` is better (throughput-style metrics:
/// tps, throughput, events_per_sec); everything else is lower-is-better.
[[nodiscard]] bool higher_is_better(const std::string& metric);

[[nodiscard]] PerfDiffResult perf_diff(const std::vector<BenchEntry>& base,
                                       const std::vector<BenchEntry>& candidate,
                                       const PerfDiffOptions& options = {});

void write_perf_diff_text(const PerfDiffResult& diff, std::ostream& out);
void write_perf_diff_json(const PerfDiffResult& diff, std::ostream& out);

}  // namespace curb::prof
