#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "curb/prof/profiler.hpp"

namespace curb::prof {

/// Collapsed-stack export, flamegraph.pl-compatible: one line per tree node
/// with nonzero self time, `frame;frame;frame <exclusive_ns>`. Frames are the
/// attribution labels root-to-leaf; ';' and whitespace inside labels are
/// replaced with '_'. Feed straight into flamegraph.pl (or speedscope).
void write_collapsed(const Profiler& profiler, std::ostream& out);

/// Chrome trace_event JSON of the attribution tree: synthetic "X" events laid
/// out as an icicle (children packed left-to-right inside their parent), with
/// calls and exclusive time in args. Aggregated host time, not a timeline —
/// event order within a parent is first-entry order, not call order.
void write_chrome_profile(const Profiler& profiler, std::ostream& out);

/// One parsed collapsed-stack line: the frame path and its self-time value.
struct FoldedLine {
  std::vector<std::string> frames;
  std::uint64_t value = 0;
};

/// Parse a collapsed-stack file (round-trip of write_collapsed). Throws
/// std::runtime_error on malformed lines. An empty stream parses to {}.
[[nodiscard]] std::vector<FoldedLine> parse_collapsed(std::istream& in);

/// Render a top-N self-time report over parsed collapsed stacks: a component
/// share table (exclusive time aggregated by the leaf frame's prefix before
/// the first '.', shares summing to 100%) followed by the top `top_n` leaf
/// labels by self time.
void write_profile_report(const std::vector<FoldedLine>& lines, std::ostream& out,
                          std::size_t top_n = 20);

/// File-path conveniences; return false when the file cannot be opened.
bool export_collapsed(const Profiler& profiler, const std::string& path);
bool export_chrome_profile(const Profiler& profiler, const std::string& path);

}  // namespace curb::prof
