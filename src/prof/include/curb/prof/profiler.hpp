#pragma once

// curb::prof — host-time profiling for the simulator itself.
//
// The obs layer measures *virtual* time: protocol latency on the simulated
// clock. curb::prof measures where the process spends *wall-clock* time —
// crypto, the OP solver, bus delivery, consensus handlers, the event loop —
// as a hierarchical attribution tree built from scoped RAII timers.
//
// Instrumentation points construct a `Scope`, whose constructor is a single
// thread-local pointer load and branch when no profiler is installed: the
// same nullable-pointer discipline as the obs::Observatory* pattern, so the
// disabled path allocates nothing and costs one predictable branch. Host
// times never feed back into the virtual clock, so enabling profiling cannot
// change protocol outputs — same-seed runs stay byte-identical.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace curb::prof {

// ---------------------------------------------------------------------------
// Component-tag channel.
//
// The allocation accountant (curb::obs::res) needs to know, at every
// `operator new`, which subsystem the calling thread is currently executing —
// without requiring a Profiler to be installed and without adding work to
// the disabled path. Scope maintains a per-thread stack of small component
// ids (the label prefix before the first '.': "crypto.sign" -> crypto) that
// is only pushed while tag tracking is latched on. The latch is one-way and
// flips before main() (the accountant enables it from the process's first
// allocation), so the disabled path costs one relaxed atomic load per Scope.

/// Fixed component-tag ids. kUntagged means "no Scope active on this
/// thread"; kOther is any label prefix outside the known subsystem set.
enum class ComponentTag : std::uint8_t {
  kUntagged = 0,
  kCrypto,
  kSolver,
  kBus,
  kBft,
  kChain,
  kObs,
  kSim,
  kOther,
};
inline constexpr std::size_t kComponentTagCount = 9;

/// Display name of a tag ("untagged", "crypto", ..., "other").
[[nodiscard]] const char* to_string(ComponentTag tag);

/// Component tag for an attribution label ("solver.cap" -> kSolver).
[[nodiscard]] ComponentTag resolve_component_tag(std::string_view label);

namespace detail {
extern std::atomic<bool> g_tag_tracking;
void push_component_tag(std::string_view label);
void pop_component_tag();
}  // namespace detail

/// One-way latch: from now on every Scope pushes its component tag.
void enable_component_tags();
[[nodiscard]] inline bool component_tags_enabled() {
  return detail::g_tag_tracking.load(std::memory_order_relaxed);
}

/// The calling thread's innermost active component tag (kUntagged when no
/// Scope is open or tag tracking is off). Safe to call from any context,
/// including inside a replaced operator new.
[[nodiscard]] ComponentTag current_component_tag();

/// Monotonic host clock, nanoseconds since an arbitrary epoch.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Always-on explicit wall-clock timer: the one timing idiom for code that
/// needs a duration *functionally* (solver time limits, measured OP latency,
/// bench host sections) whether or not a profiler is installed.
class StopWatch {
 public:
  StopWatch() : start_ns_{now_ns()} {}

  void restart() { start_ns_ = now_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_ns_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  /// Elapsed time and restart in one step (per-lap measurements).
  [[nodiscard]] double lap_ms() {
    const std::uint64_t now = now_ns();
    const double ms = static_cast<double>(now - start_ns_) / 1e6;
    start_ns_ = now;
    return ms;
  }

 private:
  std::uint64_t start_ns_;
};

/// Hierarchical host-time attribution tree. Each node is one label in one
/// calling context: entering "crypto.verify" under "bft.pbft_msg" and under
/// "chain.append" produces two distinct nodes with the same label. Nodes
/// accumulate call counts and inclusive nanoseconds; exclusive time is
/// derived (inclusive minus children) at export.
///
/// The profiler is single-threaded by design — one instance per thread,
/// reached through the thread-local installation below — which matches the
/// deterministic single-threaded simulator and keeps enter/leave lock-free.
class Profiler {
 public:
  struct Node {
    std::string label;
    std::uint32_t parent = 0;  // index into nodes(); the root is its own parent
    std::uint64_t calls = 0;
    std::uint64_t inclusive_ns = 0;
    std::vector<std::uint32_t> children;  // first-entry order
  };

  Profiler() { clear(); }

  /// Open a frame labelled `label` under the current frame. Returns the node
  /// index the matching leave() must pass back.
  std::uint32_t enter(std::string_view label);

  /// Close a frame, attributing `elapsed_ns` to it. Tolerates out-of-order
  /// closure (exception unwinding closes the innermost frames first anyway)
  /// by popping until the frame is found.
  void leave(std::uint32_t node, std::uint64_t elapsed_ns);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  /// Number of frames currently open (0 = balanced).
  [[nodiscard]] std::size_t depth() const { return stack_.size() - 1; }
  /// Index of the currently open frame (0 = the synthetic root). The
  /// allocation accountant keys per-frame allocation counts on this.
  [[nodiscard]] std::uint32_t current_node() const { return stack_.back(); }

  /// Self time of a node: inclusive minus the children's inclusive time,
  /// clamped at zero (clock granularity can make children sum slightly past
  /// the parent).
  [[nodiscard]] std::uint64_t exclusive_ns(std::uint32_t node) const;

  /// Total measured time: the root's children's inclusive time. Equals the
  /// sum of every node's exclusive time.
  [[nodiscard]] std::uint64_t total_ns() const;

  /// Exclusive nanoseconds aggregated by component — the label prefix before
  /// the first '.' ("crypto.sign" -> "crypto"). Deterministic (sorted) order.
  [[nodiscard]] std::map<std::string, std::uint64_t> exclusive_by_component() const;

  /// Total calls recorded for `label` across all contexts (0 if never seen).
  [[nodiscard]] std::uint64_t calls(std::string_view label) const;

  void clear();

 private:
  std::vector<Node> nodes_;            // nodes_[0] is the synthetic root
  std::vector<std::uint32_t> stack_;   // open path; back() = current frame
};

/// The calling thread's installed profiler, or nullptr when profiling is off.
[[nodiscard]] Profiler* thread_profiler();
/// Install (or, with nullptr, uninstall) the calling thread's profiler.
void set_thread_profiler(Profiler* profiler);

/// RAII install/uninstall of a thread profiler, for mains and tests.
class Session {
 public:
  explicit Session(Profiler& profiler) { set_thread_profiler(&profiler); }
  ~Session() { set_thread_profiler(nullptr); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

/// Scoped attribution timer. When no profiler is installed the constructor
/// is one thread-local load and branch and the destructor one branch.
class Scope {
 public:
  explicit Scope(std::string_view label) {
    if (component_tags_enabled()) {
      detail::push_component_tag(label);
      tagged_ = true;
    }
    Profiler* p = thread_profiler();
    if (p == nullptr) return;
    profiler_ = p;
    node_ = p->enter(label);
    start_ns_ = now_ns();
  }
  ~Scope() {
    if (profiler_ != nullptr) profiler_->leave(node_, now_ns() - start_ns_);
    if (tagged_) detail::pop_component_tag();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  std::uint32_t node_ = 0;
  bool tagged_ = false;
  std::uint64_t start_ns_ = 0;
};

}  // namespace curb::prof
