#include "curb/prof/profiler.hpp"

#include <algorithm>

namespace curb::prof {

namespace {
thread_local Profiler* t_profiler = nullptr;
}  // namespace

Profiler* thread_profiler() { return t_profiler; }

void set_thread_profiler(Profiler* profiler) { t_profiler = profiler; }

void Profiler::clear() {
  nodes_.clear();
  nodes_.push_back(Node{});  // synthetic root, parent 0 (itself)
  stack_.assign(1, 0);
}

std::uint32_t Profiler::enter(std::string_view label) {
  const std::uint32_t parent = stack_.back();
  // Linear scan: fan-out per context is a handful of labels at most, and the
  // children vector stays cache-resident — a map would cost more.
  for (const std::uint32_t child : nodes_[parent].children) {
    if (nodes_[child].label == label) {
      stack_.push_back(child);
      return child;
    }
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.label = std::string{label};
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(index);
  stack_.push_back(index);
  return index;
}

void Profiler::leave(std::uint32_t node, std::uint64_t elapsed_ns) {
  if (node == 0 || node >= nodes_.size()) return;
  nodes_[node].calls += 1;
  nodes_[node].inclusive_ns += elapsed_ns;
  // Normally node is the top of the stack; pop to (and including) it wherever
  // it is so a skipped leave cannot wedge the attribution path.
  for (std::size_t i = stack_.size(); i-- > 1;) {
    if (stack_[i] == node) {
      stack_.resize(i);
      return;
    }
  }
}

std::uint64_t Profiler::exclusive_ns(std::uint32_t node) const {
  const Node& n = nodes_.at(node);
  std::uint64_t children_ns = 0;
  for (const std::uint32_t child : n.children) {
    children_ns += nodes_[child].inclusive_ns;
  }
  return n.inclusive_ns > children_ns ? n.inclusive_ns - children_ns : 0;
}

std::uint64_t Profiler::total_ns() const {
  std::uint64_t total = 0;
  for (const std::uint32_t child : nodes_[0].children) {
    total += nodes_[child].inclusive_ns;
  }
  return total;
}

std::map<std::string, std::uint64_t> Profiler::exclusive_by_component() const {
  std::map<std::string, std::uint64_t> out;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const std::uint64_t self = exclusive_ns(i);
    if (self == 0) continue;
    const std::string& label = nodes_[i].label;
    const std::size_t dot = label.find('.');
    out[dot == std::string::npos ? label : label.substr(0, dot)] += self;
  }
  return out;
}

std::uint64_t Profiler::calls(std::string_view label) const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].label == label) total += nodes_[i].calls;
  }
  return total;
}

}  // namespace curb::prof
