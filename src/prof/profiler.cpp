#include "curb/prof/profiler.hpp"

#include <algorithm>

namespace curb::prof {

namespace {

thread_local Profiler* t_profiler = nullptr;

/// Fixed-capacity per-thread tag stack. Depth beyond the capacity keeps
/// counting (pushes and pops stay balanced) but stops storing: the innermost
/// *stored* tag is reported, which is the right answer for attribution.
struct TagStack {
  static constexpr std::uint32_t kCapacity = 128;
  std::uint8_t tags[kCapacity] = {};
  std::uint32_t depth = 0;
};
thread_local constinit TagStack t_tags;

}  // namespace

Profiler* thread_profiler() { return t_profiler; }

void set_thread_profiler(Profiler* profiler) { t_profiler = profiler; }

std::atomic<bool> detail::g_tag_tracking{false};

void enable_component_tags() {
  detail::g_tag_tracking.store(true, std::memory_order_relaxed);
}

const char* to_string(ComponentTag tag) {
  switch (tag) {
    case ComponentTag::kUntagged: return "untagged";
    case ComponentTag::kCrypto: return "crypto";
    case ComponentTag::kSolver: return "solver";
    case ComponentTag::kBus: return "bus";
    case ComponentTag::kBft: return "bft";
    case ComponentTag::kChain: return "chain";
    case ComponentTag::kObs: return "obs";
    case ComponentTag::kSim: return "sim";
    case ComponentTag::kOther: return "other";
  }
  return "?";
}

ComponentTag resolve_component_tag(std::string_view label) {
  const std::size_t dot = label.find('.');
  const std::string_view prefix =
      dot == std::string_view::npos ? label : label.substr(0, dot);
  if (prefix == "crypto") return ComponentTag::kCrypto;
  if (prefix == "solver") return ComponentTag::kSolver;
  if (prefix == "bus") return ComponentTag::kBus;
  if (prefix == "bft") return ComponentTag::kBft;
  if (prefix == "chain") return ComponentTag::kChain;
  if (prefix == "obs") return ComponentTag::kObs;
  if (prefix == "sim") return ComponentTag::kSim;
  return ComponentTag::kOther;
}

void detail::push_component_tag(std::string_view label) {
  TagStack& s = t_tags;
  if (s.depth < TagStack::kCapacity) {
    s.tags[s.depth] = static_cast<std::uint8_t>(resolve_component_tag(label));
  }
  ++s.depth;
}

void detail::pop_component_tag() {
  TagStack& s = t_tags;
  if (s.depth > 0) --s.depth;
}

ComponentTag current_component_tag() {
  const TagStack& s = t_tags;
  if (s.depth == 0) return ComponentTag::kUntagged;
  const std::uint32_t top = std::min(s.depth, TagStack::kCapacity);
  return static_cast<ComponentTag>(s.tags[top - 1]);
}

void Profiler::clear() {
  nodes_.clear();
  nodes_.push_back(Node{});  // synthetic root, parent 0 (itself)
  stack_.assign(1, 0);
}

std::uint32_t Profiler::enter(std::string_view label) {
  const std::uint32_t parent = stack_.back();
  // Linear scan: fan-out per context is a handful of labels at most, and the
  // children vector stays cache-resident — a map would cost more.
  for (const std::uint32_t child : nodes_[parent].children) {
    if (nodes_[child].label == label) {
      stack_.push_back(child);
      return child;
    }
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.label = std::string{label};
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(index);
  stack_.push_back(index);
  return index;
}

void Profiler::leave(std::uint32_t node, std::uint64_t elapsed_ns) {
  if (node == 0 || node >= nodes_.size()) return;
  nodes_[node].calls += 1;
  nodes_[node].inclusive_ns += elapsed_ns;
  // Normally node is the top of the stack; pop to (and including) it wherever
  // it is so a skipped leave cannot wedge the attribution path.
  for (std::size_t i = stack_.size(); i-- > 1;) {
    if (stack_[i] == node) {
      stack_.resize(i);
      return;
    }
  }
}

std::uint64_t Profiler::exclusive_ns(std::uint32_t node) const {
  const Node& n = nodes_.at(node);
  std::uint64_t children_ns = 0;
  for (const std::uint32_t child : n.children) {
    children_ns += nodes_[child].inclusive_ns;
  }
  return n.inclusive_ns > children_ns ? n.inclusive_ns - children_ns : 0;
}

std::uint64_t Profiler::total_ns() const {
  std::uint64_t total = 0;
  for (const std::uint32_t child : nodes_[0].children) {
    total += nodes_[child].inclusive_ns;
  }
  return total;
}

std::map<std::string, std::uint64_t> Profiler::exclusive_by_component() const {
  std::map<std::string, std::uint64_t> out;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const std::uint64_t self = exclusive_ns(i);
    if (self == 0) continue;
    const std::string& label = nodes_[i].label;
    const std::size_t dot = label.find('.');
    out[dot == std::string::npos ? label : label.substr(0, dot)] += self;
  }
  return out;
}

std::uint64_t Profiler::calls(std::string_view label) const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].label == label) total += nodes_[i].calls;
  }
  return total;
}

}  // namespace curb::prof
