#include "curb/prof/bench_diff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace curb::prof {

namespace {

// ---------------------------------------------------------------------------
// JSON parsing (recursive descent over the exporter subset + standard JSON).

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"json: " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Exporters only escape control characters; keep BMP handling simple.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      std::size_t used = 0;
      v.number = std::stod(std::string{text_.substr(start, pos_ - start)}, &used);
      if (used != pos_ - start) throw std::invalid_argument{"partial"};
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Name an array element for flattening: phases/components arrays carry a
/// string key naming the element; fall back to the index.
std::string element_name(const JsonValue& element, std::size_t index) {
  if (element.type == JsonValue::Type::kObject) {
    for (const char* key : {"phase", "component", "name"}) {
      if (const JsonValue* name = element.find(key);
          name != nullptr && name->type == JsonValue::Type::kString) {
        return name->str;
      }
    }
  }
  return std::to_string(index);
}

void flatten_numbers(const JsonValue& value, const std::string& prefix,
                     std::map<std::string, double>& out) {
  switch (value.type) {
    case JsonValue::Type::kNumber: out[prefix] = value.number; break;
    case JsonValue::Type::kObject:
      for (const auto& [key, member] : value.object) {
        if (key == "phase" || key == "component" || key == "name") continue;
        flatten_numbers(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Type::kArray:
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        const std::string name = element_name(value.array[i], i);
        flatten_numbers(value.array[i], prefix.empty() ? name : prefix + "." + name,
                        out);
      }
      break;
    default: break;  // strings/bools/nulls are not comparable metrics
  }
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return JsonParser{text}.parse_document();
}

std::string BenchEntry::key() const {
  std::string out = bench;
  for (const auto& [k, v] : params) out += " " + k + "=" + v;
  return out;
}

std::vector<BenchEntry> parse_bench_entries(const JsonValue& root) {
  if (root.type != JsonValue::Type::kArray) {
    throw std::runtime_error{"bench json: expected a top-level array"};
  }
  std::vector<BenchEntry> entries;
  for (const JsonValue& element : root.array) {
    if (element.type != JsonValue::Type::kObject) {
      throw std::runtime_error{"bench json: expected entry objects"};
    }
    BenchEntry entry;
    if (const JsonValue* bench = element.find("bench");
        bench != nullptr && bench->type == JsonValue::Type::kString) {
      entry.bench = bench->str;
    } else {
      throw std::runtime_error{"bench json: entry without \"bench\" name"};
    }
    if (const JsonValue* params = element.find("params");
        params != nullptr && params->type == JsonValue::Type::kObject) {
      for (const auto& [k, v] : params->object) {
        entry.params.emplace_back(
            k, v.type == JsonValue::Type::kString ? v.str : std::string{});
      }
    }
    for (const auto& [key, member] : element.object) {
      if (key == "bench" || key == "params") continue;
      flatten_numbers(member, key, entry.values);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<BenchEntry> parse_bench_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_bench_entries(parse_json(buffer.str()));
}

bool higher_is_better(const std::string& metric) {
  const std::size_t dot = metric.rfind('.');
  const std::string leaf = dot == std::string::npos ? metric : metric.substr(dot + 1);
  return leaf.find("tps") != std::string::npos ||
         leaf.find("throughput") != std::string::npos ||
         leaf.find("events_per_sec") != std::string::npos;
}

std::size_t PerfDiffResult::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(), [](const MetricDelta& d) {
        return d.status == MetricDelta::Status::kRegressed;
      }));
}

std::size_t PerfDiffResult::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(), [](const MetricDelta& d) {
        return d.status == MetricDelta::Status::kWarned;
      }));
}

std::size_t PerfDiffResult::improvements() const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(), [](const MetricDelta& d) {
        return d.status == MetricDelta::Status::kImproved;
      }));
}

PerfDiffResult perf_diff(const std::vector<BenchEntry>& base,
                         const std::vector<BenchEntry>& candidate,
                         const PerfDiffOptions& options) {
  PerfDiffResult result;
  std::map<std::string, const BenchEntry*> candidates;
  for (const BenchEntry& entry : candidate) candidates[entry.key()] = &entry;
  std::map<std::string, bool> matched;
  for (const auto& [key, entry] : candidates) matched[key] = false;

  for (const BenchEntry& b : base) {
    const auto it = candidates.find(b.key());
    if (it == candidates.end()) {
      result.only_base.push_back(b.key());
      continue;
    }
    matched[b.key()] = true;
    ++result.entries_compared;
    for (const auto& [metric, base_value] : b.values) {
      const auto cit = it->second->values.find(metric);
      if (cit == it->second->values.end()) continue;
      ++result.metrics_compared;
      const double cand_value = cit->second;
      const double abs_delta = std::abs(cand_value - base_value);
      if (abs_delta <= options.floor) continue;
      const double denom = base_value != 0.0 ? std::abs(base_value) : 1.0;
      const double delta_pct = 100.0 * (cand_value - base_value) / denom;
      // Host and memory sections measure the machine / allocator behaviour of
      // the build that produced the file, not the protocol — they compare
      // against their own (looser) threshold and never hard-fail. The
      // msg_complexity audit is warn-only too: its hard gate is the
      // within_bound verdict (curb-trace complexity exit code), not a
      // percentage drift in message counts.
      const bool advisory = metric.rfind("host.", 0) == 0 ||
                            metric.rfind("memory.", 0) == 0 ||
                            metric.rfind("msg_complexity.", 0) == 0;
      const double threshold =
          advisory ? options.host_threshold_pct : options.threshold_pct;
      if (std::abs(delta_pct) <= threshold) continue;
      const bool worse = higher_is_better(metric) ? delta_pct < 0.0 : delta_pct > 0.0;
      MetricDelta delta;
      delta.entry = b.key();
      delta.metric = metric;
      delta.base = base_value;
      delta.candidate = cand_value;
      delta.delta_pct = delta_pct;
      delta.status = !worse                            ? MetricDelta::Status::kImproved
                     : (advisory || options.warn_only) ? MetricDelta::Status::kWarned
                                                       : MetricDelta::Status::kRegressed;
      result.deltas.push_back(std::move(delta));
    }
  }
  for (const auto& [key, was_matched] : matched) {
    if (!was_matched) result.only_candidate.push_back(key);
  }
  return result;
}

namespace {

const char* status_name(MetricDelta::Status status) {
  switch (status) {
    case MetricDelta::Status::kRegressed: return "REGRESSED";
    case MetricDelta::Status::kWarned: return "warn";
    case MetricDelta::Status::kImproved: return "improved";
  }
  return "?";
}

std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_perf_diff_text(const PerfDiffResult& diff, std::ostream& out) {
  out << "perf-diff: " << diff.entries_compared << " entries, "
      << diff.metrics_compared << " metrics compared\n";
  for (const std::string& key : diff.only_base) {
    out << "  note: only in baseline:  " << key << "\n";
  }
  for (const std::string& key : diff.only_candidate) {
    out << "  note: only in candidate: " << key << "\n";
  }
  char buf[96];
  for (const MetricDelta& d : diff.deltas) {
    std::snprintf(buf, sizeof buf, "%+.1f%% (%.3f -> %.3f)", d.delta_pct, d.base,
                  d.candidate);
    out << "  " << status_name(d.status) << "  " << d.entry << "  " << d.metric << "  "
        << buf << "\n";
  }
  out << "regressions: " << diff.regressions() << ", warnings: " << diff.warnings()
      << ", improvements: " << diff.improvements() << "\n";
}

void write_perf_diff_json(const PerfDiffResult& diff, std::ostream& out) {
  out << "{\"entries_compared\":" << diff.entries_compared
      << ",\"metrics_compared\":" << diff.metrics_compared
      << ",\"regressions\":" << diff.regressions()
      << ",\"warnings\":" << diff.warnings()
      << ",\"improvements\":" << diff.improvements() << ",\"only_base\":[";
  for (std::size_t i = 0; i < diff.only_base.size(); ++i) {
    out << (i > 0 ? "," : "") << "\"" << json_escape_min(diff.only_base[i]) << "\"";
  }
  out << "],\"only_candidate\":[";
  for (std::size_t i = 0; i < diff.only_candidate.size(); ++i) {
    out << (i > 0 ? "," : "") << "\"" << json_escape_min(diff.only_candidate[i]) << "\"";
  }
  out << "],\"deltas\":[";
  char buf[64];
  for (std::size_t i = 0; i < diff.deltas.size(); ++i) {
    const MetricDelta& d = diff.deltas[i];
    if (i > 0) out << ",";
    out << "{\"entry\":\"" << json_escape_min(d.entry) << "\",\"metric\":\""
        << json_escape_min(d.metric) << "\",\"status\":\"" << status_name(d.status)
        << "\",\"base\":";
    std::snprintf(buf, sizeof buf, "%.6g", d.base);
    out << buf << ",\"candidate\":";
    std::snprintf(buf, sizeof buf, "%.6g", d.candidate);
    out << buf << ",\"delta_pct\":";
    std::snprintf(buf, sizeof buf, "%.3f", d.delta_pct);
    out << buf << "}";
  }
  out << "]}\n";
}

}  // namespace curb::prof
