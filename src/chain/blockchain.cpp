#include "curb/chain/blockchain.hpp"

#include <stdexcept>
#include <utility>

#include "curb/chain/serial.hpp"
#include "curb/prof/profiler.hpp"

namespace curb::chain {

Blockchain::Blockchain(Block genesis) {
  if (genesis.header().height != 0) {
    throw std::invalid_argument{"Blockchain: genesis must have height 0"};
  }
  if (!genesis.well_formed()) {
    throw std::invalid_argument{"Blockchain: genesis merkle root mismatch"};
  }
  for (const Transaction& tx : genesis.transactions()) tx_index_[tx.id()] = 0;
  blocks_.push_back(std::move(genesis));
}

std::optional<AppendError> Blockchain::append(const Block& block) {
  const prof::Scope scope{"chain.append"};
  const auto reject = [this](AppendError err) {
    if (obs_ != nullptr) {
      obs_->metrics
          .counter("chain.rejected", {{"owner", owner_}, {"reason", to_string(err)}})
          .inc();
    }
    return err;
  };
  if (block.header().height != height() + 1) return reject(AppendError::kWrongHeight);
  if (block.header().prev_hash != tip().hash()) return reject(AppendError::kWrongPrevHash);
  if (!block.well_formed()) return reject(AppendError::kBadMerkleRoot);
  for (const Transaction& tx : block.transactions()) {
    if (tx_index_.contains(tx.id())) return reject(AppendError::kDuplicateTransaction);
  }
  for (const Transaction& tx : block.transactions()) {
    tx_index_[tx.id()] = block.header().height;
  }
  if (obs_ != nullptr) {
    blocks_appended_->inc();
    height_gauge_->set(static_cast<double>(block.header().height));
    txs_per_block_->record(static_cast<double>(block.transactions().size()));
    block_interval_us_->record(static_cast<double>(block.header().timestamp_us -
                                                   tip().header().timestamp_us));
  }
  blocks_.push_back(block);
  return std::nullopt;
}

void Blockchain::set_observatory(obs::Observatory* obs, std::string owner) {
  obs_ = obs;
  owner_ = std::move(owner);
  if (obs_ == nullptr) {
    blocks_appended_ = nullptr;
    height_gauge_ = nullptr;
    txs_per_block_ = nullptr;
    block_interval_us_ = nullptr;
    return;
  }
  auto& registry = obs_->metrics;
  const obs::Labels labels{{"owner", owner_}};
  blocks_appended_ = &registry.counter("chain.blocks_appended", labels);
  height_gauge_ = &registry.gauge("chain.height", labels);
  txs_per_block_ = &registry.histogram("chain.txs_per_block", labels);
  block_interval_us_ = &registry.histogram("chain.block_interval_us", labels);
  height_gauge_->set(static_cast<double>(height()));
}

const Block& Blockchain::at(std::uint64_t h) const {
  if (h >= blocks_.size()) throw std::out_of_range{"Blockchain: height out of range"};
  return blocks_[h];
}

bool Blockchain::contains_transaction(const crypto::Hash256& tx_id) const {
  return tx_index_.contains(tx_id);
}

std::optional<std::uint64_t> Blockchain::find_transaction(const crypto::Hash256& tx_id) const {
  const auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

void Blockchain::save(std::ostream& out) const {
  ByteWriter header;
  header.u32(0x43555242);  // "CURB"
  header.u32(static_cast<std::uint32_t>(blocks_.size()));
  const auto& hb = header.data();
  out.write(reinterpret_cast<const char*>(hb.data()),
            static_cast<std::streamsize>(hb.size()));
  for (const Block& block : blocks_) {
    ByteWriter w;
    w.bytes(block.serialize());
    const auto& bytes = w.data();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  if (!out) throw std::runtime_error{"Blockchain::save: stream failure"};
}

Blockchain Blockchain::load(std::istream& in) {
  auto read_u32 = [&in]() -> std::uint32_t {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in) throw std::runtime_error{"Blockchain::load: truncated stream"};
    return v;
  };
  if (read_u32() != 0x43555242) {
    throw std::runtime_error{"Blockchain::load: bad magic"};
  }
  const std::uint32_t count = read_u32();
  if (count == 0) throw std::runtime_error{"Blockchain::load: empty chain"};

  auto read_block = [&]() {
    const std::uint32_t len = read_u32();
    constexpr std::uint32_t kMaxBlockBytes = 1u << 28;  // 256 MiB sanity cap
    if (len > kMaxBlockBytes) {
      throw std::runtime_error{"Blockchain::load: implausible block size"};
    }
    std::vector<std::uint8_t> bytes(len);
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(len));
    if (!in) throw std::runtime_error{"Blockchain::load: truncated block"};
    return Block::deserialize(bytes);
  };

  Blockchain chain{read_block()};
  for (std::uint32_t i = 1; i < count; ++i) {
    if (const auto err = chain.append(read_block())) {
      throw std::runtime_error{std::string{"Blockchain::load: invalid block: "} +
                               to_string(*err)};
    }
  }
  return chain;
}

}  // namespace curb::chain
