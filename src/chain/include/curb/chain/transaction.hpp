#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "curb/crypto/secp256k1.hpp"
#include "curb/crypto/sha256.hpp"

namespace curb::chain {

/// The request kinds the Curb control plane serves: PKT-IN asks for new
/// flow entries, RE-ASS asks for controller reassignment (paper Table I);
/// POLICY carries a northbound policy update from an application service
/// (paper Section III-B, northbound API).
enum class RequestType : std::uint8_t { kPacketIn = 0, kReassign = 1, kPolicyUpdate = 2 };

[[nodiscard]] constexpr std::string_view to_string(RequestType t) {
  switch (t) {
    case RequestType::kPacketIn: return "PKT-IN";
    case RequestType::kReassign: return "RE-ASS";
    case RequestType::kPolicyUpdate: return "POLICY";
  }
  return "?";
}

/// A Curb transaction: the tuple <TX, reqMsg, s, c, config> from Algorithm 2.
/// `config` carries the computed configuration (serialized flow entries for
/// PKT-IN, a serialized assignment for RE-ASS) and is opaque at this layer.
class Transaction {
 public:
  Transaction() = default;
  Transaction(RequestType type, std::uint32_t switch_id, std::uint32_t controller_id,
              std::uint64_t request_id, std::vector<std::uint8_t> config)
      : type_{type},
        switch_id_{switch_id},
        controller_id_{controller_id},
        request_id_{request_id},
        config_{std::move(config)} {}

  [[nodiscard]] RequestType type() const { return type_; }
  [[nodiscard]] std::uint32_t switch_id() const { return switch_id_; }
  [[nodiscard]] std::uint32_t controller_id() const { return controller_id_; }
  [[nodiscard]] std::uint64_t request_id() const { return request_id_; }
  [[nodiscard]] const std::vector<std::uint8_t>& config() const { return config_; }
  [[nodiscard]] const std::optional<crypto::Signature>& signature() const {
    return signature_;
  }

  /// Canonical bytes WITHOUT the signature — this is what gets signed.
  [[nodiscard]] std::vector<std::uint8_t> signing_bytes() const;
  /// Full wire encoding (signature included when present).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Transaction deserialize(std::span<const std::uint8_t> bytes);

  /// Transaction id: SHA-256 over the signing bytes (stable under
  /// re-signing). Computed once and memoized — every field feeding the id is
  /// fixed at construction/deserialization, so the cache never goes stale.
  [[nodiscard]] const crypto::Hash256& id() const;

  /// Sign with the handling leader's key / verify against its public key.
  /// Verification goes through the process-wide signature cache, so the
  /// 3f+1 replicas checking the same transaction pay for ECDSA once.
  void sign(const crypto::KeyPair& key);
  [[nodiscard]] bool verify(const crypto::PublicKey& key) const;

  bool operator==(const Transaction& other) const {
    return type_ == other.type_ && switch_id_ == other.switch_id_ &&
           controller_id_ == other.controller_id_ &&
           request_id_ == other.request_id_ && config_ == other.config_ &&
           signature_ == other.signature_;
  }

 private:
  RequestType type_ = RequestType::kPacketIn;
  std::uint32_t switch_id_ = 0;
  std::uint32_t controller_id_ = 0;
  std::uint64_t request_id_ = 0;
  std::vector<std::uint8_t> config_;
  std::optional<crypto::Signature> signature_;
  mutable std::optional<crypto::Hash256> id_memo_;  // excluded from operator==
};

}  // namespace curb::chain
