#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace curb::chain {

/// Little-endian byte writer for canonical wire encoding. Every structure
/// that is hashed or signed serializes through this so the byte layout is
/// deterministic across platforms.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }

  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    bytes(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Fixed-size array without a length prefix (hashes, signatures, keys).
  template <std::size_t N>
  void fixed(const std::array<std::uint8_t, N>& data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    // All supported targets are little-endian; static_assert via endian check.
    static_assert(std::endian::native == std::endian::little,
                  "wire format assumes little-endian host");
    buf_.insert(buf_.end(), bytes, bytes + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader matching ByteWriter. Throws std::out_of_range on
/// truncated input — malformed network bytes must never crash a node.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return scalar<std::uint16_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  double f64() { return scalar<double>(); }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    const auto s = take(n);
    return {s.begin(), s.end()};
  }
  std::string str() {
    const auto b = bytes();
    return {b.begin(), b.end()};
  }
  template <std::size_t N>
  std::array<std::uint8_t, N> fixed() {
    const auto s = take(N);
    std::array<std::uint8_t, N> out;
    std::copy(s.begin(), s.end(), out.begin());
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T scalar() {
    const auto s = take(sizeof(T));
    T v;
    std::memcpy(&v, s.data(), sizeof(T));
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (pos_ + n > data_.size()) throw std::out_of_range{"ByteReader: truncated input"};
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace curb::chain
