#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "curb/chain/block.hpp"
#include "curb/crypto/sha256.hpp"
#include "curb/obs/observatory.hpp"

namespace curb::chain {

/// Why a block was rejected by Blockchain::append.
enum class AppendError {
  kWrongHeight,
  kWrongPrevHash,
  kBadMerkleRoot,
  kDuplicateTransaction,
};

[[nodiscard]] constexpr const char* to_string(AppendError e) {
  switch (e) {
    case AppendError::kWrongHeight: return "wrong-height";
    case AppendError::kWrongPrevHash: return "wrong-prev-hash";
    case AppendError::kBadMerkleRoot: return "bad-merkle-root";
    case AppendError::kDuplicateTransaction: return "duplicate-transaction";
  }
  return "?";
}

/// Per-controller blockchain database: an append-only, fully validated chain
/// with a transaction index for duplicate detection and traceability queries
/// ("which block recorded this flow rule?" — the paper's verifiability and
/// traceability properties).
class Blockchain {
 public:
  /// Start from a genesis block (height 0, any prev hash).
  explicit Blockchain(Block genesis);

  /// Validate and append. Returns the error on rejection, nullopt on success.
  std::optional<AppendError> append(const Block& block);

  /// Attach observability (nullptr disables). `owner` labels this chain's
  /// series (one chain per controller). Appends feed block count / chain
  /// height / txs-per-block / inter-block-interval metrics; rejections are
  /// counted by reason.
  void set_observatory(obs::Observatory* obs, std::string owner);

  [[nodiscard]] std::uint64_t height() const { return blocks_.back().header().height; }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }
  [[nodiscard]] const Block& tip() const { return blocks_.back(); }
  [[nodiscard]] const Block& at(std::uint64_t height) const;
  [[nodiscard]] const Block& genesis() const { return blocks_.front(); }

  /// Whether a transaction id is recorded anywhere in the chain.
  [[nodiscard]] bool contains_transaction(const crypto::Hash256& tx_id) const;
  /// Height of the block containing the transaction, if any.
  [[nodiscard]] std::optional<std::uint64_t> find_transaction(
      const crypto::Hash256& tx_id) const;
  [[nodiscard]] std::size_t total_transactions() const { return tx_index_.size(); }

  /// Two replicas agree iff their tip hashes agree (chains are prefix-closed).
  [[nodiscard]] bool same_view_as(const Blockchain& other) const {
    return tip().hash() == other.tip().hash();
  }

  /// Persist the whole chain ("the blockchain database persistently stores
  /// the chain of blocks"). The stream carries length-prefixed serialized
  /// blocks; load() re-validates every link and throws std::runtime_error
  /// on corruption.
  void save(std::ostream& out) const;
  [[nodiscard]] static Blockchain load(std::istream& in);

 private:
  std::vector<Block> blocks_;
  std::map<crypto::Hash256, std::uint64_t> tx_index_;

  // Observability (instrument handles cached by set_observatory).
  obs::Observatory* obs_ = nullptr;
  std::string owner_;
  obs::Counter* blocks_appended_ = nullptr;
  obs::Gauge* height_gauge_ = nullptr;
  obs::Histogram* txs_per_block_ = nullptr;
  obs::Histogram* block_interval_us_ = nullptr;
};

}  // namespace curb::chain
