#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "curb/chain/transaction.hpp"
#include "curb/crypto/merkle.hpp"
#include "curb/crypto/sha256.hpp"

namespace curb::chain {

/// Block header: links the chain and commits to the body via a Merkle root.
struct BlockHeader {
  std::uint64_t height = 0;
  crypto::Hash256 prev_hash{};
  crypto::Hash256 merkle_root{};
  /// Virtual time of proposal (microseconds since simulation start).
  std::uint64_t timestamp_us = 0;
  /// Final-committee leader that proposed the block.
  std::uint32_t proposer_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static BlockHeader deserialize(std::span<const std::uint8_t> bytes);
  [[nodiscard]] crypto::Hash256 hash() const;

  bool operator==(const BlockHeader&) const = default;
};

/// A block: header + ordered transactions. The body's Merkle root must match
/// the header; `well_formed()` checks exactly that plus per-tx sanity.
class Block {
 public:
  Block() = default;

  /// Build a block over `txs` (computes the Merkle root).
  [[nodiscard]] static Block create(std::uint64_t height, const crypto::Hash256& prev_hash,
                                    std::vector<Transaction> txs, std::uint64_t timestamp_us,
                                    std::uint32_t proposer_id);

  [[nodiscard]] const BlockHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<Transaction>& transactions() const { return txs_; }
  [[nodiscard]] crypto::Hash256 hash() const { return header_.hash(); }

  /// Merkle root over transaction ids in order.
  [[nodiscard]] static crypto::Hash256 merkle_root_of(const std::vector<Transaction>& txs);
  /// Inclusion proof for the transaction at `index` — a light verifier can
  /// check a flow rule against just the block header (the paper's
  /// verifiability property). Throws std::out_of_range.
  [[nodiscard]] crypto::MerkleTree::Proof merkle_proof(std::size_t index) const;
  /// Verify that `tx` is committed by a block header.
  [[nodiscard]] static bool verify_inclusion(const Transaction& tx,
                                             const crypto::MerkleTree::Proof& proof,
                                             const BlockHeader& header);
  /// Header/body consistency (Merkle root matches the transactions).
  [[nodiscard]] bool well_formed() const;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Block deserialize(std::span<const std::uint8_t> bytes);

  bool operator==(const Block&) const = default;

 private:
  BlockHeader header_;
  std::vector<Transaction> txs_;
};

}  // namespace curb::chain
