#include "curb/chain/transaction.hpp"

#include "curb/chain/serial.hpp"
#include "curb/crypto/sigcache.hpp"

namespace curb::chain {

std::vector<std::uint8_t> Transaction::signing_bytes() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type_));
  w.u32(switch_id_);
  w.u32(controller_id_);
  w.u64(request_id_);
  w.bytes(config_);
  return w.take();
}

std::vector<std::uint8_t> Transaction::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type_));
  w.u32(switch_id_);
  w.u32(controller_id_);
  w.u64(request_id_);
  w.bytes(config_);
  w.u8(signature_.has_value() ? 1 : 0);
  if (signature_) w.fixed(signature_->to_bytes());
  return w.take();
}

Transaction Transaction::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  Transaction tx;
  const std::uint8_t raw_type = r.u8();
  if (raw_type > static_cast<std::uint8_t>(RequestType::kPolicyUpdate)) {
    throw std::invalid_argument{"Transaction: unknown request type"};
  }
  tx.type_ = static_cast<RequestType>(raw_type);
  tx.switch_id_ = r.u32();
  tx.controller_id_ = r.u32();
  tx.request_id_ = r.u64();
  tx.config_ = r.bytes();
  if (r.u8() != 0) {
    const auto sig_bytes = r.fixed<64>();
    tx.signature_ = crypto::Signature::from_bytes(
        std::span<const std::uint8_t, 64>{sig_bytes});
  }
  return tx;
}

const crypto::Hash256& Transaction::id() const {
  if (!id_memo_) {
    const auto bytes = signing_bytes();
    id_memo_ = crypto::Sha256::digest(std::span<const std::uint8_t>{bytes});
  }
  return *id_memo_;
}

void Transaction::sign(const crypto::KeyPair& key) { signature_ = key.sign(id()); }

bool Transaction::verify(const crypto::PublicKey& key) const {
  if (!signature_) return false;
  return crypto::verify_cached(key, id(), *signature_);
}

}  // namespace curb::chain
