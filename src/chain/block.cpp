#include "curb/chain/block.hpp"

#include "curb/chain/serial.hpp"
#include "curb/crypto/merkle.hpp"

namespace curb::chain {

std::vector<std::uint8_t> BlockHeader::serialize() const {
  ByteWriter w;
  w.u64(height);
  w.fixed(prev_hash);
  w.fixed(merkle_root);
  w.u64(timestamp_us);
  w.u32(proposer_id);
  return w.take();
}

BlockHeader BlockHeader::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  BlockHeader h;
  h.height = r.u64();
  h.prev_hash = r.fixed<32>();
  h.merkle_root = r.fixed<32>();
  h.timestamp_us = r.u64();
  h.proposer_id = r.u32();
  return h;
}

crypto::Hash256 BlockHeader::hash() const {
  const auto bytes = serialize();
  return crypto::Sha256::double_digest(std::span<const std::uint8_t>{bytes});
}

Block Block::create(std::uint64_t height, const crypto::Hash256& prev_hash,
                    std::vector<Transaction> txs, std::uint64_t timestamp_us,
                    std::uint32_t proposer_id) {
  Block b;
  b.header_.height = height;
  b.header_.prev_hash = prev_hash;
  b.header_.merkle_root = merkle_root_of(txs);
  b.header_.timestamp_us = timestamp_us;
  b.header_.proposer_id = proposer_id;
  b.txs_ = std::move(txs);
  return b;
}

crypto::Hash256 Block::merkle_root_of(const std::vector<Transaction>& txs) {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.id());
  return crypto::MerkleTree::root_of(leaves);
}

bool Block::well_formed() const { return header_.merkle_root == merkle_root_of(txs_); }

crypto::MerkleTree::Proof Block::merkle_proof(std::size_t index) const {
  if (index >= txs_.size()) throw std::out_of_range{"Block::merkle_proof: bad index"};
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs_.size());
  for (const Transaction& tx : txs_) leaves.push_back(tx.id());
  return crypto::MerkleTree{std::move(leaves)}.prove(index);
}

bool Block::verify_inclusion(const Transaction& tx, const crypto::MerkleTree::Proof& proof,
                             const BlockHeader& header) {
  return crypto::MerkleTree::verify(tx.id(), proof, header.merkle_root);
}

std::vector<std::uint8_t> Block::serialize() const {
  ByteWriter w;
  const auto header_bytes = header_.serialize();
  w.bytes(header_bytes);
  w.u32(static_cast<std::uint32_t>(txs_.size()));
  for (const Transaction& tx : txs_) w.bytes(tx.serialize());
  return w.take();
}

Block Block::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  Block b;
  const auto header_bytes = r.bytes();
  b.header_ = BlockHeader::deserialize(header_bytes);
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4) throw std::invalid_argument{"block tx count too large"};
  b.txs_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto tx_bytes = r.bytes();
    b.txs_.push_back(Transaction::deserialize(tx_bytes));
  }
  return b;
}

}  // namespace curb::chain
