#pragma once

// Deterministic fault-injection plans (curb::fault).
//
// A FaultPlan is fully described by (seed, spec string): parsing is pure,
// and the injector consumes randomness from one seeded stream in the
// deterministic order the simulation presents messages, so the same
// (seed, spec) pair reproduces the exact same fault schedule — byte-for-byte
// identical traces — on every run and toolchain (DESIGN.md §10).
//
// Spec grammar (whitespace-insensitive):
//
//   spec    := clause (';' clause)*
//   clause  := kind '(' [key '=' value (',' key '=' value)*] ')'
//   kind    := drop | delay | dup | corrupt | partition | crash | byz
//
// Link-fault clauses (drop/delay/dup/corrupt/partition) select messages by
// probability `p`, bus category `cat`, endpoint selectors `src`/`dst`
// (partition: `a`/`b`, bidirectional), and a [from, until) window in virtual
// milliseconds. Node-event clauses (crash/byz) name a controller by ordinal
// and a trigger time `at`; `crash` takes a `down` duration after which the
// controller restarts and recovers from a live peer's blockchain, and `byz`
// takes a `mode` (silent | lazy | equivocate | selective-silent |
// stale-view | bogus-reply).
//
// Examples:
//   drop(p=0.05,cat=REPLY)
//   delay(p=0.3,min=20,max=120,src=ctrl1)
//   dup(cat=GROUP-UPDATE,copies=2)
//   corrupt(p=0.1,cat=intra-pbft)
//   partition(a=ctrl2,b=*,from=1000,until=3000)
//   crash(node=ctrl1,at=500,down=2000)
//   byz(node=ctrl3,mode=stale-view,at=0)

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "curb/sim/time.hpp"

namespace curb::fault {

/// Spec-string parse failure; the message names the offending clause/key.
struct SpecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What a selector may match: any node, any controller, any switch.
enum class SelectorKind : std::uint8_t { kAny, kController, kSwitch };

/// Endpoint selector: "*" (any node), "ctrl" (any controller), "sw" (any
/// switch), "ctrl<N>" / "sw<N>" (one node by per-kind ordinal).
struct NodeSelector {
  SelectorKind kind = SelectorKind::kAny;
  std::optional<std::uint32_t> ordinal;

  [[nodiscard]] bool matches(SelectorKind node_kind, std::uint32_t node_ordinal) const {
    if (kind == SelectorKind::kAny) return true;
    if (node_kind != kind) return false;
    return !ordinal || *ordinal == node_ordinal;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static NodeSelector parse(std::string_view text);  // throws SpecError
};

/// Half-open activity window [from, until) on the virtual clock; a missing
/// `until` means "for the rest of the run".
struct TimeWindow {
  sim::SimTime from = sim::SimTime::zero();
  std::optional<sim::SimTime> until;

  [[nodiscard]] bool contains(sim::SimTime t) const {
    return t >= from && (!until || t < *until);
  }
};

/// Message-layer fault classes.
enum class FaultKind : std::uint8_t { kDrop, kDelay, kDuplicate, kCorrupt, kPartition };

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartition: return "partition";
  }
  return "?";
}

/// One message-layer fault clause.
struct LinkFaultClause {
  FaultKind kind = FaultKind::kDrop;
  double probability = 1.0;
  /// Bus category filter; "*" matches every category.
  std::string category = "*";
  /// drop/delay/dup/corrupt: directed (src -> dst). partition: the two
  /// sides, matched in both directions.
  NodeSelector src;
  NodeSelector dst;
  TimeWindow window;
  /// delay: jitter bounds; dup: delivery offset bounds for the extra copies.
  sim::SimTime delay_min = sim::SimTime::zero();
  sim::SimTime delay_max = sim::SimTime::millis(50);
  /// dup: extra copies per matched message.
  std::size_t copies = 1;

  [[nodiscard]] bool matches_category(const std::string& cat) const {
    return category == "*" || category == cat;
  }
};

/// Byzantine behaviour a `byz` clause switches a controller into.
enum class ByzMode : std::uint8_t {
  kSilent,
  kLazy,
  kEquivocate,
  kSelectiveSilent,
  kStaleView,
  kBogusReply,
};

[[nodiscard]] constexpr std::string_view to_string(ByzMode m) {
  switch (m) {
    case ByzMode::kSilent: return "silent";
    case ByzMode::kLazy: return "lazy";
    case ByzMode::kEquivocate: return "equivocate";
    case ByzMode::kSelectiveSilent: return "selective-silent";
    case ByzMode::kStaleView: return "stale-view";
    case ByzMode::kBogusReply: return "bogus-reply";
  }
  return "?";
}

/// One controller-level event: a crash (+ scheduled restart) or a switch
/// into a byzantine behaviour.
struct NodeEventClause {
  enum class Kind : std::uint8_t { kCrash, kByzantine };
  Kind kind = Kind::kCrash;
  std::uint32_t controller = 0;
  sim::SimTime at = sim::SimTime::zero();
  /// kCrash: downtime before recovery; nullopt = never restarts.
  std::optional<sim::SimTime> down = sim::SimTime::millis(1000);
  /// kByzantine only.
  ByzMode mode = ByzMode::kSilent;
};

/// A parsed, reproducible fault schedule.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<LinkFaultClause> link_faults;
  std::vector<NodeEventClause> node_events;

  [[nodiscard]] bool empty() const {
    return link_faults.empty() && node_events.empty();
  }
  /// Normalized spec string: parse(canonical(), seed) round-trips.
  [[nodiscard]] std::string canonical() const;
  /// Parse a spec string. Throws SpecError on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec, std::uint64_t seed = 1);
};

}  // namespace curb::fault
