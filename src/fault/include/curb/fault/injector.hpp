#pragma once

// Message-layer fault decision engine. The injector owns the plan's single
// RNG stream: because the discrete-event simulation presents messages in a
// deterministic order, consuming draws in clause order per message keeps the
// entire fault schedule a pure function of (seed, spec).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "curb/fault/spec.hpp"
#include "curb/net/topology.hpp"
#include "curb/sim/rng.hpp"
#include "curb/sim/time.hpp"

namespace curb::fault {

/// The combined fate of one message after every matching clause fired.
struct LinkFaultDecision {
  bool drop = false;
  /// Caller must corrupt the payload bytes (the injector is payload-
  /// agnostic); draw from rng() to stay on the deterministic stream.
  bool corrupt = false;
  sim::SimTime extra_delay = sim::SimTime::zero();
  /// Delivery offsets (relative to the original delivery) for extra copies.
  std::vector<sim::SimTime> duplicates;
  /// Fault kinds that fired on this message, in clause order (observability).
  std::vector<FaultKind> fired;

  [[nodiscard]] bool any() const { return !fired.empty(); }
};

class FaultInjector {
 public:
  /// Resolves topology nodes to (kind, per-kind ordinal) once; controller
  /// ordinal k maps to the k-th NodeKind::kController node, matching
  /// CurbNetwork's controller ids (same for switches).
  FaultInjector(FaultPlan plan, const net::Topology& topology);

  /// Decide the fate of one message about to be sent at virtual time `now`.
  [[nodiscard]] LinkFaultDecision on_message(net::NodeId from, net::NodeId to,
                                             const std::string& category,
                                             sim::SimTime now);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// The plan's RNG stream; callers use it for payload corruption so every
  /// draw stays on the one deterministic stream.
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  /// Messages affected so far, per fault kind.
  [[nodiscard]] const std::map<FaultKind, std::uint64_t>& fired_counts() const {
    return fired_counts_;
  }

 private:
  struct NodeRef {
    SelectorKind kind = SelectorKind::kAny;  // kAny: host or unknown node
    std::uint32_t ordinal = 0;
  };
  [[nodiscard]] NodeRef resolve(net::NodeId node) const;

  FaultPlan plan_;
  sim::Rng rng_;
  std::vector<NodeRef> node_refs_;  // indexed by NodeId::value
  std::map<FaultKind, std::uint64_t> fired_counts_;
};

}  // namespace curb::fault
