#include "curb/fault/injector.hpp"

namespace curb::fault {

FaultInjector::FaultInjector(FaultPlan plan, const net::Topology& topology)
    : plan_{std::move(plan)}, rng_{plan_.seed ^ 0xFA017C0DEULL} {
  node_refs_.resize(topology.node_count());
  std::uint32_t ctrl_ordinal = 0;
  for (const net::NodeId node : topology.nodes_of_kind(net::NodeKind::kController)) {
    node_refs_[node.value] = {SelectorKind::kController, ctrl_ordinal++};
  }
  std::uint32_t sw_ordinal = 0;
  for (const net::NodeId node : topology.nodes_of_kind(net::NodeKind::kSwitch)) {
    node_refs_[node.value] = {SelectorKind::kSwitch, sw_ordinal++};
  }
}

FaultInjector::NodeRef FaultInjector::resolve(net::NodeId node) const {
  if (node.value >= node_refs_.size()) return {};
  return node_refs_[node.value];
}

LinkFaultDecision FaultInjector::on_message(net::NodeId from, net::NodeId to,
                                            const std::string& category,
                                            sim::SimTime now) {
  LinkFaultDecision decision;
  const NodeRef src = resolve(from);
  const NodeRef dst = resolve(to);

  for (const LinkFaultClause& clause : plan_.link_faults) {
    if (!clause.window.contains(now)) continue;

    if (clause.kind == FaultKind::kPartition) {
      // Bidirectional: the partition severs (a -> b) and (b -> a).
      const bool forward = clause.src.matches(src.kind, src.ordinal) &&
                           clause.dst.matches(dst.kind, dst.ordinal);
      const bool backward = clause.src.matches(dst.kind, dst.ordinal) &&
                            clause.dst.matches(src.kind, src.ordinal);
      if (!forward && !backward) continue;
      decision.drop = true;
      decision.fired.push_back(FaultKind::kPartition);
      ++fired_counts_[FaultKind::kPartition];
      continue;
    }

    if (!clause.matches_category(category)) continue;
    if (!clause.src.matches(src.kind, src.ordinal)) continue;
    if (!clause.dst.matches(dst.kind, dst.ordinal)) continue;
    // One probability draw per matched clause keeps the stream aligned with
    // the deterministic message order regardless of the outcome.
    if (clause.probability < 1.0 && !rng_.next_bool(clause.probability)) continue;

    decision.fired.push_back(clause.kind);
    ++fired_counts_[clause.kind];
    switch (clause.kind) {
      case FaultKind::kDrop:
        decision.drop = true;
        break;
      case FaultKind::kDelay:
        decision.extra_delay += sim::SimTime::micros(
            rng_.next_in(clause.delay_min.as_micros(), clause.delay_max.as_micros()));
        break;
      case FaultKind::kDuplicate:
        for (std::size_t i = 0; i < clause.copies; ++i) {
          decision.duplicates.push_back(sim::SimTime::micros(
              rng_.next_in(clause.delay_min.as_micros(), clause.delay_max.as_micros())));
        }
        break;
      case FaultKind::kCorrupt:
        decision.corrupt = true;
        break;
      case FaultKind::kPartition:
        break;  // handled above
    }
  }
  return decision;
}

}  // namespace curb::fault
