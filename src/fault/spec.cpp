#include "curb/fault/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>

namespace curb::fault {

namespace {

std::string strip(std::string_view text) {
  std::string out;
  for (const char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

double parse_number(std::string_view text, const std::string& context) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw SpecError{"fault spec: bad number '" + std::string{text} + "' in " + context};
  }
  return value;
}

std::uint32_t parse_ordinal(std::string_view text, const std::string& context) {
  std::uint32_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw SpecError{"fault spec: bad ordinal '" + std::string{text} + "' in " + context};
  }
  return value;
}

sim::SimTime millis_of(double ms) { return sim::SimTime::from_seconds_f(ms / 1000.0); }

/// Fixed-point millisecond rendering without locale or trailing-zero noise.
std::string format_ms(sim::SimTime t) {
  const std::int64_t us = t.as_micros();
  char buf[48];
  if (us % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(us) / 1000.0);
  }
  return buf;
}

std::string format_probability(double p) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", p);
  return buf;
}

using KvList = std::vector<std::pair<std::string, std::string>>;

KvList parse_kv_list(std::string_view body, const std::string& context) {
  KvList out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string_view::npos) comma = body.size();
    const std::string_view item = body.substr(pos, comma - pos);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        throw SpecError{"fault spec: expected key=value, got '" + std::string{item} +
                        "' in " + context};
      }
      out.emplace_back(std::string{item.substr(0, eq)}, std::string{item.substr(eq + 1)});
    }
    pos = comma + 1;
  }
  return out;
}

/// Pull the known keys out of a kv list, rejecting unknown ones.
class KvReader {
 public:
  KvReader(KvList kvs, std::string context)
      : kvs_{std::move(kvs)}, context_{std::move(context)} {}

  std::optional<std::string> take(const std::string& key) {
    for (auto it = kvs_.begin(); it != kvs_.end(); ++it) {
      if (it->first == key) {
        std::string value = std::move(it->second);
        kvs_.erase(it);
        return value;
      }
    }
    return std::nullopt;
  }

  void finish() const {
    if (kvs_.empty()) return;
    throw SpecError{"fault spec: unknown key '" + kvs_.front().first + "' in " + context_};
  }

  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  KvList kvs_;
  std::string context_;
};

TimeWindow read_window(KvReader& kv) {
  TimeWindow window;
  if (const auto from = kv.take("from")) {
    window.from = millis_of(parse_number(*from, kv.context()));
  }
  if (const auto until = kv.take("until")) {
    window.until = millis_of(parse_number(*until, kv.context()));
  }
  if (window.until && *window.until <= window.from) {
    throw SpecError{"fault spec: empty window (until <= from) in " + kv.context()};
  }
  return window;
}

double read_probability(KvReader& kv) {
  const auto p = kv.take("p");
  if (!p) return 1.0;
  const double value = parse_number(*p, kv.context());
  if (value < 0.0 || value > 1.0) {
    throw SpecError{"fault spec: p must be in [0, 1] in " + kv.context()};
  }
  return value;
}

ByzMode parse_mode(const std::string& text, const std::string& context) {
  static const std::map<std::string, ByzMode> kModes{
      {"silent", ByzMode::kSilent},
      {"lazy", ByzMode::kLazy},
      {"equivocate", ByzMode::kEquivocate},
      {"selective-silent", ByzMode::kSelectiveSilent},
      {"stale-view", ByzMode::kStaleView},
      {"bogus-reply", ByzMode::kBogusReply},
  };
  const auto it = kModes.find(text);
  if (it == kModes.end()) {
    throw SpecError{"fault spec: unknown byz mode '" + text + "' in " + context};
  }
  return it->second;
}

std::uint32_t read_controller(KvReader& kv) {
  const auto node = kv.take("node");
  if (!node) throw SpecError{"fault spec: missing node= in " + kv.context()};
  const NodeSelector sel = NodeSelector::parse(*node);
  if (sel.kind != SelectorKind::kController || !sel.ordinal) {
    throw SpecError{"fault spec: node= must name one controller (ctrl<N>) in " +
                    kv.context()};
  }
  return *sel.ordinal;
}

}  // namespace

NodeSelector NodeSelector::parse(std::string_view text) {
  NodeSelector sel;
  if (text == "*" || text.empty()) return sel;
  if (text.starts_with("ctrl")) {
    sel.kind = SelectorKind::kController;
    text.remove_prefix(4);
  } else if (text.starts_with("sw")) {
    sel.kind = SelectorKind::kSwitch;
    text.remove_prefix(2);
  } else {
    throw SpecError{"fault spec: bad selector '" + std::string{text} +
                    "' (want *, ctrl[N], or sw[N])"};
  }
  if (!text.empty()) sel.ordinal = parse_ordinal(text, "selector");
  return sel;
}

std::string NodeSelector::to_string() const {
  std::string out;
  switch (kind) {
    case SelectorKind::kAny: return "*";
    case SelectorKind::kController: out = "ctrl"; break;
    case SelectorKind::kSwitch: out = "sw"; break;
  }
  if (ordinal) out += std::to_string(*ordinal);
  return out;
}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  const std::string compact = strip(spec);
  std::size_t pos = 0;
  while (pos < compact.size()) {
    std::size_t semi = compact.find(';', pos);
    if (semi == std::string::npos) semi = compact.size();
    const std::string_view clause{compact.data() + pos, semi - pos};
    pos = semi + 1;
    if (clause.empty()) continue;

    const std::size_t open = clause.find('(');
    if (open == std::string_view::npos || clause.back() != ')') {
      throw SpecError{"fault spec: expected kind(...), got '" + std::string{clause} + "'"};
    }
    const std::string kind{clause.substr(0, open)};
    const std::string_view body = clause.substr(open + 1, clause.size() - open - 2);
    KvReader kv{parse_kv_list(body, kind), kind};

    if (kind == "drop" || kind == "delay" || kind == "dup" || kind == "corrupt") {
      LinkFaultClause link;
      link.kind = kind == "drop"      ? FaultKind::kDrop
                  : kind == "delay"   ? FaultKind::kDelay
                  : kind == "dup"     ? FaultKind::kDuplicate
                                      : FaultKind::kCorrupt;
      link.probability = read_probability(kv);
      if (const auto cat = kv.take("cat")) link.category = *cat;
      if (const auto src = kv.take("src")) link.src = NodeSelector::parse(*src);
      if (const auto dst = kv.take("dst")) link.dst = NodeSelector::parse(*dst);
      link.window = read_window(kv);
      if (link.kind == FaultKind::kDelay || link.kind == FaultKind::kDuplicate) {
        if (link.kind == FaultKind::kDuplicate) {
          // Extra copies trail the original by a small offset by default.
          link.delay_min = sim::SimTime::zero();
          link.delay_max = sim::SimTime::millis(10);
        }
        if (const auto lo = kv.take("min")) {
          link.delay_min = millis_of(parse_number(*lo, kind));
        }
        if (const auto hi = kv.take("max")) {
          link.delay_max = millis_of(parse_number(*hi, kind));
        }
        if (link.delay_max < link.delay_min) {
          throw SpecError{"fault spec: max < min in " + kind};
        }
      }
      if (link.kind == FaultKind::kDuplicate) {
        if (const auto copies = kv.take("copies")) {
          link.copies = static_cast<std::size_t>(parse_ordinal(*copies, kind));
          if (link.copies == 0) throw SpecError{"fault spec: copies must be >= 1 in dup"};
        }
      }
      kv.finish();
      plan.link_faults.push_back(std::move(link));
    } else if (kind == "partition") {
      LinkFaultClause link;
      link.kind = FaultKind::kPartition;
      if (const auto a = kv.take("a")) link.src = NodeSelector::parse(*a);
      if (const auto b = kv.take("b")) link.dst = NodeSelector::parse(*b);
      link.window = read_window(kv);
      kv.finish();
      if (link.src.kind == SelectorKind::kAny && link.dst.kind == SelectorKind::kAny) {
        throw SpecError{"fault spec: partition(a=*,b=*) would sever every link"};
      }
      plan.link_faults.push_back(std::move(link));
    } else if (kind == "crash") {
      NodeEventClause ev;
      ev.kind = NodeEventClause::Kind::kCrash;
      ev.controller = read_controller(kv);
      if (const auto at = kv.take("at")) ev.at = millis_of(parse_number(*at, kind));
      if (const auto down = kv.take("down")) {
        const double ms = parse_number(*down, kind);
        if (ms <= 0.0) {
          ev.down.reset();  // down=0: never restarts
        } else {
          ev.down = millis_of(ms);
        }
      }
      kv.finish();
      plan.node_events.push_back(ev);
    } else if (kind == "byz") {
      NodeEventClause ev;
      ev.kind = NodeEventClause::Kind::kByzantine;
      ev.controller = read_controller(kv);
      const auto mode = kv.take("mode");
      if (!mode) throw SpecError{"fault spec: missing mode= in byz"};
      ev.mode = parse_mode(*mode, kind);
      if (const auto at = kv.take("at")) ev.at = millis_of(parse_number(*at, kind));
      ev.down.reset();
      kv.finish();
      plan.node_events.push_back(ev);
    } else {
      throw SpecError{"fault spec: unknown fault kind '" + kind + "'"};
    }
  }
  return plan;
}

std::string FaultPlan::canonical() const {
  std::string out;
  const auto append = [&out](const std::string& clause) {
    if (!out.empty()) out += ';';
    out += clause;
  };
  for (const LinkFaultClause& link : link_faults) {
    std::string clause{to_string(link.kind)};
    clause += '(';
    std::vector<std::string> kvs;
    if (link.kind == FaultKind::kPartition) {
      kvs.push_back("a=" + link.src.to_string());
      kvs.push_back("b=" + link.dst.to_string());
    } else {
      if (link.probability != 1.0) kvs.push_back("p=" + format_probability(link.probability));
      if (link.category != "*") kvs.push_back("cat=" + link.category);
      if (link.src.kind != SelectorKind::kAny) kvs.push_back("src=" + link.src.to_string());
      if (link.dst.kind != SelectorKind::kAny) kvs.push_back("dst=" + link.dst.to_string());
      if (link.kind == FaultKind::kDelay || link.kind == FaultKind::kDuplicate) {
        kvs.push_back("min=" + format_ms(link.delay_min));
        kvs.push_back("max=" + format_ms(link.delay_max));
      }
      if (link.kind == FaultKind::kDuplicate) {
        kvs.push_back("copies=" + std::to_string(link.copies));
      }
    }
    if (link.window.from != sim::SimTime::zero()) {
      kvs.push_back("from=" + format_ms(link.window.from));
    }
    if (link.window.until) kvs.push_back("until=" + format_ms(*link.window.until));
    for (std::size_t i = 0; i < kvs.size(); ++i) {
      if (i > 0) clause += ',';
      clause += kvs[i];
    }
    clause += ')';
    append(clause);
  }
  for (const NodeEventClause& ev : node_events) {
    std::string clause;
    if (ev.kind == NodeEventClause::Kind::kCrash) {
      clause = "crash(node=ctrl" + std::to_string(ev.controller);
      if (ev.at != sim::SimTime::zero()) clause += ",at=" + format_ms(ev.at);
      clause += ev.down ? ",down=" + format_ms(*ev.down) : ",down=0";
      clause += ')';
    } else {
      clause = "byz(node=ctrl" + std::to_string(ev.controller) +
               ",mode=" + std::string{to_string(ev.mode)};
      if (ev.at != sim::SimTime::zero()) clause += ",at=" + format_ms(ev.at);
      clause += ')';
    }
    append(clause);
  }
  return out;
}

}  // namespace curb::fault
