#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "curb/opt/milp.hpp"

namespace curb::opt {

/// Instance of the paper's Controller Assignment Problem (CAP): which
/// controllers govern which switches. Delays are in milliseconds (the unit
/// is irrelevant to the solver; thresholds must match).
struct CapInstance {
  std::size_t num_switches = 0;
  std::size_t num_controllers = 0;

  /// B_i: minimum controller-group size per switch (3f+1 in the paper).
  std::vector<int> group_size;
  /// Q_i: message load each switch generates per unit time.
  std::vector<double> switch_load;
  /// C_j: maximum aggregate load a controller can absorb.
  std::vector<double> controller_capacity;
  /// d_ij: one-way controller-to-switch delay, indexed [switch][controller].
  std::vector<std::vector<double>> cs_delay;
  /// d_jj': one-way controller-to-controller delay, indexed [j][j'].
  std::vector<std::vector<double>> cc_delay;

  static constexpr double kNoLimit = std::numeric_limits<double>::infinity();
  /// D_c,s — constraint [C1.3]/[C2.3]; kNoLimit disables.
  double max_cs_delay = kNoLimit;
  /// D_c,c — constraint [C1.4]/[C2.4]; kNoLimit disables (the paper's
  /// experiments run with it disabled by default because it is quadratic).
  double max_cc_delay = kNoLimit;

  /// [C2.5]: controllers flagged byzantine are excluded from the network.
  std::vector<bool> byzantine;
  /// [C2.6]: per-switch fixed leader (keeps leader links stable during
  /// reassignment). Empty or nullopt = unconstrained.
  std::vector<std::optional<int>> fixed_leader;

  /// Uniform-instance convenience constructor.
  [[nodiscard]] static CapInstance uniform(std::size_t switches, std::size_t controllers,
                                           int group_size, double switch_load,
                                           double controller_capacity);
  /// Throws std::invalid_argument when dimensions are inconsistent.
  void validate() const;
};

/// A concrete switch->controller-group assignment (the A_ij matrix).
class Assignment {
 public:
  Assignment() = default;
  Assignment(std::size_t switches, std::size_t controllers)
      : assign_(switches, std::vector<bool>(controllers, false)) {}

  [[nodiscard]] std::size_t num_switches() const { return assign_.size(); }
  [[nodiscard]] std::size_t num_controllers() const {
    return assign_.empty() ? 0 : assign_[0].size();
  }
  [[nodiscard]] bool assigned(std::size_t sw, std::size_t ctl) const {
    return assign_[sw][ctl];
  }
  void set(std::size_t sw, std::size_t ctl, bool value) { assign_[sw][ctl] = value; }

  /// Controllers in switch `sw`'s group, ascending.
  [[nodiscard]] std::vector<std::size_t> group_of(std::size_t sw) const;
  /// Switches governed by controller `ctl`, ascending.
  [[nodiscard]] std::vector<std::size_t> switches_of(std::size_t ctl) const;
  /// Number of controllers with at least one switch.
  [[nodiscard]] std::size_t controllers_used() const;
  /// Total number of switch-controller links.
  [[nodiscard]] std::size_t total_links() const;
  [[nodiscard]] bool controller_used(std::size_t ctl) const;

  /// Percentage of dynamic links between two assignments, the paper's PDL:
  ///   (removed + added) / (links_before + added).
  [[nodiscard]] static double pdl(const Assignment& before, const Assignment& after);

  /// True when `this` satisfies all constraints of `instance`.
  [[nodiscard]] bool feasible_for(const CapInstance& instance) const;

  bool operator==(const Assignment&) const = default;

 private:
  std::vector<std::vector<bool>> assign_;
};

/// Which OP() objective to use for (re)assignment — paper Section III-C:
///  - kTrivial (TCR):       minimize controller usage [O2].
///  - kLeastMovement (LCR): minimize usage + changed links [O3]; requires
///    a previous assignment.
enum class CapObjective { kTrivial, kLeastMovement };

struct CapSolveStats {
  /// Which backend produced the result ("dense", "sparse", "heuristic").
  std::string backend = "dense";
  std::size_t milp_nodes = 0;
  std::size_t lp_iterations = 0;
  /// B&B nodes whose LP relaxation resumed from the cached parent basis
  /// (sparse backend only).
  std::size_t lp_warm_hits = 0;
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  double wall_time_ms = 0.0;
  bool used_greedy_fallback = false;
  /// True when branch-and-bound ran to completion within its limits, so the
  /// result is a proven optimum (or a proven infeasibility). False for the
  /// heuristic backend and for limit-truncated exact searches, whose answer
  /// is only the best known. A fallback result can still be proven: the
  /// search exhausting the tree without beating the warm incumbent is
  /// exactly the proof that the incumbent was optimal.
  bool proven = false;
};

struct CapResult {
  bool feasible = false;
  Assignment assignment;
  double objective = 0.0;
  CapSolveStats stats;
};

/// Objective value an assignment scores under the paper's OP() objectives:
/// controllers used [O2], plus — for kLeastMovement — the number of links
/// changed versus `previous` [O3].
[[nodiscard]] double cap_objective_value(const Assignment& assignment,
                                         CapObjective objective,
                                         const Assignment* previous = nullptr);

/// Exact OP() solver: builds the MILP (with the standard linearisations of
/// the quadratic C2C constraint and of the LCR |A - a| objective) and solves
/// it by branch-and-bound, warm-started with the greedy heuristic.
/// `previous` is required for CapObjective::kLeastMovement.
///
/// `seed_incumbent_from_previous` additionally repairs `previous` into a
/// warm incumbent for kTrivial solves (reassignment is near-incremental by
/// construction, so the repair usually dominates the greedy). Off by
/// default: the incumbent influences which of several optimal assignments
/// branch-and-bound returns, and the dense baseline path must stay
/// byte-for-byte reproducible.
[[nodiscard]] CapResult solve_cap(const CapInstance& instance,
                                  CapObjective objective = CapObjective::kTrivial,
                                  const Assignment* previous = nullptr,
                                  const MilpOptions& milp_options = {},
                                  bool seed_incumbent_from_previous = false);

/// Greedy construction heuristic (also the warm start and an ablation
/// baseline): repeatedly pick the controller that covers the most unmet
/// demand. May fail on feasible instances; never claims false feasibility.
[[nodiscard]] std::optional<Assignment> greedy_assign(const CapInstance& instance);

/// Repair heuristic for reassignment: keep the previous assignment where
/// still legal, strip byzantine controllers, top up groups below B_i.
[[nodiscard]] std::optional<Assignment> repair_assign(const CapInstance& instance,
                                                      const Assignment& previous);

}  // namespace curb::opt
