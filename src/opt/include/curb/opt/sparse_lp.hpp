#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "curb/opt/lp.hpp"

namespace curb::opt {

/// Bounded-variable revised simplex over sparse columns.
///
/// The dense tableau in lp.cpp carries m x (n + 2m) doubles and pays
/// O(m * (n + 2m)) per pivot — fine at paper scale (Internet2 builds a
/// 100 x 760 tableau) but hopeless at 1000 switches x 100 controllers,
/// where the CAP MILP has ~100k columns and the tableau alone would need
/// gigabytes. This solver keeps the constraint matrix as sparse columns,
/// maintains an explicit m x m basis inverse updated in product form, and
/// pays O(m^2 + nnz) per iteration independent of the column count.
///
/// The object is persistent so branch-and-bound can reuse it across nodes:
/// the constraint matrix is factored once at construction, and each solve()
/// re-reads the variable bounds from the problem (the only thing B&B
/// mutates). Two warm paths, both counted in warm_hits():
///  - the cached basis is still primal-feasible under the new bounds
///    (typical when a child fixes a variable already at that bound): phase 1
///    is skipped and phase 2 resumes directly;
///  - the basis is primal-infeasible but still dual-feasible (the usual
///    case after branching, since bounds moved but costs did not): a
///    bounded-variable dual simplex repairs primal feasibility in a few
///    pivots — or proves the node infeasible outright — without ever
///    re-running phase 1.
///
/// Anti-cycling: Dantzig pricing normally; after a stretch of non-improving
/// (degenerate) iterations the pricing switches to Bland's least-index rule,
/// which provably terminates, until the objective moves again.
class SparseLpSolver {
 public:
  /// The problem reference must outlive the solver. Constraint rows must not
  /// change after construction; bounds may (set_bounds) between solves.
  explicit SparseLpSolver(const LpProblem& problem);

  [[nodiscard]] LpSolution solve(std::size_t max_iterations = 50'000);

  /// Solves that resumed from the cached basis without a phase-1 pass.
  [[nodiscard]] std::size_t warm_hits() const { return warm_hits_; }
  /// Drop the cached basis; the next solve cold-starts.
  void invalidate_basis() { has_basis_ = false; }

 private:
  enum class Status : std::uint8_t { kBasic, kAtLower, kAtUpper };

  struct Entry {
    std::uint32_t row;
    double value;
  };

  enum class DualRepair : std::uint8_t { kRepaired, kInfeasible, kGiveUp };

  void load_bounds();
  void cold_start();
  [[nodiscard]] bool try_warm_start();
  [[nodiscard]] DualRepair dual_repair(const std::vector<double>& cost,
                                       std::size_t max_iterations);
  [[nodiscard]] double bound_value(std::size_t j) const;
  /// Row r of binv_ still maps the basis columns to e_r (within 1e-6) —
  /// required before trusting a dual-simplex infeasibility proof.
  [[nodiscard]] bool binv_row_accurate(std::size_t r) const;
  /// The current (xb_, nonbasic bounds) point satisfies every row — required
  /// before trusting an optimum reached through a warm-started chain.
  [[nodiscard]] bool solution_consistent() const;
  void compute_basic_values();
  [[nodiscard]] double column_dot(std::size_t j, const std::vector<double>& y) const;
  void direction(std::size_t j, std::vector<double>& w) const;
  [[nodiscard]] double objective_of(const std::vector<double>& cost) const;
  /// Runs simplex iterations for `cost`. Returns false on iteration limit.
  bool iterate(const std::vector<double>& cost, std::size_t max_iterations);
  [[nodiscard]] int choose_entering(const std::vector<double>& cost, bool bland) const;
  LpSolution finish(LpStatus status, bool keep_basis);

  const LpProblem& problem_;
  std::size_t num_rows_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t num_cols_ = 0;  // structural + slack + artificial
  std::vector<std::vector<Entry>> cols_;
  std::vector<double> rhs_;
  std::vector<double> art_sign_;  // artificial column coefficient per row

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Status> status_;
  std::vector<std::size_t> basis_;
  std::vector<double> binv_;  // row-major m x m basis inverse
  std::vector<double> xb_;    // basic variable values by row
  bool has_basis_ = false;

  std::size_t iterations_ = 0;
  bool unbounded_ = false;
  std::size_t warm_hits_ = 0;
};

/// One-shot convenience mirroring solve_lp(): same statuses, same
/// tolerances, sparse internals. Exact-solver differential tests assert the
/// two agree on every instance.
[[nodiscard]] LpSolution solve_lp_sparse(const LpProblem& problem,
                                         std::size_t max_iterations = 50'000);

}  // namespace curb::opt
