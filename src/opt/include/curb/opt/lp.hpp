#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace curb::opt {

/// Linear program in the form
///   minimize  c^T x
///   subject to  a_k^T x (<=|>=|=) b_k          for each constraint k
///               lb_j <= x_j <= ub_j            for each variable j
///
/// This (plus the branch-and-bound layer on top) replaces the Gurobi solver
/// the paper used for its OP() controller-assignment programs.
class LpProblem {
 public:
  enum class Sense { kLe, kGe, kEq };

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Add a variable; returns its index.
  int add_variable(double cost, double lower = 0.0, double upper = kInf);
  /// Add a constraint over (variable, coefficient) terms.
  void add_constraint(std::vector<std::pair<int, double>> terms, Sense sense, double rhs);

  [[nodiscard]] std::size_t num_variables() const { return cost_.size(); }
  [[nodiscard]] std::size_t num_constraints() const { return rows_.size(); }

  [[nodiscard]] double cost(int j) const { return cost_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] double lower(int j) const { return lower_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] double upper(int j) const { return upper_[static_cast<std::size_t>(j)]; }
  void set_bounds(int j, double lower, double upper);

  struct Row {
    std::vector<std::pair<int, double>> terms;
    Sense sense;
    double rhs;
  };
  [[nodiscard]] const Row& row(std::size_t k) const { return rows_[k]; }

 private:
  std::vector<double> cost_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Row> rows_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] constexpr const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t iterations = 0;
};

/// Solve with a two-phase primal simplex supporting variable bounds
/// (nonbasic variables rest at either bound; the ratio test allows bound
/// flips). Dense tableau; adequate for the paper-scale CAP instances.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  std::size_t max_iterations = 50'000);

}  // namespace curb::opt
