#pragma once

#include <cstddef>
#include <optional>

#include "curb/opt/cap.hpp"

namespace curb::opt {

/// Knobs for the partition heuristic.
struct HeuristicOptions {
  /// After a feasible partition is found, try to close lightly-used
  /// controllers by re-homing their switches onto the remaining open set
  /// (applied only when it improves the objective). This is what pulls the
  /// heuristic close to the exact optimum on TCR instances.
  bool close_pass = true;
  /// Safety valve for the open loop; 0 = open as many as it takes.
  std::size_t max_open_iterations = 0;
};

/// LazyCtrl-style partition heuristic for the CAP. Instead of branching, it
///  (1) ranks controllers by attraction — how many switches count them among
///      their B_i nearest eligible controllers,
///  (2) opens a minimal prefix and partitions every switch onto its B_i
///      nearest open eligible controllers, capacity permitting, opening the
///      next-ranked controller whenever the partition gets stuck, and
///  (3) optionally runs a closing pass that evicts lightly-used controllers
///      whose switches can be re-homed at an objective improvement.
///
/// For CapObjective::kLeastMovement, `previous` links that are still legal
/// are kept first and only the shortfall is partitioned, so reassignment is
/// near-incremental. Runs in O(open_iterations * S * C) — milliseconds at
/// 1000 switches x 100 controllers, where exact branch-and-bound is not an
/// option.
///
/// May return nullopt on feasible instances (like greedy_assign); it never
/// returns an infeasible assignment. The optimality gap versus the exact
/// solver is reported by solver.hpp's optimality_gap() on instances small
/// enough to solve exactly.
[[nodiscard]] std::optional<Assignment> partition_assign(
    const CapInstance& instance, CapObjective objective = CapObjective::kTrivial,
    const Assignment* previous = nullptr, const HeuristicOptions& options = {});

}  // namespace curb::opt
