#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "curb/opt/cap.hpp"
#include "curb/opt/heuristic.hpp"

namespace curb::opt {

/// Interchangeable CAP solver backends (DESIGN.md §12).
enum class CapSolverBackend : std::uint8_t {
  /// Exact branch-and-bound over the dense-tableau simplex — the original
  /// paper-scale path and the byte-stable default for simulations.
  kDense,
  /// Exact branch-and-bound over the sparse revised simplex with a warm
  /// basis shared across nodes and incumbent seeding from the previous
  /// assignment. Objective-identical to kDense, scales far past Internet2.
  kSparse,
  /// Partition-based grouping heuristic (LazyCtrl-style). No optimality
  /// proof; solves 1000 switches x 100 controllers in milliseconds.
  kHeuristic,
};

[[nodiscard]] constexpr const char* to_string(CapSolverBackend b) {
  switch (b) {
    case CapSolverBackend::kDense: return "dense";
    case CapSolverBackend::kSparse: return "sparse";
    case CapSolverBackend::kHeuristic: return "heuristic";
  }
  return "?";
}

/// Parses "dense" | "sparse" | "heuristic" (as accepted by curb-sim
/// --solver and the CURB_SOLVER env var); nullopt on anything else.
[[nodiscard]] std::optional<CapSolverBackend> parse_cap_solver_backend(
    std::string_view name);

struct CapSolverOptions {
  /// Branch-and-bound limits for the exact backends. lp_backend is
  /// overridden per concrete solver; leave it defaulted.
  MilpOptions milp;
  /// Heuristic backend knobs.
  HeuristicOptions heuristic;
  /// Cache the last feasible assignment inside the solver and use it as the
  /// warm start when the caller passes no `previous`. Lets a long-lived
  /// solver make successive reassignments near-incremental without the
  /// caller threading state. The dense backend ignores the cache for
  /// kTrivial solves (incumbent choice would perturb the byte-stable
  /// baseline path).
  bool reuse_last_assignment = true;
};

/// Common interface over the interchangeable backends. Stateful on purpose:
/// a Curb leader keeps one solver alive across OP() invocations so warm
/// starts compound.
class CapSolver {
 public:
  virtual ~CapSolver() = default;

  [[nodiscard]] virtual CapSolverBackend backend() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(backend()); }

  /// Solve `instance` under `objective`. When `previous` is null and an
  /// earlier solve succeeded, the cached assignment stands in (see
  /// CapSolverOptions::reuse_last_assignment).
  [[nodiscard]] CapResult solve(const CapInstance& instance,
                                CapObjective objective = CapObjective::kTrivial,
                                const Assignment* previous = nullptr);

  /// Drop the cached warm-start assignment.
  void reset() { last_.reset(); }
  [[nodiscard]] const std::optional<Assignment>& last_assignment() const {
    return last_;
  }

 protected:
  explicit CapSolver(CapSolverOptions options) : options_{std::move(options)} {}
  [[nodiscard]] virtual CapResult do_solve(const CapInstance& instance,
                                           CapObjective objective,
                                           const Assignment* previous) = 0;

  CapSolverOptions options_;

 private:
  std::optional<Assignment> last_;
};

[[nodiscard]] std::unique_ptr<CapSolver> make_cap_solver(
    CapSolverBackend backend, CapSolverOptions options = {});

/// One-shot convenience: construct the backend, solve, discard.
[[nodiscard]] CapResult solve_cap_with(CapSolverBackend backend,
                                       const CapInstance& instance,
                                       CapObjective objective = CapObjective::kTrivial,
                                       const Assignment* previous = nullptr,
                                       const MilpOptions& milp_options = {});

/// Optimality gap of `achieved_objective` versus the exact optimum of
/// `instance` (solved with the sparse exact backend): (achieved - opt) /
/// max(opt, 1). Returns nullopt when the exact solve fails to prove an
/// optimum within `milp_options` limits. Intended for instances small
/// enough to solve exactly — this is how the heuristic backend's quality is
/// audited in tests and benches.
[[nodiscard]] std::optional<double> optimality_gap(
    const CapInstance& instance, CapObjective objective, const Assignment* previous,
    double achieved_objective, const MilpOptions& milp_options = {});

}  // namespace curb::opt
