#pragma once

#include <cstdint>

#include "curb/opt/cap.hpp"

namespace curb::opt {

/// Profile for the seeded random CapInstance generator used by the
/// differential solver tests, the corpus tool and the scale benches.
/// Deterministic: the same profile always yields the same instance, on any
/// toolchain (sim::Rng, not std distributions).
struct GenProfile {
  std::size_t switches = 12;
  std::size_t controllers = 6;
  /// f in the paper's B_i = 3f+1 group size; 0 gives singleton groups.
  int faults_tolerated = 1;
  /// Capacity headroom: 1.0 leaves capacities barely above the aggregate
  /// requirement (tight — the solver must pack well), larger values loosen.
  /// Values well below 1.0 usually make the instance infeasible on purpose.
  double capacity_slack = 1.5;
  /// Impose max_cs_delay, chosen so every switch keeps at least B_i + 2
  /// eligible controllers (tight but not trivially infeasible).
  bool cs_delay_cap = false;
  /// Impose max_cc_delay (the quadratic constraint family).
  bool cc_delay_cap = false;
  /// Fraction of controllers flagged byzantine (never so many that fewer
  /// than B_i + 1 honest controllers remain).
  double byzantine_frac = 0.0;
  /// Fraction of switches with a fixed leader (their nearest eligible
  /// controller).
  double fixed_leader_frac = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a CapInstance on planar geometry: switches and controllers are
/// uniform points in a square, delays are Euclidean distances. The result
/// always passes CapInstance::validate(); feasibility depends on the
/// profile (capacity_slack < 1 is the intended way to produce infeasible
/// instances).
[[nodiscard]] CapInstance generate_instance(const GenProfile& profile);

}  // namespace curb::opt
