#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "curb/opt/lp.hpp"

namespace curb::opt {

/// Mixed-integer solution and solver statistics.
struct MilpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t nodes_explored = 0;
  std::size_t lp_iterations = 0;
  /// Nodes whose LP relaxation resumed from the cached parent basis without
  /// a phase-1 pass (sparse backend only; the dense tableau is stateless).
  std::size_t lp_warm_hits = 0;
  bool hit_node_limit = false;
  bool hit_time_limit = false;
};

/// Which simplex implementation solves the node relaxations.
enum class LpBackend : std::uint8_t {
  /// Dense two-phase tableau (lp.cpp). O(m * (n + 2m)) per pivot and the
  /// whole tableau in memory — the right choice only at paper scale.
  kDense,
  /// Sparse revised simplex (sparse_lp.hpp) with a persistent basis shared
  /// across branch-and-bound nodes, so most child nodes skip phase 1.
  kSparse,
};

struct MilpOptions {
  std::size_t max_nodes = 200'000;
  std::size_t max_lp_iterations_per_node = 50'000;
  /// Wall-clock budget in milliseconds (0 = unlimited). When exceeded the
  /// search stops and returns the incumbent found so far.
  double max_wall_ms = 0.0;
  /// Optional warm-start incumbent objective (e.g. from a greedy heuristic):
  /// nodes whose LP bound cannot beat it are pruned immediately. When set,
  /// solve() only returns solutions STRICTLY better than this value — a
  /// kInfeasible result then means "keep your heuristic solution".
  std::optional<double> incumbent_objective;
  /// When all objective coefficients are integral, bounds can be rounded up
  /// before pruning, cutting the tree substantially. Detected automatically;
  /// this flag force-disables the optimization.
  bool assume_integral_objective = true;
  /// Simplex implementation for the node relaxations.
  LpBackend lp_backend = LpBackend::kDense;
};

/// Branch-and-bound over LP relaxations for problems whose integer
/// variables are binary (0/1) — which covers every OP() program in the
/// paper (A_ij and x_j are all binary). Branching fixes a fractional
/// variable to 0 / 1 via bounds; depth-first with best-bound tie-breaking.
class MilpSolver {
 public:
  explicit MilpSolver(LpProblem problem) : problem_{std::move(problem)} {}

  /// Mark a variable as integer (must have bounds within [0, 1]).
  void set_binary(int var);
  void set_binary(const std::vector<int>& vars);

  /// Variables to branch on first while any of them is fractional. For
  /// covering-style models (like CAP) branching the "is this controller
  /// used" x_j variables before the A_ij assignment variables collapses the
  /// tree by orders of magnitude.
  void set_branch_priority(const std::vector<int>& vars);

  [[nodiscard]] MilpSolution solve(const MilpOptions& options = {});

 private:
  LpProblem problem_;
  std::vector<int> binaries_;
  std::vector<int> priority_;
};

}  // namespace curb::opt
