#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "curb/opt/cap.hpp"

namespace curb::opt {

/// A CapInstance plus optional ground truth, as stored in the committed
/// golden corpus (tests/opt/corpus/*.json) and in the fuzz-failure dumps the
/// differential tests write for CI to upload.
struct StoredInstance {
  std::string name;
  CapInstance instance;
  /// Known optimal TCR objective (controllers used), when proven.
  std::optional<double> tcr_optimum;
  /// Whether the instance is feasible at all, when known.
  std::optional<bool> feasible;
};

/// Serializes to a stable, human-diffable JSON document. Infinite delay caps
/// are written as null; absent fixed leaders as -1.
[[nodiscard]] std::string instance_to_json(const StoredInstance& stored);

/// Parses a document produced by instance_to_json (throws std::runtime_error
/// on malformed JSON, std::invalid_argument on inconsistent dimensions —
/// the loaded instance is validate()d before it is returned).
[[nodiscard]] StoredInstance instance_from_json(const std::string& text);

/// File convenience wrappers. load throws on unreadable files; save returns
/// false on write failure.
[[nodiscard]] StoredInstance load_instance(const std::string& path);
bool save_instance(const StoredInstance& stored, const std::string& path);

}  // namespace curb::opt
