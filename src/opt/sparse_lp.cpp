#include "curb/opt/sparse_lp.hpp"

#include <algorithm>
#include <cmath>

#include "curb/prof/profiler.hpp"

namespace curb::opt {

namespace {
constexpr double kEps = 1e-7;
constexpr double kPivotEps = 1e-9;
// Dual pivots divide by the pivot element without the safeguard of a later
// phase-1 pass, so they demand a larger margin: a 1e-8 pivot amplifies
// basis-inverse error by 1e8 and was observed to blow xb_ up to 1e9 on CAP
// instances, turning feasible nodes into false infeasibility proofs.
constexpr double kDualPivotEps = 1e-7;
constexpr std::size_t kRefreshInterval = 64;
}  // namespace

SparseLpSolver::SparseLpSolver(const LpProblem& problem) : problem_{problem} {
  num_structural_ = problem.num_variables();
  num_rows_ = problem.num_constraints();
  // Column layout mirrors lp.cpp: [structural | slack per row | artificial
  // per row]; slack sign encodes the row sense, artificial sign is chosen at
  // each cold start so the artificial always enters the basis nonnegative.
  num_cols_ = num_structural_ + 2 * num_rows_;
  cols_.assign(num_cols_, {});
  rhs_.assign(num_rows_, 0.0);
  art_sign_.assign(num_rows_, 1.0);
  lower_.assign(num_cols_, 0.0);
  upper_.assign(num_cols_, LpProblem::kInf);

  for (std::size_t k = 0; k < num_rows_; ++k) {
    const auto& row = problem.row(k);
    for (const auto& [var, coeff] : row.terms) {
      cols_[static_cast<std::size_t>(var)].push_back(
          {static_cast<std::uint32_t>(k), coeff});
    }
    rhs_[k] = row.rhs;
    const std::size_t slack = num_structural_ + k;
    switch (row.sense) {
      case LpProblem::Sense::kLe:
        cols_[slack].push_back({static_cast<std::uint32_t>(k), 1.0});
        break;
      case LpProblem::Sense::kGe:
        cols_[slack].push_back({static_cast<std::uint32_t>(k), -1.0});
        break;
      case LpProblem::Sense::kEq:
        cols_[slack].push_back({static_cast<std::uint32_t>(k), 1.0});
        upper_[slack] = 0.0;  // pinned slack: row stays an equality
        break;
    }
    cols_[num_structural_ + num_rows_ + k].push_back(
        {static_cast<std::uint32_t>(k), 1.0});
  }
}

void SparseLpSolver::load_bounds() {
  for (std::size_t j = 0; j < num_structural_; ++j) {
    lower_[j] = problem_.lower(static_cast<int>(j));
    upper_[j] = problem_.upper(static_cast<int>(j));
  }
}

double SparseLpSolver::bound_value(std::size_t j) const {
  if (status_[j] == Status::kAtUpper) return upper_[j];
  const double l = lower_[j];
  return l == -LpProblem::kInf ? 0.0 : l;
}

double SparseLpSolver::column_dot(std::size_t j, const std::vector<double>& y) const {
  double dot = 0.0;
  for (const Entry& e : cols_[j]) dot += e.value * y[e.row];
  return dot;
}

void SparseLpSolver::direction(std::size_t j, std::vector<double>& w) const {
  // w = B^-1 a_j, accumulated column-by-column of B^-1.
  w.assign(num_rows_, 0.0);
  for (const Entry& e : cols_[j]) {
    const double v = e.value;
    const double* binv_col = binv_.data() + e.row;
    for (std::size_t k = 0; k < num_rows_; ++k) {
      w[k] += v * binv_col[k * num_rows_];
    }
  }
}

void SparseLpSolver::compute_basic_values() {
  // xb = B^-1 (b - N x_N).
  std::vector<double> residual = rhs_;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == Status::kBasic) continue;
    const double bv = bound_value(j);
    if (bv == 0.0) continue;
    for (const Entry& e : cols_[j]) residual[e.row] -= e.value * bv;
  }
  for (std::size_t k = 0; k < num_rows_; ++k) {
    double v = 0.0;
    const double* row = binv_.data() + k * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i) v += row[i] * residual[i];
    xb_[k] = v;
  }
}

void SparseLpSolver::cold_start() {
  const std::size_t n = num_structural_;
  const std::size_t m = num_rows_;
  status_.assign(num_cols_, Status::kAtLower);
  for (std::size_t j = 0; j < n + m; ++j) {
    if (lower_[j] == -LpProblem::kInf && upper_[j] != LpProblem::kInf) {
      status_[j] = Status::kAtUpper;
    }
  }
  // Artificials start pinned; rows the slack crash cannot cover re-open one.
  for (std::size_t k = 0; k < m; ++k) {
    lower_[n + m + k] = 0.0;
    upper_[n + m + k] = 0.0;
  }

  std::vector<double> activity(m, 0.0);
  for (std::size_t j = 0; j < n + m; ++j) {
    const double bv = bound_value(j);
    if (bv == 0.0) continue;
    for (const Entry& e : cols_[j]) activity[e.row] += e.value * bv;
  }

  basis_.assign(m, 0);
  xb_.assign(m, 0.0);
  binv_.assign(m * m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const double residual = rhs_[k] - activity[k];
    const std::size_t slack = n + k;
    const double sigma = cols_[slack][0].value;
    // Crash basis: take the row's slack basic when its implied value fits the
    // slack bounds — phase 1 then only has to fix the genuinely violated rows.
    const double slack_value = residual / sigma;
    if (status_[slack] == Status::kAtLower && slack_value >= lower_[slack] - kEps &&
        slack_value <= upper_[slack] + kEps) {
      basis_[k] = slack;
      status_[slack] = Status::kBasic;
      binv_[k * m + k] = 1.0 / sigma;
      xb_[k] = std::clamp(slack_value, lower_[slack], upper_[slack]);
      continue;
    }
    const std::size_t art = n + m + k;
    const double sign = residual >= 0.0 ? 1.0 : -1.0;
    art_sign_[k] = sign;
    cols_[art][0].value = sign;
    lower_[art] = 0.0;
    upper_[art] = LpProblem::kInf;
    basis_[k] = art;
    status_[art] = Status::kBasic;
    binv_[k * m + k] = sign;  // 1/sign == sign for +-1
    xb_[k] = std::abs(residual);
  }
}

bool SparseLpSolver::try_warm_start() {
  if (!has_basis_) return false;
  // Nonbasic statuses must stay representable under the new bounds (a bound
  // may have become infinite since the basis was cached).
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == Status::kAtUpper && upper_[j] == LpProblem::kInf) {
      status_[j] = Status::kAtLower;
    }
  }
  compute_basic_values();
  for (std::size_t k = 0; k < num_rows_; ++k) {
    const std::size_t bv = basis_[k];
    if (xb_[k] < lower_[bv] - kEps || xb_[k] > upper_[bv] + kEps) return false;
  }
  return true;
}

bool SparseLpSolver::binv_row_accurate(std::size_t r) const {
  // Row r of B^-1 must map the basis columns to e_r.
  const double* row = binv_.data() + r * num_rows_;
  for (std::size_t k = 0; k < num_rows_; ++k) {
    double dot = 0.0;
    for (const Entry& e : cols_[basis_[k]]) dot += e.value * row[e.row];
    if (std::abs(dot - (k == r ? 1.0 : 0.0)) > 1e-6) return false;
  }
  return true;
}

bool SparseLpSolver::solution_consistent() const {
  // The claimed solution must actually satisfy the rows: product-form
  // basis-inverse updates accumulate error over long warm chains, and an
  // inconsistent basis can otherwise smuggle a wrong "optimal" out of a
  // warm-started solve. O(nnz) — cheap next to one simplex iteration.
  std::vector<double> residual = rhs_;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == Status::kBasic) continue;
    const double v = bound_value(j);
    if (v == 0.0) continue;
    for (const Entry& e : cols_[j]) residual[e.row] -= e.value * v;
  }
  for (std::size_t k = 0; k < num_rows_; ++k) {
    for (const Entry& e : cols_[basis_[k]]) residual[e.row] -= e.value * xb_[k];
  }
  for (std::size_t k = 0; k < num_rows_; ++k) {
    if (std::abs(residual[k]) > 1e-6 * (1.0 + std::abs(rhs_[k]))) return false;
  }
  for (std::size_t k = 0; k < num_rows_; ++k) {
    const std::size_t bv = basis_[k];
    if (xb_[k] < lower_[bv] - 1e-6 || xb_[k] > upper_[bv] + 1e-6) return false;
  }
  return true;
}

SparseLpSolver::DualRepair SparseLpSolver::dual_repair(const std::vector<double>& cost,
                                                       std::size_t max_iterations) {
  const std::size_t m = num_rows_;
  // Reduced costs z = c - c_B B^-1 A. The cached basis came out of an
  // optimal phase 2, so unless bounds re-opened a previously pinned column
  // it is still dual-feasible — branching moves bounds, never costs.
  std::vector<double> y(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const double c = cost[basis_[k]];
    if (c == 0.0) continue;
    const double* row = binv_.data() + k * m;
    for (std::size_t i = 0; i < m; ++i) y[i] += c * row[i];
  }
  std::vector<double> z(num_cols_, 0.0);
  bool flipped = false;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == Status::kBasic || lower_[j] == upper_[j]) continue;
    z[j] = cost[j] - column_dot(j, y);
    // Backtracking re-opens bounds that branching had pinned, which can leave
    // a nonbasic column on the wrong bound for its reduced-cost sign. A bound
    // flip restores dual feasibility (only the primal side moves, and that is
    // exactly what the pivots below repair) — give up only when the needed
    // bound is infinite.
    if (status_[j] == Status::kAtLower && z[j] < -kEps) {
      if (upper_[j] == LpProblem::kInf) return DualRepair::kGiveUp;
      status_[j] = Status::kAtUpper;
      flipped = true;
    } else if (status_[j] == Status::kAtUpper && z[j] > kEps) {
      if (lower_[j] == -LpProblem::kInf) return DualRepair::kGiveUp;
      status_[j] = Status::kAtLower;
      flipped = true;
    }
  }
  if (flipped) compute_basic_values();

  // Most violated basic variable, or -1 when primal-feasible. `below` is set
  // to whether that variable sits under its lower bound.
  bool below = false;
  const auto most_violated = [&]() -> int {
    int leave = -1;
    double worst = kEps;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t bv = basis_[k];
      const double under = lower_[bv] - xb_[k];
      const double over = xb_[k] - upper_[bv];
      if (under > worst) {
        worst = under;
        leave = static_cast<int>(k);
        below = true;
      }
      if (over > worst) {
        worst = over;
        leave = static_cast<int>(k);
        below = false;
      }
    }
    return leave;
  };

  // A handful of pivots restores a typical branch-and-bound child; anything
  // beyond this is numerically suspicious, so fall back to a cold start.
  const std::size_t pivot_budget = std::max<std::size_t>(100, 2 * m);
  std::vector<double> alpha(num_cols_, 0.0);
  std::vector<double> w;
  for (std::size_t pivots = 0; pivots < pivot_budget; ++pivots) {
    if (iterations_ >= max_iterations) return DualRepair::kGiveUp;

    int leave = most_violated();
    if (leave < 0) {
      // Feasible on the incrementally-maintained values; confirm on freshly
      // recomputed ones before declaring success — xb_ drifts across pivots.
      compute_basic_values();
      leave = most_violated();
      if (leave < 0) return DualRepair::kRepaired;
    }

    const auto r = static_cast<std::size_t>(leave);
    const double* rho = binv_.data() + r * m;  // row r of B^-1
    // alpha_j = (B^-1 A)_rj for every nonbasic candidate.
    int entering = -1;
    double best_ratio = 0.0;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == Status::kBasic || lower_[j] == upper_[j]) continue;
      double a = 0.0;
      for (const Entry& e : cols_[j]) a += e.value * rho[e.row];
      alpha[j] = a;
      if (std::abs(a) <= kDualPivotEps) continue;
      // Leaving below its lower bound -> the dual step is <= 0; eligible
      // columns keep it so. Mirrored when leaving above its upper bound.
      bool eligible;
      if (below) {
        eligible = (status_[j] == Status::kAtLower && a < 0.0) ||
                   (status_[j] == Status::kAtUpper && a > 0.0);
      } else {
        eligible = (status_[j] == Status::kAtLower && a > 0.0) ||
                   (status_[j] == Status::kAtUpper && a < 0.0);
      }
      if (!eligible) continue;
      const double ratio = std::abs(z[j] / a);  // |dual step| this column allows
      if (entering < 0 || ratio < best_ratio - kPivotEps ||
          (ratio < best_ratio + kPivotEps && j < static_cast<std::size_t>(entering))) {
        best_ratio = ratio;
        entering = static_cast<int>(j);
      }
    }
    // No column can absorb the violation: the node is primal-infeasible
    // (dual unbounded). The proof rests entirely on row r of the basis
    // inverse and on xb_, both of which accumulate error — prune only after
    // re-deriving them: the violation must survive a fresh xb computation
    // and binv_ row r must still invert the basis columns to e_r.
    if (entering < 0) {
      compute_basic_values();
      const std::size_t bv = basis_[r];
      const bool still_violated = below ? xb_[r] < lower_[bv] - kEps
                                        : xb_[r] > upper_[bv] + kEps;
      if (!still_violated || !binv_row_accurate(r)) return DualRepair::kGiveUp;
      return DualRepair::kInfeasible;
    }

    const auto q = static_cast<std::size_t>(entering);
    const std::size_t leaving = basis_[r];
    const double target = below ? lower_[leaving] : upper_[leaving];
    const double t = (xb_[r] - target) / alpha[q];  // change in x_q
    const double theta = z[q] / alpha[q];           // dual step

    direction(q, w);
    for (std::size_t k = 0; k < m; ++k) xb_[k] -= w[k] * t;

    // Product-form update of B^-1 on pivot (r, q).
    const double inv_pivot = 1.0 / w[r];
    double* prow = binv_.data() + r * m;
    for (std::size_t i = 0; i < m; ++i) prow[i] *= inv_pivot;
    for (std::size_t k = 0; k < m; ++k) {
      if (k == r) continue;
      const double factor = w[k];
      if (std::abs(factor) <= kPivotEps) continue;
      double* krow = binv_.data() + k * m;
      for (std::size_t i = 0; i < m; ++i) krow[i] -= factor * prow[i];
    }

    const double entering_value = bound_value(q) + t;
    basis_[r] = q;
    status_[q] = Status::kBasic;
    status_[leaving] = below ? Status::kAtLower : Status::kAtUpper;
    xb_[r] = entering_value;

    // Incremental dual update: z'_j = z_j - theta * alpha_j.
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == Status::kBasic || lower_[j] == upper_[j]) continue;
      z[j] -= theta * alpha[j];
    }
    z[q] = 0.0;
    z[leaving] = -theta;
    ++iterations_;
    if (iterations_ % kRefreshInterval == 0) compute_basic_values();
  }
  return DualRepair::kGiveUp;
}

double SparseLpSolver::objective_of(const std::vector<double>& cost) const {
  double obj = 0.0;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (cost[j] == 0.0 || status_[j] == Status::kBasic) continue;
    obj += cost[j] * bound_value(j);
  }
  for (std::size_t k = 0; k < num_rows_; ++k) obj += cost[basis_[k]] * xb_[k];
  return obj;
}

int SparseLpSolver::choose_entering(const std::vector<double>& cost, bool bland) const {
  // Reduced costs priced against y = c_B B^-1; Dantzig largest-violation
  // normally, Bland least-index when degeneracy has stalled the objective.
  std::vector<double> y(num_rows_, 0.0);
  for (std::size_t k = 0; k < num_rows_; ++k) {
    const double c = cost[basis_[k]];
    if (c == 0.0) continue;
    const double* row = binv_.data() + k * num_rows_;
    for (std::size_t i = 0; i < num_rows_; ++i) y[i] += c * row[i];
  }
  int best = -1;
  double best_score = -kEps;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == Status::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // pinned (equality slack, artificial)
    const double z = cost[j] - column_dot(j, y);
    double score = 0.0;
    if (status_[j] == Status::kAtLower && z < -kEps) score = z;
    else if (status_[j] == Status::kAtUpper && z > kEps) score = -z;
    else continue;
    if (bland) return static_cast<int>(j);  // first eligible index
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(j);
    }
  }
  return best;
}

bool SparseLpSolver::iterate(const std::vector<double>& cost,
                             std::size_t max_iterations) {
  std::size_t since_improvement = 0;
  double last_obj = objective_of(cost);
  const std::size_t bland_after = 4 * (num_rows_ + num_cols_);
  unbounded_ = false;
  std::vector<double> w;

  while (iterations_ < max_iterations) {
    const bool bland = since_improvement > bland_after;
    const int entering_idx = choose_entering(cost, bland);
    if (entering_idx < 0) return true;  // optimal for this phase
    ++iterations_;
    const auto entering = static_cast<std::size_t>(entering_idx);
    const double sigma = status_[entering] == Status::kAtLower ? 1.0 : -1.0;

    direction(entering, w);

    double best_t = LpProblem::kInf;
    int leave_row = -1;
    bool leave_to_upper = false;
    // Bound flip of the entering variable itself.
    if (upper_[entering] != LpProblem::kInf && lower_[entering] != -LpProblem::kInf) {
      best_t = upper_[entering] - lower_[entering];
    }
    for (std::size_t k = 0; k < num_rows_; ++k) {
      const double a = w[k] * sigma;
      if (std::abs(a) <= kPivotEps) continue;
      const std::size_t bv = basis_[k];
      const double xk = xb_[k];
      double t;
      bool to_upper;
      if (a > 0) {
        if (lower_[bv] == -LpProblem::kInf) continue;
        t = (xk - lower_[bv]) / a;
        to_upper = false;
      } else {
        if (upper_[bv] == LpProblem::kInf) continue;
        t = (xk - upper_[bv]) / a;  // a < 0 so t >= 0
        to_upper = true;
      }
      if (t < -kEps) t = 0.0;  // degenerate: clamp
      if (t < best_t - kPivotEps ||
          (leave_row >= 0 && t < best_t + kPivotEps &&
           bv < basis_[static_cast<std::size_t>(leave_row)])) {
        best_t = t;
        leave_row = static_cast<int>(k);
        leave_to_upper = to_upper;
      }
    }

    if (best_t == LpProblem::kInf) {
      unbounded_ = true;
      return true;
    }

    const double t = best_t;
    for (std::size_t k = 0; k < num_rows_; ++k) xb_[k] -= w[k] * sigma * t;

    if (leave_row < 0) {
      // Pure bound flip: entering moves to its opposite bound.
      status_[entering] =
          status_[entering] == Status::kAtLower ? Status::kAtUpper : Status::kAtLower;
    } else {
      const auto r = static_cast<std::size_t>(leave_row);
      const std::size_t leaving = basis_[r];
      const double entering_value = bound_value(entering) + sigma * t;
      // Product-form update of B^-1.
      const double pivot = w[r];
      double* prow = binv_.data() + r * num_rows_;
      const double inv_pivot = 1.0 / pivot;
      for (std::size_t i = 0; i < num_rows_; ++i) prow[i] *= inv_pivot;
      for (std::size_t k = 0; k < num_rows_; ++k) {
        if (k == r) continue;
        const double factor = w[k];
        if (std::abs(factor) <= kPivotEps) continue;
        double* krow = binv_.data() + k * num_rows_;
        for (std::size_t i = 0; i < num_rows_; ++i) krow[i] -= factor * prow[i];
      }
      basis_[r] = entering;
      status_[entering] = Status::kBasic;
      status_[leaving] = leave_to_upper ? Status::kAtUpper : Status::kAtLower;
      xb_[r] = entering_value;
    }

    // Degeneracy stall detection (drives the Bland switch) plus a periodic
    // from-scratch refresh of the basic values to bound numerical drift from
    // the product-form updates.
    if (iterations_ % kRefreshInterval == 0) compute_basic_values();
    const double obj = objective_of(cost);
    if (obj < last_obj - kEps) {
      last_obj = obj;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }
  return false;
}

LpSolution SparseLpSolver::finish(LpStatus status, bool keep_basis) {
  LpSolution sol;
  sol.status = status;
  sol.iterations = iterations_;
  has_basis_ = keep_basis;
  if (status != LpStatus::kOptimal) return sol;
  sol.values.assign(num_structural_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j) {
    if (status_[j] != Status::kBasic) sol.values[j] = bound_value(j);
  }
  for (std::size_t k = 0; k < num_rows_; ++k) {
    if (basis_[k] < num_structural_) sol.values[basis_[k]] = xb_[k];
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < num_structural_; ++j) {
    sol.objective += problem_.cost(static_cast<int>(j)) * sol.values[j];
  }
  return sol;
}

LpSolution SparseLpSolver::solve(std::size_t max_iterations) {
  const prof::Scope scope{"solver.lp_sparse"};
  iterations_ = 0;
  load_bounds();

  const std::size_t n = num_structural_;
  const std::size_t m = num_rows_;

  std::vector<double> phase2(num_cols_, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2[j] = problem_.cost(static_cast<int>(j));

  bool warm = false;
  if (has_basis_) {
    if (try_warm_start()) {
      warm = true;
    } else {
      // Branching moved a bound out from under a basic variable, so the
      // cached basis is primal-infeasible — but its reduced costs are
      // untouched, so dual simplex can repair it without a phase 1 pass.
      switch (dual_repair(phase2, max_iterations)) {
        case DualRepair::kRepaired:
          warm = true;
          break;
        case DualRepair::kInfeasible:
          // Artificials are still pinned from the optimal solve the basis
          // came from, so the basis stays safe to reuse at the next node.
          ++warm_hits_;
          return finish(LpStatus::kInfeasible, true);
        case DualRepair::kGiveUp:
          break;
      }
    }
  }
  if (warm) {
    // Re-optimize from the repaired basis — and only trust the answer if the
    // solution it implies actually satisfies the rows; numerical drift along
    // a long warm chain falls back to the cold path below instead.
    if (!iterate(phase2, max_iterations)) return finish(LpStatus::kIterationLimit, false);
    if (unbounded_) return finish(LpStatus::kUnbounded, false);
    if (solution_consistent()) {
      ++warm_hits_;
      return finish(LpStatus::kOptimal, true);
    }
  }

  cold_start();
  bool any_artificial = false;
  for (std::size_t k = 0; k < m; ++k) any_artificial |= basis_[k] >= n + m;
  if (any_artificial) {
    // Phase 1: minimize the open artificials' total value.
    std::vector<double> phase1(num_cols_, 0.0);
    for (std::size_t k = 0; k < m; ++k) phase1[n + m + k] = 1.0;
    if (!iterate(phase1, max_iterations)) return finish(LpStatus::kIterationLimit, false);
    if (objective_of(phase1) > kEps) return finish(LpStatus::kInfeasible, false);
    // Pin artificials so phase 2 can never re-inflate one.
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t art = n + m + k;
      lower_[art] = 0.0;
      upper_[art] = 0.0;
      if (status_[art] != Status::kBasic) status_[art] = Status::kAtLower;
    }
  }

  if (!iterate(phase2, max_iterations)) return finish(LpStatus::kIterationLimit, false);
  if (unbounded_) return finish(LpStatus::kUnbounded, false);
  return finish(LpStatus::kOptimal, true);
}

LpSolution solve_lp_sparse(const LpProblem& problem, std::size_t max_iterations) {
  return SparseLpSolver{problem}.solve(max_iterations);
}

}  // namespace curb::opt
