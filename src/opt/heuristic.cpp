#include "curb/opt/heuristic.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "curb/prof/profiler.hpp"

namespace curb::opt {

namespace {

[[nodiscard]] bool is_byzantine(const CapInstance& inst, std::size_t j) {
  return !inst.byzantine.empty() && inst.byzantine[j];
}

[[nodiscard]] bool eligible(const CapInstance& inst, std::size_t i, std::size_t j) {
  if (is_byzantine(inst, j)) return false;
  if (inst.max_cs_delay != CapInstance::kNoLimit && inst.cs_delay[i][j] > inst.max_cs_delay) {
    return false;
  }
  return true;
}

/// Working state of one partition run.
struct Partition {
  const CapInstance& inst;
  const Assignment* previous;
  Assignment out;
  std::vector<double> remaining;            // capacity left per controller
  std::vector<bool> open;                   // controllers admitted to the partition
  std::vector<std::vector<std::size_t>> members;  // group per switch, unordered
  std::vector<std::vector<std::size_t>> near;     // eligible controllers by delay

  explicit Partition(const CapInstance& instance, const Assignment* prev)
      : inst{instance},
        previous{prev},
        out{instance.num_switches, instance.num_controllers},
        remaining{instance.controller_capacity},
        open(instance.num_controllers, false),
        members(instance.num_switches),
        near(instance.num_switches) {}

  [[nodiscard]] int need(std::size_t i) const {
    return inst.group_size[i] - static_cast<int>(members[i].size());
  }

  /// C2C pair-exclusion check of candidate j against switch i's current group.
  [[nodiscard]] bool cc_ok(std::size_t i, std::size_t j) const {
    if (inst.max_cc_delay == CapInstance::kNoLimit) return true;
    for (const std::size_t k : members[i]) {
      if (inst.cc_delay[j][k] > inst.max_cc_delay ||
          inst.cc_delay[k][j] > inst.max_cc_delay) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool can_assign(std::size_t i, std::size_t j) const {
    return !out.assigned(i, j) && eligible(inst, i, j) &&
           remaining[j] >= inst.switch_load[i] && cc_ok(i, j);
  }

  void assign(std::size_t i, std::size_t j) {
    out.set(i, j, true);
    remaining[j] -= inst.switch_load[i];
    members[i].push_back(j);
    open[j] = true;
  }

  void unassign(std::size_t i, std::size_t j) {
    out.set(i, j, false);
    remaining[j] += inst.switch_load[i];
    members[i].erase(std::find(members[i].begin(), members[i].end(), j));
  }
};

/// One incremental fill sweep: most-constrained switches first, each taking
/// its nearest open eligible controllers. Returns true when every group is
/// full.
bool fill_open(Partition& p) {
  const std::size_t s = p.inst.num_switches;
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < s; ++i) {
    if (p.need(i) > 0) order.push_back(i);
  }
  // Fewest spare open options first so contested capacity goes to the
  // switches with the least slack; index ascending breaks ties.
  std::vector<int> spare(s, 0);
  for (const std::size_t i : order) {
    for (const std::size_t j : p.near[i]) {
      if (p.open[j] && !p.out.assigned(i, j)) ++spare[i];
    }
    spare[i] -= p.need(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (spare[a] != spare[b]) return spare[a] < spare[b];
    return a < b;
  });
  bool all_full = true;
  for (const std::size_t i : order) {
    for (const std::size_t j : p.near[i]) {
      if (p.need(i) <= 0) break;
      if (p.open[j] && p.can_assign(i, j)) p.assign(i, j);
    }
    all_full &= p.need(i) <= 0;
  }
  return all_full;
}

/// Objective change from moving switch i's link j -> j2 under LCR (TCR has no
/// link term, so only usage matters there and this returns 0).
double link_move_delta(const Partition& p, std::size_t i, std::size_t from,
                       std::size_t to, CapObjective objective) {
  if (objective != CapObjective::kLeastMovement || p.previous == nullptr) return 0.0;
  double delta = 0.0;
  delta += p.previous->assigned(i, from) ? 1.0 : -1.0;  // link removed
  delta += p.previous->assigned(i, to) ? -1.0 : 1.0;    // link added
  return delta;
}

/// Try to close controller j by re-homing all of its switches onto other
/// open controllers; applies the move only when the objective improves.
bool try_close(Partition& p, std::size_t j, CapObjective objective,
               const std::vector<bool>& leader_pinned) {
  if (leader_pinned[j]) return false;
  const std::vector<std::size_t> homed = p.out.switches_of(j);
  if (homed.empty()) return false;
  // Plan replacements against a scratch capacity ledger so the close is
  // atomic: either every switch re-homes or nothing changes.
  std::vector<double> scratch = p.remaining;
  std::vector<std::pair<std::size_t, std::size_t>> moves;
  double delta = -1.0;  // closing j drops one used controller
  for (const std::size_t i : homed) {
    bool placed = false;
    for (const std::size_t j2 : p.near[i]) {
      if (j2 == j || !p.open[j2] || p.out.assigned(i, j2)) continue;
      if (scratch[j2] < p.inst.switch_load[i]) continue;
      if (!p.cc_ok(i, j2)) continue;
      scratch[j2] -= p.inst.switch_load[i];
      moves.push_back({i, j2});
      delta += link_move_delta(p, i, j, j2, objective);
      placed = true;
      break;
    }
    if (!placed) return false;
  }
  if (delta >= 0.0) return false;
  for (const auto& [i, j2] : moves) {
    p.unassign(i, j);
    p.assign(i, j2);
  }
  p.open[j] = false;
  return true;
}

}  // namespace

std::optional<Assignment> partition_assign(const CapInstance& inst,
                                           CapObjective objective,
                                           const Assignment* previous,
                                           const HeuristicOptions& options) {
  inst.validate();
  if (objective == CapObjective::kLeastMovement && previous == nullptr) {
    throw std::invalid_argument{
        "partition_assign: LCR objective requires a previous assignment"};
  }
  const prof::Scope scope{"solver.heuristic"};

  const std::size_t s = inst.num_switches;
  const std::size_t c = inst.num_controllers;
  Partition p{inst, previous};

  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (eligible(inst, i, j)) p.near[i].push_back(j);
    }
    std::sort(p.near[i].begin(), p.near[i].end(), [&](std::size_t a, std::size_t b) {
      if (inst.cs_delay[i][a] != inst.cs_delay[i][b]) {
        return inst.cs_delay[i][a] < inst.cs_delay[i][b];
      }
      return a < b;
    });
    if (static_cast<int>(p.near[i].size()) < inst.group_size[i]) {
      return std::nullopt;  // not enough eligible controllers: infeasible
    }
  }

  // Fixed leaders are hard requirements: place them first.
  std::vector<bool> leader_pinned(c, false);
  for (std::size_t i = 0; i < s; ++i) {
    if (inst.fixed_leader.empty() || !inst.fixed_leader[i]) continue;
    const auto j = static_cast<std::size_t>(*inst.fixed_leader[i]);
    if (!p.can_assign(i, j)) return std::nullopt;
    p.assign(i, j);
    leader_pinned[j] = true;
  }

  // LCR: keep every previous link that is still legal so reassignment is
  // near-incremental — only the shortfall below is re-partitioned.
  if (objective == CapObjective::kLeastMovement && previous != nullptr &&
      previous->num_switches() == s && previous->num_controllers() == c) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        if (previous->assigned(i, j) && p.can_assign(i, j)) p.assign(i, j);
      }
    }
  }

  // Attraction ranking: how many switches count controller j among their
  // B_i nearest eligible controllers. This is the partition seed — the
  // LazyCtrl analogue of grouping around cluster heads.
  std::vector<double> attraction(c, 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    const auto want = static_cast<std::size_t>(inst.group_size[i]);
    for (std::size_t r = 0; r < want && r < p.near[i].size(); ++r) {
      attraction[p.near[i][r]] += 1.0;
    }
  }
  std::vector<std::size_t> ranking;
  for (std::size_t j = 0; j < c; ++j) {
    if (!is_byzantine(inst, j)) ranking.push_back(j);
  }
  std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
    if (attraction[a] != attraction[b]) return attraction[a] > attraction[b];
    return a < b;
  });

  // Open controllers until the partition covers every group. A controller is
  // opened by rank, except when the ranked pick cannot help any unfilled
  // switch — then the most helpful closed controller is taken instead.
  std::size_t opened_iterations = 0;
  std::size_t next_rank = 0;
  while (!fill_open(p)) {
    std::size_t pick = c;
    // Advance the ranking past already-open controllers.
    while (next_rank < ranking.size() && p.open[ranking[next_rank]]) ++next_rank;
    auto helps = [&](std::size_t j) {
      if (p.open[j]) return false;
      for (std::size_t i = 0; i < s; ++i) {
        if (p.need(i) > 0 && p.can_assign(i, j)) return true;
      }
      return false;
    };
    if (next_rank < ranking.size() && helps(ranking[next_rank])) {
      pick = ranking[next_rank];
    } else {
      std::size_t best_score = 0;
      for (const std::size_t j : ranking) {
        if (p.open[j]) continue;
        std::size_t score = 0;
        for (std::size_t i = 0; i < s; ++i) {
          if (p.need(i) > 0 && p.can_assign(i, j)) ++score;
        }
        if (score > best_score) {
          best_score = score;
          pick = j;
        }
      }
    }
    if (pick == c) return std::nullopt;  // nothing left that helps: stuck
    p.open[pick] = true;
    ++opened_iterations;
    if (options.max_open_iterations != 0 &&
        opened_iterations > options.max_open_iterations) {
      return std::nullopt;
    }
  }

  if (options.close_pass) {
    // Evict lightly-used controllers while any close improves the objective.
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::size_t> by_usage;
      for (std::size_t j = 0; j < c; ++j) {
        if (p.open[j] && p.out.controller_used(j)) by_usage.push_back(j);
      }
      std::sort(by_usage.begin(), by_usage.end(), [&](std::size_t a, std::size_t b) {
        const std::size_t ua = p.out.switches_of(a).size();
        const std::size_t ub = p.out.switches_of(b).size();
        if (ua != ub) return ua < ub;
        return a < b;
      });
      for (const std::size_t j : by_usage) {
        if (try_close(p, j, objective, leader_pinned)) {
          changed = true;
          break;  // usage counts shifted; re-rank
        }
      }
    }
  }

  // The fill respects every constraint inline, but keep the terminal check
  // so the heuristic can never hand out an infeasible assignment.
  if (!p.out.feasible_for(inst)) return std::nullopt;
  return p.out;
}

}  // namespace curb::opt
