#include "curb/opt/milp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "curb/opt/sparse_lp.hpp"
#include "curb/prof/profiler.hpp"

namespace curb::opt {

namespace {
constexpr double kIntEps = 1e-6;

[[nodiscard]] bool is_integral(double v) { return std::abs(v - std::round(v)) <= kIntEps; }
}  // namespace

void MilpSolver::set_binary(int var) {
  if (var < 0 || static_cast<std::size_t>(var) >= problem_.num_variables()) {
    throw std::out_of_range{"MilpSolver: unknown variable"};
  }
  if (problem_.lower(var) < -kIntEps || problem_.upper(var) > 1.0 + kIntEps) {
    throw std::invalid_argument{"MilpSolver: binary variable must have bounds within [0,1]"};
  }
  binaries_.push_back(var);
}

void MilpSolver::set_binary(const std::vector<int>& vars) {
  for (const int v : vars) set_binary(v);
}

void MilpSolver::set_branch_priority(const std::vector<int>& vars) {
  for (const int v : vars) {
    if (v < 0 || static_cast<std::size_t>(v) >= problem_.num_variables()) {
      throw std::out_of_range{"MilpSolver: unknown priority variable"};
    }
  }
  priority_ = vars;
}

MilpSolution MilpSolver::solve(const MilpOptions& options) {
  MilpSolution best;
  best.status = LpStatus::kInfeasible;
  double incumbent = options.incumbent_objective.value_or(LpProblem::kInf);

  const bool integral_objective = options.assume_integral_objective && [&] {
    for (std::size_t j = 0; j < problem_.num_variables(); ++j) {
      if (!is_integral(problem_.cost(static_cast<int>(j)))) return false;
    }
    return true;
  }();

  // A node is a set of (variable, fixed-value) decisions applied to bounds.
  struct Node {
    std::vector<std::pair<int, double>> fixings;
  };
  std::vector<Node> stack;
  stack.push_back({});

  MilpSolution stats;
  const prof::Scope scope{"solver.milp"};
  prof::StopWatch sw;
  // The sparse solver persists across nodes: the constraint matrix is
  // factored once, and each node's relaxation warm-starts from the basis
  // the previous node left behind (only variable bounds change between
  // nodes). The dense tableau solver is stateless per call.
  std::unique_ptr<SparseLpSolver> sparse;
  if (options.lp_backend == LpBackend::kSparse) {
    sparse = std::make_unique<SparseLpSolver>(problem_);
  }
  const auto solve_relaxation = [&](std::size_t max_iterations) {
    if (sparse == nullptr) return solve_lp(problem_, max_iterations);
    LpSolution s = sparse->solve(max_iterations);
    if (std::getenv("CURB_LP_DIFF") != nullptr) {
      LpSolution d = solve_lp(problem_, max_iterations);
      if (d.status != s.status ||
          (d.status == LpStatus::kOptimal &&
           std::abs(d.objective - s.objective) > 1e-6)) {
        std::fprintf(stderr,
                     "LP DIFF node=%zu sparse={%d %.9f} dense={%d %.9f}\n",
                     stats.nodes_explored, static_cast<int>(s.status), s.objective,
                     static_cast<int>(d.status), d.objective);
      }
    }
    return s;
  };
  while (!stack.empty()) {
    if (stats.nodes_explored >= options.max_nodes) {
      best.hit_node_limit = true;
      break;
    }
    if (options.max_wall_ms > 0.0 && sw.elapsed_ms() > options.max_wall_ms) {
      best.hit_time_limit = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++stats.nodes_explored;

    // Apply fixings; remember originals for restore.
    std::vector<std::pair<int, std::pair<double, double>>> saved;
    saved.reserve(node.fixings.size());
    bool conflict = false;
    for (const auto& [var, value] : node.fixings) {
      saved.push_back({var, {problem_.lower(var), problem_.upper(var)}});
      if (value < problem_.lower(var) - kIntEps || value > problem_.upper(var) + kIntEps) {
        conflict = true;
        break;
      }
      problem_.set_bounds(var, value, value);
    }

    LpSolution relax;
    if (!conflict) relax = solve_relaxation(options.max_lp_iterations_per_node);
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      problem_.set_bounds(it->first, it->second.first, it->second.second);
    }
    if (conflict) continue;

    stats.lp_iterations += relax.iterations;
    if (relax.status != LpStatus::kOptimal) continue;  // infeasible/limit: prune

    double bound = relax.objective;
    if (integral_objective) bound = std::ceil(bound - kIntEps);
    if (bound >= incumbent - kIntEps) continue;  // cannot beat incumbent

    // Most-fractional branching variable, preferring priority variables.
    int branch_var = -1;
    double branch_frac = 0.0;
    for (const int v : priority_) {
      const double x = relax.values[static_cast<std::size_t>(v)];
      const double frac = std::abs(x - std::round(x));
      if (frac > kIntEps && frac > branch_frac) {
        branch_frac = frac;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      for (const int v : binaries_) {
        const double x = relax.values[static_cast<std::size_t>(v)];
        const double frac = std::abs(x - std::round(x));
        if (frac > kIntEps && frac > branch_frac) {
          branch_frac = frac;
          branch_var = v;
        }
      }
    }

    if (branch_var < 0) {
      // Integral solution: new incumbent.
      if (relax.objective < incumbent - kIntEps) {
        incumbent = relax.objective;
        best.status = LpStatus::kOptimal;
        best.objective = relax.objective;
        best.values = relax.values;
        // Snap binaries exactly.
        for (const int v : binaries_) {
          best.values[static_cast<std::size_t>(v)] =
              std::round(best.values[static_cast<std::size_t>(v)]);
        }
      }
      continue;
    }

    // Depth-first: push the "round toward LP value" child last so it pops first.
    const double x = relax.values[static_cast<std::size_t>(branch_var)];
    Node zero = node;
    zero.fixings.push_back({branch_var, 0.0});
    Node one = node;
    one.fixings.push_back({branch_var, 1.0});
    if (x >= 0.5) {
      stack.push_back(std::move(zero));
      stack.push_back(std::move(one));
    } else {
      stack.push_back(std::move(one));
      stack.push_back(std::move(zero));
    }
  }

  best.nodes_explored = stats.nodes_explored;
  best.lp_iterations = stats.lp_iterations;
  if (sparse != nullptr) best.lp_warm_hits = sparse->warm_hits();
  return best;
}

}  // namespace curb::opt
