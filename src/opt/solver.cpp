#include "curb/opt/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "curb/prof/profiler.hpp"

namespace curb::opt {

std::optional<CapSolverBackend> parse_cap_solver_backend(std::string_view name) {
  if (name == "dense") return CapSolverBackend::kDense;
  if (name == "sparse") return CapSolverBackend::kSparse;
  if (name == "heuristic") return CapSolverBackend::kHeuristic;
  return std::nullopt;
}

CapResult CapSolver::solve(const CapInstance& instance, CapObjective objective,
                           const Assignment* previous) {
  if (previous == nullptr && options_.reuse_last_assignment && last_ &&
      last_->num_switches() == instance.num_switches &&
      last_->num_controllers() == instance.num_controllers) {
    previous = &*last_;
  }
  CapResult result = do_solve(instance, objective, previous);
  if (result.feasible) last_ = result.assignment;
  return result;
}

namespace {

class DenseCapSolver final : public CapSolver {
 public:
  explicit DenseCapSolver(CapSolverOptions options) : CapSolver{std::move(options)} {
    options_.milp.lp_backend = LpBackend::kDense;
  }
  [[nodiscard]] CapSolverBackend backend() const override {
    return CapSolverBackend::kDense;
  }

 protected:
  CapResult do_solve(const CapInstance& instance, CapObjective objective,
                     const Assignment* previous) override {
    // seed_incumbent_from_previous stays off: the incumbent influences which
    // of several optimal assignments branch-and-bound returns, and the dense
    // path is the byte-stable baseline for same-seed simulation runs.
    return solve_cap(instance, objective, previous, options_.milp,
                     /*seed_incumbent_from_previous=*/false);
  }
};

class SparseCapSolver final : public CapSolver {
 public:
  explicit SparseCapSolver(CapSolverOptions options) : CapSolver{std::move(options)} {
    options_.milp.lp_backend = LpBackend::kSparse;
  }
  [[nodiscard]] CapSolverBackend backend() const override {
    return CapSolverBackend::kSparse;
  }

 protected:
  CapResult do_solve(const CapInstance& instance, CapObjective objective,
                     const Assignment* previous) override {
    return solve_cap(instance, objective, previous, options_.milp,
                     /*seed_incumbent_from_previous=*/true);
  }
};

class HeuristicCapSolver final : public CapSolver {
 public:
  explicit HeuristicCapSolver(CapSolverOptions options)
      : CapSolver{std::move(options)} {}
  [[nodiscard]] CapSolverBackend backend() const override {
    return CapSolverBackend::kHeuristic;
  }

 protected:
  CapResult do_solve(const CapInstance& instance, CapObjective objective,
                     const Assignment* previous) override {
    prof::StopWatch sw;
    CapResult result;
    result.stats.backend = "heuristic";

    std::optional<Assignment> assignment =
        partition_assign(instance, objective, previous, options_.heuristic);
    if (!assignment) {
      // The partition can get stuck on feasible instances; fall back to the
      // exact solvers' construction heuristics before giving up.
      assignment = (objective == CapObjective::kLeastMovement && previous != nullptr)
                       ? repair_assign(instance, *previous)
                       : greedy_assign(instance);
      result.stats.used_greedy_fallback = assignment.has_value();
    }
    if (assignment) {
      result.feasible = true;
      result.assignment = std::move(*assignment);
      result.objective = cap_objective_value(
          result.assignment, objective,
          objective == CapObjective::kLeastMovement ? previous : nullptr);
    }
    result.stats.wall_time_ms = sw.elapsed_ms();
    return result;
  }
};

}  // namespace

std::unique_ptr<CapSolver> make_cap_solver(CapSolverBackend backend,
                                           CapSolverOptions options) {
  switch (backend) {
    case CapSolverBackend::kDense:
      return std::make_unique<DenseCapSolver>(std::move(options));
    case CapSolverBackend::kSparse:
      return std::make_unique<SparseCapSolver>(std::move(options));
    case CapSolverBackend::kHeuristic:
      return std::make_unique<HeuristicCapSolver>(std::move(options));
  }
  throw std::invalid_argument{"make_cap_solver: unknown backend"};
}

CapResult solve_cap_with(CapSolverBackend backend, const CapInstance& instance,
                         CapObjective objective, const Assignment* previous,
                         const MilpOptions& milp_options) {
  CapSolverOptions options;
  options.milp = milp_options;
  // One-shot: no cached assignment to reuse, and do not surprise callers
  // that pass previous == nullptr on purpose.
  options.reuse_last_assignment = false;
  return make_cap_solver(backend, std::move(options))
      ->solve(instance, objective, previous);
}

std::optional<double> optimality_gap(const CapInstance& instance,
                                     CapObjective objective,
                                     const Assignment* previous,
                                     double achieved_objective,
                                     const MilpOptions& milp_options) {
  const CapResult exact = solve_cap_with(CapSolverBackend::kSparse, instance,
                                         objective, previous, milp_options);
  if (!exact.feasible || !exact.stats.proven) return std::nullopt;
  const double opt = exact.objective;
  return (achieved_objective - opt) / std::max(opt, 1.0);
}

}  // namespace curb::opt
