#include "curb/opt/cap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "curb/prof/profiler.hpp"

namespace curb::opt {

CapInstance CapInstance::uniform(std::size_t switches, std::size_t controllers,
                                 int group_size_v, double switch_load_v,
                                 double controller_capacity_v) {
  CapInstance inst;
  inst.num_switches = switches;
  inst.num_controllers = controllers;
  inst.group_size.assign(switches, group_size_v);
  inst.switch_load.assign(switches, switch_load_v);
  inst.controller_capacity.assign(controllers, controller_capacity_v);
  inst.cs_delay.assign(switches, std::vector<double>(controllers, 0.0));
  inst.cc_delay.assign(controllers, std::vector<double>(controllers, 0.0));
  inst.byzantine.assign(controllers, false);
  inst.fixed_leader.assign(switches, std::nullopt);
  return inst;
}

void CapInstance::validate() const {
  auto fail = [](const std::string& what) { throw std::invalid_argument{what}; };
  auto fail_row = [&fail](const char* matrix, std::size_t row, std::size_t got,
                          std::size_t want) {
    fail("CapInstance: " + std::string{matrix} + " row " + std::to_string(row) +
         " has " + std::to_string(got) + " columns, expected " + std::to_string(want));
  };
  if (group_size.size() != num_switches) fail("CapInstance: group_size size");
  if (switch_load.size() != num_switches) fail("CapInstance: switch_load size");
  if (controller_capacity.size() != num_controllers) {
    fail("CapInstance: controller_capacity size");
  }
  if (cs_delay.size() != num_switches) fail("CapInstance: cs_delay rows");
  for (std::size_t i = 0; i < cs_delay.size(); ++i) {
    // Ragged rows would silently misindex in the solvers; reject every one,
    // not just those a currently-enabled constraint happens to read.
    if (cs_delay[i].size() != num_controllers) {
      fail_row("cs_delay", i, cs_delay[i].size(), num_controllers);
    }
  }
  // cc_delay may be omitted entirely when the C2C constraint is disabled,
  // but a present matrix must be square even then — callers (and a later
  // flip of max_cc_delay) index it as num_controllers x num_controllers.
  if (max_cc_delay != kNoLimit && cc_delay.size() != num_controllers) {
    fail("CapInstance: cc_delay rows");
  }
  if (!cc_delay.empty()) {
    if (cc_delay.size() != num_controllers) fail("CapInstance: cc_delay rows");
    for (std::size_t j = 0; j < cc_delay.size(); ++j) {
      if (cc_delay[j].size() != num_controllers) {
        fail_row("cc_delay", j, cc_delay[j].size(), num_controllers);
      }
    }
  }
  if (!byzantine.empty() && byzantine.size() != num_controllers) {
    fail("CapInstance: byzantine size");
  }
  if (!fixed_leader.empty() && fixed_leader.size() != num_switches) {
    fail("CapInstance: fixed_leader size");
  }
  for (std::size_t i = 0; i < fixed_leader.size(); ++i) {
    if (fixed_leader[i] &&
        (*fixed_leader[i] < 0 ||
         static_cast<std::size_t>(*fixed_leader[i]) >= num_controllers)) {
      fail("CapInstance: fixed_leader[" + std::to_string(i) + "] = " +
           std::to_string(*fixed_leader[i]) + " out of controller range");
    }
  }
  for (std::size_t i = 0; i < num_switches; ++i) {
    if (group_size[i] < 1) fail("CapInstance: group_size must be >= 1");
    if (switch_load[i] < 0.0) fail("CapInstance: switch_load must be >= 0");
  }
  for (std::size_t j = 0; j < num_controllers; ++j) {
    if (controller_capacity[j] < 0.0) {
      fail("CapInstance: controller_capacity must be >= 0");
    }
  }
}

std::vector<std::size_t> Assignment::group_of(std::size_t sw) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < assign_[sw].size(); ++j) {
    if (assign_[sw][j]) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> Assignment::switches_of(std::size_t ctl) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < assign_.size(); ++i) {
    if (assign_[i][ctl]) out.push_back(i);
  }
  return out;
}

bool Assignment::controller_used(std::size_t ctl) const {
  for (const auto& row : assign_) {
    if (row[ctl]) return true;
  }
  return false;
}

std::size_t Assignment::controllers_used() const {
  std::size_t used = 0;
  for (std::size_t j = 0; j < num_controllers(); ++j) used += controller_used(j) ? 1 : 0;
  return used;
}

std::size_t Assignment::total_links() const {
  std::size_t links = 0;
  for (const auto& row : assign_) {
    links += static_cast<std::size_t>(std::count(row.begin(), row.end(), true));
  }
  return links;
}

double Assignment::pdl(const Assignment& before, const Assignment& after) {
  if (before.num_switches() != after.num_switches() ||
      before.num_controllers() != after.num_controllers()) {
    throw std::invalid_argument{"Assignment::pdl: dimension mismatch"};
  }
  std::size_t removed = 0;
  std::size_t added = 0;
  for (std::size_t i = 0; i < before.num_switches(); ++i) {
    for (std::size_t j = 0; j < before.num_controllers(); ++j) {
      const bool was = before.assigned(i, j);
      const bool is = after.assigned(i, j);
      if (was && !is) ++removed;
      if (!was && is) ++added;
    }
  }
  const std::size_t denom = before.total_links() + added;
  if (denom == 0) return 0.0;
  return static_cast<double>(removed + added) / static_cast<double>(denom);
}

double cap_objective_value(const Assignment& assignment, CapObjective objective,
                           const Assignment* previous) {
  double value = static_cast<double>(assignment.controllers_used());
  if (objective == CapObjective::kLeastMovement) {
    if (previous == nullptr) {
      throw std::invalid_argument{
          "cap_objective_value: LCR objective requires a previous assignment"};
    }
    std::size_t changed = 0;
    for (std::size_t i = 0; i < assignment.num_switches(); ++i) {
      for (std::size_t j = 0; j < assignment.num_controllers(); ++j) {
        if (assignment.assigned(i, j) != previous->assigned(i, j)) ++changed;
      }
    }
    value += static_cast<double>(changed);
  }
  return value;
}

bool Assignment::feasible_for(const CapInstance& inst) const {
  if (num_switches() != inst.num_switches || num_controllers() != inst.num_controllers) {
    return false;
  }
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    int count = 0;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (!assigned(i, j)) continue;
      ++count;
      if (!inst.byzantine.empty() && inst.byzantine[j]) return false;
      if (inst.max_cs_delay != CapInstance::kNoLimit &&
          inst.cs_delay[i][j] > inst.max_cs_delay) {
        return false;
      }
    }
    if (count < inst.group_size[i]) return false;
    if (!inst.fixed_leader.empty() && inst.fixed_leader[i] &&
        !assigned(i, static_cast<std::size_t>(*inst.fixed_leader[i]))) {
      return false;
    }
    if (inst.max_cc_delay != CapInstance::kNoLimit) {
      const auto group = group_of(i);
      for (std::size_t a = 0; a < group.size(); ++a) {
        for (std::size_t b = a + 1; b < group.size(); ++b) {
          if (inst.cc_delay[group[a]][group[b]] > inst.max_cc_delay ||
              inst.cc_delay[group[b]][group[a]] > inst.max_cc_delay) {
            return false;
          }
        }
      }
    }
  }
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    double load = 0.0;
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      if (assigned(i, j)) load += inst.switch_load[i];
    }
    if (load > inst.controller_capacity[j] + 1e-9) return false;
  }
  return true;
}

namespace {

[[nodiscard]] bool is_byzantine(const CapInstance& inst, std::size_t j) {
  return !inst.byzantine.empty() && inst.byzantine[j];
}

[[nodiscard]] bool eligible(const CapInstance& inst, std::size_t i, std::size_t j) {
  if (is_byzantine(inst, j)) return false;
  if (inst.max_cs_delay != CapInstance::kNoLimit && inst.cs_delay[i][j] > inst.max_cs_delay) {
    return false;
  }
  return true;
}

[[nodiscard]] std::optional<int> leader_of(const CapInstance& inst, std::size_t i) {
  if (inst.fixed_leader.empty()) return std::nullopt;
  return inst.fixed_leader[i];
}

}  // namespace

std::optional<Assignment> greedy_assign(const CapInstance& inst) {
  inst.validate();
  Assignment out{inst.num_switches, inst.num_controllers};
  std::vector<double> remaining_capacity = inst.controller_capacity;
  std::vector<int> need = inst.group_size;

  // Fixed leaders first — they are hard requirements.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    const auto leader = leader_of(inst, i);
    if (!leader) continue;
    const auto j = static_cast<std::size_t>(*leader);
    if (!eligible(inst, i, j) || remaining_capacity[j] < inst.switch_load[i]) {
      return std::nullopt;
    }
    out.set(i, j, true);
    remaining_capacity[j] -= inst.switch_load[i];
    --need[i];
  }

  // Repeatedly pick the controller that can serve the most unmet demand.
  for (;;) {
    bool any_need = false;
    for (std::size_t i = 0; i < inst.num_switches; ++i) any_need |= need[i] > 0;
    if (!any_need) break;

    std::size_t best_ctl = inst.num_controllers;
    int best_score = 0;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      int score = 0;
      double cap = remaining_capacity[j];
      for (std::size_t i = 0; i < inst.num_switches; ++i) {
        if (need[i] > 0 && !out.assigned(i, j) && eligible(inst, i, j) &&
            cap >= inst.switch_load[i]) {
          ++score;
          cap -= inst.switch_load[i];
        }
      }
      if (score > best_score) {
        best_score = score;
        best_ctl = j;
      }
    }
    if (best_ctl == inst.num_controllers) return std::nullopt;  // stuck

    // Serve the neediest switches first, nearest-first among ties.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      if (need[i] > 0 && !out.assigned(i, best_ctl) && eligible(inst, i, best_ctl)) {
        candidates.push_back(i);
      }
    }
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      if (need[a] != need[b]) return need[a] > need[b];
      return inst.cs_delay[a][best_ctl] < inst.cs_delay[b][best_ctl];
    });
    bool progressed = false;
    for (const std::size_t i : candidates) {
      if (remaining_capacity[best_ctl] < inst.switch_load[i]) continue;
      out.set(i, best_ctl, true);
      remaining_capacity[best_ctl] -= inst.switch_load[i];
      --need[i];
      progressed = true;
    }
    if (!progressed) return std::nullopt;
  }

  // The greedy ignores the C2C constraint; reject if violated so callers
  // never receive an infeasible warm start.
  if (!out.feasible_for(inst)) return std::nullopt;
  return out;
}

std::optional<Assignment> repair_assign(const CapInstance& inst, const Assignment& previous) {
  inst.validate();
  if (previous.num_switches() != inst.num_switches ||
      previous.num_controllers() != inst.num_controllers) {
    return std::nullopt;
  }
  Assignment out{inst.num_switches, inst.num_controllers};
  std::vector<double> remaining_capacity = inst.controller_capacity;

  // Keep links that are still legal.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (previous.assigned(i, j) && eligible(inst, i, j) &&
          remaining_capacity[j] >= inst.switch_load[i]) {
        out.set(i, j, true);
        remaining_capacity[j] -= inst.switch_load[i];
      }
    }
  }
  // Honour fixed leaders.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    const auto leader = leader_of(inst, i);
    if (!leader || out.assigned(i, static_cast<std::size_t>(*leader))) continue;
    const auto j = static_cast<std::size_t>(*leader);
    if (!eligible(inst, i, j) || remaining_capacity[j] < inst.switch_load[i]) {
      return std::nullopt;
    }
    out.set(i, j, true);
    remaining_capacity[j] -= inst.switch_load[i];
  }
  // Top up groups below B_i with nearest eligible controllers.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    int have = static_cast<int>(out.group_of(i).size());
    if (have >= inst.group_size[i]) continue;
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (!out.assigned(i, j) && eligible(inst, i, j)) candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      return inst.cs_delay[i][a] < inst.cs_delay[i][b];
    });
    for (const std::size_t j : candidates) {
      if (have >= inst.group_size[i]) break;
      if (remaining_capacity[j] < inst.switch_load[i]) continue;
      out.set(i, j, true);
      remaining_capacity[j] -= inst.switch_load[i];
      ++have;
    }
    if (have < inst.group_size[i]) return std::nullopt;
  }
  if (!out.feasible_for(inst)) return std::nullopt;
  return out;
}

CapResult solve_cap(const CapInstance& inst, CapObjective objective,
                    const Assignment* previous, const MilpOptions& milp_options,
                    bool seed_incumbent_from_previous) {
  inst.validate();
  if (objective == CapObjective::kLeastMovement && previous == nullptr) {
    throw std::invalid_argument{"solve_cap: LCR objective requires a previous assignment"};
  }
  const prof::Scope scope{"solver.cap"};
  prof::StopWatch sw;

  LpProblem lp;
  // A_ij variables, created only for eligible pairs ([C2.3]/[C2.5] are
  // enforced by omission — ineligible A_ij is identically zero).
  std::vector<std::vector<int>> a_var(inst.num_switches,
                                      std::vector<int>(inst.num_controllers, -1));
  std::vector<int> binaries;
  double lcr_constant = 0.0;
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      const bool was = previous != nullptr && previous->assigned(i, j);
      if (!eligible(inst, i, j)) {
        // |A_ij - a_ij| with A forced 0 contributes a_ij to the LCR objective.
        if (objective == CapObjective::kLeastMovement && was) lcr_constant += 1.0;
        continue;
      }
      // LCR linearisation for binary A and constant a: |A - a| = a + (1-2a)A.
      double cost = 0.0;
      if (objective == CapObjective::kLeastMovement) {
        cost = was ? -1.0 : 1.0;
        if (was) lcr_constant += 1.0;
      }
      const int v = lp.add_variable(cost, 0.0, 1.0);
      a_var[i][j] = v;
      binaries.push_back(v);
    }
  }
  // x_j usage variables; byzantine controllers pinned to zero ([C2.5]).
  std::vector<int> x_var(inst.num_controllers, -1);
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    const double ub = is_byzantine(inst, j) ? 0.0 : 1.0;
    x_var[j] = lp.add_variable(1.0, 0.0, ub);
    binaries.push_back(x_var[j]);
  }

  // [C1.1]/[C2.1]: group size; and linking sum_i A_ij <= |S| * x_j.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (a_var[i][j] >= 0) terms.push_back({a_var[i][j], 1.0});
    }
    if (static_cast<int>(terms.size()) < inst.group_size[i]) {
      // Not enough eligible controllers: trivially infeasible.
      CapResult r;
      r.stats.backend =
          milp_options.lp_backend == LpBackend::kSparse ? "sparse" : "dense";
      r.stats.wall_time_ms = 0.0;
      r.stats.proven = true;
      return r;
    }
    lp.add_constraint(std::move(terms), LpProblem::Sense::kGe,
                      static_cast<double>(inst.group_size[i]));
  }
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      if (a_var[i][j] >= 0) terms.push_back({a_var[i][j], 1.0});
    }
    if (terms.empty()) continue;
    terms.push_back({x_var[j], -static_cast<double>(inst.num_switches)});
    lp.add_constraint(std::move(terms), LpProblem::Sense::kLe, 0.0);
  }
  // Valid covering cut (implied by A_ij <= x_j with [C2.1]): every switch
  // needs at least B_i *used* eligible controllers. Aggregated per switch,
  // it tightens the LP bound on controller usage dramatically — without it
  // the relaxation bounds usage by total_links/|S| and branch-and-bound
  // degenerates into enumeration.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (a_var[i][j] >= 0) terms.push_back({x_var[j], 1.0});
    }
    lp.add_constraint(std::move(terms), LpProblem::Sense::kGe,
                      static_cast<double>(inst.group_size[i]));
  }
  // [C1.2]/[C2.2]: capacity.
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      if (a_var[i][j] >= 0 && inst.switch_load[i] > 0) {
        terms.push_back({a_var[i][j], inst.switch_load[i]});
      }
    }
    if (!terms.empty()) {
      lp.add_constraint(std::move(terms), LpProblem::Sense::kLe,
                        inst.controller_capacity[j]);
    }
  }
  // [C1.4]/[C2.4]: C2C delay — quadratic A_ij * A_ij' <= ... linearised to
  // pair exclusions A_ij + A_ij' <= 1 for pairs exceeding D_c,c. This is
  // the constraint family that makes the paper's Gurobi solve an IQCP and
  // visibly slower (Fig. 6); here it shows up as many extra rows.
  if (inst.max_cc_delay != CapInstance::kNoLimit) {
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      for (std::size_t j = 0; j < inst.num_controllers; ++j) {
        if (a_var[i][j] < 0) continue;
        for (std::size_t j2 = j + 1; j2 < inst.num_controllers; ++j2) {
          if (a_var[i][j2] < 0) continue;
          if (inst.cc_delay[j][j2] > inst.max_cc_delay ||
              inst.cc_delay[j2][j] > inst.max_cc_delay) {
            lp.add_constraint({{a_var[i][j], 1.0}, {a_var[i][j2], 1.0}},
                              LpProblem::Sense::kLe, 1.0);
          }
        }
      }
    }
  }
  // [C2.6]: fixed leaders.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    const auto leader = leader_of(inst, i);
    if (!leader) continue;
    const int v = a_var[i][static_cast<std::size_t>(*leader)];
    if (v < 0) {
      CapResult r;  // leader not eligible: infeasible
      r.stats.backend =
          milp_options.lp_backend == LpBackend::kSparse ? "sparse" : "dense";
      r.stats.proven = true;
      return r;
    }
    lp.set_bounds(v, 1.0, 1.0);
  }

  // Warm start: repair the previous assignment for LCR, greedy otherwise.
  // With seed_incumbent_from_previous, a kTrivial re-solve also repairs the
  // previous assignment and keeps whichever incumbent scores better —
  // reassignment instances barely move, so the repair usually wins.
  std::optional<Assignment> warm =
      (objective == CapObjective::kLeastMovement && previous != nullptr)
          ? repair_assign(inst, *previous)
          : greedy_assign(inst);
  if (seed_incumbent_from_previous && objective == CapObjective::kTrivial &&
      previous != nullptr) {
    std::optional<Assignment> repaired = repair_assign(inst, *previous);
    if (repaired &&
        (!warm || repaired->controllers_used() < warm->controllers_used())) {
      warm = std::move(repaired);
    }
  }
  MilpOptions options = milp_options;
  double warm_objective = 0.0;
  if (warm) {
    warm_objective = cap_objective_value(
        *warm, objective,
        objective == CapObjective::kLeastMovement ? previous : nullptr);
    // The MILP objective omits lcr_constant; convert the incumbent to match.
    options.incumbent_objective = warm_objective - lcr_constant;
  }

  const std::size_t num_constraints = lp.num_constraints();
  MilpSolver solver{std::move(lp)};
  solver.set_binary(binaries);
  // Deciding which controllers are used dominates the combinatorics; the
  // A_ij layer mostly follows once x is fixed.
  std::vector<int> usable_x;
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    if (!is_byzantine(inst, j)) usable_x.push_back(x_var[j]);
  }
  solver.set_branch_priority(usable_x);
  const MilpSolution milp = solver.solve(options);

  CapResult result;
  result.stats.backend =
      milp_options.lp_backend == LpBackend::kSparse ? "sparse" : "dense";
  result.stats.milp_nodes = milp.nodes_explored;
  result.stats.lp_iterations = milp.lp_iterations;
  result.stats.lp_warm_hits = milp.lp_warm_hits;
  result.stats.num_variables = binaries.size();
  result.stats.num_constraints = num_constraints;
  result.stats.proven = !milp.hit_node_limit && !milp.hit_time_limit;

  if (milp.status == LpStatus::kOptimal) {
    result.feasible = true;
    result.assignment = Assignment{inst.num_switches, inst.num_controllers};
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      for (std::size_t j = 0; j < inst.num_controllers; ++j) {
        if (a_var[i][j] >= 0 &&
            milp.values[static_cast<std::size_t>(a_var[i][j])] > 0.5) {
          result.assignment.set(i, j, true);
        }
      }
    }
    result.objective = milp.objective + lcr_constant;
  } else if (warm) {
    // Search proved nothing beats the warm start: the heuristic is optimal
    // (or the node limit was hit and it is the best known).
    result.feasible = true;
    result.assignment = *warm;
    result.objective = warm_objective;  // already includes lcr_constant terms
    result.stats.used_greedy_fallback = true;
  }

  result.stats.wall_time_ms = sw.elapsed_ms();
  return result;
}

}  // namespace curb::opt
