#include "curb/opt/instance_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "curb/sim/rng.hpp"

namespace curb::opt {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

CapInstance generate_instance(const GenProfile& profile) {
  sim::Rng rng{profile.seed};
  const std::size_t s = profile.switches;
  const std::size_t c = profile.controllers;
  const int group = 3 * profile.faults_tolerated + 1;

  CapInstance inst;
  inst.num_switches = s;
  inst.num_controllers = c;
  inst.group_size.assign(s, group);

  // Planar geometry in a 100x100 square; delays are distances (ms ~ km/100
  // is close enough to the paper's emulated WANs for solver purposes).
  std::vector<Point> sw_pos(s);
  std::vector<Point> ctl_pos(c);
  for (auto& p : sw_pos) p = {rng.next_double_in(0.0, 100.0), rng.next_double_in(0.0, 100.0)};
  for (auto& p : ctl_pos) p = {rng.next_double_in(0.0, 100.0), rng.next_double_in(0.0, 100.0)};

  inst.cs_delay.assign(s, std::vector<double>(c, 0.0));
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < c; ++j) inst.cs_delay[i][j] = dist(sw_pos[i], ctl_pos[j]);
  }
  inst.cc_delay.assign(c, std::vector<double>(c, 0.0));
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t k = 0; k < c; ++k) inst.cc_delay[j][k] = dist(ctl_pos[j], ctl_pos[k]);
  }

  inst.switch_load.resize(s);
  double total_load = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    inst.switch_load[i] = rng.next_double_in(1.0, 10.0);
    total_load += inst.switch_load[i];
  }

  // Byzantine marks before the delay caps so eligibility counts are honest.
  inst.byzantine.assign(c, false);
  if (profile.byzantine_frac > 0.0 && c > 0) {
    auto want = static_cast<std::size_t>(profile.byzantine_frac * static_cast<double>(c));
    const std::size_t max_byz = c > static_cast<std::size_t>(group) + 1
                                    ? c - static_cast<std::size_t>(group) - 1
                                    : 0;
    want = std::min(want, max_byz);
    std::vector<std::size_t> order(c);
    for (std::size_t j = 0; j < c; ++j) order[j] = j;
    rng.shuffle(order);
    for (std::size_t k = 0; k < want; ++k) inst.byzantine[order[k]] = true;
  }

  if (profile.cs_delay_cap) {
    // Cap at the largest (B_i + 2)-th nearest honest-controller distance over
    // all switches: every switch keeps >= group + 2 eligible controllers.
    double cap = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      std::vector<double> honest;
      for (std::size_t j = 0; j < c; ++j) {
        if (!inst.byzantine[j]) honest.push_back(inst.cs_delay[i][j]);
      }
      std::sort(honest.begin(), honest.end());
      const std::size_t rank = std::min(honest.size(), static_cast<std::size_t>(group) + 2);
      if (rank > 0) cap = std::max(cap, honest[rank - 1]);
    }
    inst.max_cs_delay = cap;
  }
  if (profile.cc_delay_cap) {
    // Loose enough that nearby controllers group, tight enough to exclude
    // diagonal pairs: 75% of the square's diagonal.
    inst.max_cc_delay = 0.75 * std::hypot(100.0, 100.0);
  }

  // Every switch loads each of its group controllers, so the aggregate
  // requirement is sum_i Q_i * B_i spread over the honest controllers.
  std::size_t honest = 0;
  for (std::size_t j = 0; j < c; ++j) honest += inst.byzantine[j] ? 0 : 1;
  const double per_controller =
      honest == 0 ? 1.0
                  : total_load * static_cast<double>(group) / static_cast<double>(honest);
  inst.controller_capacity.resize(c);
  for (std::size_t j = 0; j < c; ++j) {
    inst.controller_capacity[j] =
        per_controller * profile.capacity_slack * rng.next_double_in(0.8, 1.2);
  }

  inst.fixed_leader.assign(s, std::nullopt);
  if (profile.fixed_leader_frac > 0.0) {
    for (std::size_t i = 0; i < s; ++i) {
      if (!rng.next_bool(profile.fixed_leader_frac)) continue;
      std::size_t best = c;
      for (std::size_t j = 0; j < c; ++j) {
        if (inst.byzantine[j]) continue;
        if (inst.max_cs_delay != CapInstance::kNoLimit &&
            inst.cs_delay[i][j] > inst.max_cs_delay) {
          continue;
        }
        if (best == c || inst.cs_delay[i][j] < inst.cs_delay[i][best]) best = j;
      }
      if (best < c) inst.fixed_leader[i] = static_cast<int>(best);
    }
  }

  inst.validate();
  return inst;
}

}  // namespace curb::opt
