#include "curb/opt/instance_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "curb/prof/bench_diff.hpp"

namespace curb::opt {

namespace {

using prof::JsonValue;

/// Shortest round-trip decimal form; JSON has no infinity, so callers must
/// encode kNoLimit as null before reaching this.
void append_number(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error{"instance_to_json: number format"};
  out.append(buf, end);
}

void append_vector(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    append_number(out, v[i]);
  }
  out += ']';
}

void append_matrix(std::string& out, const char* indent,
                   const std::vector<std::vector<double>>& m) {
  out += '[';
  for (std::size_t i = 0; i < m.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    append_vector(out, m[i]);
  }
  if (!m.empty()) {
    out += '\n';
    out += indent + 2;  // close two spaces shallower than the rows
  }
  out += ']';
}

[[nodiscard]] const JsonValue& member(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw std::runtime_error{"instance_from_json: missing key '" + std::string{key} + "'"};
  }
  return *v;
}

[[nodiscard]] double as_number(const JsonValue& v, const char* what) {
  if (v.type != JsonValue::Type::kNumber) {
    throw std::runtime_error{"instance_from_json: '" + std::string{what} +
                             "' is not a number"};
  }
  return v.number;
}

[[nodiscard]] std::vector<double> as_vector(const JsonValue& v, const char* what) {
  if (v.type != JsonValue::Type::kArray) {
    throw std::runtime_error{"instance_from_json: '" + std::string{what} +
                             "' is not an array"};
  }
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) out.push_back(as_number(e, what));
  return out;
}

[[nodiscard]] std::vector<std::vector<double>> as_matrix(const JsonValue& v,
                                                         const char* what) {
  if (v.type != JsonValue::Type::kArray) {
    throw std::runtime_error{"instance_from_json: '" + std::string{what} +
                             "' is not an array"};
  }
  std::vector<std::vector<double>> out;
  out.reserve(v.array.size());
  for (const JsonValue& row : v.array) out.push_back(as_vector(row, what));
  return out;
}

/// null -> kNoLimit, number -> itself.
[[nodiscard]] double as_limit(const JsonValue& v, const char* what) {
  if (v.type == JsonValue::Type::kNull) return CapInstance::kNoLimit;
  return as_number(v, what);
}

}  // namespace

std::string instance_to_json(const StoredInstance& stored) {
  const CapInstance& inst = stored.instance;
  std::string out;
  out += "{\n";
  out += "  \"name\": \"" + stored.name + "\",\n";
  out += "  \"num_switches\": " + std::to_string(inst.num_switches) + ",\n";
  out += "  \"num_controllers\": " + std::to_string(inst.num_controllers) + ",\n";
  out += "  \"group_size\": [";
  for (std::size_t i = 0; i < inst.group_size.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(inst.group_size[i]);
  }
  out += "],\n";
  out += "  \"switch_load\": ";
  append_vector(out, inst.switch_load);
  out += ",\n  \"controller_capacity\": ";
  append_vector(out, inst.controller_capacity);
  out += ",\n  \"max_cs_delay\": ";
  if (inst.max_cs_delay == CapInstance::kNoLimit) {
    out += "null";
  } else {
    append_number(out, inst.max_cs_delay);
  }
  out += ",\n  \"max_cc_delay\": ";
  if (inst.max_cc_delay == CapInstance::kNoLimit) {
    out += "null";
  } else {
    append_number(out, inst.max_cc_delay);
  }
  out += ",\n  \"cs_delay\": ";
  append_matrix(out, "    ", inst.cs_delay);
  out += ",\n  \"cc_delay\": ";
  append_matrix(out, "    ", inst.cc_delay);
  out += ",\n  \"byzantine\": [";
  for (std::size_t j = 0; j < inst.byzantine.size(); ++j) {
    if (j != 0) out += ", ";
    out += inst.byzantine[j] ? "true" : "false";
  }
  out += "],\n  \"fixed_leader\": [";
  for (std::size_t i = 0; i < inst.fixed_leader.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(inst.fixed_leader[i] ? *inst.fixed_leader[i] : -1);
  }
  out += "]";
  if (stored.tcr_optimum) {
    out += ",\n  \"tcr_optimum\": ";
    append_number(out, *stored.tcr_optimum);
  }
  if (stored.feasible) {
    out += ",\n  \"feasible\": ";
    out += *stored.feasible ? "true" : "false";
  }
  out += "\n}\n";
  return out;
}

StoredInstance instance_from_json(const std::string& text) {
  const JsonValue root = prof::parse_json(text);
  if (root.type != JsonValue::Type::kObject) {
    throw std::runtime_error{"instance_from_json: document is not an object"};
  }
  StoredInstance stored;
  if (const JsonValue* name = root.find("name");
      name != nullptr && name->type == JsonValue::Type::kString) {
    stored.name = name->str;
  }
  CapInstance& inst = stored.instance;
  inst.num_switches =
      static_cast<std::size_t>(as_number(member(root, "num_switches"), "num_switches"));
  inst.num_controllers = static_cast<std::size_t>(
      as_number(member(root, "num_controllers"), "num_controllers"));
  inst.group_size.clear();
  for (const double g : as_vector(member(root, "group_size"), "group_size")) {
    inst.group_size.push_back(static_cast<int>(g));
  }
  inst.switch_load = as_vector(member(root, "switch_load"), "switch_load");
  inst.controller_capacity =
      as_vector(member(root, "controller_capacity"), "controller_capacity");
  inst.max_cs_delay = as_limit(member(root, "max_cs_delay"), "max_cs_delay");
  inst.max_cc_delay = as_limit(member(root, "max_cc_delay"), "max_cc_delay");
  inst.cs_delay = as_matrix(member(root, "cs_delay"), "cs_delay");
  inst.cc_delay = as_matrix(member(root, "cc_delay"), "cc_delay");
  inst.byzantine.clear();
  const JsonValue& byz = member(root, "byzantine");
  if (byz.type != JsonValue::Type::kArray) {
    throw std::runtime_error{"instance_from_json: 'byzantine' is not an array"};
  }
  for (const JsonValue& b : byz.array) {
    if (b.type != JsonValue::Type::kBool) {
      throw std::runtime_error{"instance_from_json: 'byzantine' element is not a bool"};
    }
    inst.byzantine.push_back(b.boolean);
  }
  inst.fixed_leader.clear();
  for (const double leader :
       as_vector(member(root, "fixed_leader"), "fixed_leader")) {
    const int l = static_cast<int>(leader);
    inst.fixed_leader.push_back(l < 0 ? std::nullopt : std::optional<int>{l});
  }
  if (const JsonValue* opt = root.find("tcr_optimum"); opt != nullptr) {
    stored.tcr_optimum = as_number(*opt, "tcr_optimum");
  }
  if (const JsonValue* feas = root.find("feasible");
      feas != nullptr && feas->type == JsonValue::Type::kBool) {
    stored.feasible = feas->boolean;
  }
  inst.validate();
  return stored;
}

StoredInstance load_instance(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_instance: cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return instance_from_json(buf.str());
}

bool save_instance(const StoredInstance& stored, const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;
  out << instance_to_json(stored);
  return static_cast<bool>(out);
}

}  // namespace curb::opt
