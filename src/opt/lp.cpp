#include "curb/opt/lp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "curb/prof/profiler.hpp"

namespace curb::opt {

int LpProblem::add_variable(double cost, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument{"LpProblem: lower > upper"};
  cost_.push_back(cost);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return static_cast<int>(cost_.size()) - 1;
}

void LpProblem::add_constraint(std::vector<std::pair<int, double>> terms, Sense sense,
                               double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    if (var < 0 || static_cast<std::size_t>(var) >= cost_.size()) {
      throw std::out_of_range{"LpProblem: constraint references unknown variable"};
    }
  }
  rows_.push_back(Row{std::move(terms), sense, rhs});
}

void LpProblem::set_bounds(int j, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument{"LpProblem: lower > upper"};
  lower_[static_cast<std::size_t>(j)] = lower;
  upper_[static_cast<std::size_t>(j)] = upper;
}

namespace {

constexpr double kEps = 1e-7;
constexpr double kPivotEps = 1e-9;

/// Two-phase primal simplex over a dense tableau with bounded variables.
/// Nonbasic variables rest at one of their bounds; the ratio test considers
/// basic variables hitting either bound plus the entering variable flipping
/// to its opposite bound. Basic values and reduced costs are maintained
/// incrementally so an iteration costs one tableau pivot.
class Simplex {
 public:
  Simplex(const LpProblem& p, std::size_t max_iterations)
      : problem_{p}, max_iterations_{max_iterations} {}

  LpSolution solve() {
    build();
    // Phase 1: minimize the sum of artificials.
    reset_costs(phase1_cost_);
    if (!iterate()) return finish(LpStatus::kIterationLimit);
    if (phase_objective() > kEps) return finish(LpStatus::kInfeasible);
    pin_artificials();
    // Phase 2: minimize the real objective.
    reset_costs(phase2_cost_);
    if (!iterate()) return finish(LpStatus::kIterationLimit);
    if (unbounded_) return finish(LpStatus::kUnbounded);
    return finish(LpStatus::kOptimal);
  }

 private:
  enum class Status : std::uint8_t { kBasic, kAtLower, kAtUpper };

  void build() {
    const std::size_t n = problem_.num_variables();
    const std::size_t m = problem_.num_constraints();
    num_structural_ = n;
    num_rows_ = m;

    // Column layout: [structural | slack(one per row) | artificial(one per row)].
    num_cols_ = n + 2 * m;
    lower_.assign(num_cols_, 0.0);
    upper_.assign(num_cols_, LpProblem::kInf);
    for (std::size_t j = 0; j < n; ++j) {
      lower_[j] = problem_.lower(static_cast<int>(j));
      upper_[j] = problem_.upper(static_cast<int>(j));
    }

    tableau_.assign(m, std::vector<double>(num_cols_, 0.0));
    rhs_.assign(m, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      const auto& row = problem_.row(k);
      for (const auto& [var, coeff] : row.terms) {
        tableau_[k][static_cast<std::size_t>(var)] += coeff;
      }
      rhs_[k] = row.rhs;
      const std::size_t slack = n + k;
      switch (row.sense) {
        case LpProblem::Sense::kLe:
          tableau_[k][slack] = 1.0;
          break;
        case LpProblem::Sense::kGe:
          tableau_[k][slack] = -1.0;
          break;
        case LpProblem::Sense::kEq:
          lower_[slack] = 0.0;
          upper_[slack] = 0.0;  // pinned slack: row stays an equality
          tableau_[k][slack] = 1.0;
          break;
      }
    }

    // Initial nonbasic statuses: structural/slack at their finite bound.
    status_.assign(num_cols_, Status::kAtLower);
    for (std::size_t j = 0; j < n + m; ++j) {
      if (lower_[j] == -LpProblem::kInf && upper_[j] != LpProblem::kInf) {
        status_[j] = Status::kAtUpper;
      }
    }

    // Artificials complete an IDENTITY basis with nonnegative values. When a
    // row's residual is negative the whole row is negated (preserving the
    // equality) so the artificial coefficient can stay +1 — otherwise the
    // initial tableau would not equal B^-1 A and every subsequent reduced
    // cost would be wrong.
    basis_.assign(m, 0);
    xb_.assign(m, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      double activity = 0.0;
      for (std::size_t j = 0; j < n + m; ++j) {
        const double bv = bound_value(j);
        if (bv != 0.0) activity += tableau_[k][j] * bv;
      }
      double residual = rhs_[k] - activity;
      if (residual < 0) {
        for (std::size_t j = 0; j < n + m; ++j) tableau_[k][j] = -tableau_[k][j];
        rhs_[k] = -rhs_[k];
        residual = -residual;
      }
      const std::size_t art = n + m + k;
      tableau_[k][art] = 1.0;
      basis_[k] = art;
      status_[art] = Status::kBasic;
      xb_[k] = residual;
    }

    phase1_cost_.assign(num_cols_, 0.0);
    for (std::size_t k = 0; k < m; ++k) phase1_cost_[n + m + k] = 1.0;
    phase2_cost_.assign(num_cols_, 0.0);
    for (std::size_t j = 0; j < n; ++j) phase2_cost_[j] = problem_.cost(static_cast<int>(j));
  }

  [[nodiscard]] double bound_value(std::size_t j) const {
    if (status_[j] == Status::kAtUpper) return upper_[j];
    const double l = lower_[j];
    return l == -LpProblem::kInf ? 0.0 : l;
  }

  /// Recompute the maintained reduced-cost row for a new phase cost vector.
  void reset_costs(const std::vector<double>& cost) {
    cost_ = &cost;
    z_.assign(num_cols_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == Status::kBasic) continue;
      double z = cost[j];
      for (std::size_t k = 0; k < num_rows_; ++k) {
        const double c = cost[basis_[k]];
        if (c != 0.0) z -= c * tableau_[k][j];
      }
      z_[j] = z;
    }
  }

  [[nodiscard]] double phase_objective() const {
    double obj = 0.0;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] != Status::kBasic) obj += (*cost_)[j] * bound_value(j);
    }
    for (std::size_t k = 0; k < num_rows_; ++k) obj += (*cost_)[basis_[k]] * xb_[k];
    return obj;
  }

  /// After phase 1 every artificial sits at zero (phase-1 optimum); pin all
  /// of them to [0, 0] so phase 2 can never re-inflate one to absorb an
  /// infeasibility. Basic artificials stay basic at value zero.
  void pin_artificials() {
    const std::size_t art0 = num_structural_ + num_rows_;
    for (std::size_t j = art0; j < num_cols_; ++j) {
      lower_[j] = 0.0;
      upper_[j] = 0.0;
      if (status_[j] != Status::kBasic) status_[j] = Status::kAtLower;
    }
  }

  /// Run simplex iterations against the current cost. False on iteration limit.
  bool iterate() {
    std::size_t since_improvement = 0;
    double last_obj = phase_objective();
    const std::size_t bland_after = 4 * (num_rows_ + num_cols_);
    unbounded_ = false;

    while (iterations_ < max_iterations_) {
      const bool bland = since_improvement > bland_after;
      const int entering = choose_entering(bland);
      if (entering < 0) return true;  // optimal for this phase
      ++iterations_;

      if (!pivot_or_flip(static_cast<std::size_t>(entering))) {
        unbounded_ = true;
        return true;
      }
      const double obj = phase_objective();
      if (obj < last_obj - kEps) {
        last_obj = obj;
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
    }
    return false;
  }

  [[nodiscard]] int choose_entering(bool bland) const {
    int best = -1;
    double best_score = -kEps;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == Status::kBasic) continue;
      if (lower_[j] == upper_[j]) continue;  // pinned (equality slack, artificial)
      const double z = z_[j];
      double score = 0.0;
      if (status_[j] == Status::kAtLower && z < -kEps) score = z;
      else if (status_[j] == Status::kAtUpper && z > kEps) score = -z;
      else continue;
      if (bland) return static_cast<int>(j);  // first eligible index
      if (score < best_score) {
        best_score = score;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  /// Ratio test + pivot (or bound flip). Returns false when unbounded.
  bool pivot_or_flip(std::size_t entering) {
    const double sigma = status_[entering] == Status::kAtLower ? 1.0 : -1.0;

    double best_t = LpProblem::kInf;
    int leave_row = -1;
    bool leave_to_upper = false;

    // Bound flip of the entering variable itself.
    if (upper_[entering] != LpProblem::kInf && lower_[entering] != -LpProblem::kInf) {
      best_t = upper_[entering] - lower_[entering];
    }

    for (std::size_t k = 0; k < num_rows_; ++k) {
      const double a = tableau_[k][entering] * sigma;
      if (std::abs(a) <= kPivotEps) continue;
      const std::size_t bv = basis_[k];
      const double xk = xb_[k];
      double t;
      bool to_upper;
      if (a > 0) {
        // Basic value decreases toward its lower bound.
        if (lower_[bv] == -LpProblem::kInf) continue;
        t = (xk - lower_[bv]) / a;
        to_upper = false;
      } else {
        // Basic value increases toward its upper bound.
        if (upper_[bv] == LpProblem::kInf) continue;
        t = (xk - upper_[bv]) / a;  // a < 0 so t >= 0
        to_upper = true;
      }
      if (t < -kEps) t = 0.0;  // degenerate: clamp
      if (t < best_t - kPivotEps ||
          (leave_row >= 0 && t < best_t + kPivotEps &&
           bv < basis_[static_cast<std::size_t>(leave_row)])) {
        best_t = t;
        leave_row = static_cast<int>(k);
        leave_to_upper = to_upper;
      }
    }

    if (best_t == LpProblem::kInf) return false;  // unbounded direction

    if (leave_row < 0) {
      // Pure bound flip: entering moves to its opposite bound; basic values
      // shift by the full bound range along the entering column.
      const double t = best_t;
      for (std::size_t k = 0; k < num_rows_; ++k) {
        xb_[k] -= tableau_[k][entering] * sigma * t;
      }
      status_[entering] =
          status_[entering] == Status::kAtLower ? Status::kAtUpper : Status::kAtLower;
      return true;
    }

    // Pivot: entering becomes basic in leave_row; leaving var goes to a bound.
    const auto r = static_cast<std::size_t>(leave_row);
    const std::size_t leaving = basis_[r];
    const double t = best_t;

    // Update basic values along the direction first.
    for (std::size_t k = 0; k < num_rows_; ++k) {
      xb_[k] -= tableau_[k][entering] * sigma * t;
    }
    const double entering_value = bound_value(entering) + sigma * t;

    const double pivot = tableau_[r][entering];
    const double inv_pivot = 1.0 / pivot;
    auto& prow = tableau_[r];
    for (std::size_t j = 0; j < num_cols_; ++j) prow[j] *= inv_pivot;
    rhs_[r] *= inv_pivot;
    for (std::size_t k = 0; k < num_rows_; ++k) {
      if (k == r) continue;
      const double factor = tableau_[k][entering];
      if (std::abs(factor) <= kPivotEps) continue;
      auto& krow = tableau_[k];
      for (std::size_t j = 0; j < num_cols_; ++j) krow[j] -= factor * prow[j];
      rhs_[k] -= factor * rhs_[r];
    }
    // Maintain reduced costs. The generic update also produces the leaving
    // column's new reduced cost (-z_e / pivot), since its pre-pivot tableau
    // column was the unit vector for row r.
    const double z_e = z_[entering];
    if (z_e != 0.0) {
      for (std::size_t j = 0; j < num_cols_; ++j) z_[j] -= z_e * prow[j];
    }
    z_[entering] = 0.0;

    basis_[r] = entering;
    status_[entering] = Status::kBasic;
    status_[leaving] = leave_to_upper ? Status::kAtUpper : Status::kAtLower;
    xb_[r] = entering_value;
    return true;
  }

  LpSolution finish(LpStatus status) {
    LpSolution sol;
    sol.status = status;
    sol.iterations = iterations_;
    if (status != LpStatus::kOptimal) return sol;
    sol.values.assign(num_structural_, 0.0);
    for (std::size_t j = 0; j < num_structural_; ++j) {
      if (status_[j] != Status::kBasic) sol.values[j] = bound_value(j);
    }
    for (std::size_t k = 0; k < num_rows_; ++k) {
      if (basis_[k] < num_structural_) sol.values[basis_[k]] = xb_[k];
    }
    sol.objective = 0.0;
    for (std::size_t j = 0; j < num_structural_; ++j) {
      sol.objective += problem_.cost(static_cast<int>(j)) * sol.values[j];
    }
    return sol;
  }

  const LpProblem& problem_;
  std::size_t max_iterations_;
  std::size_t num_structural_ = 0;
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
  std::vector<std::vector<double>> tableau_;
  std::vector<double> rhs_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Status> status_;
  std::vector<std::size_t> basis_;
  std::vector<double> xb_;  // current values of basic variables, by row
  std::vector<double> z_;   // maintained reduced costs (valid for nonbasic)
  const std::vector<double>* cost_ = nullptr;
  std::vector<double> phase1_cost_;
  std::vector<double> phase2_cost_;
  std::size_t iterations_ = 0;
  bool unbounded_ = false;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, std::size_t max_iterations) {
  const prof::Scope scope{"solver.lp"};
  return Simplex{problem, max_iterations}.solve();
}

}  // namespace curb::opt
