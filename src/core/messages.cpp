#include "curb/core/messages.hpp"

#include "curb/chain/transaction.hpp"

namespace curb::core {

std::size_t wire_size(const CurbMessage& msg) {
  return std::visit([](const auto& m) { return m.wire_size(); }, msg);
}

std::string category_of(const CurbMessage& msg) {
  struct Visitor {
    std::string operator()(const sdn::RequestMsg& m) const {
      return std::string{chain::to_string(m.type)};
    }
    std::string operator()(const PbftEnvelope& m) const {
      return m.instance == PbftEnvelope::kFinalInstance ? "final-pbft" : "intra-pbft";
    }
    std::string operator()(const AgreeMsg&) const { return "AGREE"; }
    std::string operator()(const FinalAgreeMsg&) const { return "FINAL-AGREE"; }
    std::string operator()(const ReplyMsg&) const { return "REPLY"; }
    std::string operator()(const GroupUpdateMsg&) const { return "GROUP-UPDATE"; }
    std::string operator()(const DataPacketMsg&) const { return "DATA"; }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace curb::core
