#include "curb/core/messages.hpp"

#include "curb/chain/transaction.hpp"

namespace curb::core {

std::size_t wire_size(const CurbMessage& msg) {
  return std::visit([](const auto& m) { return m.wire_size(); }, msg);
}

void corrupt_message(CurbMessage& msg, sim::Rng& rng) {
  const auto flip_in = [&rng](std::vector<std::uint8_t>& bytes) {
    if (bytes.empty()) return false;
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    return true;
  };
  struct Visitor {
    sim::Rng& rng;
    decltype(flip_in) flip;
    void operator()(sdn::RequestMsg& m) const {
      if (!flip(m.payload)) m.request_id ^= 1ULL << rng.next_below(64);
    }
    void operator()(PbftEnvelope& m) const {
      m.message.digest[rng.next_below(m.message.digest.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    void operator()(AgreeMsg& m) const {
      if (!flip(m.tx_list)) m.instance ^= 1u << rng.next_below(32);
    }
    void operator()(FinalAgreeMsg& m) const {
      if (!flip(m.block)) m.sender_controller ^= 1u << rng.next_below(32);
    }
    void operator()(ReplyMsg& m) const {
      if (!flip(m.config)) m.request_id ^= 1ULL << rng.next_below(64);
    }
    void operator()(GroupUpdateMsg& m) const {
      if (m.new_group.empty()) {
        m.epoch ^= 1ULL << rng.next_below(64);
      } else {
        m.new_group[rng.next_below(m.new_group.size())] ^=
            1u + static_cast<std::uint32_t>(rng.next_below(255));
      }
    }
    void operator()(DataPacketMsg& m) const {
      m.packet.id ^= 1ULL << rng.next_below(64);
    }
  };
  std::visit(Visitor{rng, flip_in}, msg);
}

std::string digest_of(const CurbMessage& msg) {
  struct Visitor {
    std::string operator()(const sdn::RequestMsg& m) const {
      return std::to_string(m.switch_id) + ":" + std::to_string(m.request_id);
    }
    std::string operator()(const PbftEnvelope& m) const {
      return crypto::short_hex(m.message.digest, 8);
    }
    std::string operator()(const AgreeMsg& m) const {
      return crypto::short_hex(bft::payload_digest(m.tx_list), 8);
    }
    std::string operator()(const FinalAgreeMsg& m) const {
      return crypto::short_hex(bft::payload_digest(m.block), 8);
    }
    std::string operator()(const ReplyMsg& m) const {
      return std::to_string(m.switch_id) + ":" + std::to_string(m.request_id);
    }
    std::string operator()(const GroupUpdateMsg&) const { return {}; }
    std::string operator()(const DataPacketMsg&) const { return {}; }
  };
  return std::visit(Visitor{}, msg);
}

std::string category_of(const CurbMessage& msg) {
  struct Visitor {
    std::string operator()(const sdn::RequestMsg& m) const {
      return std::string{chain::to_string(m.type)};
    }
    std::string operator()(const PbftEnvelope& m) const {
      return m.instance == PbftEnvelope::kFinalInstance ? "final-pbft" : "intra-pbft";
    }
    std::string operator()(const AgreeMsg&) const { return "AGREE"; }
    std::string operator()(const FinalAgreeMsg&) const { return "FINAL-AGREE"; }
    std::string operator()(const ReplyMsg&) const { return "REPLY"; }
    std::string operator()(const GroupUpdateMsg&) const { return "GROUP-UPDATE"; }
    std::string operator()(const DataPacketMsg&) const { return "DATA"; }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace curb::core
