#include "curb/core/baselines.hpp"

#include <algorithm>

#include "curb/core/codec.hpp"

namespace curb::core {

using namespace curb::sim::literals;

FlatPbftBaseline::FlatPbftBaseline(net::Topology topology, CurbOptions options)
    : topology_{std::move(topology)}, options_{options}, sim_{options.seed} {
  bus_ = std::make_unique<net::MessageBus<CurbMessage>>(sim_, topology_,
                                                        options_.link_model);
  controller_nodes_ = topology_.nodes_of_kind(net::NodeKind::kController);
  switch_nodes_ = topology_.nodes_of_kind(net::NodeKind::kSwitch);
  const std::size_t n = controller_nodes_.size();
  if (n < 4) throw std::invalid_argument{"FlatPbftBaseline: need >= 4 controllers"};
  const std::size_t f = (n - 1) / 3;
  quorum_ = f + 1;

  for (std::uint32_t i = 0; i < n; ++i) {
    bft::PbftReplica::Config cfg;
    cfg.replica_index = i;
    cfg.group_size = n;
    cfg.view_change_timeout = options_.pbft_timeout;
    replicas_.push_back(std::make_unique<bft::PbftReplica>(
        cfg, sim_,
        [this, i](std::uint32_t dest, const bft::PbftMessage& msg) {
          PbftEnvelope envelope{0, 0, msg};
          bus_->send(controller_nodes_[i], controller_nodes_[dest],
                     CurbMessage{envelope}, envelope.wire_size(), "flat-pbft");
        },
        [this, i](std::uint64_t, const std::vector<std::uint8_t>& payload) {
          // Committed: every replica replies to the requesting switch.
          const auto txs = deserialize_tx_list(payload);
          for (const auto& tx : txs) {
            ReplyMsg reply{i, tx.switch_id(), tx.request_id(), tx.config()};
            bus_->send(controller_nodes_[i], switch_nodes_[tx.switch_id()],
                       CurbMessage{reply}, reply.wire_size(), "REPLY");
          }
        }));
    bus_->attach(controller_nodes_[i], [this, i](net::NodeId, const CurbMessage& msg) {
      on_controller_message(i, msg);
    });
  }
  for (std::uint32_t s = 0; s < switch_nodes_.size(); ++s) {
    bus_->attach(switch_nodes_[s], [this, s](net::NodeId, const CurbMessage& msg) {
      if (const auto* reply = std::get_if<ReplyMsg>(&msg)) {
        if (reply->switch_id == s) on_switch_reply(s, *reply);
      }
    });
  }
}

void FlatPbftBaseline::on_controller_message(std::uint32_t controller,
                                             const CurbMessage& msg) {
  if (const auto* envelope = std::get_if<PbftEnvelope>(&msg)) {
    replicas_[controller]->on_message(envelope->message);
    return;
  }
  if (const auto* request = std::get_if<sdn::RequestMsg>(&msg)) {
    // Only the leader sequences requests.
    if (!replicas_[controller]->is_leader()) return;
    chain::Transaction tx{request->type, request->switch_id, controller,
                          request->request_id, std::vector<std::uint8_t>{0x01}};
    replicas_[controller]->propose(serialize_tx_list({tx}));
  }
}

void FlatPbftBaseline::on_switch_reply(std::uint32_t switch_id, const ReplyMsg& reply) {
  for (auto& request : requests_) {
    if (request.switch_id != switch_id || request.request_id != reply.request_id ||
        request.accepted) {
      continue;
    }
    auto& senders = request.replies[reply.config];
    senders.insert(reply.controller_id);
    if (senders.size() >= quorum_) request.accepted = sim_.now();
    return;
  }
}

RoundMetrics FlatPbftBaseline::run_round(std::size_t requesters) {
  const sim::SimTime round_start = sim_.now();
  const std::uint64_t messages_before = bus_->stats().total_messages();
  requests_.clear();

  const std::size_t n = std::min(requesters, switch_nodes_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint64_t id = next_request_id_++;
    requests_.push_back({s, id, sim_.now(), std::nullopt, {}});
    sdn::RequestMsg request{chain::RequestType::kPacketIn, s, id, {}};
    // SimpleBFT-style: the switch broadcasts to all replicas.
    for (const net::NodeId ctl : controller_nodes_) {
      bus_->send(switch_nodes_[s], ctl, CurbMessage{request}, request.wire_size(),
                 "PKT-IN");
    }
  }
  sim_.run_until(round_start + options_.request_timeout * 4 + 2_s);

  RoundMetrics metrics;
  sim::SimTime last_accept = round_start;
  double latency_sum = 0.0;
  for (const auto& request : requests_) {
    ++metrics.issued;
    if (!request.accepted) continue;
    ++metrics.accepted;
    const double latency = (*request.accepted - request.sent).as_millis_f();
    latency_sum += latency;
    metrics.max_latency_ms = std::max(metrics.max_latency_ms, latency);
    last_accept = std::max(last_accept, *request.accepted);
  }
  if (metrics.accepted > 0) {
    metrics.mean_latency_ms = latency_sum / static_cast<double>(metrics.accepted);
    const double duration_s = (last_accept - round_start).as_seconds_f();
    metrics.round_duration_ms = duration_s * 1000.0;
    if (duration_s > 0) {
      metrics.throughput_tps = static_cast<double>(metrics.accepted) / duration_s;
    }
  }
  metrics.messages = bus_->stats().total_messages() - messages_before;
  return metrics;
}

SingleControllerBaseline::SingleControllerBaseline(net::Topology topology, Options options)
    : topology_{std::move(topology)}, options_{options}, sim_{1} {
  bus_ = std::make_unique<net::MessageBus<CurbMessage>>(sim_, topology_,
                                                        options_.link_model);
  const auto controllers = topology_.nodes_of_kind(net::NodeKind::kController);
  if (controllers.empty()) {
    throw std::invalid_argument{"SingleControllerBaseline: no controller site"};
  }
  controller_node_ = controllers.front();
  switch_nodes_ = topology_.nodes_of_kind(net::NodeKind::kSwitch);

  bus_->attach(controller_node_, [this](net::NodeId, const CurbMessage& msg) {
    const auto* request = std::get_if<sdn::RequestMsg>(&msg);
    if (request == nullptr) return;
    // FIFO service queue: requests wait while the controller is busy.
    const sim::SimTime start = std::max(sim_.now(), controller_busy_until_);
    controller_busy_until_ = start + options_.service_time;
    const sim::SimTime delay = controller_busy_until_ - sim_.now();
    const ReplyMsg reply{0, request->switch_id, request->request_id, {0x01}};
    sim_.schedule(delay, [this, reply] {
      bus_->send(controller_node_, switch_nodes_[reply.switch_id], CurbMessage{reply},
                 reply.wire_size(), "REPLY");
    });
  });
  for (std::uint32_t s = 0; s < switch_nodes_.size(); ++s) {
    bus_->attach(switch_nodes_[s], [this, s](net::NodeId, const CurbMessage& msg) {
      const auto* reply = std::get_if<ReplyMsg>(&msg);
      if (reply == nullptr || reply->switch_id != s) return;
      for (auto& request : requests_) {
        if (request.switch_id == s && request.request_id == reply->request_id &&
            !request.accepted) {
          request.accepted = sim_.now();
          return;
        }
      }
    });
  }
}

RoundMetrics SingleControllerBaseline::run_round(std::size_t requesters) {
  const sim::SimTime round_start = sim_.now();
  const std::uint64_t messages_before = bus_->stats().total_messages();
  requests_.clear();

  const std::size_t n = std::min(requesters, switch_nodes_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint64_t id = next_request_id_++;
    requests_.push_back({s, id, sim_.now(), std::nullopt});
    sdn::RequestMsg request{chain::RequestType::kPacketIn, s, id, {}};
    bus_->send(switch_nodes_[s], controller_node_, CurbMessage{request},
               request.wire_size(), "PKT-IN");
  }
  sim_.run_until(round_start + sim::SimTime::seconds(10));

  RoundMetrics metrics;
  sim::SimTime last_accept = round_start;
  double latency_sum = 0.0;
  for (const auto& request : requests_) {
    ++metrics.issued;
    if (!request.accepted) continue;
    ++metrics.accepted;
    const double latency = (*request.accepted - request.sent).as_millis_f();
    latency_sum += latency;
    metrics.max_latency_ms = std::max(metrics.max_latency_ms, latency);
    last_accept = std::max(last_accept, *request.accepted);
  }
  if (metrics.accepted > 0) {
    metrics.mean_latency_ms = latency_sum / static_cast<double>(metrics.accepted);
    const double duration_s = (last_accept - round_start).as_seconds_f();
    metrics.round_duration_ms = duration_s * 1000.0;
    if (duration_s > 0) {
      metrics.throughput_tps = static_cast<double>(metrics.accepted) / duration_s;
    }
  }
  metrics.messages = bus_->stats().total_messages() - messages_before;
  return metrics;
}

PrimaryBackupBaseline::PrimaryBackupBaseline(net::Topology topology, Options options)
    : topology_{std::move(topology)}, options_{options}, sim_{1} {
  bus_ = std::make_unique<net::MessageBus<CurbMessage>>(sim_, topology_,
                                                        options_.link_model);
  controller_nodes_ = topology_.nodes_of_kind(net::NodeKind::kController);
  switch_nodes_ = topology_.nodes_of_kind(net::NodeKind::kSwitch);
  if (controller_nodes_.size() < options_.f + 1) {
    throw std::invalid_argument{"PrimaryBackupBaseline: need >= f+1 controllers"};
  }
  bad_config_.assign(controller_nodes_.size(), false);

  // Assignment: the f+1 nearest controllers per switch (MORPH assigns by
  // proximity and load; proximity suffices for the baseline).
  assignment_.resize(switch_nodes_.size());
  for (std::uint32_t s = 0; s < switch_nodes_.size(); ++s) {
    std::vector<std::uint32_t> order(controller_nodes_.size());
    for (std::uint32_t c = 0; c < order.size(); ++c) order[c] = c;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return topology_.distance_km(switch_nodes_[s], controller_nodes_[a]) <
             topology_.distance_km(switch_nodes_[s], controller_nodes_[b]);
    });
    order.resize(options_.f + 1);
    assignment_[s] = std::move(order);
  }

  for (std::uint32_t c = 0; c < controller_nodes_.size(); ++c) {
    bus_->attach(controller_nodes_[c], [this, c](net::NodeId, const CurbMessage& msg) {
      const auto* request = std::get_if<sdn::RequestMsg>(&msg);
      if (request == nullptr) return;
      // No consensus: each replica answers immediately and independently.
      std::vector<std::uint8_t> config{0x01};
      if (bad_config_[c]) config[0] ^= 0xff;
      const ReplyMsg reply{c, request->switch_id, request->request_id,
                           std::move(config)};
      bus_->send(controller_nodes_[c], switch_nodes_[request->switch_id],
                 CurbMessage{reply}, reply.wire_size(), "REPLY");
    });
  }
  for (std::uint32_t s = 0; s < switch_nodes_.size(); ++s) {
    bus_->attach(switch_nodes_[s], [this, s](net::NodeId, const CurbMessage& msg) {
      if (const auto* reply = std::get_if<ReplyMsg>(&msg)) {
        if (reply->switch_id == s) on_switch_reply(s, *reply);
      }
    });
  }
}

void PrimaryBackupBaseline::set_bad_config(std::uint32_t controller_id, bool enabled) {
  bad_config_.at(controller_id) = enabled;
}

void PrimaryBackupBaseline::on_switch_reply(std::uint32_t switch_id,
                                            const ReplyMsg& reply) {
  for (auto& request : requests_) {
    if (request.switch_id != switch_id || request.request_id != reply.request_id) {
      continue;
    }
    request.replies.emplace(reply.controller_id, reply.config);
    if (request.replies.size() < options_.f + 1) return;
    // Comparator: all f+1 replies must agree; a mismatch is detected but —
    // unlike Curb — there is no agreed-on recovery path or audit trail.
    bool all_equal = true;
    const auto& first = request.replies.begin()->second;
    for (const auto& [controller, config] : request.replies) {
      all_equal &= config == first;
    }
    if (all_equal) {
      if (!request.accepted) request.accepted = sim_.now();
    } else {
      ++mismatches_;
    }
    return;
  }
}

RoundMetrics PrimaryBackupBaseline::run_round(std::size_t requesters) {
  const sim::SimTime round_start = sim_.now();
  const std::uint64_t messages_before = bus_->stats().total_messages();
  requests_.clear();

  const std::size_t n = std::min(requesters, switch_nodes_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint64_t id = next_request_id_++;
    requests_.push_back({s, id, sim_.now(), std::nullopt, {}});
    sdn::RequestMsg request{chain::RequestType::kPacketIn, s, id, {}};
    for (const std::uint32_t c : assignment_[s]) {
      bus_->send(switch_nodes_[s], controller_nodes_[c], CurbMessage{request},
                 request.wire_size(), "PKT-IN");
    }
  }
  sim_.run_until(round_start + options_.request_timeout * 4);

  RoundMetrics metrics;
  sim::SimTime last_accept = round_start;
  double latency_sum = 0.0;
  for (const auto& request : requests_) {
    ++metrics.issued;
    if (!request.accepted) continue;
    ++metrics.accepted;
    const double latency = (*request.accepted - request.sent).as_millis_f();
    latency_sum += latency;
    metrics.max_latency_ms = std::max(metrics.max_latency_ms, latency);
    last_accept = std::max(last_accept, *request.accepted);
  }
  if (metrics.accepted > 0) {
    metrics.mean_latency_ms = latency_sum / static_cast<double>(metrics.accepted);
    const double duration_s = (last_accept - round_start).as_seconds_f();
    metrics.round_duration_ms = duration_s * 1000.0;
    if (duration_s > 0) {
      metrics.throughput_tps = static_cast<double>(metrics.accepted) / duration_s;
    }
  }
  metrics.messages = bus_->stats().total_messages() - messages_before;
  return metrics;
}

}  // namespace curb::core
