#include "curb/core/env.hpp"

#include <cmath>
#include <cstdlib>
#include <exception>

#include "curb/obs/slo.hpp"
#include "curb/opt/solver.hpp"

namespace curb::core {

const std::vector<EnvVar>& curb_env_vars() {
  static const std::vector<EnvVar> vars = {
      {"CURB_SOLVER", "dense|sparse|heuristic",
       "OP() solver backend for every assignment solve"},
      {"CURB_FAULT", "spec", "fault-injection plan (curb::fault spec grammar)"},
      {"CURB_FAULT_SEED", "u64", "seed for the fault plan's own RNG stream"},
      {"CURB_TS_OUT", "path", "stream windowed telemetry to this JSONL file"},
      {"CURB_TS_WINDOW", "ms",
       "telemetry window width in virtual ms (enables the collector)"},
      {"CURB_TS_RETENTION", "n", "closed windows kept in memory (default 64)"},
      {"CURB_SLO", "rules",
       "SLO watchdog rules, ';'-separated (curb::obs::slo grammar)"},
      {"CURB_SLO_OUT", "path",
       "write the machine-readable SLO breach report here"},
      {"CURB_TRACE", "path", "write a Chrome-trace rendering of the run"},
      {"CURB_TRACE_JSONL", "path", "write the span stream as JSONL"},
      {"CURB_METRICS_OUT", "path", "write a metrics snapshot as JSON"},
      {"CURB_METRICS_CSV", "path", "write a metrics snapshot as CSV"},
      {"CURB_LINK_MATRIX", "path", "write the per-link telemetry matrix as JSON"},
      {"CURB_LINK_CSV", "path", "write the per-link telemetry matrix as CSV"},
      {"CURB_LINK_DOT", "path", "write a Graphviz heatmap of per-link bytes"},
      {"CURB_LEDGER_OUT", "path",
       "write the message-complexity ledger as JSONL (wire msgs per "
       "transaction join key; enables the ledger)"},
      {"CURB_BENCH_OUT", "path",
       "consolidated bench results JSON (default BENCH_results.json; empty "
       "disables)"},
      {"CURB_PROF", "path", "collapsed-stack host profile (flamegraph.pl)"},
      {"CURB_PROF_CHROME", "path", "Chrome-trace host profile"},
      {"CURB_MEM_ACCOUNT", "0|1",
       "latch the tagged allocation accountant on (curb::obs::res)"},
      {"CURB_MEM_OUT", "path",
       "write the per-tag memory profile JSON (implies CURB_MEM_ACCOUNT=1)"},
      {"CURB_MEM_FOLDED", "path",
       "collapsed-stack memory flamegraph, bytes per frame (implies "
       "CURB_MEM_ACCOUNT=1)"},
  };
  return vars;
}

std::optional<std::string> env_get(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string{value};
}

bool env_observability_requested() {
  return env_get("CURB_TRACE").has_value() ||
         env_get("CURB_TRACE_JSONL").has_value() ||
         env_get("CURB_METRICS_OUT").has_value() ||
         env_get("CURB_METRICS_CSV").has_value() ||
         env_get("CURB_BENCH_OUT").has_value() ||
         env_get("CURB_TS_OUT").has_value() ||
         env_get("CURB_TS_WINDOW").has_value() ||
         env_get("CURB_SLO").has_value() ||
         env_get("CURB_LINK_MATRIX").has_value() ||
         env_get("CURB_LINK_CSV").has_value() ||
         env_get("CURB_LINK_DOT").has_value();
}

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  // stoull accepts "-7" by wrapping it to 2^64-7 — require plain digits.
  if (text.empty() || (text[0] < '0' || text[0] > '9')) return false;
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_ms(const std::string& text, sim::SimTime& out) {
  try {
    std::size_t used = 0;
    const double ms = std::stod(text, &used);
    if (used != text.size() || !(ms > 0.0)) return false;
    out = sim::SimTime::micros(static_cast<std::int64_t>(std::llround(ms * 1000.0)));
    return out > sim::SimTime::zero();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool apply_env_to_options(CurbOptions& opts, std::string* error) {
  if (const auto name = env_get("CURB_SOLVER")) {
    if (const auto backend = opt::parse_cap_solver_backend(*name)) {
      opts.op_solver = *backend;
    } else {
      return fail(error, "unknown CURB_SOLVER '" + *name +
                             "' (want dense|sparse|heuristic)");
    }
  }
  if (const auto spec = env_get("CURB_FAULT")) opts.fault_spec = *spec;
  if (const auto seed = env_get("CURB_FAULT_SEED")) {
    std::uint64_t value = 0;
    if (!parse_u64(*seed, value)) {
      return fail(error, "bad CURB_FAULT_SEED '" + *seed + "' (want u64)");
    }
    opts.fault_seed = value;
  }
  if (const auto path = env_get("CURB_TS_OUT")) opts.ts_out = *path;
  if (const auto window = env_get("CURB_TS_WINDOW")) {
    if (!parse_ms(*window, opts.ts_window)) {
      return fail(error, "bad CURB_TS_WINDOW '" + *window + "' (want ms > 0)");
    }
  }
  if (const auto retention = env_get("CURB_TS_RETENTION")) {
    std::uint64_t value = 0;
    if (!parse_u64(*retention, value) || value == 0) {
      return fail(error, "bad CURB_TS_RETENTION '" + *retention + "' (want n >= 1)");
    }
    opts.ts_retention = static_cast<std::size_t>(value);
  }
  if (const auto rules = env_get("CURB_SLO")) {
    try {
      // Validate early so a typo'd pipeline fails at startup, not mid-run.
      // A value of only separators/whitespace parses to zero rules — treat
      // that as an error too: the user asked for a watchdog and got none.
      if (obs::SloRuleSet::parse(*rules).rules.empty()) {
        return fail(error, "bad CURB_SLO '" + *rules + "' (contains no rules)");
      }
    } catch (const obs::SloError& e) {
      return fail(error, "bad CURB_SLO: " + std::string{e.what()});
    }
    opts.slo_rules = *rules;
  }
  // The ledger env var both names the output file (read by the bench
  // harness / curb-sim) and switches the ledger on.
  if (env_get("CURB_LEDGER_OUT").has_value()) opts.msg_ledger = true;
  // CURB_TS_OUT without a width still wants telemetry: default the window.
  if (!opts.ts_out.empty() && opts.ts_window <= sim::SimTime::zero()) {
    opts.ts_window = sim::SimTime::millis(100);
  }
  return true;
}

}  // namespace curb::core
