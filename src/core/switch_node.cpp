#include "curb/core/switch_node.hpp"

#include <algorithm>
#include <string>

#include "curb/core/codec.hpp"
#include "curb/core/network.hpp"

namespace curb::core {

SwitchNode::SwitchNode(std::uint32_t switch_id, net::NodeId node, CurbNetwork& network)
    : switch_id_{switch_id},
      node_{node},
      network_{network},
      switch_{sdn::Switch::Config{.switch_id = switch_id},
              network.simulator(),
              [this](const sdn::Packet& p, std::uint64_t buffer_id) {
                on_packet_in(p, buffer_id);
              },
              [this](const sdn::Packet& p, std::uint32_t out_port) {
                // Logical tunnel: the bus models shortest-path delay to the
                // egress switch directly.
                network_.bus().send(node_, network_.switch_topo_node(out_port),
                                    CurbMessage{DataPacketMsg{p}}, p.size_bytes, "DATA");
              },
              [this](const sdn::Packet& p) { delivered_.push_back(p); }},
      agent_{sdn::SAgent::Config{.switch_id = switch_id,
                                 .f = network.options().f,
                                 .reply_timeout = network.options().request_timeout,
                                 .lazy_threshold = network.options().lazy_threshold,
                                 .max_lazy_rounds = network.options().max_lazy_rounds,
                                 .max_silent_rounds = network.options().max_silent_rounds},
             network.simulator(),
             [this](const sdn::RequestMsg& request) {
               for (const std::uint32_t c : agent_.controller_group()) {
                 network_.bus().send(node_, network_.controller_topo_node(c),
                                     CurbMessage{request}, request.wire_size(),
                                     std::string{chain::to_string(request.type)});
               }
             },
             [this](const sdn::RequestMsg& request,
                    const std::vector<std::uint8_t>& config) {
               on_config_accepted(request, config);
             },
             [this](const std::vector<std::uint32_t>& ids, sdn::ByzantineReason reason) {
               on_byzantine(ids, reason);
             }} {
  track_ = "sw-" + std::to_string(switch_id);
}

void SwitchNode::initialize(const AssignmentState& state) {
  const GroupInfo& group = state.group(state.group_of_switch(switch_id_));
  agent_.set_controller_group(group.members, group.leader);
  epoch_ = state.epoch();
}

void SwitchNode::on_message(net::NodeId /*from*/, const CurbMessage& msg) {
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReplyMsg>) {
          if (m.switch_id == switch_id_) {
            // reply_quorum: first REPLY for an in-flight request opens the
            // final stage of the round, closed when the s-agent accepts.
            if (obs::Observatory* obsy = network_.observatory();
                obsy != nullptr && request_spans_.contains(m.request_id) &&
                !reply_spans_.contains(m.request_id)) {
              reply_spans_[m.request_id] = obsy->tracer.begin_under(
                  request_spans_[m.request_id], "reply_quorum", track_,
                  {{"request", std::to_string(m.request_id)},
                   {"switch", std::to_string(switch_id_)}});
            }
            agent_.on_reply(m.controller_id, m.request_id, m.config);
          }
        } else if constexpr (std::is_same_v<T, GroupUpdateMsg>) {
          if (m.switch_id == switch_id_) on_group_update(m);
        } else if constexpr (std::is_same_v<T, DataPacketMsg>) {
          switch_.receive(m.packet);
        }
      },
      msg);
}

void SwitchNode::host_send(std::uint32_t dst_switch_id, std::uint32_t size_bytes) {
  sdn::Packet p;
  p.src_host = switch_id_;
  p.dst_host = dst_switch_id;
  p.id = (static_cast<std::uint64_t>(switch_id_) << 32) | next_packet_id_++;
  p.size_bytes = size_bytes;
  switch_.receive(p);
}

void SwitchNode::on_packet_in(const sdn::Packet& packet, std::uint64_t buffer_id) {
  const std::uint64_t request_id =
      agent_.send_request(chain::RequestType::kPacketIn, serialize_packet(packet));
  request_to_buffer_[request_id] = buffer_id;
  records_.push_back(RequestRecord{request_id, chain::RequestType::kPacketIn,
                                   network_.simulator().now(), std::nullopt});
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    // Requests on one switch may overlap (ingress + egress PKT-INs), so each
    // request span is a root on the switch track.
    request_spans_[request_id] =
        obsy->tracer.begin_under({}, "pkt_in", track_,
                                 {{"request", std::to_string(request_id)},
                                  {"switch", std::to_string(switch_id_)},
                                  {"src", std::to_string(packet.src_host)},
                                  {"dst", std::to_string(packet.dst_host)}});
  }
}

void SwitchNode::request_reassignment(const std::vector<std::uint32_t>& byzantine_ids,
                                      bool force) {
  std::vector<std::uint32_t> fresh;
  for (const std::uint32_t id : byzantine_ids) {
    if (reported_.insert(id).second) fresh.push_back(id);
  }
  if (fresh.empty() && !force) return;  // all already reported: avoid RE-ASS storms
  if (force) fresh = byzantine_ids;
  const std::uint64_t request_id =
      agent_.send_request(chain::RequestType::kReassign, serialize_id_list(fresh));
  records_.push_back(RequestRecord{request_id, chain::RequestType::kReassign,
                                   network_.simulator().now(), std::nullopt});
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    request_spans_[request_id] =
        obsy->tracer.begin_under({}, "reass_request", track_,
                                 {{"request", std::to_string(request_id)},
                                  {"switch", std::to_string(switch_id_)},
                                  {"accused", std::to_string(fresh.size())}});
  }
}

void SwitchNode::reset_flow_table() {
  switch_.table() = sdn::FlowTable{};
}

void SwitchNode::on_config_accepted(const sdn::RequestMsg& request,
                                    const std::vector<std::uint8_t>& config) {
  for (auto& record : records_) {
    if (record.request_id == request.request_id && !record.accepted) {
      record.accepted = network_.simulator().now();
      break;
    }
  }
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    // Close the round: reply_quorum first (innermost), then the round span.
    const auto reply_it = reply_spans_.find(request.request_id);
    if (reply_it != reply_spans_.end()) {
      obsy->tracer.end(reply_it->second);
      reply_spans_.erase(reply_it);
    }
    const auto span_it = request_spans_.find(request.request_id);
    if (span_it != request_spans_.end()) {
      obsy->tracer.end(span_it->second);
      request_spans_.erase(span_it);
    }
  }
  if (request.type == chain::RequestType::kPacketIn) {
    // FLOW_MOD + PACKET_OUT (Algorithm 1 lines 5-6).
    try {
      switch_.install(sdn::FlowEntry::deserialize_list(config));
    } catch (const std::exception&) {
      return;  // corrupted config that somehow reached quorum: refuse
    }
    const auto it = request_to_buffer_.find(request.request_id);
    if (it != request_to_buffer_.end()) {
      switch_.packet_out(it->second);
      request_to_buffer_.erase(it);
    }
    return;
  }
  // RE-ASS accepted (Algorithm 1 lines 7-8): adopt the new ctrList_s.
  try {
    adopt_group(deserialize_id_list(config), epoch_ + 1);
  } catch (const std::exception&) {
  }
}

void SwitchNode::on_byzantine(const std::vector<std::uint32_t>& ids,
                              sdn::ByzantineReason reason) {
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->metrics
        .counter("core.accusations", {{"reason", std::string{sdn::to_string(reason)}}})
        .inc(ids.size());
    for (const std::uint32_t id : ids) {
      obsy->tracer.instant("accusation", track_,
                           {{"controller", std::to_string(id)},
                            {"reason", std::string{sdn::to_string(reason)}}});
    }
  }
  request_reassignment(ids);
}

void SwitchNode::on_group_update(const GroupUpdateMsg& update) {
  if (update.epoch <= epoch_) return;
  const std::uint32_t sender = update.controller_id;
  // Accept the update only from a plausible sender: current group member or
  // a member of the proposed new group.
  const auto& group = agent_.controller_group();
  const bool known = std::find(group.begin(), group.end(), sender) != group.end() ||
                     std::find(update.new_group.begin(), update.new_group.end(), sender) !=
                         update.new_group.end();
  if (!known) return;
  auto& votes = group_updates_[update.epoch][update.new_group];
  votes.insert(sender);
  if (votes.size() >= network_.options().f + 1) {
    adopt_group(update.new_group, update.epoch);
  }
}

void SwitchNode::adopt_group(const std::vector<std::uint32_t>& group, std::uint64_t epoch) {
  if (group.empty()) return;
  // The leader hint: Curb fixes leaders via [C2.6]; switches learn it as
  // the lowest id by default (refined lazily — the agent only uses it for
  // blame attribution on total silence). The group vector is not sorted on
  // the wire, so "lowest id" needs min_element, not front().
  agent_.set_controller_group(group, *std::min_element(group.begin(), group.end()));
  epoch_ = std::max(epoch_, epoch);
  // Every pending vote set at or below the adopted epoch is obsolete; a
  // skipped epoch's votes would otherwise linger for the whole run.
  group_updates_.erase(group_updates_.begin(), group_updates_.upper_bound(epoch_));
}

}  // namespace curb::core
