#include "curb/core/codec.hpp"

#include "curb/chain/serial.hpp"

namespace curb::core {

std::vector<std::uint8_t> serialize_tx_list(const std::vector<chain::Transaction>& txs) {
  chain::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& tx : txs) w.bytes(tx.serialize());
  return w.take();
}

std::vector<chain::Transaction> deserialize_tx_list(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  const std::uint32_t count = r.u32();
  // Each transaction costs at least its 4-byte length prefix; a count that
  // exceeds the remaining input is malformed (and must not drive a huge
  // allocation from attacker-controlled bytes).
  if (count > r.remaining() / 4) throw std::invalid_argument{"tx list count too large"};
  std::vector<chain::Transaction> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto tx_bytes = r.bytes();
    out.push_back(chain::Transaction::deserialize(tx_bytes));
  }
  return out;
}

std::vector<std::uint8_t> serialize_packet(const sdn::Packet& p) {
  chain::ByteWriter w;
  w.u32(p.src_host);
  w.u32(p.dst_host);
  w.u64(p.id);
  w.u32(p.size_bytes);
  return w.take();
}

sdn::Packet deserialize_packet(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  sdn::Packet p;
  p.src_host = r.u32();
  p.dst_host = r.u32();
  p.id = r.u64();
  p.size_bytes = r.u32();
  return p;
}

std::vector<std::uint8_t> serialize_id_list(const std::vector<std::uint32_t>& ids) {
  chain::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint32_t id : ids) w.u32(id);
  return w.take();
}

std::vector<std::uint32_t> deserialize_id_list(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4) throw std::invalid_argument{"id list count too large"};
  std::vector<std::uint32_t> out(count);
  for (auto& id : out) id = r.u32();
  return out;
}

}  // namespace curb::core
