#include "curb/core/assignment_state.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "curb/chain/serial.hpp"

namespace curb::core {

AssignmentState AssignmentState::build(const opt::Assignment& assignment, std::size_t f,
                                       std::uint64_t epoch,
                                       std::vector<std::uint32_t> byzantine,
                                       const AssignmentState* previous) {
  AssignmentState state;
  state.assignment_ = assignment;
  state.f_ = f;
  state.epoch_ = epoch;
  std::sort(byzantine.begin(), byzantine.end());
  byzantine.erase(std::unique(byzantine.begin(), byzantine.end()), byzantine.end());
  state.byzantine_ = std::move(byzantine);

  // Distinct controller sets -> dense group ids, ordered by lowest switch.
  const std::size_t num_switches = assignment.num_switches();
  state.switch_to_group_.assign(num_switches, 0);
  std::map<std::vector<std::uint32_t>, std::uint32_t> set_to_group;
  for (std::uint32_t sw = 0; sw < num_switches; ++sw) {
    std::vector<std::uint32_t> members;
    for (const std::size_t c : assignment.group_of(sw)) {
      members.push_back(static_cast<std::uint32_t>(c));
    }
    if (members.empty()) {
      throw std::invalid_argument{"AssignmentState: switch with empty group"};
    }
    const auto it = set_to_group.find(members);
    if (it != set_to_group.end()) {
      state.switch_to_group_[sw] = it->second;
      state.groups_[it->second].switches.push_back(sw);
      continue;
    }
    const auto gid = static_cast<std::uint32_t>(state.groups_.size());
    set_to_group.emplace(members, gid);
    GroupInfo info;
    info.id = gid;
    info.members = std::move(members);
    info.switches = {sw};
    state.groups_.push_back(std::move(info));
    state.switch_to_group_[sw] = gid;
  }

  // Leaders: keep the previous leader where it survived, else lowest id.
  for (GroupInfo& g : state.groups_) {
    g.leader = g.members.front();
    if (previous != nullptr) {
      // The previous leader of any switch now governed by g.
      for (const std::uint32_t sw : g.switches) {
        if (sw >= previous->switch_to_group_.size()) continue;
        const GroupInfo& old_group = previous->group(previous->group_of_switch(sw));
        if (std::find(g.members.begin(), g.members.end(), old_group.leader) !=
            g.members.end()) {
          g.leader = old_group.leader;
          break;
        }
      }
    }
  }

  // Final committee: one member from each of the first 3f+1 groups (by id),
  // skipping duplicates, topped up from remaining controllers by id.
  const std::size_t committee_size = 3 * f + 1;
  std::vector<std::uint32_t> committee;
  for (const GroupInfo& g : state.groups_) {
    if (committee.size() >= committee_size) break;
    for (const std::uint32_t member : g.members) {
      if (std::find(committee.begin(), committee.end(), member) == committee.end()) {
        committee.push_back(member);
        break;
      }
    }
  }
  if (committee.size() < committee_size) {
    const std::size_t num_controllers = assignment.num_controllers();
    for (std::uint32_t c = 0; c < num_controllers && committee.size() < committee_size;
         ++c) {
      const bool is_byz = std::binary_search(state.byzantine_.begin(),
                                             state.byzantine_.end(), c);
      if (is_byz) continue;
      if (std::find(committee.begin(), committee.end(), c) == committee.end()) {
        committee.push_back(c);
      }
    }
  }
  if (committee.size() < committee_size) {
    throw std::invalid_argument{"AssignmentState: not enough controllers for finalCom"};
  }
  std::sort(committee.begin(), committee.end());
  state.final_committee_ = std::move(committee);
  return state;
}

const GroupInfo& AssignmentState::group(std::uint32_t group_id) const {
  if (group_id >= groups_.size()) throw std::out_of_range{"AssignmentState: bad group id"};
  return groups_[group_id];
}

std::uint32_t AssignmentState::group_of_switch(std::uint32_t switch_id) const {
  if (switch_id >= switch_to_group_.size()) {
    throw std::out_of_range{"AssignmentState: bad switch id"};
  }
  return switch_to_group_[switch_id];
}

std::uint32_t AssignmentState::final_leader() const {
  // Paper: the final committee leader has the highest ID in the committee.
  return final_committee_.back();
}

std::uint32_t AssignmentState::instance_id_of(const std::vector<std::uint32_t>& members) {
  // FNV-1a over the sorted member ids; 0xffffffff is reserved for the
  // final-committee instance, so fold it away if it ever appears.
  std::uint32_t h = 2166136261u;
  for (const std::uint32_t m : members) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (m >> shift) & 0xffu;
      h *= 16777619u;
    }
  }
  return h == 0xffffffffu ? 0xfffffffeu : h;
}

std::optional<std::uint32_t> AssignmentState::group_by_instance(
    std::uint32_t instance_id) const {
  for (const GroupInfo& g : groups_) {
    if (instance_id_of(g.members) == instance_id) return g.id;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> AssignmentState::groups_of_controller(
    std::uint32_t controller_id) const {
  std::vector<std::uint32_t> out;
  for (const GroupInfo& g : groups_) {
    if (std::find(g.members.begin(), g.members.end(), controller_id) != g.members.end()) {
      out.push_back(g.id);
    }
  }
  return out;
}

bool AssignmentState::in_final_committee(std::uint32_t controller_id) const {
  return std::binary_search(final_committee_.begin(), final_committee_.end(),
                            controller_id);
}

std::optional<std::uint32_t> AssignmentState::replica_index(
    std::uint32_t group_id, std::uint32_t controller_id) const {
  const GroupInfo& g = group(group_id);
  const auto it = std::find(g.members.begin(), g.members.end(), controller_id);
  if (it == g.members.end()) return std::nullopt;
  return static_cast<std::uint32_t>(it - g.members.begin());
}

std::optional<std::uint32_t> AssignmentState::final_replica_index(
    std::uint32_t controller_id) const {
  const auto it =
      std::find(final_committee_.begin(), final_committee_.end(), controller_id);
  if (it == final_committee_.end()) return std::nullopt;
  return static_cast<std::uint32_t>(it - final_committee_.begin());
}

std::vector<std::uint8_t> AssignmentState::serialize() const {
  chain::ByteWriter w;
  w.u64(epoch_);
  w.u32(static_cast<std::uint32_t>(f_));
  w.u32(static_cast<std::uint32_t>(assignment_.num_switches()));
  w.u32(static_cast<std::uint32_t>(assignment_.num_controllers()));
  for (std::uint32_t sw = 0; sw < assignment_.num_switches(); ++sw) {
    const GroupInfo& g = groups_[switch_to_group_[sw]];
    w.u32(g.leader);
    w.u32(static_cast<std::uint32_t>(g.members.size()));
    for (const std::uint32_t m : g.members) w.u32(m);
  }
  w.u32(static_cast<std::uint32_t>(byzantine_.size()));
  for (const std::uint32_t b : byzantine_) w.u32(b);
  return w.take();
}

AssignmentState AssignmentState::deserialize(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  const std::uint64_t epoch = r.u64();
  const std::size_t f = r.u32();
  const std::uint32_t num_switches = r.u32();
  const std::uint32_t num_controllers = r.u32();
  // Sanity-bound the dimensions before allocating the assignment matrix:
  // every switch needs at least a leader id and a member count (8 bytes),
  // and a plausible encoding cannot name more controllers than it has
  // bytes. Malformed (possibly hostile) input must not drive allocations.
  if (num_switches > r.remaining() / 8 || num_controllers > r.remaining()) {
    throw std::invalid_argument{"AssignmentState: implausible dimensions"};
  }

  opt::Assignment assignment{num_switches, num_controllers};
  std::vector<std::uint32_t> leaders(num_switches, 0);
  for (std::uint32_t sw = 0; sw < num_switches; ++sw) {
    leaders[sw] = r.u32();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t member = r.u32();
      if (member >= num_controllers) {
        throw std::invalid_argument{"AssignmentState: member id out of range"};
      }
      assignment.set(sw, member, true);
    }
  }
  const std::uint32_t byz_count = r.u32();
  if (byz_count > r.remaining() / 4) {
    throw std::invalid_argument{"AssignmentState: byzantine count too large"};
  }
  std::vector<std::uint32_t> byzantine(byz_count);
  for (auto& b : byzantine) b = r.u32();

  AssignmentState state = build(assignment, f, epoch, std::move(byzantine));
  // Restore the serialized leaders (they may differ from lowest-id default).
  for (std::uint32_t sw = 0; sw < num_switches; ++sw) {
    GroupInfo& g = state.groups_[state.switch_to_group_[sw]];
    if (std::find(g.members.begin(), g.members.end(), leaders[sw]) != g.members.end()) {
      g.leader = leaders[sw];
    }
  }
  return state;
}

}  // namespace curb::core
