#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "curb/bft/replica.hpp"
#include "curb/core/network.hpp"
#include "curb/core/options.hpp"
#include "curb/net/topology.hpp"
#include "curb/sim/stats.hpp"

namespace curb::core {

/// Outcome of one protocol round (paper Steps 1-4).
struct RoundMetrics {
  std::size_t issued = 0;
  std::size_t accepted = 0;
  /// Mean request latency (send -> f+1 matching REPLYs), milliseconds.
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Accepted requests per second of virtual round time.
  double throughput_tps = 0.0;
  double round_duration_ms = 0.0;
  std::uint64_t messages = 0;  // control-plane messages this round
};

/// Workload driver over a CurbNetwork: issues per-round PKT-IN (and RE-ASS)
/// requests, advances virtual time, and measures latency / throughput /
/// message counts — the quantities behind every figure in the paper.
class CurbSimulation {
 public:
  /// Tag selecting the deferred-initialization constructor.
  struct DeferInit {};

  /// Uses the paper's Internet2 topology by default.
  explicit CurbSimulation(CurbOptions options);
  CurbSimulation(net::Topology topology, CurbOptions options);
  /// Construct the network but skip Step 0: callers that want to survive an
  /// infeasible-assignment failure (and still flush metrics/telemetry from
  /// the constructed network) call initialize() themselves.
  CurbSimulation(net::Topology topology, CurbOptions options, DeferInit);

  /// Run Step 0 (throws std::runtime_error on an infeasible CAP instance).
  /// Only needed after the DeferInit constructor.
  void initialize();
  [[nodiscard]] bool initialized() const { return network_->initialized(); }

  [[nodiscard]] CurbNetwork& network() { return *network_; }
  [[nodiscard]] const CurbNetwork& network() const { return *network_; }

  /// Restrict workload to the first `n` switches (paper Fig. 5 sweeps the
  /// switch count over [4, 34] on the fixed Internet2 topology).
  void set_active_switches(std::size_t n);
  [[nodiscard]] std::size_t active_switches() const { return active_switches_; }

  /// Inject byzantine behaviour into a controller.
  void set_controller_behavior(std::uint32_t controller_id, bft::Behavior behavior);
  void set_controller_lazy_range(std::uint32_t controller_id, sim::SimTime lo,
                                 sim::SimTime hi);

  /// One PKT-IN round: every active switch sends `requests_per_switch`
  /// table-miss packets to distinct destinations; the round ends when all
  /// requests settle (accept or timeout). Flow tables are cleared first so
  /// every packet is a miss.
  RoundMetrics run_packet_in_round(std::size_t requests_per_switch = 1);

  /// One RE-ASS round: `requesters` switches each request reassignment of a
  /// (fake, already-removed or healthy) controller — used by Fig. 9 to
  /// measure reassignment handling performance.
  RoundMetrics run_reassignment_round(std::size_t requesters);

  /// Convenience: run `n` PKT-IN rounds, returning per-round metrics.
  std::vector<RoundMetrics> run_packet_in_rounds(std::size_t n);

  [[nodiscard]] std::uint64_t total_messages() const;
  /// True when every controller's chain tip matches controller 0's.
  [[nodiscard]] bool chains_consistent() const;
  /// Safety-only variant for faulted/degraded runs: live chains may lag
  /// (messages still in flight when the run stops) but must never fork —
  /// every pair of chains agrees on the block at their common height.
  /// Crashed controllers (no chain until recovery) are skipped.
  [[nodiscard]] bool chains_prefix_consistent() const;
  /// Height of controller 0's chain.
  [[nodiscard]] std::uint64_t chain_height() const;

 private:
  /// Bus/chain state captured before a round issues its requests, so
  /// finish_round can compute per-round deltas (messages, per-category wire
  /// counts, committed blocks) for metrics and the round_complexity instant.
  struct RoundStart {
    sim::SimTime at;
    std::uint64_t messages_before = 0;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> categories_before;
    /// Cumulative fault-duplicate wire counts per category at round start
    /// (from LinkStats), so dup deltas land in the right category attr.
    std::map<std::string, std::uint64_t> category_dups_before;
    std::uint64_t height_before = 0;
  };
  [[nodiscard]] RoundStart begin_round() const;
  RoundMetrics finish_round(const RoundStart& start, const char* kind);
  /// Emit the per-round `round_complexity` instant (track "net") the
  /// Theorem 1 auditor consumes; attr contract in DESIGN.md §16.
  void emit_round_complexity(const RoundStart& start, const char* kind,
                             const RoundMetrics& metrics);

  std::unique_ptr<CurbNetwork> network_;
  std::size_t active_switches_ = 0;
  std::uint64_t round_counter_ = 0;
};

}  // namespace curb::core
