#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "curb/bft/message.hpp"
#include "curb/crypto/sha256.hpp"
#include "curb/sdn/flow.hpp"
#include "curb/sdn/sagent.hpp"
#include "curb/sim/rng.hpp"

namespace curb::core {

/// PBFT traffic tagged with the consensus instance it belongs to.
/// `instance` is a group id for Intra-PBFT or kFinalInstance for Final-PBFT.
struct PbftEnvelope {
  static constexpr std::uint32_t kFinalInstance = 0xffffffff;
  std::uint32_t instance = 0;
  /// Epoch of the group structure this message belongs to; messages from
  /// older epochs (pre-reassignment) are discarded.
  std::uint64_t epoch = 0;
  bft::PbftMessage message;

  [[nodiscard]] std::size_t wire_size() const { return 4 + 8 + message.wire_size(); }
};

/// End of intra-group consensus (Algorithm 3 line 12): every group member
/// sends the agreed txList to the final committee. `instance` is the
/// membership-stable ctrListID (AssignmentState::instance_id_of).
struct AgreeMsg {
  std::uint32_t instance = 0;
  std::uint32_t sender_controller = 0;
  std::vector<std::uint8_t> tx_list;  // serialized transaction list

  [[nodiscard]] std::size_t wire_size() const { return 4 + 4 + 4 + tx_list.size(); }
};

/// End of final consensus (Algorithm 3 line 25): final committee members
/// broadcast the sealed block to every controller.
struct FinalAgreeMsg {
  std::uint32_t sender_controller = 0;
  std::vector<std::uint8_t> block;  // serialized block

  [[nodiscard]] std::size_t wire_size() const { return 4 + 4 + block.size(); }
};

/// Controller -> switch REPLY carrying the agreed config for a request.
struct ReplyMsg {
  std::uint32_t controller_id = 0;
  std::uint32_t switch_id = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> config;

  [[nodiscard]] std::size_t wire_size() const { return 4 + 4 + 8 + 4 + config.size(); }
};

/// Unsolicited controller-group update pushed to switches whose group
/// changed as a side effect of a reassignment they did not request. The
/// epoch (block height of the committed RE-ASS) lets the s-agent collect
/// f+1 matching updates exactly like replies.
struct GroupUpdateMsg {
  std::uint32_t controller_id = 0;
  std::uint32_t switch_id = 0;
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> new_group;

  [[nodiscard]] std::size_t wire_size() const { return 4 + 4 + 8 + 4 * new_group.size(); }
};

/// Data-plane packet in flight between switch sites (logical tunnel: the
/// bus applies the shortest-path propagation delay between the endpoints).
struct DataPacketMsg {
  sdn::Packet packet;

  [[nodiscard]] std::size_t wire_size() const { return packet.size_bytes; }
};

/// Everything that travels over the Curb control network.
using CurbMessage =
    std::variant<sdn::RequestMsg, PbftEnvelope, AgreeMsg, FinalAgreeMsg, ReplyMsg,
                 GroupUpdateMsg, DataPacketMsg>;

[[nodiscard]] std::size_t wire_size(const CurbMessage& msg);
/// Message-accounting category ("PKT-IN", "intra-pbft", "AGREE", ...).
[[nodiscard]] std::string category_of(const CurbMessage& msg);
/// Ledger join key for the message-complexity auditor: 8-byte payload-digest
/// hex for consensus traffic (matches the `digest` attr on traced spans),
/// "switch:request" for request/reply traffic (matches `txns` attr entries),
/// empty for traffic with no transaction identity (GROUP-UPDATE, DATA).
[[nodiscard]] std::string digest_of(const CurbMessage& msg);

/// Flip bytes in the message's integrity-relevant content (curb::fault
/// corrupt clauses): payload/config/tx-list bytes, PBFT digests, group
/// lists. The flip keeps lengths intact, so receivers see structurally
/// parseable garbage that digest/quorum matching must reject — the same
/// effect a failed signature check has in the real deployment.
void corrupt_message(CurbMessage& msg, sim::Rng& rng);

}  // namespace curb::core
