#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "curb/opt/cap.hpp"

namespace curb::core {

/// One controller group (a distinct ctrList shared by one or more switches).
struct GroupInfo {
  std::uint32_t id = 0;                  // dense ctrListID
  std::vector<std::uint32_t> members;    // sorted controller ids
  std::uint32_t leader = 0;              // the appointed leader (paper: one per group)
  std::vector<std::uint32_t> switches;   // switches governed by this group

  bool operator==(const GroupInfo&) const = default;
};

/// The control-plane view every honest node derives from an assignment:
/// groups, per-switch group membership, leaders, the final committee, and
/// the set of excluded byzantine controllers. Built deterministically so
/// all nodes reach the identical view (the paper's "same finalCom selection
/// rule" argument).
class AssignmentState {
 public:
  AssignmentState() = default;

  /// Derive groups from an assignment matrix. Distinct controller sets get
  /// dense ids in order of their lowest governed switch. Leaders persist
  /// from `previous` where still present, else the lowest member id.
  /// The final committee takes one member from each of the first 3f+1
  /// groups (sorted by id, skipping already-elected controllers), topped up
  /// from the remaining controllers by ascending id when there are fewer
  /// groups than seats; its leader is the member with the highest id.
  [[nodiscard]] static AssignmentState build(const opt::Assignment& assignment,
                                             std::size_t f, std::uint64_t epoch,
                                             std::vector<std::uint32_t> byzantine = {},
                                             const AssignmentState* previous = nullptr);

  [[nodiscard]] const opt::Assignment& assignment() const { return assignment_; }
  [[nodiscard]] const std::vector<GroupInfo>& groups() const { return groups_; }
  [[nodiscard]] const GroupInfo& group(std::uint32_t group_id) const;
  /// Group id governing a switch (a switch maps to exactly one group).
  [[nodiscard]] std::uint32_t group_of_switch(std::uint32_t switch_id) const;
  [[nodiscard]] const std::vector<std::uint32_t>& final_committee() const {
    return final_committee_;
  }
  [[nodiscard]] std::uint32_t final_leader() const;
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t f() const { return f_; }
  [[nodiscard]] const std::vector<std::uint32_t>& byzantine() const { return byzantine_; }

  /// Stable consensus-instance id for a member set: groups keep their PBFT
  /// instance across reassignments as long as their membership is
  /// unchanged, even though dense group ids are renumbered per epoch.
  /// Never returns PbftEnvelope::kFinalInstance (0xffffffff).
  [[nodiscard]] static std::uint32_t instance_id_of(
      const std::vector<std::uint32_t>& members);
  [[nodiscard]] std::uint32_t instance_of_group(std::uint32_t group_id) const {
    return instance_id_of(group(group_id).members);
  }
  /// Current group carrying a consensus-instance id, if any.
  [[nodiscard]] std::optional<std::uint32_t> group_by_instance(
      std::uint32_t instance_id) const;

  /// Group ids a controller belongs to.
  [[nodiscard]] std::vector<std::uint32_t> groups_of_controller(
      std::uint32_t controller_id) const;
  [[nodiscard]] bool in_final_committee(std::uint32_t controller_id) const;
  /// Replica index of a controller within a group (position in sorted
  /// member list), or nullopt if not a member.
  [[nodiscard]] std::optional<std::uint32_t> replica_index(std::uint32_t group_id,
                                                           std::uint32_t controller_id) const;
  [[nodiscard]] std::optional<std::uint32_t> final_replica_index(
      std::uint32_t controller_id) const;

  /// Wire codec (this is the `config` payload of a RE-ASS transaction).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static AssignmentState deserialize(std::span<const std::uint8_t> bytes);

  bool operator==(const AssignmentState&) const = default;

 private:
  opt::Assignment assignment_;
  std::vector<GroupInfo> groups_;
  std::vector<std::uint32_t> switch_to_group_;
  std::vector<std::uint32_t> final_committee_;  // sorted controller ids
  std::vector<std::uint32_t> byzantine_;        // sorted controller ids
  std::uint64_t epoch_ = 0;
  std::size_t f_ = 1;
};

}  // namespace curb::core
