#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "curb/bft/consensus.hpp"
#include "curb/chain/blockchain.hpp"
#include "curb/core/assignment_state.hpp"
#include "curb/core/messages.hpp"
#include "curb/core/options.hpp"
#include "curb/crypto/secp256k1.hpp"
#include "curb/net/message_bus.hpp"
#include "curb/net/topology.hpp"
#include "curb/sdn/policy.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::core {

class CurbNetwork;

/// A Curb SDN controller (paper Algorithms 2 and 3): handles switch
/// requests as a group leader, participates in Intra-PBFT for every group
/// it belongs to, serves on the final committee when elected, maintains a
/// full blockchain replica, and answers switches with REPLY messages after
/// blocks commit.
class Controller {
 public:
  Controller(std::uint32_t id, net::NodeId node, crypto::KeyPair key, CurbNetwork& network);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Step 0: install the initial assignment view and genesis block, build
  /// PBFT replicas for every group membership (and finalCom if elected).
  void initialize(const AssignmentState& state, const chain::Block& genesis);

  /// Entry point for every message addressed to this controller.
  void on_message(net::NodeId from, const CurbMessage& msg);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const crypto::PublicKey& public_key() const { return key_.public_key(); }
  [[nodiscard]] const chain::Blockchain& blockchain() const { return *blockchain_; }
  [[nodiscard]] const AssignmentState& state() const { return state_; }
  [[nodiscard]] bool has_blockchain() const { return blockchain_ != nullptr; }

  /// Byzantine behaviour injection. kSilent/kLazy affect every outgoing
  /// message (requests, PBFT, AGREE, REPLY); the kLazy delay is sampled
  /// uniformly from [lazy_min, lazy_max] per message (paper experiment 3:
  /// response times in (200, 500) ms).
  void set_behavior(bft::Behavior behavior);
  [[nodiscard]] bft::Behavior behavior() const { return behavior_; }
  void set_lazy_range(sim::SimTime lo, sim::SimTime hi);
  /// When true, REPLY configs are corrupted (detected by s-agents as
  /// conflicting-config byzantine evidence).
  void set_bad_config(bool enabled) { bad_config_ = enabled; }
  /// Force a behaviour onto every live consensus replica (intra + final).
  /// set_behavior covers the controller's own traffic; this one makes the
  /// PBFT layer itself misbehave (equivocating proposals etc.).
  void set_replica_behavior(bft::Behavior behavior);

  /// Fail-stop: drop all volatile state (replicas, buffers, quorum
  /// tracking, chain, policy table) and ignore every message until
  /// restart_from. Timers already scheduled become no-ops.
  void crash();
  /// Recover from a peer's replicated blockchain (curb::fault crash/restart
  /// events): replay every block from genesis to rebuild the assignment
  /// view, served-request set, and policy table, then rejoin consensus.
  void restart_from(const chain::Blockchain& donor);
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Northbound API (paper Section III-B): an application service submits
  /// a policy update through this controller. The update flows through the
  /// normal consensus pipeline and lands on the blockchain, after which
  /// EVERY controller's policy table reflects it (state machine
  /// replication); subsequent PKT-IN configs honour it. Returns the
  /// request id used on-chain.
  enum class PolicyOp : std::uint8_t { kInstall = 0, kRemove = 1 };
  std::uint64_t submit_policy(const sdn::PolicyRule& rule,
                              PolicyOp op = PolicyOp::kInstall);
  [[nodiscard]] const sdn::PolicyTable& policy_table() const { return policy_table_; }

  struct Stats {
    std::uint64_t requests_handled = 0;
    std::uint64_t tx_created = 0;
    std::uint64_t tx_lists_proposed = 0;
    std::uint64_t blocks_proposed = 0;
    std::uint64_t blocks_committed = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t op_solves = 0;
    double op_solve_time_ms_total = 0.0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // --- request handling (Algorithm 2) ---
  // All consensus bookkeeping is keyed by the membership-stable instance id
  // (AssignmentState::instance_id_of), NOT the per-epoch dense group id:
  // reassignments renumber groups, but instances whose member set is
  // unchanged keep their PBFT state and in-flight work.
  void on_request(const sdn::RequestMsg& request);
  void handle_request_as_leader(std::uint32_t instance, const sdn::RequestMsg& request);
  void compute_config_and_buffer(std::uint32_t instance, const sdn::RequestMsg& request);
  void buffer_transaction(std::uint32_t instance, const sdn::RequestMsg& request,
                          std::vector<std::uint8_t> config);
  void handle_reassign_request(std::uint32_t instance, const sdn::RequestMsg& request);
  void flush_reass_window(std::uint32_t instance);
  [[nodiscard]] std::vector<std::uint8_t> compute_packet_in_config(
      const sdn::RequestMsg& request) const;
  void flush_request_buffer(std::uint32_t instance);

  // --- consensus plumbing (Algorithm 3) ---
  void on_pbft_envelope(net::NodeId from, const PbftEnvelope& envelope);
  void on_intra_committed(std::uint32_t instance, const std::vector<std::uint8_t>& payload);
  void on_agree(const AgreeMsg& agree);
  void flush_block_buffer();
  void on_final_committed(const std::vector<std::uint8_t>& payload);
  void on_final_agree(const FinalAgreeMsg& msg);
  void apply_block(const chain::Block& block);
  void apply_reassignment(const chain::Transaction& tx, std::uint64_t height);
  [[nodiscard]] bool reassignment_resolved(const chain::Transaction& tx) const;
  void rehandle_stale_reassignment(const chain::Transaction& tx);
  void rebuild_replicas();
  void retire_final_replica();
  void send_replies_for(const chain::Transaction& tx);

  void apply_policy_update(const chain::Transaction& tx);

  // --- liveness: followers escalate stalled requests to a view change ---
  void arm_request_watchdog(std::uint32_t instance, const sdn::RequestMsg& request);
  void rehandle_pending(std::uint32_t instance);

  // --- transport ---
  void send(net::NodeId dest, CurbMessage msg);
  void send_to_controller(std::uint32_t controller_id, CurbMessage msg);
  /// One-payload broadcast: honest controllers hand the bus a single shared
  /// buffer via multicast; byzantine behaviors fall back to per-destination
  /// send() so dest-dependent tampering still applies.
  void broadcast_to_controllers(const std::vector<std::uint32_t>& controllers,
                                CurbMessage msg);
  [[nodiscard]] bft::ConsensusReplica* replica_for(std::uint32_t instance);

  // --- transaction signature verification (verify_signatures mode) ---
  // Verdicts are memoized by payload digest / block hash on top of the
  // process-wide crypto::SigCache, so duplicate AGREEs and the 3f+1
  // replicas validating the same proposal pay for ECDSA once.
  [[nodiscard]] bool verify_tx_signature(const chain::Transaction& tx) const;
  [[nodiscard]] bool verify_tx_list_payload(const crypto::Hash256& digest,
                                            const std::vector<std::uint8_t>& payload);
  [[nodiscard]] bool verify_block_txs(const crypto::Hash256& hash,
                                      const chain::Block& block);
  void remember_verdict(const crypto::Hash256& key, bool ok);

  std::uint32_t id_;
  net::NodeId node_;
  crypto::KeyPair key_;
  CurbNetwork& network_;

  AssignmentState state_;
  std::unique_ptr<chain::Blockchain> blockchain_;
  /// Intra-group consensus replicas keyed by membership-stable instance id.
  std::map<std::uint32_t, std::unique_ptr<bft::ConsensusReplica>> replicas_;
  /// Replicas of groups replaced by a reassignment, kept for a grace period
  /// so in-flight consensus can still land on the chain (where stale
  /// reassignments are re-handled) instead of being silently destroyed.
  std::map<std::uint32_t, std::unique_ptr<bft::ConsensusReplica>> retired_replicas_;
  /// Every (instance -> members) this controller has ever adopted; lets
  /// final-committee members validate AGREEs from recently retired groups.
  std::map<std::uint32_t, std::vector<std::uint32_t>> known_instances_;
  std::unique_ptr<bft::ConsensusReplica> final_replica_;
  /// Committee the final replica was built for (kept across reassignments
  /// while the committee is unchanged).
  std::vector<std::uint32_t> final_committee_cache_;

  // Leader request buffers per group; dedup across the whole run.
  struct RequestKey {
    std::uint32_t switch_id;
    std::uint64_t request_id;
    auto operator<=>(const RequestKey&) const = default;
  };
  std::map<std::uint32_t, std::vector<chain::Transaction>> request_buffer_;
  std::map<std::uint32_t, sim::EventHandle> request_buffer_timer_;
  /// RE-ASS aggregation (one OP solve covers a burst of accusations).
  struct ReassWindow {
    std::vector<std::uint32_t> accused;
    std::vector<sdn::RequestMsg> requests;
  };
  std::map<std::uint32_t, ReassWindow> reass_window_;
  std::map<std::uint32_t, sim::EventHandle> reass_window_timer_;
  std::set<RequestKey> handled_requests_;   // leader-side dedup (reqBuffer check)
  std::set<RequestKey> committed_requests_; // served requests (on-chain)
  // Pending requests per group for watchdog / re-handling after view change.
  std::map<std::uint32_t, std::map<RequestKey, sdn::RequestMsg>> pending_requests_;

  // Final-committee AGREE quorum tracking: (group, digest) -> senders.
  std::map<std::pair<std::uint32_t, crypto::Hash256>, std::set<std::uint32_t>> agree_votes_;
  std::set<std::pair<std::uint32_t, crypto::Hash256>> agree_buffered_;
  /// Confirmed-but-not-yet-on-chain txLists, tagged with their instance so
  /// they can be re-AGREEd to a new committee after a membership change.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> block_buffer_;
  /// Controllers that have ever served on the final committee (monotone);
  /// AGREEs from them are accepted so committee handovers can forward
  /// their confirmed backlog.
  std::set<std::uint32_t> ever_committee_;
  /// AGREEs for instances this node has not adopted yet (it may simply be
  /// behind on block application); replayed after each epoch adoption.
  std::vector<std::pair<sim::SimTime, AgreeMsg>> orphan_agrees_;
  sim::EventHandle block_buffer_timer_;
  bool block_buffer_timer_armed_ = false;
  /// Final leader: a proposed block not yet on the chain. Proposals are
  /// serialized — two in-flight blocks would claim the same height and the
  /// loser's transactions would be dropped by every replica.
  bool final_proposal_in_flight_ = false;

  /// Signature-verification verdicts memoized by payload digest (txLists)
  /// or block hash (blocks). Bounded by a wholesale clear; a corrupted
  /// payload hashes to a different key, so verdicts can never go stale.
  std::map<crypto::Hash256, bool> payload_verdicts_;

  // FINAL-AGREE quorum tracking: block hash -> senders.
  std::map<crypto::Hash256, std::set<std::uint32_t>> final_agree_votes_;
  std::map<crypto::Hash256, std::vector<std::uint8_t>> final_agree_payload_;
  std::set<crypto::Hash256> applied_blocks_;
  /// Non-parallel mode (paper Fig. 4(c)): a group must see its previous
  /// txList reach the chain before proposing the next one. Tracks the tx
  /// ids each instance has proposed that are not yet on-chain.
  std::map<std::uint32_t, std::set<crypto::Hash256>> outstanding_tx_;

  sdn::PolicyTable policy_table_;
  std::uint64_t next_policy_request_ = 1;

  bft::Behavior behavior_ = bft::Behavior::kHonest;
  sim::SimTime lazy_min_ = sim::SimTime::millis(200);
  sim::SimTime lazy_max_ = sim::SimTime::millis(500);
  bool bad_config_ = false;
  bool crashed_ = false;
  /// kStaleViewSpam: rotates the spammed (stale) view number.
  std::uint64_t stale_spam_counter_ = 0;

  Stats stats_;
  sim::Rng rng_;
};

}  // namespace curb::core
