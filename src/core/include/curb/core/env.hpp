#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "curb/core/options.hpp"

namespace curb::core {

/// One documented CURB_* environment variable. The table drives both the
/// env-application helpers below and the `curb-sim --help` listing, so a
/// variable cannot be honoured without being documented (and vice versa).
struct EnvVar {
  const char* name;
  const char* value_hint;  // e.g. "path", "dense|sparse|heuristic"
  const char* description;
};

/// Every environment variable the curb binaries honour, in display order.
[[nodiscard]] const std::vector<EnvVar>& curb_env_vars();

/// getenv as an optional; unset and empty both return nullopt.
[[nodiscard]] std::optional<std::string> env_get(const char* name);

/// True when any CURB_* variable asks for observability output (traces,
/// metrics, bench results, time-series telemetry, or SLO rules), i.e. the
/// network should own an Observatory.
[[nodiscard]] bool env_observability_requested();

/// Apply every option-affecting CURB_* variable (CURB_SOLVER, CURB_FAULT,
/// CURB_FAULT_SEED, CURB_TS_OUT, CURB_TS_WINDOW, CURB_TS_RETENTION,
/// CURB_SLO) to `opts`. Returns false and fills `error` when a value does
/// not parse; options already applied keep their new values.
[[nodiscard]] bool apply_env_to_options(CurbOptions& opts, std::string* error);

}  // namespace curb::core
