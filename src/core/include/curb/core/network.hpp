#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "curb/core/assignment_state.hpp"
#include "curb/core/controller.hpp"
#include "curb/core/messages.hpp"
#include "curb/core/options.hpp"
#include "curb/core/switch_node.hpp"
#include "curb/crypto/sigcache.hpp"
#include "curb/fault/injector.hpp"
#include "curb/net/message_bus.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/net/complexity.hpp"
#include "curb/obs/net/link_stats.hpp"
#include "curb/obs/net/report.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/obs/slo.hpp"
#include "curb/obs/timeseries.hpp"
#include "curb/opt/cap.hpp"
#include "curb/opt/solver.hpp"
#include "curb/sdn/flow.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::core {

/// A complete Curb deployment: topology, message bus, controllers with
/// blockchain replicas, switch sites, and the Step-0 initialization
/// (key generation, OP() assignment, finalCom election, genesis block).
class CurbNetwork {
 public:
  CurbNetwork(net::Topology topology, CurbOptions options);

  /// Step 0. Throws std::runtime_error when the CAP instance is infeasible
  /// (e.g. D_c,s too tight for the topology).
  void initialize();
  [[nodiscard]] bool initialized() const { return initialized_; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::MessageBus<CurbMessage>& bus() { return *bus_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] const CurbOptions& options() const { return options_; }

  /// Observability handle; nullptr unless options.observability is set.
  [[nodiscard]] obs::Observatory* observatory() { return observatory_.get(); }

  /// Windowed telemetry collector; nullptr unless options.ts_window > 0 (or
  /// options.slo_rules non-empty). Ticks from initialize() on.
  [[nodiscard]] obs::TsCollector* ts() { return ts_.get(); }
  /// SLO watchdog; nullptr unless options.slo_rules is non-empty.
  [[nodiscard]] obs::SloEngine* slo() { return slo_.get(); }
  /// Close the trailing partial telemetry window, run the final SLO pass,
  /// and flush/close the JSONL stream. Idempotent; destruction also
  /// flushes, so aborted runs never leave a truncated telemetry file.
  void finalize_telemetry();

  /// Per-link telemetry; nullptr unless options.link_telemetry (implied by
  /// observability). Counts every accounted bus send per (src,dst) pair —
  /// per-link msgs sum exactly to bus().stats().total_messages().
  [[nodiscard]] obs::net::LinkStats* link_stats() { return link_stats_.get(); }
  [[nodiscard]] const obs::net::LinkStats* link_stats() const {
    return link_stats_.get();
  }
  /// Message-complexity ledger; nullptr unless options.msg_ledger. Wire
  /// counts (accounted sends + fault duplicates) per (category, join key).
  [[nodiscard]] obs::net::MsgLedger* msg_ledger() { return ledger_.get(); }
  /// Topology-name lookup for the link exports (matrix/CSV/DOT).
  [[nodiscard]] obs::net::NodeNameFn link_node_names() const;

  /// Fault injector; nullptr unless options.fault_spec is non-empty.
  [[nodiscard]] fault::FaultInjector* fault_injector() { return fault_injector_.get(); }
  /// Copy the simulator's built-in counters (events executed, queue
  /// high-water) into the registry. Call before exporting metrics — the sim
  /// layer sits below obs and cannot push them itself.
  void snapshot_runtime_metrics();
  /// Refresh the per-group load/size gauges (and epoch/group counts) from
  /// an adopted assignment. Called at genesis and on every epoch adoption;
  /// idempotent, so any controller adopting the same epoch may call it.
  void record_assignment_metrics(const AssignmentState& state);

  [[nodiscard]] std::size_t num_controllers() const { return controllers_.size(); }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }
  [[nodiscard]] Controller& controller(std::uint32_t id) { return *controllers_[id]; }
  [[nodiscard]] const Controller& controller(std::uint32_t id) const {
    return *controllers_[id];
  }
  [[nodiscard]] SwitchNode& switch_node(std::uint32_t id) { return *switches_[id]; }
  [[nodiscard]] const SwitchNode& switch_node(std::uint32_t id) const {
    return *switches_[id];
  }
  [[nodiscard]] net::NodeId controller_topo_node(std::uint32_t id) const;
  [[nodiscard]] net::NodeId switch_topo_node(std::uint32_t id) const;

  /// The assignment agreed at Step 0 (genesis).
  [[nodiscard]] const AssignmentState& genesis_state() const { return genesis_state_; }
  [[nodiscard]] const chain::Block& genesis_block() const { return *genesis_block_; }

  /// One-way propagation delays (ms) over the topology's shortest paths.
  [[nodiscard]] double cs_delay_ms(std::uint32_t switch_id, std::uint32_t controller_id) const;
  [[nodiscard]] double cc_delay_ms(std::uint32_t c1, std::uint32_t c2) const;

  /// CAP instance for the current topology and options with the given
  /// byzantine exclusions and (optional) per-switch fixed leaders.
  [[nodiscard]] opt::CapInstance build_cap_instance(
      const std::vector<std::uint32_t>& byzantine,
      const std::vector<std::optional<int>>& fixed_leaders = {}) const;

  /// Solve OP() and deliver the result after the configured virtual compute
  /// delay (measured wall time or fixed, per options.op_time_mode).
  void solve_op_async(const opt::CapInstance& instance, opt::CapObjective objective,
                      const opt::Assignment* previous,
                      std::function<void(opt::CapResult)> done);

  /// Destination-based flow entries answering a PKT-IN from `switch_id`.
  /// Deterministic: every honest controller computes the same entries.
  [[nodiscard]] std::vector<sdn::FlowEntry> compute_flow_entries(
      std::uint32_t switch_id, const sdn::Packet& packet) const;

 private:
  net::Topology topology_;
  CurbOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<net::MessageBus<CurbMessage>> bus_;

  std::vector<net::NodeId> controller_nodes_;
  std::vector<net::NodeId> switch_nodes_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<std::unique_ptr<SwitchNode>> switches_;

  void install_fault_hook();
  void schedule_node_events();
  void record_fault(const fault::LinkFaultDecision& decision, const std::string& category);
  /// Live controller with the tallest chain (lowest id breaks ties);
  /// nullptr when every controller is down.
  [[nodiscard]] Controller* pick_recovery_donor() const;
  /// Long-lived OP() solver for options_.op_solver, created on first use.
  [[nodiscard]] opt::CapSolver& cap_solver();

  AssignmentState genesis_state_;
  std::unique_ptr<chain::Block> genesis_block_;
  bool initialized_ = false;
  std::unique_ptr<obs::Observatory> observatory_;
  // slo_ before ts_: the collector's destructor closes the trailing window,
  // which runs the SLO window callback — the engine must still be alive.
  std::unique_ptr<obs::SloEngine> slo_;
  std::unique_ptr<obs::TsCollector> ts_;
  /// Highest group count ever published to the load gauges; lets adoption
  /// zero the gauges of groups dissolved by a reassignment.
  std::size_t published_groups_ = 0;
  std::unique_ptr<obs::net::LinkStats> link_stats_;
  std::unique_ptr<obs::net::MsgLedger> ledger_;
  /// Interval state for the net.link_util gauges: byte counts and virtual
  /// time at the previous snapshot, so each sample publishes the utilization
  /// of the window since the last snapshot (not a lifetime average).
  std::map<obs::net::LinkKey, std::uint64_t> link_prev_bytes_;
  double link_prev_time_s_ = 0.0;
  /// Link labels ever published to the top-K utilization gauges; lets a
  /// snapshot zero links that dropped out of the top K.
  std::set<std::string> published_links_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<opt::CapSolver> cap_solver_;
  /// Process-wide SigCache counters at construction; runtime gauges export
  /// this network's delta (verify_signatures runs only).
  crypto::SigCacheStats sigcache_baseline_;
};

}  // namespace curb::core
