#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "curb/bft/replica.hpp"
#include "curb/core/messages.hpp"
#include "curb/core/options.hpp"
#include "curb/core/simulation.hpp"
#include "curb/net/message_bus.hpp"
#include "curb/net/topology.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::core {

/// Flat BFT control plane baseline (SimpleBFT/BeaconBFT-style, paper ref
/// [1]): every controller is a replica of ONE PBFT group of size N; every
/// request is sequenced by the global leader and replied to by all
/// replicas. Message complexity per request is O(N^2) — the cost Curb's
/// group-based design eliminates (Theorem 1 validation).
class FlatPbftBaseline {
 public:
  FlatPbftBaseline(net::Topology topology, CurbOptions options);

  /// Each of the first `requesters` switches issues one request; returns
  /// the same round metrics the Curb driver produces.
  RoundMetrics run_round(std::size_t requesters);

  [[nodiscard]] std::uint64_t total_messages() const { return bus_->stats().total_messages(); }
  [[nodiscard]] std::size_t num_controllers() const { return controller_nodes_.size(); }
  [[nodiscard]] std::size_t num_switches() const { return switch_nodes_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct Request {
    std::uint32_t switch_id;
    std::uint64_t request_id;
    sim::SimTime sent;
    std::optional<sim::SimTime> accepted;
    std::map<std::vector<std::uint8_t>, std::set<std::uint32_t>> replies;
  };

  void on_controller_message(std::uint32_t controller, const CurbMessage& msg);
  void on_switch_reply(std::uint32_t switch_id, const ReplyMsg& reply);

  net::Topology topology_;
  CurbOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<net::MessageBus<CurbMessage>> bus_;
  std::vector<net::NodeId> controller_nodes_;
  std::vector<net::NodeId> switch_nodes_;
  std::vector<std::unique_ptr<bft::PbftReplica>> replicas_;
  std::vector<Request> requests_;
  std::uint64_t next_request_id_ = 1;
  std::size_t quorum_ = 0;  // f+1 over the global group
};

/// Single centralized controller baseline: no replication, no consensus.
/// Fast until the controller saturates; zero byzantine tolerance. The
/// per-request service time models the paper's "centralized controller
/// communication bottleneck" discussion.
class SingleControllerBaseline {
 public:
  struct Options {
    net::LinkModel link_model{};
    /// Mean service time per request at the controller.
    sim::SimTime service_time = sim::SimTime::millis(2);
  };

  SingleControllerBaseline(net::Topology topology, Options options);

  RoundMetrics run_round(std::size_t requesters);

  [[nodiscard]] std::uint64_t total_messages() const { return bus_->stats().total_messages(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  net::Topology topology_;
  Options options_;
  sim::Simulator sim_;
  std::unique_ptr<net::MessageBus<CurbMessage>> bus_;
  net::NodeId controller_node_;
  std::vector<net::NodeId> switch_nodes_;
  sim::SimTime controller_busy_until_ = sim::SimTime::zero();
  struct Request {
    std::uint32_t switch_id;
    std::uint64_t request_id;
    sim::SimTime sent;
    std::optional<sim::SimTime> accepted;
  };
  std::vector<Request> requests_;
  std::uint64_t next_request_id_ = 1;
};

/// MORPH-style primary-backup baseline (paper refs [4]/[5]): each switch is
/// served by f+1 controllers whose replies a switch-side comparator checks
/// for agreement (no consensus among controllers, no blockchain). Fast —
/// one round trip — but provides no ordering, no verifiable history, and a
/// disagreement can only be detected, not resolved, at the switch.
class PrimaryBackupBaseline {
 public:
  struct Options {
    std::size_t f = 1;  // replicas per switch = f + 1
    net::LinkModel link_model{};
    sim::SimTime request_timeout = sim::SimTime::millis(500);
  };

  PrimaryBackupBaseline(net::Topology topology, Options options);

  RoundMetrics run_round(std::size_t requesters);

  /// Make a controller reply with corrupted configs (comparator test).
  void set_bad_config(std::uint32_t controller_id, bool enabled);
  /// Requests whose replies disagreed (comparator alarms).
  [[nodiscard]] std::uint64_t mismatches_detected() const { return mismatches_; }
  [[nodiscard]] std::uint64_t total_messages() const { return bus_->stats().total_messages(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  /// The f+1 controllers serving a switch (nearest-first).
  [[nodiscard]] const std::vector<std::uint32_t>& replicas_of(std::uint32_t switch_id) const {
    return assignment_[switch_id];
  }

 private:
  struct Request {
    std::uint32_t switch_id;
    std::uint64_t request_id;
    sim::SimTime sent;
    std::optional<sim::SimTime> accepted;
    std::map<std::uint32_t, std::vector<std::uint8_t>> replies;
  };

  void on_switch_reply(std::uint32_t switch_id, const ReplyMsg& reply);

  net::Topology topology_;
  Options options_;
  sim::Simulator sim_;
  std::unique_ptr<net::MessageBus<CurbMessage>> bus_;
  std::vector<net::NodeId> controller_nodes_;
  std::vector<net::NodeId> switch_nodes_;
  std::vector<std::vector<std::uint32_t>> assignment_;  // switch -> f+1 controllers
  std::vector<bool> bad_config_;
  std::vector<Request> requests_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t mismatches_ = 0;
};

}  // namespace curb::core
