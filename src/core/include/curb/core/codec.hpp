#pragma once

#include <span>
#include <vector>

#include "curb/chain/transaction.hpp"
#include "curb/sdn/flow.hpp"

namespace curb::core {

/// txList wire codec (the Intra-PBFT payload and AGREE body).
[[nodiscard]] std::vector<std::uint8_t> serialize_tx_list(
    const std::vector<chain::Transaction>& txs);
[[nodiscard]] std::vector<chain::Transaction> deserialize_tx_list(
    std::span<const std::uint8_t> bytes);

/// PKT-IN request payload: the packet that missed the flow table.
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(const sdn::Packet& p);
[[nodiscard]] sdn::Packet deserialize_packet(std::span<const std::uint8_t> bytes);

/// RE-ASS request payload: the accused controller ids.
[[nodiscard]] std::vector<std::uint8_t> serialize_id_list(
    const std::vector<std::uint32_t>& ids);
[[nodiscard]] std::vector<std::uint32_t> deserialize_id_list(
    std::span<const std::uint8_t> bytes);

}  // namespace curb::core
