#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "curb/core/assignment_state.hpp"
#include "curb/core/messages.hpp"
#include "curb/core/options.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/sdn/sagent.hpp"
#include "curb/sdn/switch.hpp"
#include "curb/sim/time.hpp"

namespace curb::core {

class CurbNetwork;

/// A switch site: the data-plane Switch, its s-agent, and the glue between
/// them and the Curb control plane (PKT-IN on table miss, FLOW_MOD +
/// PACKET_OUT on accepted configs, ctrList updates on RE-ASS, byzantine
/// reporting -> RE-ASS requests).
class SwitchNode {
 public:
  SwitchNode(std::uint32_t switch_id, net::NodeId node, CurbNetwork& network);

  SwitchNode(const SwitchNode&) = delete;
  SwitchNode& operator=(const SwitchNode&) = delete;

  /// Step 0: adopt the initial controller group.
  void initialize(const AssignmentState& state);

  void on_message(net::NodeId from, const CurbMessage& msg);

  /// Host traffic entry point: the attached host emits a packet to the
  /// host attached at `dst_switch_id`. A table miss triggers PKT-IN.
  void host_send(std::uint32_t dst_switch_id, std::uint32_t size_bytes = 1500);

  [[nodiscard]] std::uint32_t id() const { return switch_id_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] sdn::Switch& dataplane() { return switch_; }
  [[nodiscard]] const sdn::Switch& dataplane() const { return switch_; }
  [[nodiscard]] sdn::SAgent& agent() { return agent_; }
  [[nodiscard]] const sdn::SAgent& agent() const { return agent_; }
  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_; }
  /// Epochs with outstanding group-update votes (all > current_epoch() —
  /// adopt_group prunes everything at or below the adopted epoch).
  [[nodiscard]] std::vector<std::uint64_t> pending_group_update_epochs() const {
    std::vector<std::uint64_t> epochs;
    epochs.reserve(group_updates_.size());
    for (const auto& [epoch, votes] : group_updates_) epochs.push_back(epoch);
    return epochs;
  }

  /// Per-request completion records for latency/throughput measurement.
  struct RequestRecord {
    std::uint64_t request_id = 0;
    chain::RequestType type = chain::RequestType::kPacketIn;
    sim::SimTime sent = sim::SimTime::zero();
    std::optional<sim::SimTime> accepted;
  };
  [[nodiscard]] const std::vector<RequestRecord>& records() const { return records_; }
  void clear_records() { records_.clear(); }
  /// Packets delivered to the local host (end-to-end data-plane check).
  [[nodiscard]] const std::vector<sdn::Packet>& delivered_packets() const {
    return delivered_;
  }

  /// Issue an explicit reassignment request accusing `byzantine_ids`.
  /// `force` bypasses the already-reported filter (benchmarks re-measure
  /// the same reassignment path repeatedly; an empty forced accusation is a
  /// pure reassignment probe).
  void request_reassignment(const std::vector<std::uint32_t>& byzantine_ids,
                            bool force = false);
  /// Byzantine controllers this switch has reported so far.
  [[nodiscard]] const std::set<std::uint32_t>& reported_byzantine() const {
    return reported_;
  }
  /// Clear installed flow rules (round isolation in benchmarks).
  void reset_flow_table();

 private:
  void on_packet_in(const sdn::Packet& packet, std::uint64_t buffer_id);
  void on_config_accepted(const sdn::RequestMsg& request,
                          const std::vector<std::uint8_t>& config);
  void on_byzantine(const std::vector<std::uint32_t>& ids, sdn::ByzantineReason reason);
  void on_group_update(const GroupUpdateMsg& update);
  void adopt_group(const std::vector<std::uint32_t>& group, std::uint64_t epoch);

  std::uint32_t switch_id_;
  net::NodeId node_;
  CurbNetwork& network_;
  sdn::Switch switch_;
  sdn::SAgent agent_;

  std::map<std::uint64_t, std::uint64_t> request_to_buffer_;  // request id -> buffer id
  // Open protocol spans per in-flight request: the round span (pkt_in /
  // reass_request) and its reply_quorum child (first REPLY -> acceptance).
  std::map<std::uint64_t, obs::SpanId> request_spans_;
  std::map<std::uint64_t, obs::SpanId> reply_spans_;
  std::string track_;  // this switch's trace row, "sw-<id>"
  std::vector<RequestRecord> records_;
  std::vector<sdn::Packet> delivered_;
  std::set<std::uint32_t> reported_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_packet_id_ = 1;

  // Group-update quorum tracking: epoch -> (group bytes key -> senders).
  std::map<std::uint64_t, std::map<std::vector<std::uint32_t>, std::set<std::uint32_t>>>
      group_updates_;
};

}  // namespace curb::core
