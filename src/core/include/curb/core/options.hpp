#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "curb/bft/consensus.hpp"
#include "curb/net/link_model.hpp"
#include "curb/opt/cap.hpp"
#include "curb/opt/solver.hpp"
#include "curb/sim/time.hpp"

namespace curb::core {

/// How the OP() solve time enters the simulation clock.
enum class OpTimeMode : std::uint8_t {
  /// Measure the real wall time of solve_cap and inject it as virtual
  /// compute delay — mirrors the paper, where Gurobi runs inline on the
  /// controller host.
  kMeasured,
  /// Inject a fixed delay (deterministic runs for tests).
  kFixed,
};

/// All knobs of a Curb deployment. Defaults reproduce the paper's
/// evaluation setup: Internet2 topology, f = 1 (group size 4), 500 ms
/// request timeout, lazy window (200, 500) ms tolerated for 5 rounds.
struct CurbOptions {
  /// Fault tolerance per controller group: group size = 3f + 1.
  std::size_t f = 1;

  /// Reply timeout at the s-agent (paper: 500 ms).
  sim::SimTime request_timeout = sim::SimTime::millis(500);
  /// Response-time threshold above which a round counts as lazy (paper:
  /// lazy nodes respond in (200, 500) ms).
  sim::SimTime lazy_threshold = sim::SimTime::millis(200);
  /// Lazy rounds tolerated before treating the node as byzantine (paper: 5).
  std::size_t max_lazy_rounds = 5;
  /// Consecutive timed-out rounds before a silent controller is reported
  /// (paper Fig. 4(a) detects the silent node several rounds after it
  /// stops responding; 1 = report on first miss).
  std::size_t max_silent_rounds = 1;

  /// Leader request buffer: pack a txList after this many requests...
  std::size_t request_batch_size = 1;
  /// ...or after this timeout since the first buffered request.
  sim::SimTime request_batch_timeout = sim::SimTime::millis(50);
  /// Final leader block buffer: seal a block after this many txLists...
  std::size_t block_batch_size = 1;
  /// ...or after this timeout since the first buffered txList.
  sim::SimTime block_batch_timeout = sim::SimTime::millis(50);

  /// PBFT view-change timeout for both consensus layers.
  sim::SimTime pbft_timeout = sim::SimTime::millis(500);
  /// BFT engine for Intra- and Final-consensus. The paper uses PBFT and
  /// notes Tendermint/HotStuff work too; kHotstuff swaps in the
  /// leader-aggregated linear-communication engine.
  bft::ConsensusEngine consensus_engine = bft::ConsensusEngine::kPbft;

  /// Leaders aggregate RE-ASS accusations arriving within this window into
  /// a single OP() solve (paper experiment 2: three byzantine nodes removed
  /// "by calculating OP once").
  sim::SimTime reass_aggregation_delay = sim::SimTime::millis(30);

  /// Parallel mode (paper Fig. 4(c)): all intra-group and final consensus
  /// instances proceed concurrently. Non-parallel serializes them through a
  /// global token, which is what the paper's non-parallel baseline does.
  bool parallel = true;

  /// Physical link model (paper: 2*10^8 m/s, 100 Mbps).
  net::LinkModel link_model{};

  /// Assignment solver objective used for reassignment.
  opt::CapObjective reassign_objective = opt::CapObjective::kTrivial;
  /// CAP solver backend for every OP() solve (initial assignment and
  /// reassignments). kDense is the byte-stable baseline; kSparse scales the
  /// exact solver past Internet2; kHeuristic trades optimality proofs for
  /// millisecond solves at 1000 switches x 100 controllers. curb-sim maps
  /// --solver onto this.
  opt::CapSolverBackend op_solver = opt::CapSolverBackend::kDense;
  /// D_c,s threshold in milliseconds (kNoLimit disables [C1.3]).
  double max_cs_delay_ms = opt::CapInstance::kNoLimit;
  /// D_c,c threshold in milliseconds (kNoLimit disables [C1.4], the paper's
  /// default in all experiments since the quadratic constraint is costly).
  double max_cc_delay_ms = opt::CapInstance::kNoLimit;
  /// Q_i: per-switch load units and C_j: per-controller capacity.
  double switch_load = 1.0;
  double controller_capacity = 1e9;

  OpTimeMode op_time_mode = OpTimeMode::kFixed;
  sim::SimTime op_fixed_time = sim::SimTime::millis(20);
  /// Wall-clock budget for each OP() branch-and-bound (0 = unlimited). When
  /// hit, the solver returns its incumbent (usually the greedy/repair warm
  /// start) — a leader must answer within the switches' timeout regardless.
  double op_wall_limit_ms = 1000.0;

  /// Always run the OP() solver for RE-ASS requests, even when the accused
  /// set adds nothing new. Benchmarks use this to measure the full
  /// reassignment pipeline repeatedly without degrading the network.
  bool reass_always_solve = false;

  /// Verify request/transaction signatures (real ECDSA). Costs real CPU
  /// time in big sweeps; protocol behaviour is identical either way.
  bool verify_signatures = false;

  /// Observability: when true the network owns an obs::Observatory — the
  /// protocol records spans per round (pkt_in -> intra_pbft -> agree ->
  /// final_pbft -> block_commit -> reply_quorum) and every layer feeds the
  /// metrics registry. Off by default: the disabled path is a null-pointer
  /// check on each hot path.
  bool observability = false;

  /// Per-link telemetry (curb::obs::net::LinkStats): every accounted bus
  /// send also increments per-(src,dst) counters, exportable as a link
  /// matrix / DOT heatmap and surfaced as net.link_util gauges. Implied by
  /// `observability`; set directly to collect link counters without the
  /// full observatory. Pure counting — same-seed runs stay byte-identical.
  bool link_telemetry = false;

  /// Message-complexity ledger (curb::obs::net::MsgLedger): attribute every
  /// accounted send to its transaction join key (payload-digest hex for
  /// consensus traffic, "switch:request" for PKT-IN/REPLY). Off by default —
  /// keying consensus traffic hashes each AGREE/FINAL-AGREE payload once.
  bool msg_ledger = false;

  /// Windowed time-series telemetry (curb::obs::ts): zero disables the
  /// collector; a nonzero width makes the network sample the metrics
  /// registry every `ts_window` of virtual time into per-window deltas
  /// (implies observability). Window closes are pure-read simulator events,
  /// so same-seed runs stay byte-identical with telemetry on.
  sim::SimTime ts_window = sim::SimTime::zero();
  /// Closed windows retained in memory; older ones are evicted after the
  /// streaming flush, so memory is O(retention), not run length.
  std::size_t ts_retention = 64;
  /// Stream closed windows to this JSONL path (curb-watch tails it live).
  /// Empty keeps windows in memory only.
  std::string ts_out;
  /// SLO watchdog rules (curb::obs::slo grammar), evaluated at every window
  /// close. Empty disables; non-empty implies ts_window (defaulted to
  /// 100 ms when unset).
  std::string slo_rules;

  /// RNG seed for the whole deployment.
  std::uint64_t seed = 42;

  /// Fault-injection plan (curb::fault spec grammar, e.g.
  /// "drop(p=0.05,cat=REPLY);crash(node=ctrl1,at=500,down=2000)"). Empty
  /// disables injection entirely; the bus hook is then never installed.
  std::string fault_spec;
  /// Seed for the fault plan's own RNG stream, independent of `seed` so the
  /// same workload can be replayed under different fault schedules.
  std::uint64_t fault_seed = 1;
};

}  // namespace curb::core
