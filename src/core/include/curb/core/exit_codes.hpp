#pragma once

// Process exit-code contract shared by every curb CLI (curb-sim, curb-watch,
// curb-trace, curb-prof). The numeric values are part of the scripting
// interface — CI jobs and EXPERIMENTS.md recipes branch on them — so they
// must never change meaning:
//
//   0  success, nothing notable found
//   1  the tool ran and found a problem: protocol anomalies (curb-trace),
//      metric regressions (curb-prof perf-diff / mem-diff), threshold
//      verdict failures (curb-watch), or a failed run (curb-sim)
//   2  usage error: bad flags, unreadable files, unparsable input
//   3  the SLO watchdog fired (curb-sim live engine, curb-watch replay)
//
// Keep 1 and 3 distinct: a breach is a measured service-level event on an
// otherwise healthy run, not a tool failure — scripts retry/annotate them
// differently.

namespace curb::core {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFinding = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitSloBreach = 3;

}  // namespace curb::core
