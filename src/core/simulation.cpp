#include "curb/core/simulation.hpp"

#include <algorithm>

namespace curb::core {

using namespace curb::sim::literals;

CurbSimulation::CurbSimulation(CurbOptions options)
    : CurbSimulation{net::internet2(), options} {}

CurbSimulation::CurbSimulation(net::Topology topology, CurbOptions options)
    : CurbSimulation{std::move(topology), options, DeferInit{}} {
  initialize();
}

CurbSimulation::CurbSimulation(net::Topology topology, CurbOptions options, DeferInit)
    : network_{std::make_unique<CurbNetwork>(std::move(topology), options)} {}

void CurbSimulation::initialize() {
  network_->initialize();
  active_switches_ = network_->num_switches();
}

void CurbSimulation::set_active_switches(std::size_t n) {
  active_switches_ = std::min(n, network_->num_switches());
}

void CurbSimulation::set_controller_behavior(std::uint32_t controller_id,
                                             bft::Behavior behavior) {
  network_->controller(controller_id).set_behavior(behavior);
}

void CurbSimulation::set_controller_lazy_range(std::uint32_t controller_id, sim::SimTime lo,
                                               sim::SimTime hi) {
  network_->controller(controller_id).set_lazy_range(lo, hi);
}

RoundMetrics CurbSimulation::run_packet_in_round(std::size_t requests_per_switch) {
  ++round_counter_;
  const sim::SimTime round_start = network_->simulator().now();
  const std::uint64_t messages_before = network_->bus().stats().total_messages();

  for (std::uint32_t sw = 0; sw < active_switches_; ++sw) {
    SwitchNode& node = network_->switch_node(sw);
    node.reset_flow_table();
    node.clear_records();
    for (std::size_t r = 0; r < requests_per_switch; ++r) {
      // Destinations rotate per round/request so configs always differ.
      auto dst = static_cast<std::uint32_t>((sw + round_counter_ + r * 7 + 1) %
                                            network_->num_switches());
      if (dst == sw) dst = (dst + 1) % network_->num_switches();
      node.host_send(dst);
    }
  }
  return finish_round(round_start, messages_before);
}

RoundMetrics CurbSimulation::run_reassignment_round(std::size_t requesters) {
  ++round_counter_;
  const sim::SimTime round_start = network_->simulator().now();
  const std::uint64_t messages_before = network_->bus().stats().total_messages();

  const std::size_t n = std::min(requesters, active_switches_);
  for (std::uint32_t sw = 0; sw < n; ++sw) {
    SwitchNode& node = network_->switch_node(sw);
    node.clear_records();
    // Forced empty-accusation probes: the leaders run the full RE-ASS
    // pipeline (OP solve, consensus, blockchain commit, ctrList replies)
    // without actually degrading the network, so rounds are repeatable —
    // exactly the handling cost Fig. 9 measures. Requires
    // options.reass_always_solve.
    node.request_reassignment({}, /*force=*/true);
  }
  return finish_round(round_start, messages_before);
}

RoundMetrics CurbSimulation::finish_round(sim::SimTime round_start,
                                          std::uint64_t messages_before) {
  // Let the round settle: all requests accept or time out. The deadline is
  // generous; the event queue usually drains long before it.
  const sim::SimTime deadline =
      round_start + network_->options().request_timeout * 4 + 2_s;
  network_->simulator().run_until(deadline);

  RoundMetrics metrics;
  sim::SimTime last_accept = round_start;
  double latency_sum = 0.0;
  obs::Observatory* obsy = network_->observatory();
  obs::Histogram* latency_hist = nullptr;
  obs::Counter* timeout_counter = nullptr;
  if (obsy != nullptr) {
    latency_hist = &obsy->metrics.histogram("core.request_latency_us");
    timeout_counter = &obsy->metrics.counter("core.request_timeouts");
  }
  for (std::uint32_t sw = 0; sw < network_->num_switches(); ++sw) {
    for (const auto& record : network_->switch_node(sw).records()) {
      if (record.sent < round_start) continue;
      ++metrics.issued;
      if (record.accepted) {
        ++metrics.accepted;
        const double latency_ms = (*record.accepted - record.sent).as_millis_f();
        latency_sum += latency_ms;
        metrics.max_latency_ms = std::max(metrics.max_latency_ms, latency_ms);
        last_accept = std::max(last_accept, *record.accepted);
        if (latency_hist != nullptr) {
          latency_hist->record(
              static_cast<double>((*record.accepted - record.sent).as_micros()));
        }
      } else if (timeout_counter != nullptr) {
        timeout_counter->inc();
      }
    }
  }
  if (obsy != nullptr) {
    obsy->metrics.counter("core.rounds").inc();
    network_->snapshot_runtime_metrics();
  }
  if (metrics.accepted > 0) {
    metrics.mean_latency_ms = latency_sum / static_cast<double>(metrics.accepted);
    const double duration_s = (last_accept - round_start).as_seconds_f();
    metrics.round_duration_ms = duration_s * 1000.0;
    if (duration_s > 0) {
      metrics.throughput_tps = static_cast<double>(metrics.accepted) / duration_s;
    }
  }
  metrics.messages = network_->bus().stats().total_messages() - messages_before;
  return metrics;
}

std::vector<RoundMetrics> CurbSimulation::run_packet_in_rounds(std::size_t n) {
  std::vector<RoundMetrics> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(run_packet_in_round());
  return out;
}

std::uint64_t CurbSimulation::total_messages() const {
  return network_->bus().stats().total_messages();
}

bool CurbSimulation::chains_consistent() const {
  const auto& reference = network_->controller(0).blockchain();
  for (std::uint32_t c = 1; c < network_->num_controllers(); ++c) {
    if (!network_->controller(c).blockchain().same_view_as(reference)) return false;
  }
  return true;
}

bool CurbSimulation::chains_prefix_consistent() const {
  const chain::Blockchain* reference = nullptr;
  for (std::uint32_t c = 0; c < network_->num_controllers(); ++c) {
    const Controller& ctrl = network_->controller(c);
    if (ctrl.crashed() || !ctrl.has_blockchain()) continue;
    if (reference == nullptr) {
      reference = &ctrl.blockchain();
      continue;
    }
    const std::uint64_t common =
        std::min(reference->height(), ctrl.blockchain().height());
    if (ctrl.blockchain().at(common).hash() != reference->at(common).hash()) {
      return false;
    }
  }
  return true;
}

std::uint64_t CurbSimulation::chain_height() const {
  return network_->controller(0).blockchain().height();
}

}  // namespace curb::core
