#include "curb/core/simulation.hpp"

#include <algorithm>

namespace curb::core {

using namespace curb::sim::literals;

CurbSimulation::CurbSimulation(CurbOptions options)
    : CurbSimulation{net::internet2(), options} {}

CurbSimulation::CurbSimulation(net::Topology topology, CurbOptions options)
    : CurbSimulation{std::move(topology), options, DeferInit{}} {
  initialize();
}

CurbSimulation::CurbSimulation(net::Topology topology, CurbOptions options, DeferInit)
    : network_{std::make_unique<CurbNetwork>(std::move(topology), options)} {}

void CurbSimulation::initialize() {
  network_->initialize();
  active_switches_ = network_->num_switches();
}

void CurbSimulation::set_active_switches(std::size_t n) {
  active_switches_ = std::min(n, network_->num_switches());
}

void CurbSimulation::set_controller_behavior(std::uint32_t controller_id,
                                             bft::Behavior behavior) {
  network_->controller(controller_id).set_behavior(behavior);
}

void CurbSimulation::set_controller_lazy_range(std::uint32_t controller_id, sim::SimTime lo,
                                               sim::SimTime hi) {
  network_->controller(controller_id).set_lazy_range(lo, hi);
}

RoundMetrics CurbSimulation::run_packet_in_round(std::size_t requests_per_switch) {
  ++round_counter_;
  const RoundStart round_start = begin_round();

  for (std::uint32_t sw = 0; sw < active_switches_; ++sw) {
    SwitchNode& node = network_->switch_node(sw);
    node.reset_flow_table();
    node.clear_records();
    for (std::size_t r = 0; r < requests_per_switch; ++r) {
      // Destinations rotate per round/request so configs always differ.
      auto dst = static_cast<std::uint32_t>((sw + round_counter_ + r * 7 + 1) %
                                            network_->num_switches());
      if (dst == sw) dst = (dst + 1) % network_->num_switches();
      node.host_send(dst);
    }
  }
  return finish_round(round_start, "pkt_in");
}

RoundMetrics CurbSimulation::run_reassignment_round(std::size_t requesters) {
  ++round_counter_;
  const RoundStart round_start = begin_round();

  const std::size_t n = std::min(requesters, active_switches_);
  for (std::uint32_t sw = 0; sw < n; ++sw) {
    SwitchNode& node = network_->switch_node(sw);
    node.clear_records();
    // Forced empty-accusation probes: the leaders run the full RE-ASS
    // pipeline (OP solve, consensus, blockchain commit, ctrList replies)
    // without actually degrading the network, so rounds are repeatable —
    // exactly the handling cost Fig. 9 measures. Requires
    // options.reass_always_solve.
    node.request_reassignment({}, /*force=*/true);
  }
  return finish_round(round_start, "reass");
}

CurbSimulation::RoundStart CurbSimulation::begin_round() const {
  RoundStart start;
  start.at = network_->simulator().now();
  start.messages_before = network_->bus().stats().total_messages();
  if (network_->observatory() != nullptr) {
    start.categories_before = network_->bus().stats().snapshot();
    const Controller& c0 = network_->controller(0);
    if (c0.has_blockchain()) start.height_before = c0.blockchain().height();
  }
  if (const obs::net::LinkStats* links = network_->link_stats()) {
    for (const auto& [category, totals] : links->categories()) {
      start.category_dups_before[category] = totals.dups;
    }
  }
  return start;
}

RoundMetrics CurbSimulation::finish_round(const RoundStart& start, const char* kind) {
  const sim::SimTime round_start = start.at;
  const std::uint64_t messages_before = start.messages_before;
  // Let the round settle: all requests accept or time out. The deadline is
  // generous; the event queue usually drains long before it.
  const sim::SimTime deadline =
      round_start + network_->options().request_timeout * 4 + 2_s;
  network_->simulator().run_until(deadline);

  RoundMetrics metrics;
  sim::SimTime last_accept = round_start;
  double latency_sum = 0.0;
  obs::Observatory* obsy = network_->observatory();
  obs::Histogram* latency_hist = nullptr;
  obs::Counter* timeout_counter = nullptr;
  if (obsy != nullptr) {
    latency_hist = &obsy->metrics.histogram("core.request_latency_us");
    timeout_counter = &obsy->metrics.counter("core.request_timeouts");
  }
  for (std::uint32_t sw = 0; sw < network_->num_switches(); ++sw) {
    for (const auto& record : network_->switch_node(sw).records()) {
      if (record.sent < round_start) continue;
      ++metrics.issued;
      if (record.accepted) {
        ++metrics.accepted;
        const double latency_ms = (*record.accepted - record.sent).as_millis_f();
        latency_sum += latency_ms;
        metrics.max_latency_ms = std::max(metrics.max_latency_ms, latency_ms);
        last_accept = std::max(last_accept, *record.accepted);
        if (latency_hist != nullptr) {
          latency_hist->record(
              static_cast<double>((*record.accepted - record.sent).as_micros()));
        }
      } else if (timeout_counter != nullptr) {
        timeout_counter->inc();
      }
    }
  }
  if (obsy != nullptr) {
    obsy->metrics.counter("core.rounds").inc();
    network_->snapshot_runtime_metrics();
  }
  if (metrics.accepted > 0) {
    metrics.mean_latency_ms = latency_sum / static_cast<double>(metrics.accepted);
    const double duration_s = (last_accept - round_start).as_seconds_f();
    metrics.round_duration_ms = duration_s * 1000.0;
    if (duration_s > 0) {
      metrics.throughput_tps = static_cast<double>(metrics.accepted) / duration_s;
    }
  }
  metrics.messages = network_->bus().stats().total_messages() - messages_before;
  if (obsy != nullptr) emit_round_complexity(start, kind, metrics);
  return metrics;
}

void CurbSimulation::emit_round_complexity(const RoundStart& start, const char* kind,
                                           const RoundMetrics& metrics) {
  obs::Observatory* obsy = network_->observatory();
  if (obsy == nullptr) return;
  const net::MessageStats& stats = network_->bus().stats();
  const obs::net::LinkStats* links = network_->link_stats();

  // Wire counts this round: accounted sends per category plus any
  // fault-injected duplicate deliveries (which MessageStats never records —
  // exactly the traffic the Theorem 1 auditor must see).
  std::uint64_t total = 0;
  std::uint64_t dup_total = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  attrs.reserve(stats.categories().size() + 10);
  const std::uint64_t round_blocks = [&] {
    const Controller& c0 = network_->controller(0);
    if (!c0.has_blockchain()) return std::uint64_t{0};
    const std::uint64_t height = c0.blockchain().height();
    return height > start.height_before ? height - start.height_before : 0;
  }();
  attrs.emplace_back("round", std::to_string(round_counter_));
  attrs.emplace_back("kind", kind);
  attrs.emplace_back("engine",
                     std::string{bft::to_string(network_->options().consensus_engine)});
  const std::uint64_t committee = 3 * network_->options().f + 1;
  // The CAP assignment may serve a switch with more than 3f+1 controllers
  // when placement constraints demand it; the request-scaled phases of the
  // analytic bound are parameterized on the largest serving-group size.
  std::uint64_t gmax = committee;
  for (const auto& group : network_->controller(0).state().groups()) {
    gmax = std::max<std::uint64_t>(gmax, group.members.size());
  }
  attrs.emplace_back("c", std::to_string(committee));
  attrs.emplace_back("gmax", std::to_string(gmax));
  attrs.emplace_back("k",
                     std::to_string(network_->controller(0).state().groups().size()));
  attrs.emplace_back("n", std::to_string(network_->num_controllers()));
  attrs.emplace_back("requests", std::to_string(metrics.issued));
  attrs.emplace_back("blocks", std::to_string(round_blocks));
  for (const auto& [category, entry] : stats.categories()) {
    std::uint64_t wire = entry.count;
    const auto before = start.categories_before.find(category);
    if (before != start.categories_before.end()) wire -= before->second.first;
    if (links != nullptr) {
      // Per-category dup deltas need the category's cumulative dup count at
      // round start; LinkStats only keeps cumulative totals, so attribute
      // the round's dup delta to its category via the category totals map.
      const std::uint64_t dups_now = links->category_dups(category);
      const auto dup_before = start.category_dups_before.find(category);
      const std::uint64_t dups =
          dups_now - (dup_before != start.category_dups_before.end()
                          ? dup_before->second
                          : 0);
      wire += dups;
      dup_total += dups;
    }
    if (wire == 0) continue;
    total += wire;
    attrs.emplace_back("m:" + category, std::to_string(wire));
  }
  attrs.emplace_back("total", std::to_string(total));
  attrs.emplace_back("dup", std::to_string(dup_total));
  obsy->tracer.instant("round_complexity", "net", attrs);
}

std::vector<RoundMetrics> CurbSimulation::run_packet_in_rounds(std::size_t n) {
  std::vector<RoundMetrics> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(run_packet_in_round());
  return out;
}

std::uint64_t CurbSimulation::total_messages() const {
  return network_->bus().stats().total_messages();
}

bool CurbSimulation::chains_consistent() const {
  const auto& reference = network_->controller(0).blockchain();
  for (std::uint32_t c = 1; c < network_->num_controllers(); ++c) {
    if (!network_->controller(c).blockchain().same_view_as(reference)) return false;
  }
  return true;
}

bool CurbSimulation::chains_prefix_consistent() const {
  const chain::Blockchain* reference = nullptr;
  for (std::uint32_t c = 0; c < network_->num_controllers(); ++c) {
    const Controller& ctrl = network_->controller(c);
    if (ctrl.crashed() || !ctrl.has_blockchain()) continue;
    if (reference == nullptr) {
      reference = &ctrl.blockchain();
      continue;
    }
    const std::uint64_t common =
        std::min(reference->height(), ctrl.blockchain().height());
    if (ctrl.blockchain().at(common).hash() != reference->at(common).hash()) {
      return false;
    }
  }
  return true;
}

std::uint64_t CurbSimulation::chain_height() const {
  return network_->controller(0).blockchain().height();
}

}  // namespace curb::core
