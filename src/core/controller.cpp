#include "curb/core/controller.hpp"

#include <algorithm>
#include <numeric>

#include "curb/core/codec.hpp"
#include "curb/core/network.hpp"
#include "curb/sim/log.hpp"

namespace curb::core {

using namespace curb::sim::literals;

namespace {
/// Trace hook: enable with Logger::instance().set_sink(stderr_sink()) and
/// level kDebug to watch the protocol run.
void trace(sim::Simulator& sim, std::uint32_t id, const std::string& msg) {
  sim::Logger::instance().log(sim::LogLevel::kDebug, sim.now(),
                              "ctl-" + std::to_string(id), msg);
}

/// Keyed-span key for a cross-controller protocol stage: fold the first
/// bytes of the content digest with the instance id. The same (instance,
/// payload) yields the same key on every controller, which is what lets the
/// tracer stitch one AGREE / block-commit span out of many reporters.
std::uint64_t stage_key(std::uint32_t instance, const crypto::Hash256& digest) {
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < 8; ++i) k = (k << 8) | digest[i];
  return k ^ (static_cast<std::uint64_t>(instance) * 0x9e3779b97f4a7c15ULL);
}

/// Traced-event contract join key (DESIGN.md §9): the transactions a stage
/// span carries, as comma-separated "switch:request" pairs. Lets trace
/// analysis chain pkt_in -> agree -> block_commit without guessing by time.
std::string txns_attr(const std::vector<chain::Transaction>& txs) {
  std::string out;
  for (const chain::Transaction& tx : txs) {
    if (!out.empty()) out += ',';
    out += std::to_string(tx.switch_id());
    out += ':';
    out += std::to_string(tx.request_id());
  }
  return out;
}

std::string txns_attr_from_payload(const std::vector<std::uint8_t>& payload) {
  try {
    return txns_attr(deserialize_tx_list(payload));
  } catch (const std::exception&) {
    return {};
  }
}
}  // namespace

Controller::Controller(std::uint32_t id, net::NodeId node, crypto::KeyPair key,
                       CurbNetwork& network)
    : id_{id},
      node_{node},
      key_{std::move(key)},
      network_{network},
      rng_{network.options().seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))} {}

void Controller::initialize(const AssignmentState& state, const chain::Block& genesis) {
  state_ = state;
  blockchain_ = std::make_unique<chain::Blockchain>(genesis);
  blockchain_->set_observatory(network_.observatory(), "ctrl-" + std::to_string(id_));
  rebuild_replicas();
}

void Controller::rebuild_replicas() {
  const auto& options = network_.options();

  // --- Intra-group replicas: diff by membership-stable instance id.
  // Instances whose member set is unchanged survive with all their PBFT
  // state and in-flight proposals; only genuinely new/removed groups churn.
  std::map<std::uint32_t, std::vector<std::uint32_t>> wanted;  // instance -> members
  std::map<std::uint32_t, std::uint32_t> instance_leader;
  for (const std::uint32_t gid : state_.groups_of_controller(id_)) {
    const GroupInfo& group = state_.group(gid);
    const std::uint32_t instance = AssignmentState::instance_id_of(group.members);
    wanted.emplace(instance, group.members);
    instance_leader.emplace(instance, group.leader);
  }
  // Record every group of the adopted epoch (not only own memberships) so
  // final-committee AGREE validation covers all instances.
  for (const GroupInfo& g : state_.groups()) {
    known_instances_[AssignmentState::instance_id_of(g.members)] = g.members;
  }

  // Retire (not destroy) replicas whose group dissolved: in-flight
  // consensus may still complete and land on chain within the grace period.
  const sim::SimTime grace = network_.options().pbft_timeout * 4;
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (wanted.contains(it->first)) {
      ++it;
      continue;
    }
    const std::uint32_t instance = it->first;
    // A re-created instance (same membership reappears) resumes its retired
    // replica below; otherwise it expires.
    retired_replicas_[instance] = std::move(it->second);
    it = replicas_.erase(it);
    network_.simulator().schedule(grace, [this, instance] {
      if (replicas_.contains(instance)) return;  // resurrected meanwhile
      retired_replicas_.erase(instance);
      request_buffer_.erase(instance);
      pending_requests_.erase(instance);
      reass_window_.erase(instance);
      const auto t1 = request_buffer_timer_.find(instance);
      if (t1 != request_buffer_timer_.end()) {
        network_.simulator().cancel(t1->second);
        request_buffer_timer_.erase(t1);
      }
      const auto t2 = reass_window_timer_.find(instance);
      if (t2 != reass_window_timer_.end()) {
        network_.simulator().cancel(t2->second);
        reass_window_timer_.erase(t2);
      }
    });
  }
  // Resurrect retired replicas whose membership came back.
  for (auto it = retired_replicas_.begin(); it != retired_replicas_.end();) {
    if (wanted.contains(it->first)) {
      replicas_[it->first] = std::move(it->second);
      it = retired_replicas_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [instance, members] : wanted) {
    if (replicas_.contains(instance)) continue;
    bft::ReplicaConfig cfg;
    const auto self_it = std::find(members.begin(), members.end(), id_);
    cfg.replica_index = static_cast<std::uint32_t>(self_it - members.begin());
    cfg.group_size = members.size();
    cfg.view_change_timeout = options.pbft_timeout;
    // Seat the OP-designated leader: view v has leader v % n.
    const auto leader_it =
        std::find(members.begin(), members.end(), instance_leader.at(instance));
    cfg.initial_view = static_cast<std::uint64_t>(leader_it - members.begin());
    cfg.obs = network_.observatory();
    if (cfg.obs != nullptr) {
      cfg.span_track = "ctrl-" + std::to_string(id_);
      cfg.span_prefix = "intra_pbft";
      cfg.span_attrs = {{"controller", std::to_string(id_)},
                        {"instance", std::to_string(instance)}};
    }
    if (options.verify_signatures) {
      cfg.validate_payload = [this](const std::vector<std::uint8_t>& payload) {
        return verify_tx_list_payload(bft::payload_digest(payload), payload);
      };
    }
    auto replica = bft::make_replica(
        network_.options().consensus_engine, cfg, network_.simulator(),
        [this, instance, members](std::uint32_t dest, const bft::PbftMessage& msg) {
          PbftEnvelope envelope{instance, state_.epoch(), msg};
          send_to_controller(members[dest], CurbMessage{std::move(envelope)});
        },
        [this, instance](std::uint64_t, const std::vector<std::uint8_t>& payload) {
          on_intra_committed(instance, payload);
        });
    replica->set_on_view_change([this, instance](std::uint64_t) {
      rehandle_pending(instance);
    });
    replicas_.emplace(instance, std::move(replica));
  }

  // --- Final replica: preserved while the committee is unchanged. On a
  // committee change the AGREE bookkeeping and block buffer are KEPT: every
  // committee member buffers confirmed txLists, so whoever leads next can
  // drain anything that has not yet reached the chain.
  const auto& committee = state_.final_committee();
  for (const std::uint32_t member : committee) ever_committee_.insert(member);
  const bool member_now = state_.in_final_committee(id_);
  const bool was_member = !final_committee_cache_.empty();
  const bool committee_changed = final_committee_cache_ != committee;
  // Hand over the confirmed backlog: former members re-AGREE everything not
  // yet on chain to the incoming committee, so the new leader can seal it.
  if (was_member && committee_changed && !block_buffer_.empty()) {
    for (const auto& [instance, tx_list] : block_buffer_) {
      AgreeMsg agree{instance, id_, tx_list};
      for (const std::uint32_t member : committee) {
        if (member == id_) continue;  // self re-delivery handled below
        send_to_controller(member, CurbMessage{agree});
      }
    }
  }
  if (!member_now) {
    retire_final_replica();
    final_committee_cache_.clear();
    agree_votes_.clear();
    agree_buffered_.clear();
    block_buffer_.clear();
    final_proposal_in_flight_ = false;
  } else if (committee_changed) {
    retire_final_replica();
    bft::ReplicaConfig cfg;
    cfg.replica_index = *state_.final_replica_index(id_);
    cfg.group_size = committee.size();
    cfg.view_change_timeout = options.pbft_timeout;
    cfg.initial_view = *state_.final_replica_index(state_.final_leader());
    cfg.obs = network_.observatory();
    if (cfg.obs != nullptr) {
      cfg.span_track = "ctrl-" + std::to_string(id_);
      cfg.span_prefix = "final_pbft";
      cfg.span_attrs = {{"controller", std::to_string(id_)},
                        {"epoch", std::to_string(state_.epoch())}};
    }
    if (options.verify_signatures) {
      cfg.validate_payload = [this](const std::vector<std::uint8_t>& payload) {
        chain::Block block;
        try {
          block = chain::Block::deserialize(payload);
        } catch (const std::exception&) {
          return false;
        }
        if (!block.well_formed()) return false;
        return verify_block_txs(block.hash(), block);
      };
    }
    final_replica_ = bft::make_replica(
        network_.options().consensus_engine, cfg, network_.simulator(),
        [this, committee](std::uint32_t dest, const bft::PbftMessage& msg) {
          PbftEnvelope envelope{PbftEnvelope::kFinalInstance, state_.epoch(), msg};
          send_to_controller(committee[dest], CurbMessage{std::move(envelope)});
        },
        [this](std::uint64_t, const std::vector<std::uint8_t>& payload) {
          on_final_committed(payload);
        });
    final_committee_cache_ = committee;
    final_proposal_in_flight_ = false;
    if (!block_buffer_.empty() && final_replica_->is_leader()) {
      network_.simulator().schedule(sim::SimTime::zero(),
                                    [this] { flush_block_buffer(); });
    }
  }

  // Replay AGREEs that arrived before this node adopted their instance.
  if (!orphan_agrees_.empty() && member_now) {
    const sim::SimTime now = network_.simulator().now();
    const sim::SimTime max_age = options.pbft_timeout * 4;
    std::vector<std::pair<sim::SimTime, AgreeMsg>> orphans;
    orphans.swap(orphan_agrees_);
    for (auto& [when, agree] : orphans) {
      if (now - when > max_age) continue;  // expired
      network_.simulator().schedule(sim::SimTime::zero(),
                                    [this, agree = std::move(agree)] { on_agree(agree); });
    }
  }
}

void Controller::retire_final_replica() {
  if (final_replica_ == nullptr) return;
  // The committee change that retires this replica is often COMMITTED BY this
  // replica: rebuild_replicas() runs inside its deliver_ callback, with its
  // try_execute() frame still on the stack. Destroying it here is a
  // use-after-free, so park it on the event queue and let it die only after
  // the stack unwinds (same lifetime discipline as retired_replicas_).
  network_.simulator().schedule(
      sim::SimTime::zero(),
      [doomed = std::shared_ptr<bft::ConsensusReplica>(std::move(final_replica_))] {});
  final_replica_ = nullptr;
}

void Controller::set_behavior(bft::Behavior behavior) { behavior_ = behavior; }

void Controller::set_lazy_range(sim::SimTime lo, sim::SimTime hi) {
  lazy_min_ = lo;
  lazy_max_ = hi;
}

void Controller::set_replica_behavior(bft::Behavior behavior) {
  for (auto& [instance, replica] : replicas_) replica->set_behavior(behavior);
  for (auto& [instance, replica] : retired_replicas_) replica->set_behavior(behavior);
  if (final_replica_ != nullptr) final_replica_->set_behavior(behavior);
}

void Controller::crash() {
  if (crashed_) return;
  crashed_ = true;
  trace(network_.simulator(), id_, "CRASH");
  // Drop every piece of volatile state. Timers already in the simulator
  // queue fire against the cleared maps and no-op; the explicit handles we
  // hold are cancelled so they cannot re-arm anything.
  auto& sim = network_.simulator();
  for (auto& [instance, handle] : request_buffer_timer_) sim.cancel(handle);
  request_buffer_timer_.clear();
  for (auto& [instance, handle] : reass_window_timer_) sim.cancel(handle);
  reass_window_timer_.clear();
  if (block_buffer_timer_armed_) {
    sim.cancel(block_buffer_timer_);
    block_buffer_timer_armed_ = false;
  }
  replicas_.clear();
  retired_replicas_.clear();
  final_replica_.reset();
  final_committee_cache_.clear();
  known_instances_.clear();
  payload_verdicts_.clear();
  blockchain_.reset();
  request_buffer_.clear();
  reass_window_.clear();
  handled_requests_.clear();
  committed_requests_.clear();
  pending_requests_.clear();
  agree_votes_.clear();
  agree_buffered_.clear();
  block_buffer_.clear();
  ever_committee_.clear();
  orphan_agrees_.clear();
  final_proposal_in_flight_ = false;
  final_agree_votes_.clear();
  final_agree_payload_.clear();
  applied_blocks_.clear();
  outstanding_tx_.clear();
  policy_table_ = {};
  // A restarted process comes back honest; whatever misbehaviour was
  // injected died with it.
  behavior_ = bft::Behavior::kHonest;
  bad_config_ = false;
}

void Controller::restart_from(const chain::Blockchain& donor) {
  if (!crashed_) return;
  crashed_ = false;
  trace(network_.simulator(), id_,
        "RESTART from donor chain height=" + std::to_string(donor.height()));
  // Cold start from the replicated ledger (the paper's trust anchor): the
  // genesis block carries the Step-0 assignment, every later block carries
  // the committed requests and reassignments. Replaying them rebuilds the
  // assignment view, the served-request set, and the policy table without
  // trusting any single peer beyond the chain's own hash links.
  blockchain_ = std::make_unique<chain::Blockchain>(donor.genesis());
  blockchain_->set_observatory(network_.observatory(), "ctrl-" + std::to_string(id_));
  state_ = network_.genesis_state();
  for (const GroupInfo& g : state_.groups()) {
    known_instances_[AssignmentState::instance_id_of(g.members)] = g.members;
  }
  for (std::uint64_t h = 1; h <= donor.height(); ++h) {
    const chain::Block& block = donor.at(h);
    if (blockchain_->append(block)) break;  // donor chain broken: stop here
    applied_blocks_.insert(block.hash());
    for (const chain::Transaction& tx : block.transactions()) {
      committed_requests_.insert({tx.switch_id(), tx.request_id()});
      if (tx.type() == chain::RequestType::kReassign) {
        AssignmentState next;
        try {
          next = AssignmentState::deserialize(tx.config());
        } catch (const std::exception&) {
          continue;
        }
        for (const GroupInfo& g : next.groups()) {
          known_instances_[AssignmentState::instance_id_of(g.members)] = g.members;
        }
        if (next.epoch() <= state_.epoch()) continue;
        const auto& cur_byz = state_.byzantine();
        const auto& new_byz = next.byzantine();
        const bool monotone = std::all_of(
            cur_byz.begin(), cur_byz.end(), [&new_byz](std::uint32_t b) {
              return std::binary_search(new_byz.begin(), new_byz.end(), b);
            });
        if (monotone) state_ = next;
      } else if (tx.type() == chain::RequestType::kPolicyUpdate) {
        apply_policy_update(tx);
      }
    }
  }
  rebuild_replicas();
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->metrics.counter("core.controller_restarts").inc();
  }
}

void Controller::send(net::NodeId dest, CurbMessage msg) {
  if (crashed_) return;
  switch (behavior_) {
    case bft::Behavior::kSilent:
      return;  // byzantine: withhold everything
    case bft::Behavior::kLazy: {
      const auto extra_us = rng_.next_in(lazy_min_.as_micros(), lazy_max_.as_micros());
      const std::size_t bytes = wire_size(msg);
      const std::string category = category_of(msg);
      network_.simulator().schedule(
          sim::SimTime::micros(extra_us),
          [this, dest, msg = std::move(msg), bytes, category]() mutable {
            network_.bus().send(node_, dest, std::move(msg), bytes, category);
          });
      return;
    }
    case bft::Behavior::kSelectiveSilent:
      if (dest.value % 2 == 0) return;  // withhold from even-numbered nodes
      break;
    case bft::Behavior::kStaleViewSpam:
      // Participate honestly, but ride every PBFT send with a view-change
      // vote for a view far ahead of the current one — ammunition against
      // unbounded view_change_votes_ bookkeeping (curb::fault).
      if (const auto* env = std::get_if<PbftEnvelope>(&msg)) {
        PbftEnvelope spam = *env;
        spam.message = {};
        spam.message.type = bft::PbftMessage::Type::kViewChange;
        spam.message.view = env->message.view + 2 + (stale_spam_counter_++ % 8);
        spam.message.sender = env->message.sender;
        network_.bus().send(node_, dest, CurbMessage{spam}, spam.wire_size(),
                            category_of(CurbMessage{spam}));
      }
      break;
    case bft::Behavior::kEquivocate:
    case bft::Behavior::kHonest:
      break;
  }
  const std::size_t bytes = wire_size(msg);
  const std::string category = category_of(msg);
  network_.bus().send(node_, dest, std::move(msg), bytes, category);
}

void Controller::send_to_controller(std::uint32_t controller_id, CurbMessage msg) {
  send(network_.controller_topo_node(controller_id), std::move(msg));
}

void Controller::broadcast_to_controllers(
    const std::vector<std::uint32_t>& controllers, CurbMessage msg) {
  if (crashed_) return;
  if (behavior_ != bft::Behavior::kHonest) {
    // Byzantine behaviors are destination-dependent (selective silence,
    // per-send lazy jitter, spam riders) — keep the per-dest path.
    for (const std::uint32_t c : controllers) {
      if (c == id_) continue;
      send_to_controller(c, msg);
    }
    return;
  }
  std::vector<net::NodeId> dests;
  dests.reserve(controllers.size());
  for (const std::uint32_t c : controllers) {
    if (c == id_) continue;
    dests.push_back(network_.controller_topo_node(c));
  }
  if (dests.empty()) return;
  const std::size_t bytes = wire_size(msg);
  const std::string category = category_of(msg);
  network_.bus().multicast(node_, dests, std::move(msg), bytes, category);
}

// --- transaction signature verification ---------------------------------------

bool Controller::verify_tx_signature(const chain::Transaction& tx) const {
  if (tx.controller_id() >= network_.num_controllers()) return false;
  return tx.verify(network_.controller(tx.controller_id()).public_key());
}

void Controller::remember_verdict(const crypto::Hash256& key, bool ok) {
  // Wholesale clear keeps the memo bounded without recency bookkeeping
  // (which would be another host-order-dependence hazard).
  constexpr std::size_t kMaxVerdicts = 8192;
  if (payload_verdicts_.size() >= kMaxVerdicts) payload_verdicts_.clear();
  payload_verdicts_[key] = ok;
}

bool Controller::verify_tx_list_payload(const crypto::Hash256& digest,
                                        const std::vector<std::uint8_t>& payload) {
  const auto memo = payload_verdicts_.find(digest);
  if (memo != payload_verdicts_.end()) return memo->second;
  bool ok = true;
  try {
    for (const chain::Transaction& tx : deserialize_tx_list(payload)) {
      if (!verify_tx_signature(tx)) {
        ok = false;
        break;
      }
    }
  } catch (const std::exception&) {
    ok = false;  // undecodable txList can never carry valid signatures
  }
  remember_verdict(digest, ok);
  return ok;
}

bool Controller::verify_block_txs(const crypto::Hash256& hash,
                                  const chain::Block& block) {
  const auto memo = payload_verdicts_.find(hash);
  if (memo != payload_verdicts_.end()) return memo->second;
  bool ok = true;
  for (const chain::Transaction& tx : block.transactions()) {
    if (!verify_tx_signature(tx)) {
      ok = false;
      break;
    }
  }
  remember_verdict(hash, ok);
  return ok;
}

bft::ConsensusReplica* Controller::replica_for(std::uint32_t instance) {
  if (instance == PbftEnvelope::kFinalInstance) return final_replica_.get();
  const auto it = replicas_.find(instance);
  if (it != replicas_.end()) return it->second.get();
  const auto retired = retired_replicas_.find(instance);
  return retired == retired_replicas_.end() ? nullptr : retired->second.get();
}

void Controller::on_message(net::NodeId /*from*/, const CurbMessage& msg) {
  if (crashed_) return;  // fail-stop: a crashed controller hears nothing
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, sdn::RequestMsg>) {
          on_request(m);
        } else if constexpr (std::is_same_v<T, PbftEnvelope>) {
          on_pbft_envelope(net::NodeId{}, m);
        } else if constexpr (std::is_same_v<T, AgreeMsg>) {
          on_agree(m);
        } else if constexpr (std::is_same_v<T, FinalAgreeMsg>) {
          on_final_agree(m);
        }
        // ReplyMsg / GroupUpdateMsg / DataPacketMsg are switch-bound.
      },
      msg);
}

// --- Northbound API ------------------------------------------------------------

namespace {
/// Sentinel switch id for switch-less (northbound) transactions.
constexpr std::uint32_t kNorthboundSentinel = 0xffffffff;
}  // namespace

std::uint64_t Controller::submit_policy(const sdn::PolicyRule& rule, PolicyOp op) {
  // Request ids live in a per-controller namespace so concurrent
  // submissions at different controllers never collide.
  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(id_) << 40) | next_policy_request_++;
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(op));
  const auto rule_bytes = rule.serialize();
  payload.insert(payload.end(), rule_bytes.begin(), rule_bytes.end());
  const sdn::RequestMsg request{chain::RequestType::kPolicyUpdate, kNorthboundSentinel,
                                request_id, std::move(payload)};

  // A leader funnels the update into one of its groups; a non-leader hands
  // it to the leader of its first group.
  for (auto& [instance, replica] : replicas_) {
    if (replica->is_leader()) {
      handle_request_as_leader(instance, request);
      return request_id;
    }
  }
  if (!replicas_.empty()) {
    const std::uint32_t gid = state_.groups_of_controller(id_).front();
    send_to_controller(state_.group(gid).leader, CurbMessage{request});
  }
  return request_id;
}

void Controller::apply_policy_update(const chain::Transaction& tx) {
  const auto& config = tx.config();
  if (config.empty()) return;
  try {
    const auto op = static_cast<PolicyOp>(config[0]);
    const auto rule = sdn::PolicyRule::deserialize(
        std::span<const std::uint8_t>{config.data() + 1, config.size() - 1});
    if (op == PolicyOp::kRemove) {
      policy_table_.remove(rule);
    } else {
      policy_table_.install(rule);
    }
  } catch (const std::exception&) {
    // Malformed on-chain policy: ignore (consensus already vetted honest
    // majority; this guards against decode issues only).
  }
}

// --- Step 1/2: request intake ------------------------------------------------

void Controller::on_request(const sdn::RequestMsg& request) {
  if (request.type == chain::RequestType::kPolicyUpdate) {
    // Northbound update forwarded by a peer: sequence it through a group
    // this controller leads.
    for (auto& [instance, replica] : replicas_) {
      if (replica->is_leader()) {
        handle_request_as_leader(instance, request);
        return;
      }
    }
    return;
  }
  if (request.switch_id >= state_.assignment().num_switches()) return;
  const std::uint32_t gid = state_.group_of_switch(request.switch_id);
  const GroupInfo& group = state_.group(gid);
  if (std::find(group.members.begin(), group.members.end(), id_) == group.members.end()) {
    return;  // not in ctrList_s: ignore (Algorithm 3 line 3)
  }
  const RequestKey key{request.switch_id, request.request_id};
  if (committed_requests_.contains(key)) return;

  const std::uint32_t instance = state_.instance_of_group(gid);
  pending_requests_[instance].emplace(key, request);
  arm_request_watchdog(instance, request);

  bft::ConsensusReplica* replica = replica_for(instance);
  if (replica != nullptr && replica->is_leader()) {
    handle_request_as_leader(instance, request);
  }
}

void Controller::handle_request_as_leader(std::uint32_t instance,
                                          const sdn::RequestMsg& request) {
  const RequestKey key{request.switch_id, request.request_id};
  if (handled_requests_.contains(key)) return;  // reqBuffer dedup (Alg. 2 line 7)
  handled_requests_.insert(key);
  ++stats_.requests_handled;
  compute_config_and_buffer(instance, request);
}

void Controller::compute_config_and_buffer(std::uint32_t instance,
                                           const sdn::RequestMsg& request) {
  if (request.type == chain::RequestType::kPacketIn) {
    buffer_transaction(instance, request, compute_packet_in_config(request));
    return;
  }
  if (request.type == chain::RequestType::kPolicyUpdate) {
    // The policy op + rule pass through as the config; every controller
    // applies them at commit time (state machine replication).
    buffer_transaction(instance, request, request.payload);
    return;
  }
  handle_reassign_request(instance, request);
}

void Controller::buffer_transaction(std::uint32_t instance, const sdn::RequestMsg& request,
                                    std::vector<std::uint8_t> config) {
  if (replica_for(instance) == nullptr) return;  // group dissolved meanwhile
  chain::Transaction tx{request.type, request.switch_id, id_, request.request_id,
                        std::move(config)};
  if (network_.options().verify_signatures) tx.sign(key_);
  ++stats_.tx_created;
  auto& buffer = request_buffer_[instance];
  buffer.push_back(std::move(tx));
  const auto& options = network_.options();
  if (buffer.size() >= options.request_batch_size) {
    const auto timer = request_buffer_timer_.find(instance);
    if (timer != request_buffer_timer_.end()) {
      network_.simulator().cancel(timer->second);
      request_buffer_timer_.erase(timer);
    }
    flush_request_buffer(instance);
  } else if (!request_buffer_timer_.contains(instance)) {
    request_buffer_timer_[instance] = network_.simulator().schedule(
        options.request_batch_timeout, [this, instance] {
          request_buffer_timer_.erase(instance);
          flush_request_buffer(instance);
        });
  }
}

void Controller::handle_reassign_request(std::uint32_t instance,
                                         const sdn::RequestMsg& request) {
  // RE-ASS accusations arriving within the aggregation window are merged
  // into one OP() solve (paper exp. 2: three byzantine nodes removed by
  // calculating OP once).
  auto& window = reass_window_[instance];
  window.requests.push_back(request);
  std::vector<std::uint32_t> accused_ids;
  try {
    accused_ids = deserialize_id_list(request.payload);
  } catch (const std::exception&) {
    return;  // malformed accusation payload (corrupted in flight)
  }
  for (const std::uint32_t accused : accused_ids) {
    if (accused < state_.assignment().num_controllers()) window.accused.push_back(accused);
  }
  if (!reass_window_timer_.contains(instance)) {
    reass_window_timer_[instance] = network_.simulator().schedule(
        network_.options().reass_aggregation_delay, [this, instance] {
          reass_window_timer_.erase(instance);
          flush_reass_window(instance);
        });
  }
}

void Controller::flush_reass_window(std::uint32_t instance) {
  const auto it = reass_window_.find(instance);
  if (it == reass_window_.end()) return;
  ReassWindow window = std::move(it->second);
  reass_window_.erase(it);
  if (window.requests.empty()) return;

  // Algorithm 2 lines 15-18: merge the accused ids with the known byzantine
  // set, remove them from ctrList, re-run OP().
  std::vector<std::uint32_t> byzantine = state_.byzantine();
  byzantine.insert(byzantine.end(), window.accused.begin(), window.accused.end());
  std::sort(byzantine.begin(), byzantine.end());
  byzantine.erase(std::unique(byzantine.begin(), byzantine.end()), byzantine.end());

  if (byzantine.size() == state_.byzantine().size() &&
      !network_.options().reass_always_solve) {
    // Nothing new to remove: answer with the current assignment so the
    // switches still get a quorum-backed ctrList.
    for (const auto& request : window.requests) {
      buffer_transaction(instance, request, state_.serialize());
    }
    return;
  }

  // [C2.6]: keep surviving leaders in place to limit link churn.
  std::vector<std::optional<int>> fixed_leaders(state_.assignment().num_switches(),
                                                std::nullopt);
  for (const GroupInfo& g : state_.groups()) {
    if (std::binary_search(byzantine.begin(), byzantine.end(), g.leader)) continue;
    for (const std::uint32_t sw : g.switches) fixed_leaders[sw] = static_cast<int>(g.leader);
  }

  const opt::CapInstance cap = network_.build_cap_instance(byzantine, fixed_leaders);
  const opt::Assignment previous = state_.assignment();
  const std::uint64_t next_epoch = blockchain_->height() + 1;
  const std::size_t f = state_.f();
  network_.solve_op_async(
      cap, network_.options().reassign_objective, &previous,
      [this, instance, requests = std::move(window.requests), byzantine, next_epoch,
       f](const opt::CapResult& result) {
        ++stats_.op_solves;
        stats_.op_solve_time_ms_total += result.stats.wall_time_ms;
        if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
          obsy->metrics.counter("core.reass_solves").inc();
        }
        if (!result.feasible) return;  // cannot reassign: drop the request
        const AssignmentState next =
            AssignmentState::build(result.assignment, f, next_epoch, byzantine, &state_);
        const auto config = next.serialize();
        for (const auto& request : requests) {
          buffer_transaction(instance, request, config);
        }
      });
}

std::vector<std::uint8_t> Controller::compute_packet_in_config(
    const sdn::RequestMsg& request) const {
  const sdn::Packet packet = deserialize_packet(request.payload);
  // Northbound policy check: a denied pair gets a high-priority drop rule
  // for exactly that (src, dst) instead of a forwarding rule.
  if (!policy_table_.allows(packet.src_host, packet.dst_host)) {
    sdn::FlowEntry drop;
    drop.match.dst_host = packet.dst_host;
    drop.match.src_host = packet.src_host;
    drop.action = {sdn::FlowAction::Kind::kDrop, 0};
    drop.priority = 100;
    return sdn::FlowEntry::serialize_list({drop});
  }
  const auto entries = network_.compute_flow_entries(request.switch_id, packet);
  return sdn::FlowEntry::serialize_list(entries);
}

void Controller::flush_request_buffer(std::uint32_t instance) {
  auto it = request_buffer_.find(instance);
  if (it == request_buffer_.end() || it->second.empty()) return;
  bft::ConsensusReplica* replica = replica_for(instance);
  if (replica == nullptr || !replica->is_leader()) return;

  // Non-parallel mode: wait until this group's previous txList is on-chain
  // (intra-group consensus and final consensus never overlap for a group).
  if (!network_.options().parallel) {
    const auto out = outstanding_tx_.find(instance);
    if (out != outstanding_tx_.end() && !out->second.empty()) return;  // resumes at apply
  }

  std::vector<chain::Transaction> txs = std::move(it->second);
  request_buffer_.erase(it);
  for (const auto& tx : txs) outstanding_tx_[instance].insert(tx.id());
  auto payload = serialize_tx_list(txs);
  ++stats_.tx_lists_proposed;
  trace(network_.simulator(), id_,
        "propose txList instance=" + std::to_string(instance) +
            " txs=" + std::to_string(txs.size()));
  replica->propose(std::move(payload));
}

// --- Step 2 -> 3: intra-group consensus completes -----------------------------

void Controller::on_pbft_envelope(net::NodeId /*from*/, const PbftEnvelope& envelope) {
  // Routing is purely by instance id: messages for dissolved groups find no
  // replica and are dropped; surviving instances keep consuming messages
  // that were in flight across a reassignment.
  bft::ConsensusReplica* replica = replica_for(envelope.instance);
  if (replica != nullptr) replica->on_message(envelope.message);
}

void Controller::on_intra_committed(std::uint32_t instance,
                                    const std::vector<std::uint8_t>& payload) {
  // AGREE stage span: opened by whichever group member commits first,
  // closed when a committee member assembles the f+1 quorum.
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    const auto digest = bft::payload_digest(payload);
    obsy->tracer.begin_keyed(stage_key(instance, digest), "agree", "protocol",
                             {{"instance", std::to_string(instance)},
                              {"digest", crypto::short_hex(digest, 8)},
                              {"txns", txns_attr_from_payload(payload)}});
  }
  // Algorithm 3 line 12: broadcast AGREE to the final committee — one
  // shared payload buffer across every committee member.
  AgreeMsg agree{instance, id_, payload};
  broadcast_to_controllers(state_.final_committee(), CurbMessage{agree});
  if (state_.in_final_committee(id_)) on_agree(agree);  // local delivery
}

void Controller::on_agree(const AgreeMsg& agree) {
  if (!state_.in_final_committee(id_)) return;
  const auto members_it = known_instances_.find(agree.instance);
  if (members_it == known_instances_.end()) {
    // This node may simply not have adopted the epoch that creates the
    // instance yet; park the AGREE and replay it after the next adoption.
    constexpr std::size_t kMaxOrphans = 4096;
    if (orphan_agrees_.size() < kMaxOrphans) {
      orphan_agrees_.push_back({network_.simulator().now(), agree});
    }
    return;
  }
  const auto& members = members_it->second;
  const bool from_group_member =
      std::find(members.begin(), members.end(), agree.sender_controller) != members.end();
  // Committee-handover forwards come from (former) committee members.
  const bool from_committee = ever_committee_.contains(agree.sender_controller);
  if (!from_group_member && !from_committee) {
    return;  // AGREE must come from a member of the claimed group
  }
  const auto digest = bft::payload_digest(agree.tx_list);
  // A vote only counts for a txList whose transaction signatures check out;
  // the digest-keyed memo makes duplicate AGREEs for the same list free.
  if (network_.options().verify_signatures &&
      !verify_tx_list_payload(digest, agree.tx_list)) {
    return;
  }
  const auto key = std::make_pair(agree.instance, digest);
  auto& votes = agree_votes_[key];
  votes.insert(agree.sender_controller);
  // f+1 matching AGREEs guarantee one honest group member vouches.
  if (votes.size() < state_.f() + 1 || agree_buffered_.contains(key)) return;
  agree_buffered_.insert(key);
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->tracer.end_keyed(stage_key(agree.instance, digest));
    obsy->metrics.counter("core.agree_quorums").inc();
  }
  trace(network_.simulator(), id_,
        "AGREE quorum instance=" + std::to_string(agree.instance));

  // EVERY committee member buffers the confirmed txList; only the leader
  // drains the buffer into block proposals. If leadership moves (committee
  // change after a reassignment), the new leader still holds the backlog.
  block_buffer_.push_back({agree.instance, agree.tx_list});
  if (final_replica_ == nullptr || !final_replica_->is_leader()) return;
  const auto& options = network_.options();
  if (block_buffer_.size() >= options.block_batch_size) {
    if (block_buffer_timer_armed_) {
      network_.simulator().cancel(block_buffer_timer_);
      block_buffer_timer_armed_ = false;
    }
    flush_block_buffer();
  } else if (!block_buffer_timer_armed_) {
    block_buffer_timer_armed_ = true;
    block_buffer_timer_ = network_.simulator().schedule(
        options.block_batch_timeout, [this] {
          block_buffer_timer_armed_ = false;
          flush_block_buffer();
        });
  }
}

void Controller::flush_block_buffer() {
  if (block_buffer_.empty()) return;
  if (final_replica_ == nullptr || !final_replica_->is_leader()) return;
  if (final_proposal_in_flight_) return;  // resumes when the block lands
  // Algorithm 3 line 19: serialize all buffered txLists into block B_h,
  // skipping transactions that already reached the chain.
  std::vector<chain::Transaction> txs;
  std::set<crypto::Hash256> seen;
  for (const auto& [instance, tx_list] : block_buffer_) {
    std::vector<chain::Transaction> list;
    try {
      list = deserialize_tx_list(tx_list);
    } catch (const std::exception&) {
      continue;  // malformed txList must not take the leader down
    }
    for (auto& tx : list) {
      const auto id = tx.id();
      if (!blockchain_->contains_transaction(id) && seen.insert(id).second) {
        txs.push_back(std::move(tx));
      }
    }
  }
  block_buffer_.clear();
  if (txs.empty()) return;

  const chain::Block block = chain::Block::create(
      blockchain_->height() + 1, blockchain_->tip().hash(), std::move(txs),
      static_cast<std::uint64_t>(network_.simulator().now().as_micros()), id_);
  // block_commit stage span: proposal at the final leader -> first
  // controller to apply the block (keyed by the block hash). The digest attr
  // is the Final-PBFT payload digest, joining this stage to the final_pbft
  // slot spans; txns joins it back to the pkt_in round spans.
  auto block_bytes = block.serialize();
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->tracer.begin_keyed(
        stage_key(PbftEnvelope::kFinalInstance, block.hash()), "block_commit", "protocol",
        {{"height", std::to_string(block.header().height)},
         {"txs", std::to_string(block.transactions().size())},
         {"digest", crypto::short_hex(bft::payload_digest(block_bytes), 8)},
         {"txns", txns_attr(block.transactions())}});
  }
  ++stats_.blocks_proposed;
  trace(network_.simulator(), id_,
        "propose block h=" + std::to_string(block.header().height) +
            " txs=" + std::to_string(block.transactions().size()));
  final_proposal_in_flight_ = true;
  final_replica_->propose(std::move(block_bytes));
}

// --- Step 3 -> 4: final consensus completes -----------------------------------

void Controller::on_final_committed(const std::vector<std::uint8_t>& payload) {
  // Algorithm 3 line 25: broadcast FINAL-AGREE to every controller — the
  // serialized block rides one shared buffer instead of n-1 copies.
  FinalAgreeMsg msg{id_, payload};
  std::vector<std::uint32_t> everyone(network_.num_controllers());
  std::iota(everyone.begin(), everyone.end(), 0);
  broadcast_to_controllers(everyone, CurbMessage{msg});
  on_final_agree(msg);
}

void Controller::on_final_agree(const FinalAgreeMsg& msg) {
  if (!state_.in_final_committee(msg.sender_controller)) return;
  chain::Block block;
  try {
    block = chain::Block::deserialize(msg.block);
  } catch (const std::exception&) {
    return;  // malformed
  }
  if (!block.well_formed()) return;
  const auto hash = block.hash();
  if (applied_blocks_.contains(hash)) return;
  if (network_.options().verify_signatures && !verify_block_txs(hash, block)) {
    return;  // forged transaction inside the block: never vote for it
  }
  auto& votes = final_agree_votes_[hash];
  votes.insert(msg.sender_controller);
  final_agree_payload_[hash] = msg.block;
  // Algorithm 3 line 27: f+1 matching FINAL-AGREE confirm validity.
  if (votes.size() < state_.f() + 1) return;
  applied_blocks_.insert(hash);
  final_agree_votes_.erase(hash);
  final_agree_payload_.erase(hash);
  apply_block(block);
}

void Controller::apply_block(const chain::Block& block) {
  if (blockchain_->append(block).has_value()) return;  // rejected (stale/duplicate)
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->tracer.end_keyed(stage_key(PbftEnvelope::kFinalInstance, block.hash()));
  }
  ++stats_.blocks_committed;
  trace(network_.simulator(), id_,
        "apply block h=" + std::to_string(block.header().height) +
            " buffered=" + std::to_string(block_buffer_.size()));
  // Clear per-group outstanding transactions and resume groups gated by
  // non-parallel mode.
  for (const chain::Transaction& tx : block.transactions()) {
    const auto tx_id = tx.id();
    for (auto& [instance, outstanding] : outstanding_tx_) {
      if (outstanding.erase(tx_id) > 0 && outstanding.empty()) {
        network_.simulator().schedule(sim::SimTime::zero(), [this, instance = instance] {
          flush_request_buffer(instance);
        });
      }
    }
  }
  // Drop buffered txLists fully covered by the chain (every member buffers;
  // this is the non-leader's drain path).
  std::erase_if(block_buffer_, [&](const auto& entry) {
    std::vector<chain::Transaction> list;
    try {
      list = deserialize_tx_list(entry.second);
    } catch (const std::exception&) {
      return true;  // malformed txList: drop it from the buffer
    }
    for (const auto& tx : list) {
      if (!blockchain_->contains_transaction(tx.id())) return false;
    }
    return true;
  });
  // The final leader may now seal the next block.
  final_proposal_in_flight_ = false;
  if (!block_buffer_.empty() && final_replica_ != nullptr &&
      final_replica_->is_leader()) {
    network_.simulator().schedule(sim::SimTime::zero(), [this] { flush_block_buffer(); });
  }

  // First pass: adopt any reassignment (it changes who replies from where).
  // A reassignment TX computed against an older epoch ("stale") may carry
  // accusations that the winning reassignment did not absorb; such requests
  // are re-handled against fresh state by the current group leader instead
  // of being answered, so concurrent reassignments eventually all resolve
  // (the byzantine set grows monotonically, guaranteeing progress).
  std::vector<const chain::Transaction*> reply_list;
  for (const chain::Transaction& tx : block.transactions()) {
    const RequestKey key{tx.switch_id(), tx.request_id()};
    bool resolved = true;
    if (tx.type() == chain::RequestType::kReassign) {
      apply_reassignment(tx, block.header().height);
      resolved = reassignment_resolved(tx);
    } else if (tx.type() == chain::RequestType::kPolicyUpdate) {
      apply_policy_update(tx);
    }
    if (resolved) {
      committed_requests_.insert(key);
      for (auto& [instance, pending] : pending_requests_) pending.erase(key);
      reply_list.push_back(&tx);
    } else {
      rehandle_stale_reassignment(tx);
    }
  }
  // Second pass: REPLY to the requesting switches (Algorithm 3 line 30).
  for (const chain::Transaction* tx : reply_list) {
    send_replies_for(*tx);
  }
}

bool Controller::reassignment_resolved(const chain::Transaction& tx) const {
  AssignmentState proposed;
  try {
    proposed = AssignmentState::deserialize(tx.config());
  } catch (const std::exception&) {
    return true;  // malformed: nothing actionable
  }
  const auto& current = state_.byzantine();
  for (const std::uint32_t accused : proposed.byzantine()) {
    if (!std::binary_search(current.begin(), current.end(), accused)) return false;
  }
  return true;
}

void Controller::rehandle_stale_reassignment(const chain::Transaction& tx) {
  if (tx.switch_id() >= state_.assignment().num_switches()) return;
  const std::uint32_t gid = state_.group_of_switch(tx.switch_id());
  const GroupInfo& group = state_.group(gid);
  const std::uint32_t instance = state_.instance_of_group(gid);
  bft::ConsensusReplica* replica = replica_for(instance);
  if (replica == nullptr || !replica->is_leader()) return;

  // Reconstruct the unresolved accusations and run them through the normal
  // leader path with the original request identity (the switch's pending
  // request, if still open, matches replies by that id).
  AssignmentState proposed;
  try {
    proposed = AssignmentState::deserialize(tx.config());
  } catch (const std::exception&) {
    return;
  }
  std::vector<std::uint32_t> unresolved;
  const auto& current = state_.byzantine();
  for (const std::uint32_t accused : proposed.byzantine()) {
    if (!std::binary_search(current.begin(), current.end(), accused)) {
      unresolved.push_back(accused);
    }
  }
  if (unresolved.empty()) return;
  (void)group;
  sdn::RequestMsg request{chain::RequestType::kReassign, tx.switch_id(), tx.request_id(),
                          serialize_id_list(unresolved)};
  handle_reassign_request(instance, request);
}

void Controller::apply_reassignment(const chain::Transaction& tx, std::uint64_t height) {
  AssignmentState next;
  try {
    next = AssignmentState::deserialize(tx.config());
  } catch (const std::exception&) {
    return;  // malformed config: ignore (consensus guaranteed honest majority)
  }
  if (next.epoch() <= state_.epoch()) return;  // stale
  // Monotonicity guard: adopting an assignment whose byzantine set does not
  // cover the current one would resurrect an excluded controller (the TX
  // was computed from an older snapshot). Such a TX is left unadopted; the
  // resolved/rehandle logic in apply_block merges its accusations instead.
  const auto& cur_byz = state_.byzantine();
  const auto& new_byz = next.byzantine();
  for (const std::uint32_t b : cur_byz) {
    if (!std::binary_search(new_byz.begin(), new_byz.end(), b)) return;
  }
  const AssignmentState old_state = state_;
  state_ = next;
  if (obs::Observatory* obsy = network_.observatory(); obsy != nullptr) {
    obsy->metrics.counter("core.epoch_adoptions").inc();
    obsy->tracer.instant("epoch_adopt", "ctrl-" + std::to_string(id_),
                         {{"epoch", std::to_string(next.epoch())}});
    network_.record_assignment_metrics(state_);
  }
  trace(network_.simulator(), id_,
        "adopt epoch " + std::to_string(next.epoch()) + " groups=" +
            std::to_string(next.groups().size()) + " finalLeader=" +
            std::to_string(next.final_leader()));
  rebuild_replicas();

  // Re-route pending (uncommitted) requests to the new group structure: a
  // request stranded in a dissolved group must reach the NEW leader of its
  // switch's group, or it would only resolve through switch-side retries.
  {
    std::map<std::uint32_t, std::map<RequestKey, sdn::RequestMsg>> moved;
    std::vector<std::pair<std::uint32_t, sdn::RequestMsg>> to_rehandle;
    for (auto& [old_instance, requests] : pending_requests_) {
      for (auto& [key, request] : requests) {
        if (request.switch_id >= state_.assignment().num_switches()) continue;
        const std::uint32_t gid = state_.group_of_switch(request.switch_id);
        const GroupInfo& group = state_.group(gid);
        if (std::find(group.members.begin(), group.members.end(), id_) ==
            group.members.end()) {
          continue;  // no longer responsible for this switch
        }
        const std::uint32_t instance = state_.instance_of_group(gid);
        moved[instance].emplace(key, request);
        if (instance != old_instance) to_rehandle.push_back({instance, request});
      }
    }
    pending_requests_ = std::move(moved);
    for (auto& [instance, request] : to_rehandle) {
      bft::ConsensusReplica* replica = replica_for(instance);
      if (replica == nullptr || !replica->is_leader()) continue;
      // Allow re-handling even if this node handled it under the old group.
      handled_requests_.erase(RequestKey{request.switch_id, request.request_id});
      handle_request_as_leader(instance, request);
    }
  }

  // Push group updates to switches whose group changed and where this
  // controller now serves (the requesting switch gets a REPLY separately).
  for (std::uint32_t sw = 0; sw < state_.assignment().num_switches(); ++sw) {
    if (sw == tx.switch_id()) continue;
    const GroupInfo& new_group = state_.group(state_.group_of_switch(sw));
    const bool is_member =
        std::find(new_group.members.begin(), new_group.members.end(), id_) !=
        new_group.members.end();
    if (!is_member) continue;
    bool changed = true;
    if (sw < old_state.assignment().num_switches()) {
      changed = old_state.group(old_state.group_of_switch(sw)).members != new_group.members;
    }
    if (!changed) continue;
    GroupUpdateMsg update{id_, sw, height, new_group.members};
    send(network_.switch_topo_node(sw), CurbMessage{std::move(update)});
  }
}

void Controller::send_replies_for(const chain::Transaction& tx) {
  const std::uint32_t sw = tx.switch_id();
  if (sw >= state_.assignment().num_switches()) return;
  const GroupInfo& group = state_.group(state_.group_of_switch(sw));
  if (std::find(group.members.begin(), group.members.end(), id_) == group.members.end()) {
    return;  // only ctrList_s members reply (the s-agent ignores others anyway)
  }
  std::vector<std::uint8_t> config = tx.config();
  if (tx.type() == chain::RequestType::kReassign) {
    // The switch needs its new ctrList, not the full assignment.
    config = serialize_id_list(group.members);
  }
  if (bad_config_ && !config.empty()) {
    config[0] ^= 0xff;  // byzantine: feed the switch a corrupted config
  }
  ReplyMsg reply{id_, sw, tx.request_id(), std::move(config)};
  ++stats_.replies_sent;
  send(network_.switch_topo_node(sw), CurbMessage{std::move(reply)});
}

// --- Liveness watchdog --------------------------------------------------------

void Controller::arm_request_watchdog(std::uint32_t instance,
                                      const sdn::RequestMsg& request) {
  const RequestKey key{request.switch_id, request.request_id};
  network_.simulator().schedule(
      network_.options().pbft_timeout, [this, instance, key] {
        const auto git = pending_requests_.find(instance);
        if (git == pending_requests_.end() || !git->second.contains(key)) return;
        // The request is still unserved: depose the group leader.
        bft::ConsensusReplica* replica = replica_for(instance);
        if (replica != nullptr && !replica->is_leader()) replica->force_view_change();
      });
}

void Controller::rehandle_pending(std::uint32_t instance) {
  bft::ConsensusReplica* replica = replica_for(instance);
  if (replica == nullptr || !replica->is_leader()) return;
  const auto git = pending_requests_.find(instance);
  if (git == pending_requests_.end()) return;
  for (const auto& [key, request] : git->second) {
    handle_request_as_leader(instance, request);
  }
}

}  // namespace curb::core
