#include "curb/core/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "curb/obs/res/account.hpp"

namespace curb::core {

CurbNetwork::CurbNetwork(net::Topology topology, CurbOptions options)
    : topology_{std::move(topology)}, options_{options}, sim_{options.seed} {
  // Referencing the accountant forces its object file (which carries the
  // global operator new/delete replacement) into every binary that links
  // curb::core — a static-library archive member is only pulled in when a
  // symbol of it is named.
  (void)obs::res::enabled();
  sigcache_baseline_ = crypto::SigCache::instance().stats();
  bus_ = std::make_unique<net::MessageBus<CurbMessage>>(sim_, topology_,
                                                        options_.link_model);
  // The SLO watchdog needs windows to evaluate, and windows need the
  // registry: slo_rules implies ts, and ts implies observability.
  if (!options_.slo_rules.empty() && options_.ts_window <= sim::SimTime::zero()) {
    options_.ts_window = sim::SimTime::millis(100);
  }
  if (options_.ts_window > sim::SimTime::zero()) options_.observability = true;
  if (options_.observability) {
    observatory_ = std::make_unique<obs::Observatory>();
    observatory_->enable(sim_);
    bus_->set_observatory(observatory_.get());
    options_.link_telemetry = true;
  }
  if (options_.link_telemetry) link_stats_ = std::make_unique<obs::net::LinkStats>();
  if (options_.msg_ledger) ledger_ = std::make_unique<obs::net::MsgLedger>();
  if (link_stats_ != nullptr || ledger_ != nullptr) {
    // Pure counting on the accounted-send path: never sends, schedules, or
    // draws randomness, so same-seed runs stay byte-identical with link
    // telemetry on.
    bus_->set_send_observer(
        [this](const net::MessageBus<CurbMessage>::SendRecord& rec,
               const CurbMessage& payload, const std::string& category) {
          if (link_stats_ != nullptr) {
            link_stats_->record(rec.from.value, rec.to.value, rec.bytes,
                                rec.duplicates, rec.dropped, category);
          }
          if (ledger_ != nullptr) {
            // Ledger rows carry wire counts: the accounted send plus any
            // fault-injected duplicate deliveries of it.
            ledger_->record(category, digest_of(payload), 1 + rec.duplicates,
                            rec.bytes * (1 + rec.duplicates));
          }
        });
  }
  if (options_.ts_window > sim::SimTime::zero()) {
    ts_ = std::make_unique<obs::TsCollector>(
        *observatory_, sim_,
        obs::TsOptions{options_.ts_window, options_.ts_retention});
    ts_->set_presample_hook([this] { snapshot_runtime_metrics(); });
    if (!options_.ts_out.empty() && !ts_->set_output(options_.ts_out)) {
      throw std::runtime_error{"CurbNetwork: cannot open ts_out file " +
                               options_.ts_out};
    }
    if (!options_.slo_rules.empty()) {
      // Throws obs::SloError on a malformed rule set (curb-sim pre-parses
      // for a friendlier message, like it does for fault specs).
      slo_ = std::make_unique<obs::SloEngine>(obs::SloRuleSet::parse(options_.slo_rules));
      ts_->set_window_callback(
          [this](const obs::TsCollector& collector, const obs::TsWindow&) {
            slo_->on_window(observatory_.get(), collector.windows());
          });
    }
  }
  controller_nodes_ = topology_.nodes_of_kind(net::NodeKind::kController);
  switch_nodes_ = topology_.nodes_of_kind(net::NodeKind::kSwitch);
  if (controller_nodes_.size() < 3 * options_.f + 1) {
    throw std::invalid_argument{
        "CurbNetwork: need at least 3f+1 controllers in the topology"};
  }
  if (switch_nodes_.empty()) {
    throw std::invalid_argument{"CurbNetwork: topology has no switches"};
  }
  if (!options_.fault_spec.empty()) {
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::parse(options_.fault_spec, options_.fault_seed), topology_);
    install_fault_hook();
  }
}

void CurbNetwork::install_fault_hook() {
  bus_->set_fault_hook([this](net::NodeId from, net::NodeId to,
                              const CurbMessage& /*payload*/,
                              const std::string& category) {
    fault::LinkFaultDecision decision =
        fault_injector_->on_message(from, to, category, sim_.now());
    if (decision.any()) record_fault(decision, category);
    net::BusFaultAction<CurbMessage> action;
    action.drop = decision.drop;
    action.extra_delay = decision.extra_delay;
    action.duplicates = std::move(decision.duplicates);
    if (decision.corrupt && !decision.drop) {
      // The bus applies this through its copy-on-write path, so only the
      // corrupted delivery sees mutated bytes. Drawing from the injector's
      // RNG here keeps the fault stream position identical to the old
      // corrupt-in-hook flow.
      action.corrupt = [this](CurbMessage& payload) {
        corrupt_message(payload, fault_injector_->rng());
      };
    }
    return action;
  });
}

void CurbNetwork::record_fault(const fault::LinkFaultDecision& decision,
                               const std::string& category) {
  if (observatory_ == nullptr) return;
  for (const fault::FaultKind kind : decision.fired) {
    const std::string kind_name{fault::to_string(kind)};
    observatory_->metrics
        .counter("fault.injected", {{"kind", kind_name}, {"category", category}})
        .inc();
    observatory_->tracer.instant("fault." + kind_name, "fault",
                                 {{"category", category}});
  }
}

Controller* CurbNetwork::pick_recovery_donor() const {
  Controller* donor = nullptr;
  for (const auto& controller : controllers_) {
    if (controller->crashed()) continue;
    if (donor == nullptr ||
        controller->blockchain().height() > donor->blockchain().height()) {
      donor = controller.get();
    }
  }
  return donor;
}

void CurbNetwork::schedule_node_events() {
  for (const fault::NodeEventClause& ev : fault_injector_->plan().node_events) {
    if (ev.controller >= controllers_.size()) {
      throw std::invalid_argument{"fault plan names controller ctrl" +
                                  std::to_string(ev.controller) + ", deployment has " +
                                  std::to_string(controllers_.size())};
    }
    if (ev.kind == fault::NodeEventClause::Kind::kCrash) {
      sim_.schedule_at(ev.at, [this, ev] {
        controllers_[ev.controller]->crash();
        if (observatory_ != nullptr) {
          observatory_->metrics.counter("fault.injected", {{"kind", "crash"}}).inc();
          observatory_->tracer.instant(
              "fault.crash", "fault", {{"controller", std::to_string(ev.controller)}});
        }
        if (!ev.down) return;  // never restarts
        sim_.schedule(*ev.down, [this, id = ev.controller] {
          Controller* donor = pick_recovery_donor();
          if (donor == nullptr) return;  // nobody alive to recover from
          controllers_[id]->restart_from(donor->blockchain());
          if (observatory_ != nullptr) {
            observatory_->tracer.instant(
                "fault.restart", "fault",
                {{"controller", std::to_string(id)},
                 {"donor", std::to_string(donor->id())}});
          }
        });
      });
    } else {
      sim_.schedule_at(ev.at, [this, ev] {
        Controller& controller = *controllers_[ev.controller];
        switch (ev.mode) {
          case fault::ByzMode::kSilent:
            controller.set_behavior(bft::Behavior::kSilent);
            break;
          case fault::ByzMode::kLazy:
            controller.set_behavior(bft::Behavior::kLazy);
            break;
          case fault::ByzMode::kEquivocate:
            controller.set_behavior(bft::Behavior::kEquivocate);
            controller.set_replica_behavior(bft::Behavior::kEquivocate);
            break;
          case fault::ByzMode::kSelectiveSilent:
            controller.set_behavior(bft::Behavior::kSelectiveSilent);
            break;
          case fault::ByzMode::kStaleView:
            controller.set_behavior(bft::Behavior::kStaleViewSpam);
            break;
          case fault::ByzMode::kBogusReply:
            controller.set_bad_config(true);
            break;
        }
        if (observatory_ != nullptr) {
          const std::string mode_name{fault::to_string(ev.mode)};
          observatory_->metrics.counter("fault.injected", {{"kind", "byz"}}).inc();
          observatory_->tracer.instant(
              "fault.byz", "fault",
              {{"controller", std::to_string(ev.controller)}, {"mode", mode_name}});
        }
      });
    }
  }
}

obs::net::NodeNameFn CurbNetwork::link_node_names() const {
  return [this](std::uint32_t idx) {
    return idx < topology_.node_count() ? topology_.node(net::NodeId{idx}).name
                                        : std::to_string(idx);
  };
}

net::NodeId CurbNetwork::controller_topo_node(std::uint32_t id) const {
  return controller_nodes_.at(id);
}

net::NodeId CurbNetwork::switch_topo_node(std::uint32_t id) const {
  return switch_nodes_.at(id);
}

double CurbNetwork::cs_delay_ms(std::uint32_t switch_id, std::uint32_t controller_id) const {
  const double km =
      topology_.distance_km(switch_nodes_.at(switch_id), controller_nodes_.at(controller_id));
  return options_.link_model.propagation_delay(km).as_millis_f();
}

double CurbNetwork::cc_delay_ms(std::uint32_t c1, std::uint32_t c2) const {
  const double km =
      topology_.distance_km(controller_nodes_.at(c1), controller_nodes_.at(c2));
  return options_.link_model.propagation_delay(km).as_millis_f();
}

opt::CapInstance CurbNetwork::build_cap_instance(
    const std::vector<std::uint32_t>& byzantine,
    const std::vector<std::optional<int>>& fixed_leaders) const {
  const std::size_t s = switch_nodes_.size();
  const std::size_t c = controller_nodes_.size();
  opt::CapInstance inst = opt::CapInstance::uniform(
      s, c, static_cast<int>(3 * options_.f + 1), options_.switch_load,
      options_.controller_capacity);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      inst.cs_delay[i][j] =
          cs_delay_ms(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    }
  }
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t j2 = 0; j2 < c; ++j2) {
      inst.cc_delay[j][j2] =
          cc_delay_ms(static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(j2));
    }
  }
  inst.max_cs_delay = options_.max_cs_delay_ms;
  inst.max_cc_delay = options_.max_cc_delay_ms;
  for (const std::uint32_t b : byzantine) {
    if (b < c) inst.byzantine[b] = true;
  }
  if (!fixed_leaders.empty()) {
    if (fixed_leaders.size() != s) {
      throw std::invalid_argument{"build_cap_instance: fixed_leaders size"};
    }
    inst.fixed_leader = fixed_leaders;
  }
  return inst;
}

opt::CapSolver& CurbNetwork::cap_solver() {
  if (cap_solver_ == nullptr) {
    opt::CapSolverOptions solver_options;
    solver_options.milp.max_wall_ms = options_.op_wall_limit_ms;
    // The protocol threads `previous` explicitly through every reassignment;
    // never substitute the cached assignment behind its back.
    solver_options.reuse_last_assignment = false;
    cap_solver_ = opt::make_cap_solver(options_.op_solver, solver_options);
  }
  return *cap_solver_;
}

void CurbNetwork::solve_op_async(const opt::CapInstance& instance,
                                 opt::CapObjective objective,
                                 const opt::Assignment* previous,
                                 std::function<void(opt::CapResult)> done) {
  // The solve runs inline (as Gurobi does on the paper's controllers); its
  // cost enters the virtual clock per the configured mode.
  opt::CapResult result = cap_solver().solve(instance, objective, previous);
  const sim::SimTime delay = options_.op_time_mode == OpTimeMode::kMeasured
                                 ? sim::SimTime::from_seconds_f(
                                       result.stats.wall_time_ms / 1000.0)
                                 : options_.op_fixed_time;
  obs::SpanId solve_span;
  if (observatory_ != nullptr) {
    observatory_->metrics.counter("core.op_solves").inc();
    observatory_->metrics.histogram("core.op_solve_us")
        .record(static_cast<double>(delay.as_micros()));
    // The span covers the virtual compute window [now, now + delay]; solves
    // from different controllers overlap, so each is a root on the op track.
    solve_span = observatory_->tracer.begin_under({}, "op_solve", "op");
  }
  sim_.schedule(delay, [this, solve_span, done = std::move(done),
                        result = std::move(result)] {
    if (observatory_ != nullptr) observatory_->tracer.end(solve_span);
    done(result);
  });
}

void CurbNetwork::snapshot_runtime_metrics() {
  if (observatory_ == nullptr) return;
  auto& registry = observatory_->metrics;
  registry.gauge("sim.events_executed")
      .set(static_cast<double>(sim_.events_executed()));
  registry.gauge("sim.queue_high_water")
      .set(static_cast<double>(sim_.queue_high_water()));
  registry.gauge("sim.now_us").set(static_cast<double>(sim_.now().as_micros()));

  // Backlog gauges. All virtual-time quantities — deterministic per seed, so
  // they are safe to feed into ts windows and SLO rules (e.g.
  // "max(sim.event_queue_depth) < 200000 over 5").
  registry.gauge("sim.event_queue_depth")
      .set(static_cast<double>(sim_.pending_events()));
  registry.gauge("sim.sched_lag_us", {{"q", "p50"}})
      .set(static_cast<double>(sim_.sched_lag_percentile_us(50.0)));
  registry.gauge("sim.sched_lag_us", {{"q", "p90"}})
      .set(static_cast<double>(sim_.sched_lag_percentile_us(90.0)));
  registry.gauge("sim.sched_lag_us", {{"q", "p99"}})
      .set(static_cast<double>(sim_.sched_lag_percentile_us(99.0)));
  registry.gauge("sim.sched_lag_us", {{"q", "max"}})
      .set(static_cast<double>(sim_.sched_lag_max_us()));

  const net::MessageStats& stats = bus_->stats();
  registry.gauge("net.in_flight_total")
      .set(static_cast<double>(stats.in_flight_total()));
  for (const auto& [category, entry] : stats.categories()) {
    registry.gauge("net.in_flight", {{"category", category}})
        .set(static_cast<double>(entry.in_flight_count));
    registry.gauge("net.in_flight_bytes", {{"category", category}})
        .set(static_cast<double>(entry.in_flight_bytes));
  }
  for (std::size_t node = 0; node < stats.pending_inbox_nodes(); ++node) {
    registry.gauge("net.inbox_pending", {{"node", std::to_string(node)}})
        .set(static_cast<double>(stats.pending_inbox(node)));
  }

  // Per-link utilization over the window since the previous snapshot,
  // against the serialization model (delta bytes · 8 / bandwidth / delta t).
  // Only the K hottest links of the window get labelled gauges, keeping the
  // series cardinality bounded on big topologies; links that drop out of the
  // top K are zeroed so stale values never freeze in the registry.
  if (link_stats_ != nullptr) {
    const double now_s = sim_.now().as_seconds_f();
    const double dt = now_s - link_prev_time_s_;
    if (dt > 0.0) {
      constexpr std::size_t kTopLinks = 8;
      const double bandwidth = options_.link_model.bandwidth_bps;
      std::vector<std::pair<double, std::string>> util;
      for (const auto& [key, link] : link_stats_->links()) {
        std::uint64_t& prev = link_prev_bytes_[key];
        const std::uint64_t delta = link.bytes - prev;
        prev = link.bytes;
        if (bandwidth <= 0.0) continue;
        util.emplace_back(static_cast<double>(delta) * 8.0 / bandwidth / dt,
                          topology_.node(net::NodeId{key.src}).name + "->" +
                              topology_.node(net::NodeId{key.dst}).name);
      }
      std::stable_sort(util.begin(), util.end(), [](const auto& a, const auto& b) {
        return a.first > b.first;
      });
      registry.gauge("net.links_active")
          .set(static_cast<double>(link_stats_->links().size()));
      registry.gauge("net.link_util_max").set(util.empty() ? 0.0 : util.front().first);
      std::set<std::string> published_now;
      for (std::size_t i = 0; i < util.size() && i < kTopLinks; ++i) {
        registry.gauge("net.link_util", {{"link", util[i].second}}).set(util[i].first);
        published_now.insert(util[i].second);
      }
      for (const std::string& label : published_links_) {
        if (published_now.count(label) == 0) {
          registry.gauge("net.link_util", {{"link", label}}).set(0.0);
        }
      }
      published_links_.insert(published_now.begin(), published_now.end());
      link_prev_time_s_ = now_s;
    }
  }

  // Signature-cache effectiveness, exported only when this network actually
  // verifies signatures so default runs' telemetry is unchanged. Hits and
  // misses are deltas since this network's construction (the cache itself
  // is process-wide); entries is the process-wide current size. Host-order
  // independent for a single network per process, but two same-seed
  // networks in ONE process see different hit/miss splits (the second run
  // hits the first run's entries) — determinism comparisons must either
  // disable telemetry or key on per-run output, see DESIGN.md §15.
  if (options_.verify_signatures) {
    const crypto::SigCacheStats now = crypto::SigCache::instance().stats();
    registry.gauge("crypto.sigcache_hits")
        .set(static_cast<double>(now.hits - sigcache_baseline_.hits));
    registry.gauge("crypto.sigcache_misses")
        .set(static_cast<double>(now.misses - sigcache_baseline_.misses));
    registry.gauge("crypto.sigcache_entries").set(static_cast<double>(now.entries));
  }
}

std::vector<sdn::FlowEntry> CurbNetwork::compute_flow_entries(
    std::uint32_t switch_id, const sdn::Packet& packet) const {
  std::vector<sdn::FlowEntry> entries;
  sdn::FlowEntry entry;
  entry.match.dst_host = packet.dst_host;
  entry.priority = 10;
  if (packet.dst_host == switch_id) {
    entry.action = {sdn::FlowAction::Kind::kDeliver, 0};
  } else if (packet.dst_host < switch_nodes_.size()) {
    // Destination-based rule; out_port names the egress switch (the data
    // plane models the path as a delay-accurate logical tunnel).
    entry.action = {sdn::FlowAction::Kind::kForward, packet.dst_host};
  } else {
    entry.action = {sdn::FlowAction::Kind::kDrop, 0};
  }
  entries.push_back(entry);
  // The egress switch needs a deliver rule; include it so the same config
  // installed there (via its own PKT-IN) is consistent.
  return entries;
}

void CurbNetwork::initialize() {
  if (initialized_) throw std::logic_error{"CurbNetwork: already initialized"};

  // Controllers generate identities (pk broadcast is modelled as part of
  // genesis: every node knows the id -> pk directory).
  controllers_.reserve(controller_nodes_.size());
  for (std::uint32_t id = 0; id < controller_nodes_.size(); ++id) {
    auto key = crypto::KeyPair::from_seed("curb-controller-" + std::to_string(id) + "-" +
                                          std::to_string(options_.seed));
    controllers_.push_back(std::make_unique<Controller>(id, controller_nodes_[id],
                                                        std::move(key), *this));
  }
  switches_.reserve(switch_nodes_.size());
  for (std::uint32_t id = 0; id < switch_nodes_.size(); ++id) {
    switches_.push_back(std::make_unique<SwitchNode>(id, switch_nodes_[id], *this));
  }

  // OP(swList, ctrList, constraints): the initial assignment. Bounded by
  // the same wall budget as runtime reassignments (the greedy incumbent is
  // returned if branch-and-bound cannot prove optimality in time).
  const opt::CapInstance instance = build_cap_instance({});
  const opt::CapResult result =
      cap_solver().solve(instance, opt::CapObjective::kTrivial, nullptr);
  if (!result.feasible) {
    throw std::runtime_error{"CurbNetwork: initial controller assignment infeasible"};
  }
  genesis_state_ = AssignmentState::build(result.assignment, options_.f, /*epoch=*/0);

  // Genesis block records the initialization results (assignment + ids).
  chain::Transaction genesis_tx{chain::RequestType::kReassign, 0, 0, /*request_id=*/0,
                                genesis_state_.serialize()};
  genesis_block_ = std::make_unique<chain::Block>(
      chain::Block::create(0, crypto::Hash256{}, {genesis_tx}, 0, 0));

  for (auto& controller : controllers_) {
    controller->initialize(genesis_state_, *genesis_block_);
  }
  for (auto& sw : switches_) {
    sw->initialize(genesis_state_);
  }

  // Wire the bus.
  for (std::uint32_t id = 0; id < controllers_.size(); ++id) {
    Controller* c = controllers_[id].get();
    bus_->attach(controller_nodes_[id],
                 [c](net::NodeId from, const CurbMessage& msg) { c->on_message(from, msg); });
  }
  for (std::uint32_t id = 0; id < switches_.size(); ++id) {
    SwitchNode* s = switches_[id].get();
    bus_->attach(switch_nodes_[id],
                 [s](net::NodeId from, const CurbMessage& msg) { s->on_message(from, msg); });
  }
  if (fault_injector_ != nullptr) schedule_node_events();
  record_assignment_metrics(genesis_state_);
  if (ts_ != nullptr) ts_->start();
  initialized_ = true;
}

void CurbNetwork::finalize_telemetry() {
  if (ts_ != nullptr) ts_->finalize();
}

void CurbNetwork::record_assignment_metrics(const AssignmentState& state) {
  if (observatory_ == nullptr) return;
  auto& registry = observatory_->metrics;
  registry.gauge("core.epoch").set(static_cast<double>(state.epoch()));
  registry.gauge("core.groups").set(static_cast<double>(state.groups().size()));
  registry.gauge("core.byzantine_excluded")
      .set(static_cast<double>(state.byzantine().size()));
  for (std::size_t g = 0; g < state.groups().size(); ++g) {
    const auto label = std::to_string(g);
    registry.gauge("core.group_load", {{"group", label}})
        .set(static_cast<double>(state.groups()[g].switches.size()) *
             options_.switch_load);
    registry.gauge("core.group_size", {{"group", label}})
        .set(static_cast<double>(state.groups()[g].members.size()));
  }
  // Zero out gauges of groups dissolved by this reassignment so the series
  // does not freeze at its pre-reassignment value.
  for (std::size_t g = state.groups().size(); g < published_groups_; ++g) {
    const auto label = std::to_string(g);
    registry.gauge("core.group_load", {{"group", label}}).set(0.0);
    registry.gauge("core.group_size", {{"group", label}}).set(0.0);
  }
  published_groups_ = std::max(published_groups_, state.groups().size());
}

}  // namespace curb::core
