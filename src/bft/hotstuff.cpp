#include "curb/bft/hotstuff.hpp"

#include <algorithm>
#include <stdexcept>

#include "curb/prof/profiler.hpp"

namespace curb::bft {

HotstuffReplica::HotstuffReplica(Config config, sim::Simulator& sim, SendFn send,
                                 DeliverFn deliver)
    : config_{config},
      sim_{sim},
      send_{std::move(send)},
      deliver_{std::move(deliver)},
      view_{config.initial_view},
      rng_{0x4f75c0de ^ config.replica_index} {
  if (config_.group_size < 4) {
    throw std::invalid_argument{"HotstuffReplica: group size must be >= 4 (3f+1)"};
  }
  if (config_.replica_index >= config_.group_size) {
    throw std::invalid_argument{"HotstuffReplica: replica index out of range"};
  }
}

HotstuffReplica::~HotstuffReplica() {
  for (auto& [seq, s] : slots_) sim_.cancel(s.timeout);
}

std::uint64_t HotstuffReplica::propose(std::vector<std::uint8_t> payload) {
  if (!is_leader()) throw std::logic_error{"HotstuffReplica: propose() on non-leader"};
  const std::uint64_t seq = next_seq_++;

  PbftMessage msg;
  msg.type = PbftMessage::Type::kProposal;
  msg.view = view_;
  msg.sequence = seq;
  msg.sender = config_.replica_index;

  if (config_.behavior == Behavior::kEquivocate) {
    std::vector<std::uint8_t> corrupted = payload;
    if (!corrupted.empty()) corrupted[0] ^= 0xff;
    corrupted.push_back(0xee);
    for (std::uint32_t dest = 0; dest < config_.group_size; ++dest) {
      if (dest == config_.replica_index) continue;
      PbftMessage variant = msg;
      variant.payload = (dest % 2 == 0) ? payload : corrupted;
      variant.digest = payload_digest(variant.payload);
      send_to(dest, std::move(variant));
    }
    return seq;
  }

  msg.payload = std::move(payload);
  msg.digest = payload_digest(msg.payload);

  auto& s = slot(seq);
  s.digest = msg.digest;
  s.payload = msg.payload;
  s.prepare_votes.insert(config_.replica_index);  // the leader's own vote
  arm_timeout(seq);
  broadcast(msg);
  return seq;
}

void HotstuffReplica::send_to(std::uint32_t dest, PbftMessage msg) {
  switch (config_.behavior) {
    case Behavior::kSilent:
      return;
    case Behavior::kLazy: {
      sim_.schedule(config_.lazy_delay,
                    [send = send_, dest, msg = std::move(msg)] { send(dest, msg); });
      return;
    }
    case Behavior::kEquivocate:
      if (msg.type == PbftMessage::Type::kVotePrepare ||
          msg.type == PbftMessage::Type::kVotePreCommit ||
          msg.type == PbftMessage::Type::kVoteCommit) {
        msg.digest[0] ^= 0xff;  // vote for a digest nobody proposed
      }
      break;
    case Behavior::kSelectiveSilent:
      if (dest % 2 == 0) return;  // withhold from even-indexed peers only
      break;
    case Behavior::kStaleViewSpam:  // spam happens at the controller layer
    case Behavior::kHonest:
      break;
  }
  send_(dest, msg);
}

void HotstuffReplica::broadcast(const PbftMessage& msg) {
  for (std::uint32_t dest = 0; dest < config_.group_size; ++dest) {
    if (dest == config_.replica_index) continue;
    send_to(dest, msg);
  }
}

void HotstuffReplica::vote_to_leader(PbftMessage::Type type, std::uint64_t sequence,
                                     const crypto::Hash256& digest) {
  PbftMessage vote;
  vote.type = type;
  vote.view = view_;
  vote.sequence = sequence;
  vote.digest = digest;
  vote.sender = config_.replica_index;
  send_to(leader_index(), std::move(vote));
}

bool HotstuffReplica::qc_valid(const PbftMessage& msg) const {
  // A QC must name >= 2f+1 distinct in-range voters. (A deployment would
  // verify a threshold signature here; the simulation checks structure.)
  std::set<std::uint32_t> distinct;
  for (const std::uint32_t v : msg.qc_voters) {
    if (v < config_.group_size) distinct.insert(v);
  }
  return distinct.size() >= quorum();
}

void HotstuffReplica::on_message(const PbftMessage& msg) {
  const prof::Scope scope{"bft.hotstuff_msg"};
  if (msg.sender >= config_.group_size || msg.sender == config_.replica_index) return;
  switch (msg.type) {
    case PbftMessage::Type::kProposal: handle_proposal(msg); break;
    case PbftMessage::Type::kVotePrepare:
    case PbftMessage::Type::kVotePreCommit:
    case PbftMessage::Type::kVoteCommit: handle_vote(msg); break;
    case PbftMessage::Type::kQcPrepare:
    case PbftMessage::Type::kQcPreCommit:
    case PbftMessage::Type::kQcCommit: handle_qc(msg); break;
    case PbftMessage::Type::kViewChange: handle_view_change(msg); break;
    case PbftMessage::Type::kNewView: handle_new_view(msg); break;
    default: break;  // PBFT traffic: not ours
  }
}

void HotstuffReplica::handle_proposal(const PbftMessage& msg) {
  if (msg.view != view_ || msg.sender != leader_index()) return;
  if (payload_digest(msg.payload) != msg.digest) return;
  if (config_.validate_payload && !config_.validate_payload(msg.payload)) return;
  auto& s = slot(msg.sequence);
  if (s.digest && *s.digest != msg.digest) return;  // equivocation: refuse
  if (s.executed) return;
  const bool fresh = !s.digest.has_value();
  s.digest = msg.digest;
  s.payload = msg.payload;
  if (fresh) arm_timeout(msg.sequence);
  vote_to_leader(PbftMessage::Type::kVotePrepare, msg.sequence, msg.digest);
}

void HotstuffReplica::handle_vote(const PbftMessage& msg) {
  // Votes flow to the current leader only.
  if (!is_leader() || msg.view != view_) return;
  auto& s = slot(msg.sequence);
  if (!s.digest || *s.digest != msg.digest) return;

  auto emit_qc = [&](PbftMessage::Type qc_type, const std::set<std::uint32_t>& votes) {
    PbftMessage qc;
    qc.type = qc_type;
    qc.view = view_;
    qc.sequence = msg.sequence;
    qc.digest = *s.digest;
    qc.sender = config_.replica_index;
    qc.qc_voters.assign(votes.begin(), votes.end());
    broadcast(qc);
    handle_qc(qc);  // the leader processes its own QC locally
  };

  switch (msg.type) {
    case PbftMessage::Type::kVotePrepare: {
      s.prepare_votes.insert(msg.sender);
      if (s.phase == Phase::kIdle && s.prepare_votes.size() >= quorum()) {
        emit_qc(PbftMessage::Type::kQcPrepare, s.prepare_votes);
      }
      break;
    }
    case PbftMessage::Type::kVotePreCommit: {
      s.precommit_votes.insert(msg.sender);
      if (s.phase == Phase::kPrepared && s.precommit_votes.size() >= quorum()) {
        emit_qc(PbftMessage::Type::kQcPreCommit, s.precommit_votes);
      }
      break;
    }
    case PbftMessage::Type::kVoteCommit: {
      s.commit_votes.insert(msg.sender);
      if (s.phase == Phase::kPreCommitted && s.commit_votes.size() >= quorum()) {
        emit_qc(PbftMessage::Type::kQcCommit, s.commit_votes);
      }
      break;
    }
    default:
      break;
  }
}

void HotstuffReplica::handle_qc(const PbftMessage& msg) {
  if (msg.view != view_) return;
  if (!qc_valid(msg)) return;
  auto& s = slot(msg.sequence);
  if (!s.digest) {
    // QC for a proposal this replica never saw (e.g. joined late): adopt the
    // digest; the payload will arrive via NEW-VIEW re-proposals if needed.
    s.digest = msg.digest;
  }
  if (*s.digest != msg.digest) return;

  switch (msg.type) {
    case PbftMessage::Type::kQcPrepare:
      if (s.phase == Phase::kIdle) {
        s.phase = Phase::kPrepared;
        if (is_leader()) {
          s.precommit_votes.insert(config_.replica_index);
        } else {
          vote_to_leader(PbftMessage::Type::kVotePreCommit, msg.sequence, msg.digest);
        }
      }
      break;
    case PbftMessage::Type::kQcPreCommit:
      if (s.phase == Phase::kPrepared) {
        s.phase = Phase::kPreCommitted;
        if (is_leader()) {
          s.commit_votes.insert(config_.replica_index);
        } else {
          vote_to_leader(PbftMessage::Type::kVoteCommit, msg.sequence, msg.digest);
        }
      }
      break;
    case PbftMessage::Type::kQcCommit:
      if (s.phase != Phase::kCommitted) {
        s.phase = Phase::kCommitted;
        sim_.cancel(s.timeout);
        try_execute();
      }
      break;
    default:
      break;
  }
}

void HotstuffReplica::try_execute() {
  for (;;) {
    const auto it = slots_.find(next_exec_);
    if (it == slots_.end() || it->second.phase != Phase::kCommitted ||
        it->second.executed) {
      break;
    }
    it->second.executed = true;
    deliver_(next_exec_, it->second.payload);
    ++next_exec_;
  }
  if (config_.gc_window > 0 && next_exec_ > config_.gc_window) {
    const std::uint64_t horizon = next_exec_ - config_.gc_window;
    for (auto it2 = slots_.begin(); it2 != slots_.end() && it2->first < horizon;) {
      if (!it2->second.executed) break;
      sim_.cancel(it2->second.timeout);
      it2 = slots_.erase(it2);
    }
  }
}

void HotstuffReplica::arm_timeout(std::uint64_t sequence) {
  auto& s = slot(sequence);
  s.timeout = sim_.schedule(config_.view_change_timeout, [this, sequence] {
    const auto it = slots_.find(sequence);
    if (it == slots_.end() || it->second.phase == Phase::kCommitted) return;
    start_view_change();
  });
}

void HotstuffReplica::start_view_change() {
  if (view_change_in_progress_) return;
  view_change_in_progress_ = true;

  PbftMessage msg;
  msg.type = PbftMessage::Type::kViewChange;
  msg.view = view_ + 1;
  msg.sender = config_.replica_index;
  for (const auto& [seq, s] : slots_) {
    // Locked entries: anything at pre-commit or beyond must survive.
    if ((s.phase == Phase::kPreCommitted || s.phase == Phase::kCommitted) &&
        !s.executed && s.digest) {
      msg.prepared.push_back({seq, *s.digest, s.payload});
    }
  }
  view_change_votes_[msg.view][config_.replica_index] = msg.prepared;
  broadcast(msg);
  handle_view_change_quorum(msg.view);
}

void HotstuffReplica::handle_view_change(const PbftMessage& msg) {
  if (msg.view <= view_) return;
  view_change_votes_[msg.view][msg.sender] = msg.prepared;
  if (!view_change_in_progress_ && view_change_votes_[msg.view].size() >= f() + 1 &&
      !view_change_votes_[msg.view].contains(config_.replica_index)) {
    view_change_in_progress_ = true;
    PbftMessage own;
    own.type = PbftMessage::Type::kViewChange;
    own.view = msg.view;
    own.sender = config_.replica_index;
    for (const auto& [seq, s] : slots_) {
      if ((s.phase == Phase::kPreCommitted || s.phase == Phase::kCommitted) &&
          !s.executed && s.digest) {
        own.prepared.push_back({seq, *s.digest, s.payload});
      }
    }
    view_change_votes_[msg.view][config_.replica_index] = own.prepared;
    broadcast(own);
  }
  handle_view_change_quorum(msg.view);
}

void HotstuffReplica::handle_view_change_quorum(std::uint64_t candidate_view) {
  const auto it = view_change_votes_.find(candidate_view);
  if (it == view_change_votes_.end() || it->second.size() < quorum()) return;
  const auto new_leader = static_cast<std::uint32_t>(candidate_view % config_.group_size);
  if (new_leader != config_.replica_index || candidate_view <= view_) return;

  PbftMessage new_view;
  new_view.type = PbftMessage::Type::kNewView;
  new_view.view = candidate_view;
  new_view.sender = config_.replica_index;
  std::map<std::uint64_t, PbftMessage::PreparedEntry> merged;
  for (const auto& [replica, entries] : it->second) {
    for (const auto& e : entries) merged.emplace(e.sequence, e);
  }
  for (const auto& [seq, e] : merged) new_view.prepared.push_back(e);
  broadcast(new_view);
  adopt_new_view(candidate_view, new_view.prepared);
}

void HotstuffReplica::handle_new_view(const PbftMessage& msg) {
  if (msg.view <= view_) return;
  const auto expected = static_cast<std::uint32_t>(msg.view % config_.group_size);
  if (msg.sender != expected) return;
  adopt_new_view(msg.view, msg.prepared);
}

void HotstuffReplica::adopt_new_view(
    std::uint64_t new_view, const std::vector<PbftMessage::PreparedEntry>& prepared) {
  view_ = new_view;
  view_change_in_progress_ = false;
  std::uint64_t max_seq = next_exec_ - 1;
  for (auto& [seq, s] : slots_) {
    max_seq = std::max(max_seq, seq);
    if (s.executed) continue;
    sim_.cancel(s.timeout);
    s.phase = Phase::kIdle;
    s.prepare_votes.clear();
    s.precommit_votes.clear();
    s.commit_votes.clear();
    s.digest.reset();
    s.payload.clear();
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  if (on_view_change_) on_view_change_(new_view);

  if (is_leader()) {
    for (const auto& e : prepared) {
      const auto it = slots_.find(e.sequence);
      if (it != slots_.end() && it->second.executed) continue;
      PbftMessage msg;
      msg.type = PbftMessage::Type::kProposal;
      msg.view = view_;
      msg.sequence = e.sequence;
      msg.sender = config_.replica_index;
      msg.payload = e.payload;
      msg.digest = payload_digest(msg.payload);

      auto& s = slot(e.sequence);
      s.digest = msg.digest;
      s.payload = msg.payload;
      s.prepare_votes.insert(config_.replica_index);
      arm_timeout(e.sequence);
      broadcast(msg);
    }
  }
}

}  // namespace curb::bft
