#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "curb/bft/consensus.hpp"
#include "curb/bft/message.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::bft {

/// HotStuff-style replica (basic, non-chained): the leader drives three
/// vote phases (prepare / pre-commit / commit); replicas send their votes
/// TO THE LEADER ONLY, and the leader broadcasts a quorum certificate per
/// phase. Per-decision communication is O(n) messages versus PBFT's O(n²)
/// — the linear-communication property HotStuff is known for. QCs carry
/// voter-id lists in place of threshold signatures (simulation substitute).
///
/// View change reuses the PBFT-style mechanism (timeout -> VIEW-CHANGE with
/// locked entries -> NEW-VIEW from the next leader); it is the rare path
/// and its cost does not affect the per-decision complexity.
class HotstuffReplica final : public ConsensusReplica {
 public:
  using Config = ReplicaConfig;

  HotstuffReplica(Config config, sim::Simulator& sim, SendFn send, DeliverFn deliver);
  ~HotstuffReplica() override;

  HotstuffReplica(const HotstuffReplica&) = delete;
  HotstuffReplica& operator=(const HotstuffReplica&) = delete;

  std::uint64_t propose(std::vector<std::uint8_t> payload) override;
  void on_message(const PbftMessage& msg) override;
  void force_view_change() override { start_view_change(); }

  [[nodiscard]] std::uint64_t view() const override { return view_; }
  [[nodiscard]] std::uint32_t leader_index() const override {
    return static_cast<std::uint32_t>(view_ % config_.group_size);
  }
  [[nodiscard]] bool is_leader() const override {
    return leader_index() == config_.replica_index;
  }
  [[nodiscard]] std::uint32_t index() const override { return config_.replica_index; }
  [[nodiscard]] std::uint64_t next_execute() const override { return next_exec_; }
  [[nodiscard]] std::size_t f() const { return (config_.group_size - 1) / 3; }

  void set_behavior(Behavior b) override { config_.behavior = b; }
  [[nodiscard]] Behavior behavior() const override { return config_.behavior; }
  void set_on_view_change(ViewChangeFn fn) override { on_view_change_ = std::move(fn); }

 private:
  enum class Phase : std::uint8_t { kIdle, kPrepared, kPreCommitted, kCommitted };

  struct SlotState {
    std::optional<crypto::Hash256> digest;
    std::vector<std::uint8_t> payload;
    Phase phase = Phase::kIdle;
    bool executed = false;
    // Leader-side vote aggregation per phase.
    std::set<std::uint32_t> prepare_votes;
    std::set<std::uint32_t> precommit_votes;
    std::set<std::uint32_t> commit_votes;
    sim::EventHandle timeout;
  };

  void send_to(std::uint32_t dest, PbftMessage msg);
  void broadcast(const PbftMessage& msg);
  void vote_to_leader(PbftMessage::Type type, std::uint64_t sequence,
                      const crypto::Hash256& digest);
  [[nodiscard]] bool qc_valid(const PbftMessage& msg) const;

  void handle_proposal(const PbftMessage& msg);
  void handle_vote(const PbftMessage& msg);
  void handle_qc(const PbftMessage& msg);
  void handle_view_change(const PbftMessage& msg);
  void handle_view_change_quorum(std::uint64_t candidate_view);
  void handle_new_view(const PbftMessage& msg);
  void adopt_new_view(std::uint64_t new_view,
                      const std::vector<PbftMessage::PreparedEntry>& prepared);
  void try_execute();
  void arm_timeout(std::uint64_t sequence);
  void start_view_change();
  [[nodiscard]] std::size_t quorum() const { return 2 * f() + 1; }
  [[nodiscard]] SlotState& slot(std::uint64_t sequence) { return slots_[sequence]; }

  Config config_;
  sim::Simulator& sim_;
  SendFn send_;
  DeliverFn deliver_;
  ViewChangeFn on_view_change_;

  std::uint64_t view_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_exec_ = 1;
  std::map<std::uint64_t, SlotState> slots_;
  std::map<std::uint64_t, std::map<std::uint32_t, std::vector<PbftMessage::PreparedEntry>>>
      view_change_votes_;
  bool view_change_in_progress_ = false;
  sim::Rng rng_;
};

}  // namespace curb::bft
