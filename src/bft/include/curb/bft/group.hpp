#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "curb/bft/consensus.hpp"
#include "curb/bft/replica.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::bft {

/// Self-contained PBFT group harness: n replicas exchanging messages over a
/// uniform-delay in-memory link. Used by tests and by standalone BFT
/// benchmarks; the Curb core wires replicas over the geographic MessageBus
/// instead.
class PbftGroup {
 public:
  struct Options {
    std::size_t group_size = 4;
    sim::SimTime link_delay = sim::SimTime::millis(1);
    sim::SimTime view_change_timeout = sim::SimTime::millis(500);
    ConsensusEngine engine = ConsensusEngine::kPbft;
  };

  PbftGroup(sim::Simulator& sim, Options options) : sim_{sim}, options_{options} {
    delivered_.resize(options.group_size);
    for (std::uint32_t i = 0; i < options.group_size; ++i) {
      ReplicaConfig cfg;
      cfg.replica_index = i;
      cfg.group_size = options.group_size;
      cfg.view_change_timeout = options.view_change_timeout;
      replicas_.push_back(make_replica(
          options.engine, cfg, sim,
          [this, i](std::uint32_t dest, const PbftMessage& msg) {
            ++messages_sent_;
            sim_.schedule(options_.link_delay,
                          [this, dest, msg] { replicas_[dest]->on_message(msg); });
          },
          [this, i](std::uint64_t seq, const std::vector<std::uint8_t>& payload) {
            delivered_[i].push_back({seq, payload});
          }));
    }
  }

  [[nodiscard]] ConsensusReplica& replica(std::uint32_t i) { return *replicas_[i]; }
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  struct Delivery {
    std::uint64_t sequence;
    std::vector<std::uint8_t> payload;

    bool operator==(const Delivery&) const = default;
  };
  [[nodiscard]] const std::vector<Delivery>& delivered(std::uint32_t i) const {
    return delivered_[i];
  }

  /// Leader of the current view of replica 0 (all agree in steady state).
  [[nodiscard]] ConsensusReplica& current_leader() {
    return *replicas_[replicas_[0]->leader_index()];
  }

  /// Count of replicas that have delivered at least `n` payloads.
  [[nodiscard]] std::size_t replicas_delivered_at_least(std::size_t n) const {
    std::size_t count = 0;
    for (const auto& d : delivered_) count += (d.size() >= n) ? 1 : 0;
    return count;
  }

 private:
  sim::Simulator& sim_;
  Options options_;
  std::vector<std::unique_ptr<ConsensusReplica>> replicas_;
  std::vector<std::vector<Delivery>> delivered_;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace curb::bft
