#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "curb/crypto/sha256.hpp"

namespace curb::bft {

/// PBFT protocol message. One struct covers all five message kinds; fields
/// irrelevant to a kind stay empty. `payload` is an opaque serialized value
/// (a Curb txList for Intra-PBFT, a serialized block for Final-PBFT).
struct PbftMessage {
  enum class Type : std::uint8_t {
    // PBFT (all-to-all voting)
    kPrePrepare,
    kPrepare,
    kCommit,
    kViewChange,
    kNewView,
    // HotStuff-style (leader-aggregated voting, linear communication)
    kProposal,
    kVotePrepare,
    kQcPrepare,
    kVotePreCommit,
    kQcPreCommit,
    kVoteCommit,
    kQcCommit,
  };

  Type type = Type::kPrePrepare;
  std::uint64_t view = 0;
  std::uint64_t sequence = 0;
  crypto::Hash256 digest{};
  std::uint32_t sender = 0;
  /// Present on kPrePrepare/kProposal and inside view-change/new-view
  /// prepared-entry lists.
  std::vector<std::uint8_t> payload;
  /// Quorum certificate carried by kQc* messages: the replicas whose votes
  /// the leader aggregated (a simulation stand-in for threshold signatures).
  std::vector<std::uint32_t> qc_voters;

  /// View-change: prepared-but-unexecuted requests carried to the new view.
  struct PreparedEntry {
    std::uint64_t sequence = 0;
    crypto::Hash256 digest{};
    std::vector<std::uint8_t> payload;

    bool operator==(const PreparedEntry&) const = default;
  };
  std::vector<PreparedEntry> prepared;

  bool operator==(const PbftMessage&) const = default;

  /// Approximate wire size in bytes, used for transmission-delay modelling.
  [[nodiscard]] std::size_t wire_size() const {
    std::size_t size = 1 + 8 + 8 + 32 + 4 + 4 + payload.size() + 4 * qc_voters.size();
    for (const auto& e : prepared) size += 8 + 32 + 4 + e.payload.size();
    return size;
  }
};

[[nodiscard]] constexpr std::string_view to_string(PbftMessage::Type t) {
  switch (t) {
    case PbftMessage::Type::kPrePrepare: return "PRE-PREPARE";
    case PbftMessage::Type::kPrepare: return "PREPARE";
    case PbftMessage::Type::kCommit: return "COMMIT";
    case PbftMessage::Type::kViewChange: return "VIEW-CHANGE";
    case PbftMessage::Type::kNewView: return "NEW-VIEW";
    case PbftMessage::Type::kProposal: return "PROPOSAL";
    case PbftMessage::Type::kVotePrepare: return "VOTE-PREPARE";
    case PbftMessage::Type::kQcPrepare: return "QC-PREPARE";
    case PbftMessage::Type::kVotePreCommit: return "VOTE-PRECOMMIT";
    case PbftMessage::Type::kQcPreCommit: return "QC-PRECOMMIT";
    case PbftMessage::Type::kVoteCommit: return "VOTE-COMMIT";
    case PbftMessage::Type::kQcCommit: return "QC-COMMIT";
  }
  return "?";
}

/// Digest helper for proposal payloads.
[[nodiscard]] inline crypto::Hash256 payload_digest(const std::vector<std::uint8_t>& payload) {
  return crypto::Sha256::digest(std::span<const std::uint8_t>{payload});
}

}  // namespace curb::bft
