#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "curb/bft/consensus.hpp"
#include "curb/bft/message.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::bft {

/// One PBFT replica (pre-prepare / prepare / commit, view change, in-order
/// execution). Transport-agnostic: messages leave through a send callback,
/// arrive through on_message(). Reused for both consensus layers of Curb:
/// Intra-PBFT (payload = txList) and Final-PBFT (payload = block).
class PbftReplica final : public ConsensusReplica {
 public:
  using Config = ReplicaConfig;

  PbftReplica(Config config, sim::Simulator& sim, SendFn send, DeliverFn deliver);
  /// Cancels all outstanding timers: replicas are torn down and rebuilt on
  /// Curb reassignment, and a stale timer firing into freed state would be
  /// a use-after-free.
  ~PbftReplica() override;

  PbftReplica(const PbftReplica&) = delete;
  PbftReplica& operator=(const PbftReplica&) = delete;

  /// Leader entry point: assign the next sequence number and broadcast the
  /// pre-prepare. Throws std::logic_error when called on a non-leader.
  std::uint64_t propose(std::vector<std::uint8_t> payload) override;

  /// Feed an incoming message from peer replicas.
  void on_message(const PbftMessage& msg) override;

  /// Application-triggered view change (e.g. Curb followers observing a
  /// client request the leader refuses to sequence). No-op while a view
  /// change is already in flight.
  void force_view_change() override { start_view_change(); }

  [[nodiscard]] std::uint64_t view() const override { return view_; }
  [[nodiscard]] std::uint32_t leader_index() const override {
    return static_cast<std::uint32_t>(view_ % config_.group_size);
  }
  [[nodiscard]] bool is_leader() const override {
    return leader_index() == config_.replica_index;
  }
  [[nodiscard]] std::uint32_t index() const override { return config_.replica_index; }
  [[nodiscard]] std::size_t f() const { return (config_.group_size - 1) / 3; }
  /// Next sequence this replica expects to execute.
  [[nodiscard]] std::uint64_t next_execute() const override { return next_exec_; }
  [[nodiscard]] std::uint64_t executed_count() const { return next_exec_ - 1; }

  /// Candidate views with outstanding view-change votes (all > view() —
  /// adopt_new_view prunes everything at or below the installed view).
  [[nodiscard]] std::vector<std::uint64_t> pending_view_change_views() const {
    std::vector<std::uint64_t> views;
    views.reserve(view_change_votes_.size());
    for (const auto& [v, votes] : view_change_votes_) views.push_back(v);
    return views;
  }

  void set_behavior(Behavior b) override { config_.behavior = b; }
  [[nodiscard]] Behavior behavior() const override { return config_.behavior; }
  void set_on_view_change(ViewChangeFn fn) override { on_view_change_ = std::move(fn); }

 private:
  struct SlotState {
    std::optional<crypto::Hash256> digest;  // accepted pre-prepare digest
    std::vector<std::uint8_t> payload;
    std::set<std::uint32_t> prepares;
    std::set<std::uint32_t> commits;
    bool prepared = false;
    bool committed = false;
    bool executed = false;
    sim::EventHandle timeout;
    // Observability: the slot span covers accept -> execute; the phase span
    // is the currently-open sub-phase (prepare, then commit).
    obs::SpanId span;
    obs::SpanId phase_span;
    sim::SimTime accepted_at;
    sim::SimTime prepared_at;
  };

  void send_to(std::uint32_t dest, PbftMessage msg);
  void broadcast(const PbftMessage& msg);
  void handle_pre_prepare(const PbftMessage& msg);
  void handle_prepare(const PbftMessage& msg);
  void handle_commit(const PbftMessage& msg);
  void handle_view_change(const PbftMessage& msg);
  void handle_view_change_quorum(std::uint64_t candidate_view);
  void handle_new_view(const PbftMessage& msg);
  void adopt_new_view(std::uint64_t new_view,
                      const std::vector<PbftMessage::PreparedEntry>& prepared);
  void check_prepared(std::uint64_t sequence);
  void check_committed(std::uint64_t sequence);
  void try_execute();
  void arm_timeout(std::uint64_t sequence);
  void start_view_change();
  [[nodiscard]] std::size_t quorum() const { return 2 * f() + 1; }
  [[nodiscard]] SlotState& slot(std::uint64_t sequence) { return slots_[sequence]; }

  // Observability hooks. The inline wrappers keep the disabled path to one
  // predictable pointer test on the consensus hot path; the _impl bodies
  // live out of line in replica.cpp.
  [[nodiscard]] bool tracing() const {
    return config_.obs != nullptr && config_.obs->tracer.enabled();
  }
  void obs_slot_accepted(std::uint64_t sequence, SlotState& s) {
    if (config_.obs != nullptr) obs_slot_accepted_impl(sequence, s);
  }
  void obs_slot_prepared(SlotState& s) {
    if (config_.obs != nullptr) obs_slot_prepared_impl(s);
  }
  void obs_slot_committed(SlotState& s) {
    if (config_.obs != nullptr) obs_slot_committed_impl(s);
  }
  void obs_slot_executed(std::uint64_t sequence, SlotState& s) {
    if (config_.obs != nullptr) obs_slot_executed_impl(sequence, s);
  }
  void obs_slot_reset(SlotState& s) {
    if (config_.obs != nullptr) obs_slot_reset_impl(s);
  }
  void obs_view_installed(std::uint64_t new_view) {
    if (config_.obs != nullptr) obs_view_installed_impl(new_view);
  }
  void obs_slot_accepted_impl(std::uint64_t sequence, SlotState& s);
  void obs_slot_prepared_impl(SlotState& s);
  void obs_slot_committed_impl(SlotState& s);
  void obs_slot_executed_impl(std::uint64_t sequence, SlotState& s);
  void obs_slot_reset_impl(SlotState& s);
  void obs_view_installed_impl(std::uint64_t new_view);

  Config config_;
  sim::Simulator& sim_;
  SendFn send_;
  DeliverFn deliver_;
  ViewChangeFn on_view_change_;

  // Cached instrument handles, resolved once at construction.
  obs::Counter* view_changes_metric_ = nullptr;
  obs::Counter* timeouts_metric_ = nullptr;
  obs::Histogram* prepare_us_ = nullptr;
  obs::Histogram* commit_us_ = nullptr;
  obs::Histogram* slot_us_ = nullptr;

  std::uint64_t view_;
  std::uint64_t next_seq_ = 1;   // leader's next proposal sequence
  std::uint64_t next_exec_ = 1;  // next sequence to execute
  std::map<std::uint64_t, SlotState> slots_;
  // View-change bookkeeping: votes per candidate view.
  std::map<std::uint64_t, std::map<std::uint32_t, std::vector<PbftMessage::PreparedEntry>>>
      view_change_votes_;
  bool view_change_in_progress_ = false;
};

}  // namespace curb::bft
