#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "curb/bft/message.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::bft {

/// Byzantine behaviour injected into a replica (paper Section IV-A):
///  - kHonest: follows the protocol.
///  - kSilent: sends nothing (crashed or withholding — the paper's
///    experiment 1/2 byzantine nodes that "do not respond within timeout").
///  - kLazy: delays every outgoing message by a configured amount (the
///    paper's experiment 3 nodes with response times in (200, 500) ms).
///  - kEquivocate: as leader, proposes conflicting payloads to different
///    peers; as follower, votes for a corrupted digest.
///  - kSelectiveSilent: withholds messages from even-indexed peers only —
///    enough honest pairs still talk for the protocol to make progress,
///    but naive "is it silent?" detectors see conflicting evidence.
///  - kStaleViewSpam: participates honestly but floods peers with
///    view-change votes for views far ahead of the current one, probing
///    the view-change vote bookkeeping (curb::fault).
enum class Behavior : std::uint8_t {
  kHonest,
  kSilent,
  kLazy,
  kEquivocate,
  kSelectiveSilent,
  kStaleViewSpam,
};

/// Which BFT engine a consensus instance runs. The paper uses PBFT ("other
/// BFT protocols including Tendermint and HotStuff can also be applied");
/// this library ships both an all-to-all PBFT and a leader-aggregated
/// HotStuff-style engine with linear per-round communication.
enum class ConsensusEngine : std::uint8_t { kPbft, kHotstuff };

[[nodiscard]] constexpr std::string_view to_string(ConsensusEngine e) {
  switch (e) {
    case ConsensusEngine::kPbft: return "pbft";
    case ConsensusEngine::kHotstuff: return "hotstuff";
  }
  return "?";
}

/// Shared configuration for any replica engine.
struct ReplicaConfig {
  std::uint32_t replica_index = 0;
  std::size_t group_size = 4;  // n = 3f + 1
  /// Commit timeout before initiating a view change.
  sim::SimTime view_change_timeout = sim::SimTime::millis(500);
  Behavior behavior = Behavior::kHonest;
  /// Extra delay applied to every outgoing message when behavior == kLazy.
  sim::SimTime lazy_delay = sim::SimTime::millis(300);
  /// Starting view; leader of view v is replica v % group_size. Curb uses
  /// this to seat the OP-designated group leader at startup.
  std::uint64_t initial_view = 0;
  /// Executed slots older than this many sequences behind the execution
  /// frontier are garbage-collected (checkpoint-lite; keeps long-running
  /// replicas bounded). 0 disables collection.
  std::uint64_t gc_window = 64;
  /// Observability (nullptr disables). `span_track` names the trace row the
  /// replica's spans render on (one per controller); `span_prefix`
  /// distinguishes Curb's two consensus layers ("intra_pbft" /
  /// "final_pbft") in span names and metric labels; `span_attrs` rides on
  /// every span (group id, controller id, ...).
  obs::Observatory* obs = nullptr;
  std::string span_track;
  std::string span_prefix = "pbft";
  obs::Attrs span_attrs;
  /// Optional application check of a proposed payload (e.g. transaction
  /// signature verification), run once per proposal after the digest check.
  /// A replica never adopts — and never votes for — a payload this rejects.
  /// Leave empty to accept every well-digested payload (the default).
  std::function<bool(const std::vector<std::uint8_t>& payload)> validate_payload;
};

/// Engine-agnostic replica interface. Transport-agnostic: messages leave
/// through a send callback and arrive through on_message(); committed
/// payloads are delivered strictly in sequence order.
class ConsensusReplica {
 public:
  /// Send `msg` to replica `dest` (index within the group).
  using SendFn = std::function<void(std::uint32_t dest, const PbftMessage& msg)>;
  /// A payload committed at `sequence` (called in sequence order).
  using DeliverFn = std::function<void(std::uint64_t sequence,
                                       const std::vector<std::uint8_t>& payload)>;
  /// View changed to `new_view` (leader = new_view % group_size).
  using ViewChangeFn = std::function<void(std::uint64_t new_view)>;

  virtual ~ConsensusReplica() = default;

  /// Leader entry point: assign the next sequence number and start
  /// consensus. Throws std::logic_error when called on a non-leader.
  virtual std::uint64_t propose(std::vector<std::uint8_t> payload) = 0;
  /// Feed an incoming message from peer replicas.
  virtual void on_message(const PbftMessage& msg) = 0;
  /// Application-triggered view change (no-op while one is in flight).
  virtual void force_view_change() = 0;

  [[nodiscard]] virtual std::uint64_t view() const = 0;
  [[nodiscard]] virtual std::uint32_t leader_index() const = 0;
  [[nodiscard]] virtual bool is_leader() const = 0;
  [[nodiscard]] virtual std::uint32_t index() const = 0;
  /// Next sequence this replica expects to execute.
  [[nodiscard]] virtual std::uint64_t next_execute() const = 0;

  virtual void set_behavior(Behavior b) = 0;
  [[nodiscard]] virtual Behavior behavior() const = 0;
  virtual void set_on_view_change(ViewChangeFn fn) = 0;
};

/// Create a replica of the requested engine.
[[nodiscard]] std::unique_ptr<ConsensusReplica> make_replica(
    ConsensusEngine engine, const ReplicaConfig& config, sim::Simulator& sim,
    ConsensusReplica::SendFn send, ConsensusReplica::DeliverFn deliver);

}  // namespace curb::bft
