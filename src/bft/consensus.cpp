#include "curb/bft/consensus.hpp"

#include "curb/bft/hotstuff.hpp"
#include "curb/bft/replica.hpp"

namespace curb::bft {

std::unique_ptr<ConsensusReplica> make_replica(ConsensusEngine engine,
                                               const ReplicaConfig& config,
                                               sim::Simulator& sim,
                                               ConsensusReplica::SendFn send,
                                               ConsensusReplica::DeliverFn deliver) {
  switch (engine) {
    case ConsensusEngine::kPbft:
      return std::make_unique<PbftReplica>(config, sim, std::move(send),
                                           std::move(deliver));
    case ConsensusEngine::kHotstuff:
      return std::make_unique<HotstuffReplica>(config, sim, std::move(send),
                                               std::move(deliver));
  }
  throw std::invalid_argument{"make_replica: unknown engine"};
}

}  // namespace curb::bft
