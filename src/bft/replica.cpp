#include "curb/bft/replica.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "curb/prof/profiler.hpp"

namespace curb::bft {

PbftReplica::PbftReplica(Config config, sim::Simulator& sim, SendFn send, DeliverFn deliver)
    : config_{config},
      sim_{sim},
      send_{std::move(send)},
      deliver_{std::move(deliver)},
      view_{config.initial_view} {
  if (config_.group_size < 4) {
    throw std::invalid_argument{"PbftReplica: group size must be >= 4 (3f+1, f >= 1)"};
  }
  if (config_.replica_index >= config_.group_size) {
    throw std::invalid_argument{"PbftReplica: replica index out of range"};
  }
  if (config_.obs != nullptr) {
    auto& registry = config_.obs->metrics;
    const obs::Labels layer{{"layer", config_.span_prefix}};
    view_changes_metric_ = &registry.counter("bft.view_changes", layer);
    timeouts_metric_ = &registry.counter("bft.timeouts_fired", layer);
    prepare_us_ = &registry.histogram("bft.prepare_us", layer);
    commit_us_ = &registry.histogram("bft.commit_us", layer);
    slot_us_ = &registry.histogram("bft.slot_us", layer);
  }
}

PbftReplica::~PbftReplica() {
  for (auto& [seq, s] : slots_) sim_.cancel(s.timeout);
}

std::uint64_t PbftReplica::propose(std::vector<std::uint8_t> payload) {
  if (!is_leader()) throw std::logic_error{"PbftReplica: propose() on non-leader"};
  const std::uint64_t seq = next_seq_++;

  PbftMessage msg;
  msg.type = PbftMessage::Type::kPrePrepare;
  msg.view = view_;
  msg.sequence = seq;
  msg.sender = config_.replica_index;

  if (config_.behavior == Behavior::kEquivocate) {
    // Conflicting proposals: half the peers see a corrupted payload. Honest
    // replicas will fail to assemble a quorum on either digest.
    std::vector<std::uint8_t> corrupted = payload;
    if (!corrupted.empty()) corrupted[0] ^= 0xff;
    corrupted.push_back(0xee);
    for (std::uint32_t dest = 0; dest < config_.group_size; ++dest) {
      if (dest == config_.replica_index) continue;
      PbftMessage variant = msg;
      variant.payload = (dest % 2 == 0) ? payload : corrupted;
      variant.digest = payload_digest(variant.payload);
      send_to(dest, std::move(variant));
    }
    return seq;
  }

  msg.payload = std::move(payload);
  msg.digest = payload_digest(msg.payload);

  // Self-accept the proposal, then broadcast.
  auto& s = slot(seq);
  s.digest = msg.digest;
  s.payload = msg.payload;
  s.prepares.insert(config_.replica_index);
  obs_slot_accepted(seq, s);
  arm_timeout(seq);
  broadcast(msg);
  return seq;
}

void PbftReplica::send_to(std::uint32_t dest, PbftMessage msg) {
  switch (config_.behavior) {
    case Behavior::kSilent:
      return;  // byzantine: withhold everything
    case Behavior::kLazy: {
      // Deliver late: schedule the send after the configured delay. The
      // callback copies send_ so it stays valid if this replica is torn
      // down (Curb reassignment) before the delayed send fires.
      sim_.schedule(config_.lazy_delay,
                    [send = send_, dest, msg = std::move(msg)] { send(dest, msg); });
      return;
    }
    case Behavior::kEquivocate:
      if (msg.type == PbftMessage::Type::kPrepare ||
          msg.type == PbftMessage::Type::kCommit) {
        msg.digest[0] ^= 0xff;  // vote for a digest nobody proposed
      }
      break;
    case Behavior::kSelectiveSilent:
      if (dest % 2 == 0) return;  // withhold from even-indexed peers only
      break;
    case Behavior::kStaleViewSpam:  // spam happens at the controller layer
    case Behavior::kHonest:
      break;
  }
  send_(dest, msg);
}

void PbftReplica::broadcast(const PbftMessage& msg) {
  for (std::uint32_t dest = 0; dest < config_.group_size; ++dest) {
    if (dest == config_.replica_index) continue;
    send_to(dest, msg);
  }
}

void PbftReplica::on_message(const PbftMessage& msg) {
  const prof::Scope scope{"bft.pbft_msg"};
  if (msg.sender >= config_.group_size || msg.sender == config_.replica_index) return;
  switch (msg.type) {
    case PbftMessage::Type::kPrePrepare: handle_pre_prepare(msg); break;
    case PbftMessage::Type::kPrepare: handle_prepare(msg); break;
    case PbftMessage::Type::kCommit: handle_commit(msg); break;
    case PbftMessage::Type::kViewChange: handle_view_change(msg); break;
    case PbftMessage::Type::kNewView: handle_new_view(msg); break;
  }
}

void PbftReplica::handle_pre_prepare(const PbftMessage& msg) {
  if (msg.view != view_) return;
  if (msg.sender != leader_index()) return;  // only the leader may propose
  if (payload_digest(msg.payload) != msg.digest) return;  // malformed
  if (config_.validate_payload && !config_.validate_payload(msg.payload)) return;

  auto& s = slot(msg.sequence);
  if (s.digest && *s.digest != msg.digest) return;  // conflicting proposal: ignore
  if (s.executed) return;
  const bool fresh = !s.digest.has_value();
  s.digest = msg.digest;
  s.payload = msg.payload;
  s.prepares.insert(config_.replica_index);
  s.prepares.insert(msg.sender);  // the pre-prepare is the leader's prepare vote
  if (fresh) {
    obs_slot_accepted(msg.sequence, s);
    arm_timeout(msg.sequence);
  }

  PbftMessage prepare;
  prepare.type = PbftMessage::Type::kPrepare;
  prepare.view = view_;
  prepare.sequence = msg.sequence;
  prepare.digest = msg.digest;
  prepare.sender = config_.replica_index;
  broadcast(prepare);
  check_prepared(msg.sequence);
}

void PbftReplica::handle_prepare(const PbftMessage& msg) {
  if (msg.view != view_) return;
  auto& s = slot(msg.sequence);
  if (s.digest && *s.digest != msg.digest) return;  // vote for a different digest
  if (!s.digest) {
    // Prepare arrived before the pre-prepare; remember the vote only.
    s.prepares.insert(msg.sender);
    return;
  }
  s.prepares.insert(msg.sender);
  check_prepared(msg.sequence);
}

void PbftReplica::check_prepared(std::uint64_t sequence) {
  auto& s = slot(sequence);
  // Prepared: pre-prepare accepted + 2f+1 prepare votes (own included).
  if (s.prepared || !s.digest || s.prepares.size() < quorum()) return;
  s.prepared = true;
  s.commits.insert(config_.replica_index);
  obs_slot_prepared(s);

  PbftMessage commit;
  commit.type = PbftMessage::Type::kCommit;
  commit.view = view_;
  commit.sequence = sequence;
  commit.digest = *s.digest;
  commit.sender = config_.replica_index;
  broadcast(commit);
  check_committed(sequence);
}

void PbftReplica::handle_commit(const PbftMessage& msg) {
  if (msg.view != view_) return;
  auto& s = slot(msg.sequence);
  if (s.digest && *s.digest != msg.digest) return;
  s.commits.insert(msg.sender);
  check_committed(msg.sequence);
}

void PbftReplica::check_committed(std::uint64_t sequence) {
  auto& s = slot(sequence);
  if (s.committed || !s.prepared || s.commits.size() < quorum()) return;
  s.committed = true;
  obs_slot_committed(s);
  sim_.cancel(s.timeout);
  try_execute();
}

void PbftReplica::try_execute() {
  for (;;) {
    const auto it = slots_.find(next_exec_);
    if (it == slots_.end() || !it->second.committed || it->second.executed) break;
    it->second.executed = true;
    obs_slot_executed(next_exec_, it->second);
    deliver_(next_exec_, it->second.payload);
    ++next_exec_;
  }
  // Checkpoint-lite: drop executed slots far behind the execution frontier.
  // Re-delivery is impossible regardless (execution is strictly in-order),
  // so this only bounds memory; late votes for a collected slot simply
  // accumulate in a fresh (never-executing) slot entry.
  if (config_.gc_window > 0 && next_exec_ > config_.gc_window) {
    const std::uint64_t horizon = next_exec_ - config_.gc_window;
    for (auto it2 = slots_.begin(); it2 != slots_.end() && it2->first < horizon;) {
      if (!it2->second.executed) break;  // keep anything unexecuted
      sim_.cancel(it2->second.timeout);
      it2 = slots_.erase(it2);
    }
  }
}

void PbftReplica::arm_timeout(std::uint64_t sequence) {
  auto& s = slot(sequence);
  // A slot can be re-armed (e.g. re-proposed after a view change); the old
  // timer must die with the old round or it fires against the new one and
  // triggers a spurious view change.
  sim_.cancel(s.timeout);
  s.timeout = sim_.schedule(config_.view_change_timeout, [this, sequence] {
    const auto it = slots_.find(sequence);
    if (it == slots_.end() || it->second.committed) return;
    if (timeouts_metric_ != nullptr) timeouts_metric_->inc();
    if (tracing()) {
      config_.obs->tracer.instant(config_.span_prefix + ".timeout", config_.span_track,
                                  {{"seq", std::to_string(sequence)}});
    }
    start_view_change();
  });
}

void PbftReplica::start_view_change() {
  if (view_change_in_progress_) return;
  view_change_in_progress_ = true;

  PbftMessage msg;
  msg.type = PbftMessage::Type::kViewChange;
  msg.view = view_ + 1;
  msg.sender = config_.replica_index;
  for (const auto& [seq, s] : slots_) {
    if (s.prepared && !s.executed && s.digest) {
      msg.prepared.push_back({seq, *s.digest, s.payload});
    }
  }
  // Record the own vote, then broadcast.
  view_change_votes_[msg.view][config_.replica_index] = msg.prepared;
  broadcast(msg);
  handle_view_change_quorum(/*candidate_view=*/msg.view);
}

void PbftReplica::handle_view_change(const PbftMessage& msg) {
  if (msg.view <= view_) return;
  view_change_votes_[msg.view][msg.sender] = msg.prepared;

  // Join the view change once f+1 peers demand it (they cannot all be lying).
  if (!view_change_in_progress_ &&
      view_change_votes_[msg.view].size() >= f() + 1 &&
      !view_change_votes_[msg.view].contains(config_.replica_index)) {
    view_change_in_progress_ = true;
    PbftMessage own;
    own.type = PbftMessage::Type::kViewChange;
    own.view = msg.view;
    own.sender = config_.replica_index;
    for (const auto& [seq, s] : slots_) {
      if (s.prepared && !s.executed && s.digest) {
        own.prepared.push_back({seq, *s.digest, s.payload});
      }
    }
    view_change_votes_[msg.view][config_.replica_index] = own.prepared;
    broadcast(own);
  }
  handle_view_change_quorum(msg.view);
}

void PbftReplica::handle_view_change_quorum(std::uint64_t candidate_view) {
  const auto it = view_change_votes_.find(candidate_view);
  if (it == view_change_votes_.end() || it->second.size() < quorum()) return;
  const auto new_leader = static_cast<std::uint32_t>(candidate_view % config_.group_size);
  if (new_leader != config_.replica_index) return;
  if (candidate_view <= view_) return;

  // New leader: install the view and re-propose every prepared entry.
  PbftMessage new_view;
  new_view.type = PbftMessage::Type::kNewView;
  new_view.view = candidate_view;
  new_view.sender = config_.replica_index;
  std::map<std::uint64_t, PbftMessage::PreparedEntry> merged;
  for (const auto& [replica, entries] : it->second) {
    for (const auto& e : entries) merged.emplace(e.sequence, e);
  }
  for (const auto& [seq, e] : merged) new_view.prepared.push_back(e);
  broadcast(new_view);
  adopt_new_view(candidate_view, new_view.prepared);
}

void PbftReplica::handle_new_view(const PbftMessage& msg) {
  if (msg.view <= view_) return;
  const auto expected_leader = static_cast<std::uint32_t>(msg.view % config_.group_size);
  if (msg.sender != expected_leader) return;
  adopt_new_view(msg.view, msg.prepared);
}

void PbftReplica::adopt_new_view(std::uint64_t new_view,
                                 const std::vector<PbftMessage::PreparedEntry>& prepared) {
  view_ = new_view;
  view_change_in_progress_ = false;
  // Votes for the adopted view and everything below are settled; keeping
  // them would let stale (or spammed) view-change votes accumulate forever.
  view_change_votes_.erase(view_change_votes_.begin(),
                           view_change_votes_.upper_bound(new_view));
  obs_view_installed(new_view);
  // Reset per-slot voting state for unexecuted slots; re-run consensus on
  // the carried-over prepared entries in the new view.
  std::uint64_t max_seq = next_exec_ - 1;
  for (auto& [seq, s] : slots_) {
    max_seq = std::max(max_seq, seq);
    if (s.executed) continue;
    sim_.cancel(s.timeout);
    obs_slot_reset(s);
    s.prepares.clear();
    s.commits.clear();
    s.prepared = false;
    s.committed = false;
    s.digest.reset();
    s.payload.clear();
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  if (on_view_change_) on_view_change_(new_view);

  if (is_leader()) {
    for (const auto& e : prepared) {
      const auto it = slots_.find(e.sequence);
      if (it != slots_.end() && it->second.executed) continue;
      PbftMessage msg;
      msg.type = PbftMessage::Type::kPrePrepare;
      msg.view = view_;
      msg.sequence = e.sequence;
      msg.sender = config_.replica_index;
      msg.payload = e.payload;
      msg.digest = payload_digest(msg.payload);

      auto& s = slot(e.sequence);
      s.digest = msg.digest;
      s.payload = msg.payload;
      s.prepares.insert(config_.replica_index);
      obs_slot_accepted(e.sequence, s);
      arm_timeout(e.sequence);
      broadcast(msg);
    }
  }
}

// ---- observability hooks ----------------------------------------------
//
// Span model per slot, all on this replica's track:
//   {prefix}           accept -> execute       (the whole slot)
//     {prefix}.prepare accept -> prepared      (pre-prepare implied at start)
//     {prefix}.commit  prepared -> committed
// Phase durations also land in the bft.{prepare,commit,slot}_us histograms
// so runs without tracing still get timing distributions.

void PbftReplica::obs_slot_accepted_impl(std::uint64_t sequence, SlotState& s) {
  s.accepted_at = sim_.now();
  if (!tracing()) return;
  auto& tracer = config_.obs->tracer;
  obs::Attrs attrs = config_.span_attrs;
  attrs.emplace_back("seq", std::to_string(sequence));
  attrs.emplace_back("view", std::to_string(view_));
  // Join key of the traced-event contract (DESIGN.md §9): the payload digest
  // ties this consensus slot to the AGREE / block_commit stage it feeds.
  if (s.digest) attrs.emplace_back("digest", crypto::short_hex(*s.digest, 8));
  // Slots interleave on the replica track, so the slot span is a root and
  // every phase hangs explicitly off its own slot.
  s.span = tracer.begin_under({}, config_.span_prefix, config_.span_track, attrs);
  tracer.end(
      tracer.begin_under(s.span, config_.span_prefix + ".pre_prepare", config_.span_track));
  s.phase_span =
      tracer.begin_under(s.span, config_.span_prefix + ".prepare", config_.span_track);
}

void PbftReplica::obs_slot_prepared_impl(SlotState& s) {
  s.prepared_at = sim_.now();
  if (prepare_us_ != nullptr) {
    prepare_us_->record(static_cast<double>((s.prepared_at - s.accepted_at).as_micros()));
  }
  if (!tracing()) return;
  auto& tracer = config_.obs->tracer;
  tracer.end(s.phase_span);
  s.phase_span =
      tracer.begin_under(s.span, config_.span_prefix + ".commit", config_.span_track);
}

void PbftReplica::obs_slot_committed_impl(SlotState& s) {
  if (commit_us_ != nullptr) {
    commit_us_->record(static_cast<double>((sim_.now() - s.prepared_at).as_micros()));
  }
  if (!tracing()) return;
  config_.obs->tracer.end(s.phase_span);
  s.phase_span = obs::SpanId{};
}

void PbftReplica::obs_slot_executed_impl(std::uint64_t /*sequence*/, SlotState& s) {
  if (slot_us_ != nullptr) {
    slot_us_->record(static_cast<double>((sim_.now() - s.accepted_at).as_micros()));
  }
  if (!tracing()) return;
  config_.obs->tracer.end(s.span);
  s.span = obs::SpanId{};
}

void PbftReplica::obs_slot_reset_impl(SlotState& s) {
  if (!tracing()) {
    s.span = obs::SpanId{};
    s.phase_span = obs::SpanId{};
    return;
  }
  auto& tracer = config_.obs->tracer;
  tracer.end(s.phase_span);
  tracer.end(s.span);
  s.phase_span = obs::SpanId{};
  s.span = obs::SpanId{};
}

void PbftReplica::obs_view_installed_impl(std::uint64_t new_view) {
  if (view_changes_metric_ != nullptr) view_changes_metric_->inc();
  if (tracing()) {
    config_.obs->tracer.instant(config_.span_prefix + ".view_change", config_.span_track,
                                {{"view", std::to_string(new_view)}});
  }
}

}  // namespace curb::bft
