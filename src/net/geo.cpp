#include "curb/net/geo.hpp"

#include <cmath>
#include <numbers>

namespace curb::net {

double great_circle_km(GeoPoint a, GeoPoint b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace curb::net
