#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace curb::net {

/// Refcounted handle to an immutable message payload.
///
/// The bus wraps each sent payload exactly once; every scheduled delivery —
/// the original, fault-injected duplicates, and each multicast destination —
/// then shares the same buffer through cheap handle copies (one refcount
/// bump, no allocation). Payloads small enough to be register-passed
/// (trivially copyable, <= 2 pointers) skip the shared buffer entirely and
/// live inline in the handle.
///
/// Mutation is copy-on-write: `mutate` (used only when a corrupt fault
/// actually rewrites bytes) clones the buffer and rebinds *this* handle,
/// leaving every other outstanding handle on the pristine bytes.
template <typename Payload>
class PayloadRef {
 public:
  static constexpr bool kInline =
      std::is_trivially_copyable_v<Payload> && sizeof(Payload) <= 2 * sizeof(void*);

  explicit PayloadRef(Payload value) : value_{wrap(std::move(value))} {}

  [[nodiscard]] const Payload& get() const {
    if constexpr (kInline) {
      return value_;
    } else {
      return *value_;
    }
  }

  template <typename Fn>
  void mutate(Fn&& fn) {
    if constexpr (kInline) {
      fn(value_);
    } else {
      auto clone = std::make_shared<Payload>(*value_);
      fn(*clone);
      value_ = std::move(clone);
    }
  }

 private:
  using Storage =
      std::conditional_t<kInline, Payload, std::shared_ptr<const Payload>>;

  static Storage wrap(Payload&& value) {
    if constexpr (kInline) {
      return std::move(value);
    } else {
      return std::make_shared<const Payload>(std::move(value));
    }
  }

  Storage value_;
};

}  // namespace curb::net
