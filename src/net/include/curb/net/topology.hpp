#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "curb/net/geo.hpp"

namespace curb::net {

/// Opaque node identifier within a Topology (dense, 0-based).
struct NodeId {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const NodeId&) const = default;
};

enum class NodeKind : std::uint8_t { kController, kSwitch, kHost };

[[nodiscard]] constexpr std::string_view to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kController: return "controller";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kHost: return "host";
  }
  return "?";
}

/// Undirected weighted graph of network sites with all-pairs shortest paths.
/// Replaces the paper's NetworkX usage: shortest path lengths feed the link
/// delay model, and shortest paths themselves become the flow rules that
/// controllers push to switches.
class Topology {
 public:
  struct Node {
    std::string name;
    NodeKind kind;
    GeoPoint location;
  };
  struct Link {
    NodeId a;
    NodeId b;
    double length_km;
  };

  NodeId add_node(std::string name, NodeKind kind, GeoPoint location);
  /// Add an undirected link; length defaults to the great-circle distance.
  void add_link(NodeId a, NodeId b, std::optional<double> length_km = std::nullopt);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] std::optional<NodeId> find_by_name(std::string_view name) const;
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;
  [[nodiscard]] bool connected() const;

  /// Shortest-path distance in km over the link graph (Dijkstra, cached).
  /// Returns infinity when no path exists.
  [[nodiscard]] double distance_km(NodeId from, NodeId to) const;
  /// The node sequence of a shortest path (inclusive of endpoints).
  /// Empty when unreachable; {from} when from == to.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;

  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

 private:
  struct Adjacent {
    std::uint32_t node;
    double length_km;
  };
  void ensure_paths_from(std::uint32_t src) const;
  void check(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacent>> adjacency_;
  // Lazy Dijkstra cache, invalidated on mutation.
  mutable std::vector<std::vector<double>> dist_;
  mutable std::vector<std::vector<std::uint32_t>> prev_;
  mutable std::vector<bool> dist_valid_;
};

/// The Internet2-style evaluation topology from the paper's Fig. 3:
/// 16 controller sites and 34 switch sites at real Internet2 member cities,
/// links following the fibre footprint. Deterministic.
[[nodiscard]] Topology internet2();

/// Names of the controller sites in `internet2()`, in id order.
[[nodiscard]] const std::vector<std::string>& internet2_controller_cities();
/// Names of the switch sites in `internet2()`, in id order.
[[nodiscard]] const std::vector<std::string>& internet2_switch_cities();

/// Synthetic geographic topology for scalability sweeps beyond Internet2's
/// size: nodes uniformly placed on a grid-ish region, connected by a random
/// geometric graph plus a spanning backbone so the result is connected.
[[nodiscard]] Topology random_geo_topology(std::size_t controllers, std::size_t switches,
                                           std::uint64_t seed);

}  // namespace curb::net
