#pragma once

#include <cstddef>

#include "curb/sim/time.hpp"

namespace curb::net {

/// Physical delay model from the paper's evaluation setup:
/// signal velocity in fibre 2*10^8 m/s, link bandwidth 100 Mbps.
/// delay = propagation (distance / velocity) + transmission (bytes / bandwidth).
struct LinkModel {
  double velocity_m_per_s = 2.0e8;
  double bandwidth_bps = 100.0e6;
  /// Fixed per-hop processing overhead (NIC + kernel), applied once per
  /// message. Zero by default; benches set small values for realism.
  sim::SimTime per_message_overhead = sim::SimTime::zero();

  [[nodiscard]] sim::SimTime propagation_delay(double distance_km) const {
    return sim::SimTime::from_seconds_f(distance_km * 1000.0 / velocity_m_per_s);
  }

  [[nodiscard]] sim::SimTime transmission_delay(std::size_t bytes) const {
    return sim::SimTime::from_seconds_f(static_cast<double>(bytes) * 8.0 / bandwidth_bps);
  }

  [[nodiscard]] sim::SimTime delay(double distance_km, std::size_t bytes) const {
    return propagation_delay(distance_km) + transmission_delay(bytes) + per_message_overhead;
  }
};

}  // namespace curb::net
