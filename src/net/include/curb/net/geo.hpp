#pragma once

namespace curb::net {

/// Geographic coordinate in degrees. Link lengths in the Internet2
/// reproduction are derived from great-circle distances between member
/// cities, exactly as the paper derives delays from geographic distance.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

/// Great-circle distance (haversine) in kilometres; Earth radius 6371 km.
[[nodiscard]] double great_circle_km(GeoPoint a, GeoPoint b);

}  // namespace curb::net
