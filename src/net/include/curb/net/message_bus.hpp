#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "curb/net/link_model.hpp"
#include "curb/net/shared_payload.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/prof/profiler.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::net {

/// What a fault hook did to one message. Payload corruption is expressed as
/// a closure rather than in-place mutation: the bus shares one immutable
/// buffer across all scheduled deliveries and applies `corrupt` through its
/// copy-on-write path only when a fault actually fires.
template <typename Payload>
struct BusFaultAction {
  bool drop = false;
  sim::SimTime extra_delay = sim::SimTime::zero();
  /// Extra deliveries of the same payload, offset from the original
  /// delivery time (message duplication).
  std::vector<sim::SimTime> duplicates;
  /// When set, applied once to a private copy of the payload before any
  /// delivery (original or duplicate) is scheduled.
  std::function<void(Payload&)> corrupt;
};

/// Per-category message accounting. Theorem 1 in the paper bounds the
/// *number* of messages per round; the bus counts every send so benches can
/// measure the bound directly instead of arguing about it. On top of the
/// cumulative counters the stats track the *backlog*: messages scheduled but
/// not yet delivered, per category (count + bytes) and per destination node
/// (pending-inbox depth) — the virtual-time analogue of socket queue depth.
class MessageStats {
 public:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t in_flight_count = 0;
    std::uint64_t in_flight_bytes = 0;
  };

  void record(const std::string& category, std::size_t bytes) {
    auto& entry = by_category_[category];
    ++entry.count;
    entry.bytes += bytes;
    ++total_count_;
    total_bytes_ += bytes;
  }

  /// Register one scheduled delivery headed for node `to`. The returned
  /// Entry* stays valid for the life of the stats object (map nodes are
  /// stable and reset() zeroes in place), so the delivery callback can
  /// balance with end_flight without a map lookup.
  Entry* begin_flight(const std::string& category, std::size_t bytes,
                      std::size_t to) {
    auto& entry = by_category_[category];
    ++entry.in_flight_count;
    entry.in_flight_bytes += bytes;
    if (pending_inbox_.size() <= to) pending_inbox_.resize(to + 1, 0);
    ++pending_inbox_[to];
    ++in_flight_total_;
    return &entry;
  }

  /// Balance a begin_flight at delivery time. Clamped at zero so a reset()
  /// with deliveries still in flight cannot wrap the gauges negative.
  void end_flight(Entry* entry, std::size_t bytes, std::size_t to) {
    if (entry->in_flight_count > 0) --entry->in_flight_count;
    entry->in_flight_bytes -=
        bytes < entry->in_flight_bytes ? bytes : entry->in_flight_bytes;
    if (to < pending_inbox_.size() && pending_inbox_[to] > 0) --pending_inbox_[to];
    if (in_flight_total_ > 0) --in_flight_total_;
  }

  [[nodiscard]] std::uint64_t total_messages() const { return total_count_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t messages(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second.count;
  }
  [[nodiscard]] std::uint64_t bytes(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second.bytes;
  }
  [[nodiscard]] std::uint64_t in_flight_messages(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second.in_flight_count;
  }
  [[nodiscard]] std::uint64_t in_flight_bytes(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second.in_flight_bytes;
  }
  /// Scheduled-but-undelivered messages across all categories.
  [[nodiscard]] std::uint64_t in_flight_total() const { return in_flight_total_; }
  /// Scheduled-but-undelivered messages headed for one node.
  [[nodiscard]] std::uint64_t pending_inbox(std::size_t node) const {
    return node < pending_inbox_.size() ? pending_inbox_[node] : 0;
  }
  [[nodiscard]] std::size_t pending_inbox_nodes() const {
    return pending_inbox_.size();
  }
  [[nodiscard]] std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
  snapshot() const {
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> out;
    for (const auto& [k, v] : by_category_) out[k] = {v.count, v.bytes};
    return out;
  }
  [[nodiscard]] const std::map<std::string, Entry>& categories() const {
    return by_category_;
  }
  /// Zero every counter *in place* — category entries are kept (not erased)
  /// so Entry pointers handed out by begin_flight stay valid across a reset.
  void reset() {
    for (auto& [category, entry] : by_category_) entry = Entry{};
    for (auto& depth : pending_inbox_) depth = 0;
    total_count_ = 0;
    total_bytes_ = 0;
    in_flight_total_ = 0;
  }

 private:
  std::map<std::string, Entry> by_category_;
  std::vector<std::uint64_t> pending_inbox_;  // by destination node index
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t in_flight_total_ = 0;
};

/// Simulated transport connecting topology nodes, replacing the paper's
/// gRPC layer. Delivery delay = LinkModel delay over the shortest-path
/// distance between the endpoints. Payloads are caller-defined; the bus is
/// agnostic and only needs a byte size for the transmission-delay term.
///
/// Fault hooks:
///  - a drop filter can silently discard messages (silent-byzantine links),
///  - per-node extra delay models "lazy" nodes that respond slowly
///    (paper's experiment 3).
template <typename Payload>
class MessageBus {
 public:
  using Handler = std::function<void(NodeId from, const Payload&)>;
  /// One accounted send as the link-telemetry layer sees it. The observer
  /// fires exactly once per send_shared call — i.e. once per multicast
  /// destination — mirroring MessageStats::record, so per-link message
  /// counts sum exactly to the bus totals (conservation invariant).
  /// `duplicates` counts extra fault-injected wire deliveries of this
  /// message (MessageStats never re-records those); `dropped` marks sends
  /// that were accounted but never scheduled (partition / interceptor /
  /// fault drop).
  struct SendRecord {
    NodeId from;
    NodeId to;
    std::size_t bytes = 0;
    std::size_t duplicates = 0;
    bool dropped = false;
  };
  using SendObserver =
      std::function<void(const SendRecord&, const Payload&, const std::string& category)>;
  /// Returns std::nullopt to drop, or an extra delay to add.
  using Interceptor =
      std::function<std::optional<sim::SimTime>(NodeId from, NodeId to, const Payload&)>;
  /// Fault-injection hook (curb::fault): decides drop / extra delay /
  /// duplication and may request payload corruption via the returned
  /// closure. Runs after the interceptor, on every message that survived it.
  using FaultHook = std::function<BusFaultAction<Payload>(
      NodeId from, NodeId to, const Payload& payload, const std::string& category)>;

  MessageBus(sim::Simulator& sim, const Topology& topo, LinkModel model = {})
      : sim_{sim}, topo_{topo}, model_{model}, handlers_(topo.node_count()) {}

  /// Register the receive handler of a node (one per node). The handler
  /// table tracks the topology, which may gain nodes after construction.
  void attach(NodeId node, Handler handler) {
    if (node.value >= topo_.node_count()) throw std::out_of_range{"MessageBus: bad node"};
    if (handlers_.size() < topo_.node_count()) handlers_.resize(topo_.node_count());
    handlers_[node.value] = std::move(handler);
  }

  void set_interceptor(Interceptor interceptor) { interceptor_ = std::move(interceptor); }

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Attach the per-send observer (nullptr disables). Pure accounting only:
  /// the observer must not send, schedule, or otherwise perturb the
  /// simulation, so same-seed runs stay byte-identical with it installed.
  void set_send_observer(SendObserver observer) { send_observer_ = std::move(observer); }

  /// Attach observability (nullptr disables). Per-category delivery-delay
  /// histograms, message/byte counters, and drop counters land in the
  /// registry; instrument handles are cached so the hot path resolves each
  /// category's series once.
  void set_observatory(obs::Observatory* observatory) {
    obs_ = observatory;
    instruments_.clear();
  }

  /// Send a payload; `category` feeds message accounting, `bytes` the
  /// transmission-delay term. Self-sends are delivered with only the
  /// overhead delay (no propagation). The payload is moved into one shared
  /// immutable buffer; the scheduled delivery (and any fault-injected
  /// duplicates) hold refcounted handles, never copies.
  void send(NodeId from, NodeId to, Payload payload, std::size_t bytes,
            const std::string& category) {
    send_shared(from, to, PayloadRef<Payload>{std::move(payload)}, bytes, category);
  }

  /// Broadcast to a recipient list (skipping `from` itself). The payload is
  /// buffered once and shared across every destination's delivery.
  void multicast(NodeId from, const std::vector<NodeId>& to, Payload payload,
                 std::size_t bytes, const std::string& category) {
    PayloadRef<Payload> shared{std::move(payload)};
    for (const NodeId dest : to) {
      if (dest == from) continue;
      send_shared(from, dest, shared, bytes, category);
    }
  }

  [[nodiscard]] const MessageStats& stats() const { return stats_; }
  [[nodiscard]] MessageStats& stats() { return stats_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const LinkModel& link_model() const { return model_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct CategoryInstruments {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* dropped_partition = nullptr;
    obs::Counter* dropped_interceptor = nullptr;
    obs::Counter* dropped_fault = nullptr;
    obs::Histogram* delay_us = nullptr;
  };

  void send_shared(NodeId from, NodeId to, PayloadRef<Payload> payload,
                   std::size_t bytes, const std::string& category) {
    const prof::Scope scope{"bus.send"};
    stats_.record(category, bytes);
    sim::SimTime delay = model_.per_message_overhead + model_.transmission_delay(bytes);
    if (from != to) {
      const double km = topo_.distance_km(from, to);
      if (km == Topology::kUnreachable) {
        if (obs_ != nullptr) instruments(category).dropped_partition->inc();
        observe(from, to, bytes, 0, true, payload, category);
        return;  // partitioned: message lost
      }
      delay += model_.propagation_delay(km);
    }
    if (interceptor_) {
      const auto extra = interceptor_(from, to, payload.get());
      if (!extra) {
        if (obs_ != nullptr) instruments(category).dropped_interceptor->inc();
        observe(from, to, bytes, 0, true, payload, category);
        return;  // dropped
      }
      delay += *extra;
    }
    std::size_t duplicates = 0;
    if (fault_hook_) {
      BusFaultAction<Payload> action = fault_hook_(from, to, payload.get(), category);
      if (action.drop) {
        if (obs_ != nullptr) instruments(category).dropped_fault->inc();
        observe(from, to, bytes, 0, true, payload, category);
        return;  // dropped by fault injection
      }
      delay += action.extra_delay;
      // Copy-on-write: corruption rebinds this handle to a mutated clone,
      // so a multicast's other destinations keep the pristine bytes.
      if (action.corrupt) payload.mutate(action.corrupt);
      duplicates = action.duplicates.size();
      for (const sim::SimTime offset : action.duplicates) {
        MessageStats::Entry* flight = stats_.begin_flight(category, bytes, to.value);
        sim_.schedule(delay + offset, [this, from, to, payload, flight, bytes] {
          stats_.end_flight(flight, bytes, to.value);
          deliver(from, to, payload.get());
        });
      }
    }
    observe(from, to, bytes, duplicates, false, payload, category);
    if (obs_ != nullptr) {
      const CategoryInstruments& series = instruments(category);
      series.messages->inc();
      series.bytes->inc(bytes);
      series.delay_us->record(static_cast<double>(delay.as_micros()));
    }
    MessageStats::Entry* flight = stats_.begin_flight(category, bytes, to.value);
    sim_.schedule(delay, [this, from, to, payload = std::move(payload), flight, bytes] {
      stats_.end_flight(flight, bytes, to.value);
      deliver(from, to, payload.get());
    });
  }

  void observe(NodeId from, NodeId to, std::size_t bytes, std::size_t duplicates,
               bool dropped, const PayloadRef<Payload>& payload,
               const std::string& category) {
    if (!send_observer_) return;
    send_observer_(SendRecord{from, to, bytes, duplicates, dropped}, payload.get(),
                   category);
  }

  void deliver(NodeId from, NodeId to, const Payload& payload) {
    const prof::Scope scope{"bus.deliver"};
    if (to.value >= handlers_.size()) return;  // no handler ever attached
    if (auto& handler = handlers_[to.value]) handler(from, payload);
  }

  const CategoryInstruments& instruments(const std::string& category) {
    const auto it = instruments_.find(category);
    if (it != instruments_.end()) return it->second;
    obs::MetricsRegistry& registry = obs_->metrics;
    CategoryInstruments series;
    series.messages = &registry.counter("net.messages", {{"category", category}});
    series.bytes = &registry.counter("net.bytes", {{"category", category}});
    series.dropped_partition = &registry.counter(
        "net.dropped", {{"category", category}, {"reason", "partition"}});
    series.dropped_interceptor = &registry.counter(
        "net.dropped", {{"category", category}, {"reason", "interceptor"}});
    series.dropped_fault = &registry.counter(
        "net.dropped", {{"category", category}, {"reason", "fault"}});
    series.delay_us = &registry.histogram("net.delay_us", {{"category", category}});
    return instruments_.emplace(category, series).first->second;
  }

  sim::Simulator& sim_;
  const Topology& topo_;
  LinkModel model_;
  std::vector<Handler> handlers_;
  Interceptor interceptor_;
  FaultHook fault_hook_;
  SendObserver send_observer_;
  MessageStats stats_;
  obs::Observatory* obs_ = nullptr;
  std::map<std::string, CategoryInstruments> instruments_;
};

}  // namespace curb::net
