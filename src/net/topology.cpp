#include "curb/net/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace curb::net {

NodeId Topology::add_node(std::string name, NodeKind kind, GeoPoint location) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{std::move(name), kind, location});
  adjacency_.emplace_back();
  dist_.clear();
  dist_valid_.clear();
  prev_.clear();
  return id;
}

void Topology::add_link(NodeId a, NodeId b, std::optional<double> length_km) {
  check(a);
  check(b);
  if (a == b) throw std::invalid_argument{"Topology: self-link"};
  const double len =
      length_km.value_or(great_circle_km(nodes_[a.value].location, nodes_[b.value].location));
  if (len < 0) throw std::invalid_argument{"Topology: negative link length"};
  links_.push_back(Link{a, b, len});
  adjacency_[a.value].push_back({b.value, len});
  adjacency_[b.value].push_back({a.value, len});
  dist_.clear();
  dist_valid_.clear();
  prev_.clear();
}

const Topology::Node& Topology::node(NodeId id) const {
  check(id);
  return nodes_[id.value];
}

std::optional<NodeId> Topology::find_by_name(std::string_view name) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return NodeId{i};
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.push_back(NodeId{i});
  }
  return out;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  check(id);
  std::vector<NodeId> out;
  out.reserve(adjacency_[id.value].size());
  for (const auto& adj : adjacency_[id.value]) out.push_back(NodeId{adj.node});
  return out;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.front();
    frontier.pop();
    for (const auto& adj : adjacency_[cur]) {
      if (!seen[adj.node]) {
        seen[adj.node] = true;
        ++visited;
        frontier.push(adj.node);
      }
    }
  }
  return visited == nodes_.size();
}

void Topology::ensure_paths_from(std::uint32_t src) const {
  if (dist_valid_.size() != nodes_.size()) {
    dist_valid_.assign(nodes_.size(), false);
    dist_.assign(nodes_.size(), {});
    prev_.assign(nodes_.size(), {});
  }
  if (dist_valid_[src]) return;

  auto& dist = dist_[src];
  auto& prev = prev_[src];
  dist.assign(nodes_.size(), kUnreachable);
  prev.assign(nodes_.size(), std::numeric_limits<std::uint32_t>::max());
  dist[src] = 0.0;

  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const auto& adj : adjacency_[u]) {
      const double nd = d + adj.length_km;
      if (nd < dist[adj.node]) {
        dist[adj.node] = nd;
        prev[adj.node] = u;
        heap.push({nd, adj.node});
      }
    }
  }
  dist_valid_[src] = true;
}

double Topology::distance_km(NodeId from, NodeId to) const {
  check(from);
  check(to);
  ensure_paths_from(from.value);
  return dist_[from.value][to.value];
}

std::vector<NodeId> Topology::shortest_path(NodeId from, NodeId to) const {
  check(from);
  check(to);
  ensure_paths_from(from.value);
  if (dist_[from.value][to.value] == kUnreachable) return {};
  std::vector<NodeId> path;
  std::uint32_t cur = to.value;
  while (cur != from.value) {
    path.push_back(NodeId{cur});
    cur = prev_[from.value][cur];
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

void Topology::check(NodeId id) const {
  if (id.value >= nodes_.size()) throw std::out_of_range{"Topology: bad NodeId"};
}

}  // namespace curb::net
