#include <algorithm>
#include <stdexcept>
#include <utility>

#include "curb/net/topology.hpp"
#include "curb/sim/rng.hpp"

namespace curb::net {

namespace {

struct City {
  const char* name;
  double lat;
  double lon;
};

// 16 controller sites: the Internet2 backbone hub cities.
constexpr City kControllerCities[] = {
    {"Seattle", 47.61, -122.33},      {"Sunnyvale", 37.37, -122.04},
    {"LosAngeles", 34.05, -118.24},   {"SaltLakeCity", 40.76, -111.89},
    {"Denver", 39.74, -104.99},       {"KansasCity", 39.10, -94.58},
    {"Dallas", 32.78, -96.80},        {"Houston", 29.76, -95.37},
    {"Chicago", 41.88, -87.63},       {"Indianapolis", 39.77, -86.16},
    {"Atlanta", 33.75, -84.39},       {"WashingtonDC", 38.91, -77.04},
    {"NewYork", 40.71, -74.01},       {"Boston", 42.36, -71.06},
    {"Nashville", 36.16, -86.78},     {"Minneapolis", 44.98, -93.27},
};

// 34 switch sites: regional member cities hanging off the backbone.
constexpr City kSwitchCities[] = {
    {"Portland", 45.52, -122.68},     {"Sacramento", 38.58, -121.49},
    {"SanDiego", 32.72, -117.16},     {"LasVegas", 36.17, -115.14},
    {"Phoenix", 33.45, -112.07},      {"Tucson", 32.22, -110.97},
    {"Albuquerque", 35.08, -106.65},  {"ElPaso", 31.76, -106.49},
    {"Boise", 43.62, -116.21},        {"Missoula", 46.87, -113.99},
    {"Billings", 45.78, -108.50},     {"Bismarck", 46.81, -100.78},
    {"Fargo", 46.88, -96.79},         {"SiouxFalls", 43.55, -96.73},
    {"Omaha", 41.26, -95.93},         {"Tulsa", 36.15, -95.99},
    {"OklahomaCity", 35.47, -97.52},  {"LittleRock", 34.75, -92.29},
    {"Memphis", 35.15, -90.05},       {"StLouis", 38.63, -90.20},
    {"Louisville", 38.25, -85.76},    {"Cincinnati", 39.10, -84.51},
    {"Columbus", 39.96, -83.00},      {"Cleveland", 41.50, -81.69},
    {"Pittsburgh", 40.44, -80.00},    {"Buffalo", 42.89, -78.88},
    {"Syracuse", 43.05, -76.15},      {"Albany", 42.65, -73.75},
    {"Philadelphia", 39.95, -75.17},  {"Baltimore", 39.29, -76.61},
    {"Raleigh", 35.78, -78.64},       {"Charlotte", 35.23, -80.84},
    {"Jacksonville", 30.33, -81.66},  {"Miami", 25.76, -80.19},
};

// Links following the Internet2 fibre footprint (by city name).
constexpr std::pair<const char*, const char*> kLinks[] = {
    // Pacific / Northwest
    {"Seattle", "Portland"},       {"Portland", "Sacramento"},
    {"Sacramento", "Sunnyvale"},   {"Sunnyvale", "LosAngeles"},
    {"LosAngeles", "SanDiego"},    {"LosAngeles", "LasVegas"},
    {"LasVegas", "SaltLakeCity"},  {"Sacramento", "SaltLakeCity"},
    {"Seattle", "Boise"},          {"Boise", "SaltLakeCity"},
    {"Seattle", "Missoula"},       {"Missoula", "Billings"},
    // Southwest
    {"SanDiego", "Phoenix"},       {"Phoenix", "Tucson"},
    {"Tucson", "ElPaso"},          {"Phoenix", "Albuquerque"},
    {"Albuquerque", "ElPaso"},     {"Albuquerque", "Denver"},
    {"ElPaso", "Houston"},
    // Mountain / Plains
    {"Billings", "Bismarck"},      {"Bismarck", "Fargo"},
    {"Fargo", "Minneapolis"},      {"Billings", "Denver"},
    {"SaltLakeCity", "Denver"},    {"Denver", "KansasCity"},
    {"KansasCity", "Omaha"},       {"Omaha", "SiouxFalls"},
    {"SiouxFalls", "Minneapolis"}, {"Minneapolis", "Chicago"},
    {"KansasCity", "Chicago"},     {"KansasCity", "Tulsa"},
    {"Tulsa", "OklahomaCity"},     {"OklahomaCity", "Dallas"},
    {"Dallas", "Houston"},         {"Dallas", "LittleRock"},
    {"LittleRock", "Memphis"},     {"KansasCity", "StLouis"},
    // South / East
    {"Houston", "Atlanta"},        {"Memphis", "Nashville"},
    {"StLouis", "Memphis"},        {"StLouis", "Indianapolis"},
    {"Chicago", "Indianapolis"},   {"Indianapolis", "Cincinnati"},
    {"Indianapolis", "Louisville"},{"Louisville", "Nashville"},
    {"Nashville", "Atlanta"},      {"Cincinnati", "Columbus"},
    {"Columbus", "Cleveland"},     {"Columbus", "Pittsburgh"},
    {"Cleveland", "Chicago"},      {"Cleveland", "Buffalo"},
    {"Buffalo", "Syracuse"},       {"Syracuse", "Albany"},
    {"Albany", "Boston"},          {"Albany", "NewYork"},
    {"Pittsburgh", "WashingtonDC"},{"Philadelphia", "NewYork"},
    {"Philadelphia", "Baltimore"}, {"Baltimore", "WashingtonDC"},
    {"Pittsburgh", "Philadelphia"},{"WashingtonDC", "Raleigh"},
    {"Raleigh", "Charlotte"},      {"Charlotte", "Atlanta"},
    {"Atlanta", "Jacksonville"},   {"Jacksonville", "Miami"},
    {"NewYork", "Boston"},
};

}  // namespace

Topology internet2() {
  Topology topo;
  for (const City& c : kControllerCities) {
    topo.add_node(c.name, NodeKind::kController, GeoPoint{c.lat, c.lon});
  }
  for (const City& c : kSwitchCities) {
    topo.add_node(c.name, NodeKind::kSwitch, GeoPoint{c.lat, c.lon});
  }
  for (const auto& [a, b] : kLinks) {
    const auto ia = topo.find_by_name(a);
    const auto ib = topo.find_by_name(b);
    if (!ia || !ib) throw std::logic_error{"internet2: unknown city in link table"};
    topo.add_link(*ia, *ib);
  }
  return topo;
}

const std::vector<std::string>& internet2_controller_cities() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const City& c : kControllerCities) out.emplace_back(c.name);
    return out;
  }();
  return names;
}

const std::vector<std::string>& internet2_switch_cities() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const City& c : kSwitchCities) out.emplace_back(c.name);
    return out;
  }();
  return names;
}

Topology random_geo_topology(std::size_t controllers, std::size_t switches,
                             std::uint64_t seed) {
  sim::Rng rng{seed};
  Topology topo;
  const std::size_t total = controllers + switches;
  for (std::size_t i = 0; i < total; ++i) {
    const NodeKind kind = i < controllers ? NodeKind::kController : NodeKind::kSwitch;
    const std::string name =
        (kind == NodeKind::kController ? "ctl-" : "sw-") +
        std::to_string(kind == NodeKind::kController ? i : i - controllers);
    // Continental-US-like bounding box.
    const GeoPoint loc{rng.next_double_in(25.0, 48.0), rng.next_double_in(-124.0, -67.0)};
    topo.add_node(name, kind, loc);
  }
  if (total < 2) return topo;

  // Backbone: chain nodes sorted by longitude so the graph is connected.
  std::vector<std::uint32_t> order(total);
  for (std::uint32_t i = 0; i < total; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return topo.node(NodeId{a}).location.lon_deg < topo.node(NodeId{b}).location.lon_deg;
  });
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    topo.add_link(NodeId{order[i]}, NodeId{order[i + 1]});
  }

  // Enrichment: each node links to its geographically nearest non-neighbor.
  for (std::uint32_t i = 0; i < total; ++i) {
    double best = Topology::kUnreachable;
    std::uint32_t best_j = i;
    const auto nbrs = topo.neighbors(NodeId{i});
    for (std::uint32_t j = 0; j < total; ++j) {
      if (j == i) continue;
      if (std::find(nbrs.begin(), nbrs.end(), NodeId{j}) != nbrs.end()) continue;
      const double d =
          great_circle_km(topo.node(NodeId{i}).location, topo.node(NodeId{j}).location);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (best_j != i) topo.add_link(NodeId{i}, NodeId{best_j});
  }
  return topo;
}

}  // namespace curb::net
