#include "curb/sdn/flow.hpp"

#include <algorithm>

#include "curb/chain/serial.hpp"

namespace curb::sdn {

std::vector<std::uint8_t> FlowEntry::serialize() const {
  chain::ByteWriter w;
  w.u32(match.dst_host);
  w.u32(match.src_host);
  w.u8(static_cast<std::uint8_t>(action.kind));
  w.u32(action.out_port);
  w.u16(priority);
  w.u8(hard_expiry.has_value() ? 1 : 0);
  if (hard_expiry) w.u64(static_cast<std::uint64_t>(hard_expiry->as_micros()));
  return w.take();
}

FlowEntry FlowEntry::deserialize(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  FlowEntry e;
  e.match.dst_host = r.u32();
  e.match.src_host = r.u32();
  e.action.kind = static_cast<FlowAction::Kind>(r.u8());
  e.action.out_port = r.u32();
  e.priority = r.u16();
  if (r.u8() != 0) {
    e.hard_expiry = sim::SimTime::micros(static_cast<std::int64_t>(r.u64()));
  }
  return e;
}

std::vector<std::uint8_t> FlowEntry::serialize_list(const std::vector<FlowEntry>& entries) {
  chain::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const FlowEntry& e : entries) w.bytes(e.serialize());
  return w.take();
}

std::vector<FlowEntry> FlowEntry::deserialize_list(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4) {
    throw std::invalid_argument{"flow entry list count too large"};
  }
  std::vector<FlowEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto entry_bytes = r.bytes();
    out.push_back(FlowEntry::deserialize(entry_bytes));
  }
  return out;
}

void FlowTable::install(FlowEntry entry) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.match == entry.match && e.priority == entry.priority;
  });
  if (it != entries_.end()) {
    *it = std::move(entry);
    return;
  }
  // Insert keeping descending priority; stable among equal priorities so
  // earlier installs win ties (OpenFlow leaves ties undefined; we pin them
  // for determinism).
  const auto pos = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.priority < entry.priority;
  });
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowTable::remove(const FlowMatch& match) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& e) { return e.match == match; });
  return before - entries_.size();
}

FlowEntry* FlowTable::lookup(const Packet& packet, sim::SimTime now) {
  for (FlowEntry& e : entries_) {
    if (e.hard_expiry && *e.hard_expiry <= now) continue;
    if (e.match.matches(packet)) {
      ++e.packet_count;
      e.byte_count += packet.size_bytes;
      return &e;
    }
  }
  return nullptr;
}

const FlowEntry* FlowTable::peek(const Packet& packet, sim::SimTime now) const {
  for (const FlowEntry& e : entries_) {
    if (e.hard_expiry && *e.hard_expiry <= now) continue;
    if (e.match.matches(packet)) return &e;
  }
  return nullptr;
}

std::size_t FlowTable::expire(sim::SimTime now) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return e.hard_expiry && *e.hard_expiry <= now; });
  return before - entries_.size();
}

}  // namespace curb::sdn
