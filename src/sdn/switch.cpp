#include "curb/sdn/switch.hpp"

namespace curb::sdn {

Switch::Switch(Config config, sim::Simulator& sim, PacketInFn packet_in, ForwardFn forward,
               DeliverFn deliver)
    : config_{config},
      sim_{sim},
      packet_in_{std::move(packet_in)},
      forward_{std::move(forward)},
      deliver_{std::move(deliver)} {}

void Switch::receive(const Packet& packet) {
  ++stats_.received;
  process(packet, /*allow_punt=*/true);
}

void Switch::process(const Packet& packet, bool allow_punt) {
  FlowEntry* entry = table_.lookup(packet, sim_.now());
  if (entry == nullptr || entry->action.kind == FlowAction::Kind::kToController) {
    if (!allow_punt) {
      ++stats_.dropped;
      return;
    }
    ++stats_.table_misses;
    const std::uint64_t buffer_id = next_buffer_id_++;
    buffer_.emplace(buffer_id, packet);
    sim_.schedule(config_.buffer_expiry, [this, buffer_id] {
      if (buffer_.erase(buffer_id) > 0) ++stats_.buffer_expired;
    });
    packet_in_(packet, buffer_id);
    return;
  }
  switch (entry->action.kind) {
    case FlowAction::Kind::kForward:
      ++stats_.forwarded;
      forward_(packet, entry->action.out_port);
      break;
    case FlowAction::Kind::kDeliver:
      ++stats_.delivered;
      deliver_(packet);
      break;
    case FlowAction::Kind::kDrop:
      ++stats_.dropped;
      break;
    case FlowAction::Kind::kToController:
      break;  // handled above
  }
}

void Switch::install(const std::vector<FlowEntry>& entries) {
  for (const FlowEntry& e : entries) table_.install(e);
}

void Switch::packet_out(std::uint64_t buffer_id) {
  const auto it = buffer_.find(buffer_id);
  if (it == buffer_.end()) return;  // expired or unknown
  const Packet packet = it->second;
  buffer_.erase(it);
  // Re-process without punting again: if the rule still misses, drop.
  process(packet, /*allow_punt=*/false);
}

}  // namespace curb::sdn
