#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "curb/sim/time.hpp"

namespace curb::sdn {

/// A data-plane packet. Routing in the reproduction is destination-based
/// (the paper computes shortest paths with NetworkX and installs them as
/// flow rules), so the match key is the destination host.
struct Packet {
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  std::uint64_t id = 0;
  std::uint32_t size_bytes = 1500;

  bool operator==(const Packet&) const = default;
};

/// Match criteria for a flow entry. kAny matches every packet (table-miss
/// entries use the lowest priority with a wildcard match). `src_host` is
/// declared after `dst_host` so the common destination-based rule can be
/// brace-initialised as FlowMatch{dst}; source matching exists for policy
/// (drop) rules that must hit one host pair only.
struct FlowMatch {
  static constexpr std::uint32_t kAny = 0xffffffff;
  std::uint32_t dst_host = kAny;
  std::uint32_t src_host = kAny;

  [[nodiscard]] bool matches(const Packet& p) const {
    return (dst_host == kAny || dst_host == p.dst_host) &&
           (src_host == kAny || src_host == p.src_host);
  }
  bool operator==(const FlowMatch&) const = default;
};

/// Forwarding action: emit on a port (ports map to adjacent nodes at the
/// switch), deliver locally (the destination host hangs off this switch),
/// or punt to the controller (table-miss behaviour).
struct FlowAction {
  enum class Kind : std::uint8_t { kForward, kDeliver, kToController, kDrop };
  Kind kind = Kind::kToController;
  std::uint32_t out_port = 0;

  bool operator==(const FlowAction&) const = default;
};

/// One flow rule with OpenFlow-style priority, counters, and hard timeout.
struct FlowEntry {
  FlowMatch match;
  FlowAction action;
  std::uint16_t priority = 0;
  /// Absolute expiry (virtual time); nullopt = permanent.
  std::optional<sim::SimTime> hard_expiry;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;

  /// Serialized config payload for transactions / REPLY messages.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static FlowEntry deserialize(std::span<const std::uint8_t> bytes);
  [[nodiscard]] static std::vector<std::uint8_t> serialize_list(
      const std::vector<FlowEntry>& entries);
  [[nodiscard]] static std::vector<FlowEntry> deserialize_list(
      std::span<const std::uint8_t> bytes);

  /// Equality of the rule itself (counters excluded).
  [[nodiscard]] bool same_rule(const FlowEntry& other) const {
    return match == other.match && action == other.action && priority == other.priority;
  }
};

/// Priority-ordered flow table with counters and expiry.
class FlowTable {
 public:
  /// Install or replace (same match+priority replaces; counters reset).
  void install(FlowEntry entry);
  /// Remove entries matching `match` at any priority. Returns count removed.
  std::size_t remove(const FlowMatch& match);
  /// Highest-priority live entry matching the packet; bumps counters.
  [[nodiscard]] FlowEntry* lookup(const Packet& packet, sim::SimTime now);
  /// Match without mutating counters (inspection).
  [[nodiscard]] const FlowEntry* peek(const Packet& packet, sim::SimTime now) const;
  /// Drop expired entries; returns count evicted.
  std::size_t expire(sim::SimTime now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
};

}  // namespace curb::sdn
