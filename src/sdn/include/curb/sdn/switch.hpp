#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "curb/sdn/flow.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::sdn {

/// Data-plane switch: priority flow table, table-miss punting with packet
/// buffering (OpenFlow buffer_id semantics), and FLOW_MOD installation.
/// Matches the paper's Open vSwitch role: a packet that misses the table is
/// buffered and triggers PACKET_IN; the eventual PACKET_OUT(+FLOW_MOD)
/// releases the buffered packet through the new rule.
class Switch {
 public:
  struct Config {
    std::uint32_t switch_id = 0;
    /// Buffered table-miss packets expire after this long (paper: buffered
    /// packets "expire after a period of time").
    sim::SimTime buffer_expiry = sim::SimTime::seconds(2);
  };

  /// Table miss: `buffer_id` references the buffered packet.
  using PacketInFn = std::function<void(const Packet&, std::uint64_t buffer_id)>;
  /// Forward on an output port (ports map to adjacent nodes externally).
  using ForwardFn = std::function<void(const Packet&, std::uint32_t out_port)>;
  /// Deliver to a locally attached host.
  using DeliverFn = std::function<void(const Packet&)>;

  Switch(Config config, sim::Simulator& sim, PacketInFn packet_in, ForwardFn forward,
         DeliverFn deliver);

  /// Process an incoming packet: match -> forward/deliver/drop, or buffer
  /// and punt to the control plane on a miss.
  void receive(const Packet& packet);

  /// Install flow entries (a FLOW_MOD batch from an accepted config).
  void install(const std::vector<FlowEntry>& entries);

  /// PACKET_OUT referencing a buffered packet: re-process it through the
  /// (presumably updated) table. Unknown/expired ids are ignored.
  void packet_out(std::uint64_t buffer_id);

  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }
  [[nodiscard]] std::uint32_t id() const { return config_.switch_id; }

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t table_misses = 0;
    std::uint64_t buffer_expired = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t buffered_packets() const { return buffer_.size(); }

 private:
  void process(const Packet& packet, bool allow_punt);

  Config config_;
  sim::Simulator& sim_;
  PacketInFn packet_in_;
  ForwardFn forward_;
  DeliverFn deliver_;
  FlowTable table_;
  std::map<std::uint64_t, Packet> buffer_;
  std::uint64_t next_buffer_id_ = 1;
  Stats stats_;
};

}  // namespace curb::sdn
