#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "curb/sdn/flow.hpp"

namespace curb::sdn {

/// A northbound network policy rule: application services (the paper's
/// upper layer) restrict or permit host-to-host communication. Matching is
/// on (src, dst) with kAny wildcards; higher priority wins, ties go to the
/// earlier rule; the default (no match) is allow.
struct PolicyRule {
  static constexpr std::uint32_t kAny = 0xffffffff;

  enum class Action : std::uint8_t { kAllow = 0, kDeny = 1 };

  std::uint32_t src_host = kAny;
  std::uint32_t dst_host = kAny;
  Action action = Action::kDeny;
  std::uint16_t priority = 0;

  [[nodiscard]] bool matches(std::uint32_t src, std::uint32_t dst) const {
    return (src_host == kAny || src_host == src) && (dst_host == kAny || dst_host == dst);
  }
  bool operator==(const PolicyRule&) const = default;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static PolicyRule deserialize(std::span<const std::uint8_t> bytes);
};

/// Ordered policy rule set, replicated at every controller through the
/// blockchain (policy updates are transactions; see chain::RequestType).
/// Controllers consult it in ComputeConfig: a denied pair yields a drop
/// flow entry instead of a forwarding rule.
class PolicyTable {
 public:
  /// Install a rule (append; duplicates by value replace in place).
  void install(const PolicyRule& rule);
  /// Remove rules equal to `rule` (exact match). Returns count removed.
  std::size_t remove(const PolicyRule& rule);

  /// Decide for a (src, dst) pair: highest-priority matching rule wins;
  /// default allow.
  [[nodiscard]] PolicyRule::Action decide(std::uint32_t src, std::uint32_t dst) const;
  [[nodiscard]] bool allows(std::uint32_t src, std::uint32_t dst) const {
    return decide(src, dst) == PolicyRule::Action::kAllow;
  }

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] const std::vector<PolicyRule>& rules() const { return rules_; }
  bool operator==(const PolicyTable&) const = default;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static PolicyTable deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace curb::sdn
