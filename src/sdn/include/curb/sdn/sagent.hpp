#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "curb/chain/transaction.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::sdn {

/// A request as broadcast by a switch to its controller group (Algorithm 1
/// line 2): the reqMsg tuple plus a per-switch sequence number used to match
/// replies.
struct RequestMsg {
  chain::RequestType type = chain::RequestType::kPacketIn;
  std::uint32_t switch_id = 0;
  std::uint64_t request_id = 0;
  /// PKT-IN: serialized packet info; RE-ASS: serialized byzantine id list.
  std::vector<std::uint8_t> payload;

  bool operator==(const RequestMsg&) const = default;
  [[nodiscard]] std::size_t wire_size() const { return 1 + 4 + 8 + 4 + payload.size(); }
};

/// Why the s-agent flagged a controller as byzantine.
enum class ByzantineReason : std::uint8_t {
  kTimeout,            // no reply within the reply timeout (paper exp. 1/2)
  kConflictingConfig,  // reply contradicts the f+1 agreed config
  kLazy,               // consistently slow for max_lazy_rounds rounds (exp. 3)
};

[[nodiscard]] constexpr std::string_view to_string(ByzantineReason r) {
  switch (r) {
    case ByzantineReason::kTimeout: return "timeout";
    case ByzantineReason::kConflictingConfig: return "conflicting-config";
    case ByzantineReason::kLazy: return "lazy";
  }
  return "?";
}

/// The switch-side agent of Algorithm 1. Broadcasts requests to the
/// controller group, collects REPLY messages in R_s, accepts a config once
/// f+1 identical replies arrive, and detects byzantine controllers three
/// ways: non-response within timeout, conflicting configs, and sustained
/// laziness (response time above threshold for max_lazy_rounds consecutive
/// rounds — the paper's experiment 3 policy).
class SAgent {
 public:
  struct Config {
    std::uint32_t switch_id = 0;
    std::size_t f = 1;
    sim::SimTime reply_timeout = sim::SimTime::millis(500);
    sim::SimTime lazy_threshold = sim::SimTime::millis(200);
    std::size_t max_lazy_rounds = 5;
    /// Consecutive timed-out rounds before a non-replying controller is
    /// reported byzantine (the paper's experiment 1 waits several rounds
    /// before declaring a node byzantine; 1 = report on first miss).
    std::size_t max_silent_rounds = 1;
  };

  using BroadcastFn = std::function<void(const RequestMsg&)>;
  using AcceptFn =
      std::function<void(const RequestMsg&, const std::vector<std::uint8_t>& config)>;
  using ByzantineFn =
      std::function<void(const std::vector<std::uint32_t>& controllers, ByzantineReason)>;

  SAgent(Config config, sim::Simulator& sim, BroadcastFn broadcast, AcceptFn accept,
         ByzantineFn report_byzantine);

  /// Install / replace the controller group (ctrList_s). Initial assignment
  /// comes from OP() at Step 0; updates arrive via accepted RE-ASS configs.
  /// `leader` (if given) is blamed when a request times out with NO replies
  /// at all — total silence implicates the node responsible for driving
  /// consensus, not the whole group.
  void set_controller_group(std::vector<std::uint32_t> group,
                            std::optional<std::uint32_t> leader = std::nullopt);
  [[nodiscard]] std::optional<std::uint32_t> group_leader() const { return leader_; }
  [[nodiscard]] const std::vector<std::uint32_t>& controller_group() const { return group_; }

  /// Broadcast a request to the controller group; returns its request id.
  std::uint64_t send_request(chain::RequestType type, std::vector<std::uint8_t> payload);

  /// Feed a REPLY from controller `controller_id`.
  void on_reply(std::uint32_t controller_id, std::uint64_t request_id,
                std::span<const std::uint8_t> config);

  [[nodiscard]] std::size_t pending_requests() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t accepted_count() const { return accepted_; }
  /// Consecutive lazy rounds currently recorded against a controller.
  [[nodiscard]] std::size_t lazy_rounds(std::uint32_t controller_id) const;
  /// Consecutive silent (timed-out) rounds recorded against a controller.
  [[nodiscard]] std::size_t silent_rounds(std::uint32_t controller_id) const;

 private:
  struct PendingRequest {
    RequestMsg msg;
    sim::SimTime sent_at;
    // controller -> config bytes (first reply only; duplicates ignored)
    std::map<std::uint32_t, std::vector<std::uint8_t>> replies;
    std::optional<std::vector<std::uint8_t>> accepted_config;
    sim::EventHandle timeout;
  };

  void try_accept(PendingRequest& req);
  void on_timeout(std::uint64_t request_id);
  void record_latency(std::uint32_t controller_id, sim::SimTime latency);

  Config config_;
  sim::Simulator& sim_;
  BroadcastFn broadcast_;
  AcceptFn accept_;
  ByzantineFn report_byzantine_;

  std::vector<std::uint32_t> group_;
  std::optional<std::uint32_t> leader_;
  std::map<std::uint64_t, PendingRequest> pending_;
  std::map<std::uint32_t, std::size_t> lazy_counts_;
  std::map<std::uint32_t, std::size_t> silent_counts_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t accepted_ = 0;
};

}  // namespace curb::sdn
