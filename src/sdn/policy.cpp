#include "curb/sdn/policy.hpp"

#include <algorithm>

#include "curb/chain/serial.hpp"

namespace curb::sdn {

std::vector<std::uint8_t> PolicyRule::serialize() const {
  chain::ByteWriter w;
  w.u32(src_host);
  w.u32(dst_host);
  w.u8(static_cast<std::uint8_t>(action));
  w.u16(priority);
  return w.take();
}

PolicyRule PolicyRule::deserialize(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  PolicyRule rule;
  rule.src_host = r.u32();
  rule.dst_host = r.u32();
  rule.action = static_cast<Action>(r.u8());
  rule.priority = r.u16();
  return rule;
}

void PolicyTable::install(const PolicyRule& rule) {
  const auto it = std::find_if(rules_.begin(), rules_.end(), [&](const PolicyRule& r) {
    return r.src_host == rule.src_host && r.dst_host == rule.dst_host &&
           r.priority == rule.priority;
  });
  if (it != rules_.end()) {
    *it = rule;  // same match + priority: replace the action
    return;
  }
  rules_.push_back(rule);
}

std::size_t PolicyTable::remove(const PolicyRule& rule) {
  const auto before = rules_.size();
  std::erase(rules_, rule);
  return before - rules_.size();
}

PolicyRule::Action PolicyTable::decide(std::uint32_t src, std::uint32_t dst) const {
  const PolicyRule* best = nullptr;
  for (const PolicyRule& r : rules_) {
    if (!r.matches(src, dst)) continue;
    if (best == nullptr || r.priority > best->priority) best = &r;
  }
  return best == nullptr ? PolicyRule::Action::kAllow : best->action;
}

std::vector<std::uint8_t> PolicyTable::serialize() const {
  chain::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(rules_.size()));
  for (const PolicyRule& r : rules_) w.bytes(r.serialize());
  return w.take();
}

PolicyTable PolicyTable::deserialize(std::span<const std::uint8_t> bytes) {
  chain::ByteReader r{bytes};
  PolicyTable table;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto rule_bytes = r.bytes();
    table.rules_.push_back(PolicyRule::deserialize(rule_bytes));
  }
  return table;
}

}  // namespace curb::sdn
