#include "curb/sdn/sagent.hpp"

#include <algorithm>

namespace curb::sdn {

SAgent::SAgent(Config config, sim::Simulator& sim, BroadcastFn broadcast, AcceptFn accept,
               ByzantineFn report_byzantine)
    : config_{config},
      sim_{sim},
      broadcast_{std::move(broadcast)},
      accept_{std::move(accept)},
      report_byzantine_{std::move(report_byzantine)} {}

void SAgent::set_controller_group(std::vector<std::uint32_t> group,
                                  std::optional<std::uint32_t> leader) {
  group_ = std::move(group);
  leader_ = leader;
  // Forget behaviour history for controllers that left the group.
  const auto departed = [&](const auto& kv) {
    return std::find(group_.begin(), group_.end(), kv.first) == group_.end();
  };
  std::erase_if(lazy_counts_, departed);
  std::erase_if(silent_counts_, departed);
}

std::uint64_t SAgent::send_request(chain::RequestType type,
                                   std::vector<std::uint8_t> payload) {
  const std::uint64_t id = next_request_id_++;
  PendingRequest req;
  req.msg = RequestMsg{type, config_.switch_id, id, std::move(payload)};
  req.sent_at = sim_.now();
  req.timeout = sim_.schedule(config_.reply_timeout, [this, id] { on_timeout(id); });
  broadcast_(req.msg);
  pending_.emplace(id, std::move(req));
  return id;
}

void SAgent::on_reply(std::uint32_t controller_id, std::uint64_t request_id,
                      std::span<const std::uint8_t> config) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // stale or unknown reply
  PendingRequest& req = it->second;
  if (std::find(group_.begin(), group_.end(), controller_id) == group_.end()) {
    return;  // reply from a controller not in ctrList_s: ignore
  }
  if (req.replies.contains(controller_id)) return;  // duplicate

  std::vector<std::uint8_t> config_bytes{config.begin(), config.end()};
  record_latency(controller_id, sim_.now() - req.sent_at);

  if (req.accepted_config) {
    // Late reply after acceptance: a mismatch is evidence of byzantine
    // behaviour (Algorithm 1 lines 11-13).
    if (config_bytes != *req.accepted_config) {
      report_byzantine_({controller_id}, ByzantineReason::kConflictingConfig);
    }
    req.replies.emplace(controller_id, std::move(config_bytes));
    return;
  }

  req.replies.emplace(controller_id, std::move(config_bytes));
  try_accept(req);
}

void SAgent::try_accept(PendingRequest& req) {
  // Accept once some config value has f+1 identical replies.
  for (const auto& [controller, config] : req.replies) {
    std::size_t matches = 0;
    for (const auto& [other, other_config] : req.replies) {
      if (other_config == config) ++matches;
    }
    if (matches >= config_.f + 1) {
      req.accepted_config = config;
      ++accepted_;
      accept_(req.msg, config);
      // Conflicting repliers observed so far are byzantine suspects.
      std::vector<std::uint32_t> conflicting;
      for (const auto& [other, other_config] : req.replies) {
        if (other_config != config) conflicting.push_back(other);
      }
      if (!conflicting.empty()) {
        report_byzantine_(conflicting, ByzantineReason::kConflictingConfig);
      }
      // Keep the request pending until timeout so silent members are still
      // detected; acceptance only stops config waiting.
      return;
    }
  }
}

void SAgent::on_timeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest req = std::move(it->second);
  pending_.erase(it);

  if (req.replies.empty()) {
    // Total silence: the group never even ran consensus. Blame the node
    // responsible for driving it rather than the whole group.
    if (leader_) {
      const std::size_t rounds = ++silent_counts_[*leader_];
      if (rounds >= config_.max_silent_rounds) {
        silent_counts_[*leader_] = 0;
        report_byzantine_({*leader_}, ByzantineReason::kTimeout);
      }
    }
    return;
  }

  // Controllers in the group that never replied are byzantine-by-silence
  // after max_silent_rounds consecutive misses; repliers reset their streak.
  std::vector<std::uint32_t> reported;
  for (const std::uint32_t c : group_) {
    if (req.replies.contains(c)) {
      silent_counts_[c] = 0;
      continue;
    }
    const std::size_t rounds = ++silent_counts_[c];
    if (rounds >= config_.max_silent_rounds) {
      silent_counts_[c] = 0;
      reported.push_back(c);
    }
  }
  if (!reported.empty()) {
    report_byzantine_(reported, ByzantineReason::kTimeout);
  }
}

void SAgent::record_latency(std::uint32_t controller_id, sim::SimTime latency) {
  if (latency > config_.lazy_threshold) {
    const std::size_t rounds = ++lazy_counts_[controller_id];
    if (rounds >= config_.max_lazy_rounds) {
      lazy_counts_[controller_id] = 0;  // reported; restart the window
      report_byzantine_({controller_id}, ByzantineReason::kLazy);
    }
  } else {
    lazy_counts_[controller_id] = 0;  // a fast round resets the streak
  }
}

std::size_t SAgent::lazy_rounds(std::uint32_t controller_id) const {
  const auto it = lazy_counts_.find(controller_id);
  return it == lazy_counts_.end() ? 0 : it->second;
}

std::size_t SAgent::silent_rounds(std::uint32_t controller_id) const {
  const auto it = silent_counts_.find(controller_id);
  return it == silent_counts_.end() ? 0 : it->second;
}

}  // namespace curb::sdn
