#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace curb::sim {

namespace detail {

/// Callables at or under this size (and alignment of max_align_t) live
/// inline inside the EventFn itself — no allocation at all. 64 bytes covers
/// every hot-path lambda in the bus and protocol layers (the bus delivery
/// capture is 56 bytes).
inline constexpr std::size_t kEventInlineSize = 64;

/// Callables too big for inline storage but at or under this size draw
/// fixed-size blocks from a freelist pool instead of the general heap.
inline constexpr std::size_t kEventBlockSize = 256;

/// Freelist of fixed kEventBlockSize blocks. Blocks are recycled rather than
/// returned to the heap while the thread lives; the destructor drains the
/// list so sanitizer runs end clean. Single-threaded by construction
/// (thread_local), so no locking.
class EventBlockPool {
 public:
  EventBlockPool() = default;
  EventBlockPool(const EventBlockPool&) = delete;
  EventBlockPool& operator=(const EventBlockPool&) = delete;

  ~EventBlockPool() {
    while (head_ != nullptr) {
      Node* next = head_->next;
      ::operator delete(static_cast<void*>(head_));
      head_ = next;
    }
  }

  void* acquire() {
    if (head_ != nullptr) {
      Node* node = head_;
      head_ = node->next;
      --free_;
      return static_cast<void*>(node);
    }
    return ::operator new(kEventBlockSize);
  }

  void release(void* block) noexcept {
    Node* node = ::new (block) Node{head_};
    head_ = node;
    ++free_;
  }

  /// Blocks currently parked on the freelist (test introspection).
  [[nodiscard]] std::size_t free_blocks() const { return free_; }

 private:
  struct Node {
    Node* next;
  };
  Node* head_ = nullptr;
  std::size_t free_ = 0;
};

inline EventBlockPool& event_block_pool() {
  thread_local EventBlockPool pool;
  return pool;
}

}  // namespace detail

/// Move-only type-erased `void()` callable for simulator events.
///
/// Unlike std::function it never heap-allocates for callables up to 64
/// bytes (libstdc++'s std::function spills to the heap past 16), and
/// callables up to 256 bytes recycle fixed-size blocks through a
/// thread-local freelist, so steady-state event scheduling performs zero
/// heap allocations for every capture size the protocol stack produces.
class EventFn {
 public:
  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using T = std::remove_cvref_t<F>;
    constexpr bool fits_inline = sizeof(T) <= detail::kEventInlineSize &&
                                 alignof(T) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<T>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(storage_)) T(std::forward<F>(fn));
      ops_ = &kOps<InlineOps<T>>;
    } else {
      constexpr bool pooled = sizeof(T) <= detail::kEventBlockSize &&
                              alignof(T) <= alignof(std::max_align_t);
      void* block = pooled ? detail::event_block_pool().acquire()
                           : ::operator new(sizeof(T));
      T* obj = nullptr;
      try {
        obj = ::new (block) T(std::forward<F>(fn));
      } catch (...) {
        if constexpr (pooled) {
          detail::event_block_pool().release(block);
        } else {
          ::operator delete(block);
        }
        throw;
      }
      *reinterpret_cast<T**>(static_cast<void*>(storage_)) = obj;
      ops_ = &kOps<OutOfLineOps<T, pooled>>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call{};
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*destroy)(void* storage) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;
  };

  template <typename T>
  struct InlineOps {
    static void invoke(void* storage) { (*static_cast<T*>(storage))(); }
    static void destroy(void* storage) noexcept { static_cast<T*>(storage)->~T(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) T(std::move(*static_cast<T*>(src)));
      static_cast<T*>(src)->~T();
    }
  };

  template <typename T, bool Pooled>
  struct OutOfLineOps {
    static T* slot(void* storage) { return *static_cast<T**>(storage); }
    static void invoke(void* storage) { (*slot(storage))(); }
    static void destroy(void* storage) noexcept {
      T* obj = slot(storage);
      obj->~T();
      if constexpr (Pooled) {
        detail::event_block_pool().release(static_cast<void*>(obj));
      } else {
        ::operator delete(static_cast<void*>(obj));
      }
    }
    static void relocate(void* dst, void* src) noexcept {
      *static_cast<T**>(dst) = slot(src);
    }
  };

  template <typename OpsImpl>
  static constexpr Ops kOps{&OpsImpl::invoke, &OpsImpl::destroy, &OpsImpl::relocate};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[detail::kEventInlineSize];
};

}  // namespace curb::sim
