#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "curb/sim/time.hpp"

namespace curb::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] constexpr std::string_view to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Minimal structured logger bound to the virtual clock. Sinks are
/// pluggable so tests can capture output; the default sink is silent, which
/// keeps benchmark runs clean.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, SimTime, std::string_view component,
                                  std::string_view message)>;

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool enabled(LogLevel l) const {
    return sink_ && l >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel l, SimTime now, std::string_view component, std::string_view msg) const {
    if (enabled(l)) sink_(l, now, component, msg);
  }

  /// Global logger instance shared by simulation components.
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

/// Convenience: format a stderr sink, e.g. Logger::instance().set_sink(stderr_sink()).
[[nodiscard]] Logger::Sink stderr_sink();

}  // namespace curb::sim
