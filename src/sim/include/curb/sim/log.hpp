#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "curb/sim/time.hpp"

namespace curb::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] constexpr std::string_view to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Minimal structured logger bound to the virtual clock. Sinks are
/// pluggable so tests can capture output; the default sink is silent, which
/// keeps benchmark runs clean.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, SimTime, std::string_view component,
                                  std::string_view message)>;

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Install a sink and return the previous one (scoped-capture helpers
  /// restore it on exit so the process-wide instance() stays test-friendly).
  Sink exchange_sink(Sink sink) {
    Sink previous = std::move(sink_);
    sink_ = std::move(sink);
    return previous;
  }

  /// Back to the default state: no sink, level kOff. Tests that mutate the
  /// global instance() call this so later tests see a pristine logger.
  void reset() {
    level_ = LogLevel::kOff;
    sink_ = nullptr;
  }

  [[nodiscard]] bool enabled(LogLevel l) const {
    return sink_ && l >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel l, SimTime now, std::string_view component, std::string_view msg) const {
    if (enabled(l)) sink_(l, now, component, msg);
  }

  /// Global logger instance shared by simulation components.
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

/// The line format stderr_sink prints, exposed so tests can pin it down:
/// `[  12.345ms] LEVEL component: message`.
[[nodiscard]] std::string format_log_line(LogLevel l, SimTime now,
                                          std::string_view component,
                                          std::string_view message);

/// Convenience: format a stderr sink, e.g. Logger::instance().set_sink(stderr_sink()).
[[nodiscard]] Logger::Sink stderr_sink();

/// Scoped test helper: captures every line that passes the level gate into
/// an in-memory buffer, restoring the previous sink and level when the scope
/// ends.
class CaptureSink {
 public:
  struct Line {
    LogLevel level;
    SimTime time;
    std::string component;
    std::string message;
  };

  explicit CaptureSink(Logger& logger = Logger::instance(),
                       LogLevel level = LogLevel::kTrace)
      : logger_{logger}, previous_level_{logger.level()} {
    previous_sink_ = logger_.exchange_sink(
        [this](LogLevel l, SimTime now, std::string_view component,
               std::string_view message) {
          lines_.push_back(Line{l, now, std::string{component}, std::string{message}});
        });
    logger_.set_level(level);
  }

  ~CaptureSink() {
    logger_.set_sink(std::move(previous_sink_));
    logger_.set_level(previous_level_);
  }

  CaptureSink(const CaptureSink&) = delete;
  CaptureSink& operator=(const CaptureSink&) = delete;

  [[nodiscard]] const std::vector<Line>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  Logger& logger_;
  Logger::Sink previous_sink_;
  LogLevel previous_level_;
  std::vector<Line> lines_;
};

}  // namespace curb::sim
