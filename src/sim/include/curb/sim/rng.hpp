#pragma once

#include <cstdint>
#include <vector>

namespace curb::sim {

/// SplitMix64: tiny, fast, statistically solid seeding/stream generator.
/// Used as the single source of randomness so that every simulation run is
/// reproducible from one 64-bit seed.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic RNG with convenience draws. Intentionally not
/// std::uniform_int_distribution-based: libstdc++/libc++ distributions differ,
/// and bit-for-bit reproducibility across toolchains matters for tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) : gen_{seed} {}

  std::uint64_t next_u64() { return gen_.next(); }

  /// Uniform in [0, bound) via Lemire-style rejection; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling on the top bits keeps the draw unbiased.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) { return lo + next_double() * (hi - lo); }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Fisher-Yates shuffle (deterministic given the RNG state).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Derive an independent child stream (e.g. one per actor).
  Rng fork() { return Rng{next_u64() ^ 0xA5A5A5A55A5A5A5AULL}; }

 private:
  SplitMix64 gen_;
};

}  // namespace curb::sim
