#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace curb::sim {

/// Streaming summary statistics (Welford) plus retained samples for
/// percentiles. Used by the benchmark harness to report the paper's
/// mean-of-200-measurements data points with error bars.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_dirty_ = true;
    if (n_ == 0 || x < min_) min_ = x;
    if (n_ == 0 || x > max_) max_ = x;
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Linear-interpolated percentile, q in [0, 100]. The sorted view is
  /// cached and invalidated by add(), so repeated quantile queries between
  /// insertions sort at most once.
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    if (q < 0.0 || q > 100.0) throw std::invalid_argument{"percentile out of range"};
    if (sorted_dirty_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    const double pos = q / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace curb::sim
