#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace curb::sim {

/// Simulated time, a strong type over a signed microsecond count.
///
/// All protocol latencies in the reproduction are expressed in virtual
/// microseconds so that runs are deterministic and independent of the host
/// machine. Negative values are permitted for durations (differences) but a
/// simulator clock never runs backwards.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000}; }
  /// Fractional seconds helper for delay models (e.g. distance / velocity).
  [[nodiscard]] static constexpr SimTime from_seconds_f(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis_f() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double as_seconds_f() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    us_ += rhs.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    us_ -= rhs.us_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.us_ * k}; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.us_ / k}; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_millis_f() << "ms";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

namespace literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::millis(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace curb::sim
