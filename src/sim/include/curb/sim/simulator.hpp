#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "curb/prof/profiler.hpp"
#include "curb/sim/event_fn.hpp"
#include "curb/sim/rng.hpp"
#include "curb/sim/time.hpp"

namespace curb::sim {

/// Handle used to cancel a scheduled event (e.g. a timeout that was met).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event simulator.
///
/// Events fire in (time, insertion-sequence) order, so two events scheduled
/// for the same instant run in the order they were scheduled — this makes
/// whole protocol runs bit-for-bit reproducible from a seed.
class Simulator {
 public:
  /// Move-only small-buffer callable: hot-path captures (<= 64 bytes) are
  /// stored inline, larger ones recycle pooled blocks — scheduling an event
  /// does not hit the heap in steady state (see event_fn.hpp).
  using Callback = EventFn;

  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` after the current virtual time.
  EventHandle schedule(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time (must not be in the past).
  EventHandle schedule_at(SimTime when, Callback fn) {
    if (when < now_) throw std::logic_error{"Simulator: scheduling into the past"};
    const std::uint64_t id = ++next_id_;
    record_sched_lag(when - now_);
    queue_.push(Event{when, id, std::move(fn)});
    ++pending_;
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
    return EventHandle{id};
  }

  /// Cancel a scheduled event (best effort: cancelling an event that has
  /// already fired is a harmless no-op). Returns false for invalid handles or
  /// handles cancelled twice.
  bool cancel(EventHandle h) {
    if (!h.valid() || h.id_ > next_id_) return false;
    if (cancelled_.size() <= h.id_) cancelled_.resize(next_id_ + 1, false);
    if (cancelled_[h.id_]) return false;
    cancelled_[h.id_] = true;
    return true;
  }

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run() { return run_until(SimTime::max()); }

  /// Run events with time <= deadline; the clock ends at
  /// min(deadline, last event time). Returns events executed.
  std::size_t run_until(SimTime deadline) {
    const prof::Scope run_scope{"sim.run"};
    const auto host_start = std::chrono::steady_clock::now();
    std::size_t executed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.when > deadline) break;
      Event ev{top.when, top.id, std::move(top.fn)};  // fn is mutable
      queue_.pop();
      --pending_;
      if (is_cancelled(ev.id)) continue;
      now_ = ev.when;
      {
        const prof::Scope event_scope{"sim.event"};
        ev.fn();
      }
      ++executed;
      ++executed_total_;
      if (executed >= max_events_) {
        accrue_host_time(host_start);
        throw std::runtime_error{"Simulator: event budget exhausted (possible livelock)"};
      }
    }
    if (deadline != SimTime::max() && deadline > now_) now_ = deadline;
    accrue_host_time(host_start);
    return executed;
  }

  /// Execute exactly one event if available. Returns false when idle.
  bool step() {
    const auto host_start = std::chrono::steady_clock::now();
    while (!queue_.empty()) {
      Event ev{queue_.top().when, queue_.top().id, std::move(queue_.top().fn)};
      queue_.pop();
      --pending_;
      if (is_cancelled(ev.id)) continue;
      now_ = ev.when;
      {
        const prof::Scope event_scope{"sim.event"};
        ev.fn();
      }
      ++executed_total_;
      accrue_host_time(host_start);
      return true;
    }
    accrue_host_time(host_start);
    return false;
  }

  [[nodiscard]] std::size_t pending_events() const { return pending_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  /// Events executed over the simulator's lifetime (observability export).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_total_; }
  /// Host (wall-clock) nanoseconds spent inside run_until()/step() over the
  /// simulator's lifetime. Benches divide events_executed() by this to get
  /// an events/sec figure that measures the event loop itself rather than
  /// whatever one-off setup (e.g. the initial CAP solve) surrounds it.
  /// Host-dependent — never folded into deterministic trace/telemetry output.
  [[nodiscard]] std::uint64_t host_run_ns() const { return host_run_ns_; }
  /// Largest event-queue depth ever reached (includes cancelled entries).
  [[nodiscard]] std::size_t queue_high_water() const { return queue_high_water_; }

  // Scheduling-lag histogram: distribution of how far into the virtual
  // future events are scheduled (`when - now`, microseconds), recorded in
  // fixed power-of-two buckets at every schedule call. Allocation-free and
  // cheap enough to stay always-on; virtual-time based, so the histogram is
  // deterministic per seed. A backlog that schedules ever further ahead
  // (growing lag percentiles with a growing queue depth) is the DES analogue
  // of rising queueing delay in a real controller.

  /// Total scheduling-lag samples (== events ever scheduled).
  [[nodiscard]] std::uint64_t sched_lag_samples() const { return sched_lag_count_; }
  /// Largest scheduling lag ever recorded, microseconds.
  [[nodiscard]] std::uint64_t sched_lag_max_us() const { return sched_lag_max_us_; }
  /// Upper bound of the bucket holding the p-th percentile (p in [0,100]) of
  /// scheduling lag, microseconds. Zero when nothing was scheduled yet.
  [[nodiscard]] std::uint64_t sched_lag_percentile_us(double p) const {
    if (sched_lag_count_ == 0) return 0;
    const double target = static_cast<double>(sched_lag_count_) * p / 100.0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < sched_lag_buckets_.size(); ++i) {
      seen += sched_lag_buckets_[i];
      if (static_cast<double>(seen) >= target) {
        // Bucket i holds values whose bit width is i: [2^(i-1), 2^i - 1].
        const std::uint64_t upper = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        return upper < sched_lag_max_us_ ? upper : sched_lag_max_us_;
      }
    }
    return sched_lag_max_us_;
  }

  /// Guard against runaway protocols in tests; default is generous.
  void set_event_budget(std::size_t max_events) { max_events_ = max_events; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t id;
    mutable Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  [[nodiscard]] bool is_cancelled(std::uint64_t id) const {
    return id < cancelled_.size() && cancelled_[id];
  }

  void accrue_host_time(std::chrono::steady_clock::time_point start) {
    host_run_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  void record_sched_lag(SimTime lag) {
    const auto us = static_cast<std::uint64_t>(lag.as_micros());
    ++sched_lag_count_;
    if (us > sched_lag_max_us_) sched_lag_max_us_ = us;
    const auto bucket = static_cast<std::size_t>(std::bit_width(us));
    ++sched_lag_buckets_[bucket < sched_lag_buckets_.size()
                             ? bucket
                             : sched_lag_buckets_.size() - 1];
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_id_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t executed_total_ = 0;
  std::uint64_t host_run_ns_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t sched_lag_count_ = 0;
  std::uint64_t sched_lag_max_us_ = 0;
  std::array<std::uint64_t, 64> sched_lag_buckets_{};
  std::size_t max_events_ = 500'000'000;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<bool> cancelled_;
  Rng rng_;
};

}  // namespace curb::sim
