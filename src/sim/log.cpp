#include "curb/sim/log.hpp"

#include <cstdio>
#include <string>

namespace curb::sim {

Logger::Sink stderr_sink() {
  return [](LogLevel l, SimTime now, std::string_view component, std::string_view msg) {
    std::fprintf(stderr, "[%8.3fms] %-5s %.*s: %.*s\n", now.as_millis_f(),
                 std::string(to_string(l)).c_str(), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(msg.size()), msg.data());
  };
}

}  // namespace curb::sim
