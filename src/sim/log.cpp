#include "curb/sim/log.hpp"

#include <cstdio>
#include <string>

namespace curb::sim {

std::string format_log_line(LogLevel l, SimTime now, std::string_view component,
                            std::string_view message) {
  char prefix[48];
  std::snprintf(prefix, sizeof prefix, "[%8.3fms] %-5s ", now.as_millis_f(),
                std::string(to_string(l)).c_str());
  std::string line{prefix};
  line.append(component);
  line.append(": ");
  line.append(message);
  return line;
}

Logger::Sink stderr_sink() {
  return [](LogLevel l, SimTime now, std::string_view component, std::string_view msg) {
    const std::string line = format_log_line(l, now, component, msg);
    std::fprintf(stderr, "%s\n", line.c_str());
  };
}

}  // namespace curb::sim
