#include "curb/obs/slo.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>

#include "curb/obs/export.hpp"

namespace curb::obs {

const char* to_string(SloAgg agg) {
  switch (agg) {
    case SloAgg::kP50: return "p50";
    case SloAgg::kP90: return "p90";
    case SloAgg::kP99: return "p99";
    case SloAgg::kMean: return "mean";
    case SloAgg::kMax: return "max";
    case SloAgg::kRate: return "rate";
    case SloAgg::kCount: return "count";
    case SloAgg::kSum: return "sum";
    case SloAgg::kGauge: return "gauge";
  }
  return "?";
}

const char* to_string(SloOp op) {
  switch (op) {
    case SloOp::kLt: return "<";
    case SloOp::kLe: return "<=";
    case SloOp::kGt: return ">";
    case SloOp::kGe: return ">=";
    case SloOp::kEq: return "==";
    case SloOp::kNe: return "!=";
  }
  return "?";
}

std::string SloRule::text() const {
  std::string out = to_string(agg);
  out += "(" + series + ") ";
  out += to_string(op);
  out += " " + json_double(limit);
  if (over != 1) out += " over " + std::to_string(over);
  return out;
}

namespace {

/// Hand-rolled scanner: the grammar is small and the error messages should
/// name the rule text, which generic tokenizers make awkward.
class RuleScanner {
 public:
  explicit RuleScanner(const std::string& text) : s_{text} {}

  SloRule parse() {
    SloRule rule;
    rule.agg = parse_agg();
    expect('(');
    rule.series = parse_series();
    expect(')');
    rule.op = parse_op();
    rule.limit = parse_limit();
    skip_ws();
    if (match_word("over")) {
      const double n = parse_number();
      if (n < 1.0 || n != std::floor(n)) fail("'over' wants a positive window count");
      rule.over = static_cast<std::size_t>(n);
    }
    skip_ws();
    if (pos_ != s_.size()) fail("trailing junk");
    return rule;
  }

 private:
  SloAgg parse_agg() {
    skip_ws();
    static constexpr std::pair<const char*, SloAgg> kAggs[] = {
        {"p50", SloAgg::kP50},   {"p90", SloAgg::kP90},   {"p99", SloAgg::kP99},
        {"mean", SloAgg::kMean}, {"max", SloAgg::kMax},   {"rate", SloAgg::kRate},
        {"count", SloAgg::kCount}, {"sum", SloAgg::kSum}, {"gauge", SloAgg::kGauge},
    };
    for (const auto& [word, agg] : kAggs) {
      if (match_word(word)) return agg;
    }
    fail("expected aggregation (p50|p90|p99|mean|max|rate|count|sum|gauge)");
  }

  /// Everything up to the matching ')' — series keys embed label quotes but
  /// never parentheses.
  std::string parse_series() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ')') ++pos_;
    if (pos_ == s_.size()) fail("unterminated series (missing ')')");
    std::string series = s_.substr(start, pos_ - start);
    if (series.empty()) fail("empty series");
    return series;
  }

  SloOp parse_op() {
    skip_ws();
    if (match_word("<=")) return SloOp::kLe;
    if (match_word(">=")) return SloOp::kGe;
    if (match_word("==")) return SloOp::kEq;
    if (match_word("!=")) return SloOp::kNe;
    if (match_word("<")) return SloOp::kLt;
    if (match_word(">")) return SloOp::kGt;
    fail("expected comparison (< <= > >= == !=)");
  }

  double parse_limit() {
    double v = parse_number();
    // Optional time unit, normalized to the registry's microseconds.
    if (match_word("us")) {
      // already us
    } else if (match_word("ms")) {
      v *= 1e3;
    } else if (match_word("s")) {
      v *= 1e6;
    }
    return v;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  bool match_word(const char* word) {
    skip_ws();
    const std::size_t len = std::string_view{word}.size();
    if (s_.compare(pos_, len, word) != 0) return false;
    // Alphabetic words must not run into the next identifier character
    // ("summary" is not "sum"; "usec" is not "us").
    if (std::isalpha(static_cast<unsigned char>(word[0])) && pos_ + len < s_.size() &&
        (std::isalnum(static_cast<unsigned char>(s_[pos_ + len])) ||
         s_[pos_ + len] == '_')) {
      return false;
    }
    pos_ += len;
    return true;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw SloError{"bad SLO rule '" + s_ + "': " + why};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

SloRule SloRule::parse(const std::string& text) { return RuleScanner{text}.parse(); }

SloRuleSet SloRuleSet::parse(const std::string& text) {
  SloRuleSet set;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    const std::string piece = text.substr(start, end - start);
    if (piece.find_first_not_of(" \t\n") != std::string::npos) {
      set.rules.push_back(SloRule::parse(piece));
    }
    start = end + 1;
  }
  return set;
}

std::optional<double> evaluate_rule(const SloRule& rule,
                                    const std::deque<TsWindow>& windows) {
  const std::size_t n = std::min(rule.over, windows.size());
  if (n == 0) return std::nullopt;

  bool any = false;
  double acc = 0.0;       // sums and maxima
  double mean_sum = 0.0;  // kMean numerator
  double mean_count = 0.0;
  std::optional<double> latest_gauge;

  for (std::size_t i = windows.size() - n; i < windows.size(); ++i) {
    const TsValue* v = windows[i].find(rule.series);
    if (v == nullptr) continue;
    switch (rule.agg) {
      case SloAgg::kRate:
        acc += v->value;
        any = true;
        break;
      case SloAgg::kCount:
        acc += v->kind == TsValue::Kind::kHist ? static_cast<double>(v->count)
                                               : v->value;
        any = true;
        break;
      case SloAgg::kSum:
        acc += v->kind == TsValue::Kind::kHist ? v->sum : v->value;
        any = true;
        break;
      case SloAgg::kMean:
        if (v->kind == TsValue::Kind::kHist) {
          mean_sum += v->sum;
          mean_count += static_cast<double>(v->count);
        } else {
          mean_sum += v->value;
          mean_count += 1.0;
        }
        any = true;
        break;
      case SloAgg::kP50:
      case SloAgg::kP90:
      case SloAgg::kP99: {
        const double p = rule.agg == SloAgg::kP50   ? v->p50
                         : rule.agg == SloAgg::kP90 ? v->p90
                                                    : v->p99;
        const double sample = v->kind == TsValue::Kind::kHist ? p : v->value;
        acc = any ? std::max(acc, sample) : sample;
        any = true;
        break;
      }
      case SloAgg::kMax: {
        const double sample = v->kind == TsValue::Kind::kHist ? v->p99 : v->value;
        acc = any ? std::max(acc, sample) : sample;
        any = true;
        break;
      }
      case SloAgg::kGauge:
        latest_gauge = v->value;
        any = true;
        break;
    }
  }
  if (!any) {
    // rate/count/sum assert totals: a series that never moved totals zero,
    // so absence still evaluates (required for `rate(x) == 0` watchdogs).
    if (rule.agg == SloAgg::kRate || rule.agg == SloAgg::kCount ||
        rule.agg == SloAgg::kSum) {
      return 0.0;
    }
    return std::nullopt;
  }
  switch (rule.agg) {
    case SloAgg::kMean: return mean_count > 0.0 ? mean_sum / mean_count : 0.0;
    case SloAgg::kGauge: return latest_gauge;
    default: return acc;
  }
}

bool slo_compare(SloOp op, double observed, double limit) {
  switch (op) {
    case SloOp::kLt: return observed < limit;
    case SloOp::kLe: return observed <= limit;
    case SloOp::kGt: return observed > limit;
    case SloOp::kGe: return observed >= limit;
    case SloOp::kEq: return observed == limit;
    case SloOp::kNe: return observed != limit;
  }
  return true;
}

void SloEngine::on_window(Observatory* obs, const std::deque<TsWindow>& windows) {
  if (windows.empty()) return;
  const TsWindow& newest = windows.back();
  for (std::size_t r = 0; r < rules_.rules.size(); ++r) {
    const SloRule& rule = rules_.rules[r];
    const std::optional<double> observed = evaluate_rule(rule, windows);
    if (!observed || slo_compare(rule.op, *observed, rule.limit)) continue;
    breaches_.push_back({newest.index, newest.end, r, *observed, rule.limit});
    if (obs != nullptr) {
      obs->metrics.counter("slo.breaches", {{"rule", rule.text()}}).inc();
      obs->tracer.instant("slo.breach", "slo",
                          {{"rule", rule.text()},
                           {"observed", json_double(*observed)},
                           {"window", std::to_string(newest.index)}});
    }
  }
}

void SloEngine::write_report_json(std::ostream& out) const {
  out << "{\"rules\":[";
  for (std::size_t r = 0; r < rules_.rules.size(); ++r) {
    std::size_t count = 0;
    double worst = 0.0;
    bool worst_set = false;
    for (const SloBreach& b : breaches_) {
      if (b.rule != r) continue;
      ++count;
      // "Worst" = farthest from the limit in the violating direction.
      if (!worst_set || std::abs(b.observed - b.limit) > std::abs(worst - b.limit)) {
        worst = b.observed;
        worst_set = true;
      }
    }
    if (r > 0) out << ",";
    out << "{\"rule\":\"" << json_escape(rules_.rules[r].text())
        << "\",\"breaches\":" << count;
    if (worst_set) out << ",\"worst\":" << json_double(worst);
    out << "}";
  }
  out << "],\"total_breaches\":" << breaches_.size() << ",\"breaches\":[";
  for (std::size_t i = 0; i < breaches_.size(); ++i) {
    const SloBreach& b = breaches_[i];
    if (i > 0) out << ",";
    out << "{\"window\":" << b.window << ",\"at_us\":" << b.at.as_micros()
        << ",\"rule\":\"" << json_escape(rules_.rules[b.rule].text())
        << "\",\"observed\":" << json_double(b.observed)
        << ",\"limit\":" << json_double(b.limit) << "}";
  }
  out << "]}\n";
}

void SloEngine::write_report_text(std::ostream& out) const {
  for (const SloBreach& b : breaches_) {
    out << "window " << b.window << " @" << b.at.as_millis_f() << "ms: "
        << rules_.rules[b.rule].text() << " violated (observed "
        << json_double(b.observed) << ")\n";
  }
}

}  // namespace curb::obs
