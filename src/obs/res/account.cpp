#include "curb/obs/res/account.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

// This translation unit replaces the global allocation functions, so nothing
// in here may allocate with operator new — counter storage is constinit
// atomics, and the per-frame attribution table grows with raw realloc.

namespace curb::obs::res {

namespace {

// -- per-tag counters --------------------------------------------------------

struct AtomicCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> freed_bytes{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_live_bytes{0};
};

constinit AtomicCounters g_tags[kTagCount];
constinit AtomicCounters g_total;
constinit std::atomic<std::uint64_t> g_header_bytes{0};

void bump_alloc(AtomicCounters& c, std::uint64_t size) {
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t live =
      c.live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = c.peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !c.peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void bump_free(AtomicCounters& c, std::uint64_t size) {
  c.frees.fetch_add(1, std::memory_order_relaxed);
  c.freed_bytes.fetch_add(size, std::memory_order_relaxed);
  c.live_bytes.fetch_sub(size, std::memory_order_relaxed);
}

TagCounters read(const AtomicCounters& c) {
  TagCounters out;
  out.allocs = c.allocs.load(std::memory_order_relaxed);
  out.frees = c.frees.load(std::memory_order_relaxed);
  out.alloc_bytes = c.alloc_bytes.load(std::memory_order_relaxed);
  out.freed_bytes = c.freed_bytes.load(std::memory_order_relaxed);
  out.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  out.peak_live_bytes = c.peak_live_bytes.load(std::memory_order_relaxed);
  return out;
}

// -- per-frame attribution ---------------------------------------------------

// Indexed by prof attribution-tree node. Grows with realloc only; never
// shrinks and never runs a destructor, so it is safe both inside operator new
// and during static destruction after main.
struct FrameTable {
  FrameAlloc* data = nullptr;
  std::size_t size = 0;
};
thread_local constinit FrameTable t_frames;

void bump_frame(std::uint64_t size) {
  prof::Profiler* p = prof::thread_profiler();
  if (p == nullptr) return;
  const std::uint32_t node = p->current_node();
  FrameTable& t = t_frames;
  if (node >= t.size) {
    std::size_t next = t.size == 0 ? 64 : t.size;
    while (next <= node) next *= 2;
    auto* grown = static_cast<FrameAlloc*>(
        std::realloc(t.data, next * sizeof(FrameAlloc)));
    if (grown == nullptr) return;  // attribution is best-effort
    std::memset(grown + t.size, 0, (next - t.size) * sizeof(FrameAlloc));
    t.data = grown;
    t.size = next;
  }
  t.data[node].allocs += 1;
  t.data[node].bytes += size;
}

// -- enable latch ------------------------------------------------------------

bool read_env_latch() {
  const char* account = std::getenv("CURB_MEM_ACCOUNT");
  const bool on = (account != nullptr && *account != '\0' &&
                   !(account[0] == '0' && account[1] == '\0')) ||
                  std::getenv("CURB_MEM_OUT") != nullptr ||
                  std::getenv("CURB_MEM_FOLDED") != nullptr;
  if (on) prof::enable_component_tags();
  return on;
}

}  // namespace

bool enabled() {
  // Latched at the process's first allocation (operator new calls this before
  // doing anything else), so block headering is all-or-nothing for the whole
  // process lifetime.
  static const bool on = read_env_latch();
  return on;
}

void detail::record_alloc(std::size_t size, prof::ComponentTag tag) {
  bump_alloc(g_tags[static_cast<std::size_t>(tag)], size);
  bump_alloc(g_total, size);
  bump_frame(size);
}

void detail::record_free(std::size_t size, prof::ComponentTag tag) {
  bump_free(g_tags[static_cast<std::size_t>(tag)], size);
  bump_free(g_total, size);
}

std::uint64_t MemSnapshot::tagged_alloc_bytes() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kTagCount; ++i) {
    if (static_cast<prof::ComponentTag>(i) == prof::ComponentTag::kUntagged)
      continue;
    sum += tags[i].alloc_bytes;
  }
  return sum;
}

MemSnapshot snapshot() {
  MemSnapshot snap;
  snap.total = read(g_total);
  for (std::size_t i = 0; i < kTagCount; ++i) snap.tags[i] = read(g_tags[i]);
  snap.header_bytes = g_header_bytes.load(std::memory_order_relaxed);
  return snap;
}

void reset_peaks() {
  const auto reset = [](AtomicCounters& c) {
    c.peak_live_bytes.store(c.live_bytes.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  };
  for (auto& c : g_tags) reset(c);
  reset(g_total);
}

std::vector<FrameAlloc> frame_allocations() {
  const FrameTable& t = t_frames;
  return {t.data, t.data + t.size};
}

void clear_frame_allocations() {
  FrameTable& t = t_frames;
  if (t.data != nullptr) std::memset(t.data, 0, t.size * sizeof(FrameAlloc));
}

namespace {

// -- headered allocation path ------------------------------------------------

// 32 bytes, stored immediately before the pointer handed to the caller. Keeps
// the malloc base (aligned-new shifts the user pointer), the requested size,
// and the attribution tag so operator delete can credit the right subsystem
// no matter which thread or scope frees the block.
struct Header {
  void* base;
  std::uint64_t size;
  std::uint32_t tag;
  std::uint32_t magic;
  std::uint64_t pad;
};
static_assert(sizeof(Header) == 32);
inline constexpr std::uint32_t kMagic = 0xC0B5'ACC7u;

void* headered_alloc(std::size_t size, std::size_t align) noexcept {
  // Default-aligned blocks: malloc's 16-byte alignment survives the +32
  // header. Over-aligned blocks pad by `align` and align the user pointer up.
  const std::size_t slack = align > alignof(std::max_align_t) ? align : 0;
  void* raw = std::malloc(size + sizeof(Header) + slack);
  if (raw == nullptr) return nullptr;
  auto user = reinterpret_cast<std::uintptr_t>(raw) + sizeof(Header);
  if (slack != 0) user = (user + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
  auto* h = reinterpret_cast<Header*>(user) - 1;
  h->base = raw;
  h->size = size;
  h->tag = static_cast<std::uint32_t>(prof::current_component_tag());
  h->magic = kMagic;
  g_header_bytes.fetch_add(sizeof(Header) + slack, std::memory_order_relaxed);
  detail::record_alloc(size, static_cast<prof::ComponentTag>(h->tag));
  return reinterpret_cast<void*>(user);
}

void headered_free(void* ptr) noexcept {
  auto* h = static_cast<Header*>(ptr) - 1;
  if (h->magic != kMagic) {
    // Not one of ours (e.g. handed over from a non-headered allocator across
    // a library boundary). Free the pointer as-is rather than corrupting.
    std::free(ptr);
    return;
  }
  h->magic = 0;  // catch double frees as foreign-pointer frees, not UAF math
  detail::record_free(h->size, static_cast<prof::ComponentTag>(h->tag));
  std::free(h->base);
}

void* plain_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return ptr;
}

void* alloc_or_null(std::size_t size, std::size_t align) noexcept {
  if (enabled()) return headered_alloc(size, align);
  if (align > alignof(std::max_align_t)) return plain_aligned_alloc(size, align);
  return std::malloc(size == 0 ? 1 : size);
}

void* alloc_or_throw(std::size_t size, std::size_t align) {
  void* ptr = alloc_or_null(size, align);
  while (ptr == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
    ptr = alloc_or_null(size, align);
  }
  return ptr;
}

void dealloc(void* ptr) noexcept {
  if (ptr == nullptr) return;
  if (enabled()) {
    headered_free(ptr);
    return;
  }
  std::free(ptr);
}

}  // namespace
}  // namespace curb::obs::res

// -- global operator new/delete replacement ----------------------------------
//
// All eight new forms and all twelve delete forms route through the four
// helpers above. Sized deletes ignore the size argument: the header (when
// accounting is on) already records the requested size, and free() does not
// need it.

namespace res = curb::obs::res;

void* operator new(std::size_t size) {
  return res::alloc_or_throw(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return res::alloc_or_throw(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return res::alloc_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return res::alloc_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return res::alloc_or_null(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return res::alloc_or_null(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return res::alloc_or_null(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return res::alloc_or_null(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { res::dealloc(ptr); }
void operator delete[](void* ptr) noexcept { res::dealloc(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { res::dealloc(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { res::dealloc(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { res::dealloc(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { res::dealloc(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  res::dealloc(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  res::dealloc(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  res::dealloc(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  res::dealloc(ptr);
}
void operator delete(void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  res::dealloc(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  res::dealloc(ptr);
}
