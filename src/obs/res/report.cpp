#include "curb/obs/res/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "curb/prof/bench_diff.hpp"  // JsonValue / parse_json

namespace curb::obs::res {

namespace {

void write_counters(const TagCounters& c, std::ostream& out) {
  out << "{\"allocs\":" << c.allocs << ",\"frees\":" << c.frees
      << ",\"alloc_bytes\":" << c.alloc_bytes
      << ",\"freed_bytes\":" << c.freed_bytes << ",\"live_bytes\":" << c.live_bytes
      << ",\"peak_live_bytes\":" << c.peak_live_bytes << "}";
}

std::uint64_t read_u64(const prof::JsonValue& object, const char* key) {
  const prof::JsonValue* member = object.find(key);
  if (member == nullptr || member->type != prof::JsonValue::Type::kNumber) {
    throw std::runtime_error{std::string{"mem profile: missing counter \""} + key +
                             "\""};
  }
  return static_cast<std::uint64_t>(member->number);
}

TagCounters read_counters(const prof::JsonValue& object) {
  TagCounters c;
  c.allocs = read_u64(object, "allocs");
  c.frees = read_u64(object, "frees");
  c.alloc_bytes = read_u64(object, "alloc_bytes");
  c.freed_bytes = read_u64(object, "freed_bytes");
  c.live_bytes = read_u64(object, "live_bytes");
  c.peak_live_bytes = read_u64(object, "peak_live_bytes");
  return c;
}

bool all_zero(const TagCounters& c) {
  return c.allocs == 0 && c.frees == 0 && c.alloc_bytes == 0 && c.freed_bytes == 0 &&
         c.live_bytes == 0 && c.peak_live_bytes == 0;
}

double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

void write_mem_profile_json(const MemSnapshot& snap, std::ostream& out) {
  out << "{\n  \"total\": ";
  write_counters(snap.total, out);
  out << ",\n  \"header_bytes\": " << snap.header_bytes << ",\n  \"tags\": [";
  bool first = true;
  for (std::size_t i = 0; i < kTagCount; ++i) {
    if (all_zero(snap.tags[i])) continue;
    out << (first ? "" : ",") << "\n    {\"tag\": \""
        << prof::to_string(static_cast<prof::ComponentTag>(i)) << "\", \"counters\": ";
    write_counters(snap.tags[i], out);
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
}

MemSnapshot parse_mem_profile_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const prof::JsonValue root = prof::parse_json(buffer.str());
  if (root.type != prof::JsonValue::Type::kObject) {
    throw std::runtime_error{"mem profile: expected a top-level object"};
  }
  MemSnapshot snap;
  const prof::JsonValue* total = root.find("total");
  if (total == nullptr) throw std::runtime_error{"mem profile: missing \"total\""};
  snap.total = read_counters(*total);
  if (const prof::JsonValue* header = root.find("header_bytes");
      header != nullptr && header->type == prof::JsonValue::Type::kNumber) {
    snap.header_bytes = static_cast<std::uint64_t>(header->number);
  }
  const prof::JsonValue* tags = root.find("tags");
  if (tags == nullptr || tags->type != prof::JsonValue::Type::kArray) {
    throw std::runtime_error{"mem profile: missing \"tags\" array"};
  }
  for (const prof::JsonValue& element : tags->array) {
    const prof::JsonValue* name = element.find("tag");
    const prof::JsonValue* counters = element.find("counters");
    if (name == nullptr || name->type != prof::JsonValue::Type::kString ||
        counters == nullptr) {
      throw std::runtime_error{"mem profile: malformed tag entry"};
    }
    bool known = false;
    for (std::size_t i = 0; i < kTagCount; ++i) {
      if (name->str == prof::to_string(static_cast<prof::ComponentTag>(i))) {
        snap.tags[i] = read_counters(*counters);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error{"mem profile: unknown tag \"" + name->str + "\""};
    }
  }
  return snap;
}

void write_mem_report(const MemSnapshot& snap, std::ostream& out) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "memory profile: %.2f MiB allocated in %llu allocations, peak live "
                "%.2f MiB\n",
                mib(snap.total.alloc_bytes),
                static_cast<unsigned long long>(snap.total.allocs),
                mib(snap.total.peak_live_bytes));
  out << buf;
  if (snap.total.alloc_bytes == 0) {
    out << "(empty profile — run with CURB_MEM_ACCOUNT=1)\n";
    return;
  }
  std::snprintf(buf, sizeof buf,
                "attribution coverage: %.2f%% of allocated bytes tagged, header "
                "overhead %.2f MiB\n\n",
                100.0 * static_cast<double>(snap.tagged_alloc_bytes()) /
                    static_cast<double>(snap.total.alloc_bytes),
                mib(snap.header_bytes));
  out << buf;

  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < kTagCount; ++i) {
    if (!all_zero(snap.tags[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snap.tags[a].alloc_bytes > snap.tags[b].alloc_bytes;
  });

  out << "tag            alloc MiB      allocs   live MiB   peak MiB   share\n";
  for (const std::size_t i : order) {
    const TagCounters& c = snap.tags[i];
    std::snprintf(buf, sizeof buf, "%-12s %11.2f %11llu %10.2f %10.2f %6.2f%%\n",
                  prof::to_string(static_cast<prof::ComponentTag>(i)),
                  mib(c.alloc_bytes), static_cast<unsigned long long>(c.allocs),
                  mib(c.live_bytes), mib(c.peak_live_bytes),
                  100.0 * static_cast<double>(c.alloc_bytes) /
                      static_cast<double>(snap.total.alloc_bytes));
    out << buf;
  }
}

void write_mem_collapsed(const prof::Profiler& profiler,
                         const std::vector<FrameAlloc>& frames, std::ostream& out) {
  const auto& nodes = profiler.nodes();
  const std::size_t count = std::min(frames.size(), nodes.size());
  for (std::size_t i = 1; i < count; ++i) {
    if (frames[i].bytes == 0) continue;
    // Rebuild the root-to-frame path; labels reuse the collapsed-stack
    // sanitization rules (';'/whitespace -> '_') of the time exporter.
    std::vector<std::uint32_t> path;
    for (std::uint32_t n = static_cast<std::uint32_t>(i); n != 0; n = nodes[n].parent) {
      path.push_back(n);
    }
    for (std::size_t p = path.size(); p-- > 0;) {
      std::string frame = nodes[path[p]].label;
      if (frame.empty()) frame = "(anonymous)";
      for (char& c : frame) {
        if (c == ';' || c == ' ' || c == '\t' || c == '\n') c = '_';
      }
      out << frame << (p == 0 ? "" : ";");
    }
    out << " " << frames[i].bytes << "\n";
  }
}

std::size_t MemDiffResult::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [](const MemDelta& d) { return d.regressed; }));
}

MemDiffResult mem_diff(const MemSnapshot& base, const MemSnapshot& candidate,
                       const MemDiffOptions& options) {
  MemDiffResult result;
  const auto compare = [&](const std::string& name, std::uint64_t b,
                           std::uint64_t c) {
    ++result.metrics_compared;
    const double delta = static_cast<double>(c) - static_cast<double>(b);
    if (std::abs(delta) <= options.floor) return;
    const double denom = b != 0 ? static_cast<double>(b) : 1.0;
    const double delta_pct = 100.0 * delta / denom;
    if (std::abs(delta_pct) <= options.threshold_pct) return;
    MemDelta d;
    d.metric = name;
    d.base = b;
    d.candidate = c;
    d.delta_pct = delta_pct;
    d.regressed = delta > 0 && !options.warn_only;
    result.deltas.push_back(std::move(d));
  };
  const auto compare_tag = [&](const std::string& name, const TagCounters& b,
                               const TagCounters& c) {
    compare(name + ".alloc_bytes", b.alloc_bytes, c.alloc_bytes);
    compare(name + ".allocs", b.allocs, c.allocs);
    compare(name + ".peak_live_bytes", b.peak_live_bytes, c.peak_live_bytes);
  };
  compare_tag("total", base.total, candidate.total);
  for (std::size_t i = 0; i < kTagCount; ++i) {
    compare_tag(prof::to_string(static_cast<prof::ComponentTag>(i)), base.tags[i],
                candidate.tags[i]);
  }
  return result;
}

void write_mem_diff_text(const MemDiffResult& diff, std::ostream& out) {
  out << "mem-diff: " << diff.metrics_compared << " metrics compared\n";
  char buf[96];
  for (const MemDelta& d : diff.deltas) {
    std::snprintf(buf, sizeof buf, "%+.1f%% (%llu -> %llu)", d.delta_pct,
                  static_cast<unsigned long long>(d.base),
                  static_cast<unsigned long long>(d.candidate));
    out << "  " << (d.regressed ? "REGRESSED" : d.delta_pct > 0 ? "warn" : "improved")
        << "  " << d.metric << "  " << buf << "\n";
  }
  out << "regressions: " << diff.regressions() << "\n";
}

bool export_mem_profile(const MemSnapshot& snap, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write_mem_profile_json(snap, out);
  return static_cast<bool>(out);
}

bool export_mem_collapsed(const prof::Profiler& profiler,
                          const std::vector<FrameAlloc>& frames,
                          const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write_mem_collapsed(profiler, frames, out);
  return static_cast<bool>(out);
}

}  // namespace curb::obs::res
