#include "curb/obs/trace.hpp"

#include <algorithm>

namespace curb::obs {

std::uint64_t Tracer::track_index(std::string_view track) {
  const auto it = track_ids_.find(track);
  if (it != track_ids_.end()) return it->second;
  const std::uint64_t index = track_order_.size();
  track_order_.emplace_back(track);
  track_ids_.emplace(std::string{track}, index);
  open_stacks_.emplace_back();
  return index;
}

SpanId Tracer::begin(std::string_view name, std::string_view track, Attrs attrs) {
  if (!enabled_) return {};
  const std::uint64_t tidx = track_index(track);
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = open_stacks_[tidx].empty() ? 0 : open_stacks_[tidx].back();
  record.name = name;
  record.track = track;
  record.start = sim_->now();
  record.end = record.start;
  record.attrs = std::move(attrs);
  open_stacks_[tidx].push_back(record.id);
  spans_.push_back(std::move(record));
  return SpanId{spans_.back().id};
}

SpanId Tracer::begin_under(SpanId parent, std::string_view name, std::string_view track,
                           Attrs attrs) {
  if (!enabled_) return {};
  (void)track_index(track);  // register the track in first-use order
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = parent.value;
  record.name = name;
  record.track = track;
  record.start = sim_->now();
  record.end = record.start;
  record.attrs = std::move(attrs);
  spans_.push_back(std::move(record));  // not pushed on the open-stack
  return SpanId{spans_.back().id};
}

void Tracer::end(SpanId id) {
  if (!enabled_ || !id.valid() || id.value > spans_.size()) return;
  SpanRecord& record = spans_[id.value - 1];
  if (!record.open) return;
  record.open = false;
  record.end = sim_->now();
  auto& stack = open_stacks_[track_ids_.find(record.track)->second];
  stack.erase(std::remove(stack.begin(), stack.end(), id.value), stack.end());
}

bool Tracer::begin_keyed(std::uint64_t key, std::string_view name,
                         std::string_view track, Attrs attrs) {
  if (!enabled_ || keyed_open_.contains(key) || keyed_closed_.contains(key)) return false;
  // Keyed spans stitch one logical stage across components on a shared rail;
  // stack nesting under whatever else is open there would be meaningless, so
  // they are always roots.
  const SpanId id = begin_under(SpanId{}, name, track, std::move(attrs));
  keyed_open_.emplace(key, id.value);
  return true;
}

bool Tracer::end_keyed(std::uint64_t key) {
  if (!enabled_) return false;
  const auto it = keyed_open_.find(key);
  if (it == keyed_open_.end()) return false;
  end(SpanId{it->second});
  keyed_open_.erase(it);
  keyed_closed_.insert(key);
  return true;
}

void Tracer::instant(std::string_view name, std::string_view track, Attrs attrs) {
  if (!enabled_) return;
  end(begin(name, track, std::move(attrs)));
}

std::size_t Tracer::open_count() const {
  std::size_t open = 0;
  for (const auto& stack : open_stacks_) open += stack.size();
  return open;
}

void Tracer::clear() {
  spans_.clear();
  track_order_.clear();
  track_ids_.clear();
  open_stacks_.clear();
  keyed_open_.clear();
  keyed_closed_.clear();
}

}  // namespace curb::obs
