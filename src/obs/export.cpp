#include "curb/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

namespace curb::obs {

std::string json_double(double v) {
  char buf[64];
  // Integral values print as integers ("10", not "1e+01" — %.1g round-trips
  // it, so the shortest-precision scan below would pick the latter).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

namespace {

void write_attrs(std::ostream& out, const Attrs& attrs) {
  out << "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(attrs[i].first) << "\":\"" << json_escape(attrs[i].second)
        << "\"";
  }
  out << "}";
}

void write_labels(std::ostream& out, const Labels& labels) {
  out << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(labels[i].first) << "\":\"" << json_escape(labels[i].second)
        << "\"";
  }
  out << "}";
}

template <typename WriteFn>
bool export_to_file(const std::string& path, WriteFn write) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_spans_jsonl(const Tracer& tracer, std::ostream& out) {
  for (const SpanRecord& s : tracer.spans()) {
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent << ",\"name\":\""
        << json_escape(s.name) << "\",\"track\":\"" << json_escape(s.track)
        << "\",\"start_us\":" << s.start.as_micros() << ",\"end_us\":" << s.end.as_micros()
        << ",\"open\":" << (s.open ? "true" : "false") << ",\"attrs\":";
    write_attrs(out, s.attrs);
    out << "}\n";
  }
}

namespace {

/// Minimal parser for the exact JSONL subset write_spans_jsonl emits.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_{line} {}

  SpanRecord parse() {
    SpanRecord record;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "id") record.id = parse_uint();
      else if (key == "parent") record.parent = parse_uint();
      else if (key == "name") record.name = parse_string();
      else if (key == "track") record.track = parse_string();
      else if (key == "start_us") record.start = sim::SimTime::micros(parse_int());
      else if (key == "end_us") record.end = sim::SimTime::micros(parse_int());
      else if (key == "open") record.open = parse_bool();
      else if (key == "attrs") record.attrs = parse_attrs();
      else throw std::runtime_error{"parse_spans_jsonl: unknown key " + key};
    }
    expect('}');
    return record;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= s_.size()) throw std::runtime_error{"parse_spans_jsonl: truncated line"};
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error{"parse_spans_jsonl: malformed line"};
    ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error{"bad \\u escape"};
            try {
              c = static_cast<char>(std::stoi(s_.substr(pos_, 4), nullptr, 16));
            } catch (const std::exception&) {
              throw std::runtime_error{"parse_spans_jsonl: bad \\u escape"};
            }
            pos_ += 4;
            break;
          }
          default: throw std::runtime_error{"parse_spans_jsonl: bad escape"};
        }
      }
      out += c;
    }
    ++pos_;  // closing quote
    return out;
  }
  std::int64_t parse_int() {
    std::size_t used = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(s_.substr(pos_), &used);
    } catch (const std::exception&) {
      throw std::runtime_error{"parse_spans_jsonl: bad number"};
    }
    pos_ += used;
    return v;
  }
  std::uint64_t parse_uint() { return static_cast<std::uint64_t>(parse_int()); }
  bool parse_bool() {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw std::runtime_error{"parse_spans_jsonl: bad bool"};
  }
  Attrs parse_attrs() {
    Attrs attrs;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      std::string key = parse_string();
      expect(':');
      std::string value = parse_string();
      attrs.emplace_back(std::move(key), std::move(value));
    }
    expect('}');
    return attrs;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<SpanRecord> parse_spans_jsonl(std::istream& in) {
  std::vector<SpanRecord> spans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    spans.push_back(LineParser{line}.parse());
  }
  return spans;
}

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  write_chrome_trace(tracer, nullptr, out);
}

void write_chrome_trace(const Tracer& tracer, const MetricsRegistry* registry,
                        std::ostream& out) {
  // tid per track, in first-use order; clamp open spans to the trace end.
  sim::SimTime last = sim::SimTime::zero();
  for (const SpanRecord& s : tracer.spans()) {
    last = std::max(last, std::max(s.start, s.end));
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto& tracks = tracer.tracks();
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
         "\"curb\"}}";
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    out << ",{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(tracks[t])
        << "\"}}";
  }
  first = false;
  std::map<std::string, std::size_t> tids;
  for (std::size_t t = 0; t < tracks.size(); ++t) tids.emplace(tracks[t], t);
  for (const SpanRecord& s : tracer.spans()) {
    const std::size_t tid = tids.at(s.track);
    const sim::SimTime end = s.open ? last : s.end;
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"name\":\""
        << json_escape(s.name) << "\",\"cat\":\"curb\",\"ts\":" << s.start.as_micros()
        << ",\"dur\":" << (end - s.start).as_micros() << ",\"args\":{\"span_id\":\""
        << s.id << "\"";
    if (s.open) out << ",\"open\":\"true\"";
    for (const auto& [k, v] : s.attrs) {
      out << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    out << "}}";
  }
  if (registry != nullptr) {
    // Counter/gauge series as "C" events at the trace-end timestamp: the
    // registry snapshots final values (not time series), so each renders as
    // a one-sample counter track next to the spans.
    for (const auto& [key, m] : registry->metrics()) {
      std::string value;
      switch (m.kind) {
        case MetricsRegistry::Kind::kCounter:
          value = std::to_string(m.counter->value());
          break;
        case MetricsRegistry::Kind::kGauge:
          value = json_double(m.gauge->value());
          break;
        case MetricsRegistry::Kind::kHistogram:
          continue;  // histograms already export via write_metrics_json
      }
      if (!first) out << ",";
      first = false;
      out << "{\"ph\":\"C\",\"pid\":0,\"name\":\"" << json_escape(key)
          << "\",\"ts\":" << last.as_micros() << ",\"args\":{\"value\":" << value
          << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_metrics_json(const MetricsRegistry& registry, std::ostream& out) {
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, m] : registry.metrics()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"series\":\"" << json_escape(key) << "\",\"name\":\""
        << json_escape(m.name) << "\",\"labels\":";
    write_labels(out, m.labels);
    switch (m.kind) {
      case MetricsRegistry::Kind::kCounter:
        out << ",\"kind\":\"counter\",\"value\":" << m.counter->value();
        break;
      case MetricsRegistry::Kind::kGauge:
        out << ",\"kind\":\"gauge\",\"value\":" << json_double(m.gauge->value());
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        out << ",\"kind\":\"histogram\",\"count\":" << h.count()
            << ",\"sum\":" << json_double(h.sum()) << ",\"min\":" << json_double(h.min())
            << ",\"max\":" << json_double(h.max())
            << ",\"mean\":" << json_double(h.mean())
            << ",\"p50\":" << json_double(h.percentile(50))
            << ",\"p90\":" << json_double(h.percentile(90))
            << ",\"p99\":" << json_double(h.percentile(99)) << ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (h.count_at(i) == 0) continue;
          if (!first_bucket) out << ",";
          first_bucket = false;
          out << "{\"le\":";
          if (i + 1 == h.bucket_count()) {
            out << "\"+inf\"";
          } else {
            out << json_double(h.upper_bound(i));
          }
          out << ",\"count\":" << h.count_at(i) << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "\n]}\n";
}

void write_metrics_csv(const MetricsRegistry& registry, std::ostream& out) {
  out << "series,kind,count,sum,min,max,mean,p50,p90,p99,value\n";
  for (const auto& [key, m] : registry.metrics()) {
    // RFC 4180: quotes inside a quoted field are doubled (label values carry
    // literal quotes, e.g. net.delay_us{category="AGREE"}).
    out << '"';
    for (const char c : key) {
      if (c == '"') out << '"';
      out << c;
    }
    out << "\",";
    switch (m.kind) {
      case MetricsRegistry::Kind::kCounter:
        out << "counter,,,,,,,,," << m.counter->value() << "\n";
        break;
      case MetricsRegistry::Kind::kGauge:
        out << "gauge,,,,,,,,," << json_double(m.gauge->value()) << "\n";
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        out << "histogram," << h.count() << "," << json_double(h.sum()) << ","
            << json_double(h.min()) << "," << json_double(h.max()) << ","
            << json_double(h.mean()) << "," << json_double(h.percentile(50)) << ","
            << json_double(h.percentile(90)) << "," << json_double(h.percentile(99))
            << ",\n";
        break;
      }
    }
  }
}

bool export_spans_jsonl(const Tracer& tracer, const std::string& path) {
  return export_to_file(path, [&](std::ostream& out) { write_spans_jsonl(tracer, out); });
}

bool export_chrome_trace(const Tracer& tracer, const std::string& path) {
  return export_to_file(path, [&](std::ostream& out) { write_chrome_trace(tracer, out); });
}

bool export_chrome_trace(const Tracer& tracer, const MetricsRegistry* registry,
                         const std::string& path) {
  return export_to_file(
      path, [&](std::ostream& out) { write_chrome_trace(tracer, registry, out); });
}

bool export_metrics_json(const MetricsRegistry& registry, const std::string& path) {
  return export_to_file(path,
                        [&](std::ostream& out) { write_metrics_json(registry, out); });
}

bool export_metrics_csv(const MetricsRegistry& registry, const std::string& path) {
  return export_to_file(path,
                        [&](std::ostream& out) { write_metrics_csv(registry, out); });
}

}  // namespace curb::obs
