#include "curb/obs/timeseries.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "curb/obs/export.hpp"

namespace curb::obs {

namespace {

/// Per-window percentile from histogram bucket-count deltas, interpolated
/// inside the containing bucket. The window has no exact min/max, so the
/// lowest bucket starts at 0 and the overflow bucket is clamped to the
/// run-cumulative max (the only bound the registry still knows).
double window_percentile(const Histogram& h, const std::vector<std::uint64_t>& delta,
                         std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double rank = q / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0) continue;
    const auto before = static_cast<double>(seen);
    seen += delta[i];
    if (static_cast<double>(seen) < rank) continue;
    const double lo = i == 0 ? 0.0 : h.upper_bound(i - 1);
    const bool overflow = i + 1 == delta.size();
    const double hi = overflow ? std::max(lo, h.max()) : h.upper_bound(i);
    const double frac = (rank - before) / static_cast<double>(delta[i]);
    return lo + frac * (hi - lo);
  }
  return h.max();
}

}  // namespace

const char* to_string(TsValue::Kind kind) {
  switch (kind) {
    case TsValue::Kind::kRate: return "rate";
    case TsValue::Kind::kGauge: return "gauge";
    case TsValue::Kind::kHist: return "hist";
  }
  return "?";
}

const TsValue* TsWindow::find(const std::string& key) const {
  const auto it = std::lower_bound(
      series.begin(), series.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == series.end() || it->first != key) return nullptr;
  return &it->second;
}

TsCollector::TsCollector(Observatory& obs, sim::Simulator& sim, TsOptions opts)
    : obs_{obs}, sim_{sim}, opts_{opts} {
  if (opts_.window <= sim::SimTime::zero()) {
    throw std::invalid_argument{"TsCollector: window width must be positive"};
  }
  if (opts_.retention == 0) {
    throw std::invalid_argument{"TsCollector: retention must be >= 1"};
  }
}

TsCollector::~TsCollector() { finalize(); }

void TsCollector::set_presample_hook(std::function<void()> hook) {
  presample_ = std::move(hook);
}

void TsCollector::set_window_callback(WindowCallback cb) { on_window_ = std::move(cb); }

bool TsCollector::set_output(const std::string& path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  streaming_ = static_cast<bool>(out_);
  return streaming_;
}

void TsCollector::start() {
  if (started_) return;
  started_ = true;
  window_start_ = sim_.now();
  tick_ = sim_.schedule(opts_.window, [this] { on_tick(); });
}

void TsCollector::on_tick() {
  close_window(window_start_ + opts_.window, /*partial=*/false);
  tick_ = sim_.schedule(opts_.window, [this] { on_tick(); });
}

void TsCollector::finalize() {
  if (!started_ || finalized_) return;
  finalized_ = true;
  sim_.cancel(tick_);
  // Close the trailing partial window. A zero-length window can still carry
  // data: an event at exactly the last boundary may run after that
  // boundary's tick (insertion order) and record into the registry — only
  // skip the close when nothing moved since the last one.
  if (sim_.now() > window_start_ ||
      (sim_.now() == window_start_ && has_unsampled_deltas())) {
    close_window(sim_.now(), /*partial=*/true);
  }
  if (streaming_) {
    out_.flush();
    out_.close();
    streaming_ = false;
  }
}

bool TsCollector::has_unsampled_deltas() const {
  for (const auto& [key, metric] : obs_.metrics.metrics()) {
    const auto it = last_.find(key);
    switch (metric.kind) {
      case MetricsRegistry::Kind::kCounter:
        if (static_cast<double>(metric.counter->value()) !=
            (it != last_.end() ? it->second.value : 0.0)) {
          return true;
        }
        break;
      case MetricsRegistry::Kind::kGauge:
        break;  // levels resample identically; no new information
      case MetricsRegistry::Kind::kHistogram:
        if (metric.histogram->count() !=
            (it != last_.end() ? it->second.count : 0)) {
          return true;
        }
        break;
    }
  }
  return false;
}

void TsCollector::close_window(sim::SimTime end, bool partial) {
  if (presample_) presample_();

  TsWindow window;
  window.index = next_index_;
  window.start = window_start_;
  window.end = end;
  window.partial = partial;

  // Registry iteration is sorted by series key, so window.series is too —
  // which keeps the JSONL byte-stable and makes TsWindow::find a bisect.
  for (const auto& [key, metric] : obs_.metrics.metrics()) {
    Cumulative& prev = last_[key];
    switch (metric.kind) {
      case MetricsRegistry::Kind::kCounter: {
        const auto now = static_cast<double>(metric.counter->value());
        const double delta = now - prev.value;
        prev.value = now;
        if (delta != 0.0) {
          TsValue v;
          v.kind = TsValue::Kind::kRate;
          v.value = delta;
          window.series.emplace_back(key, v);
        }
        break;
      }
      case MetricsRegistry::Kind::kGauge: {
        // Sampled every window: a level is meaningful even when unchanged.
        TsValue v;
        v.kind = TsValue::Kind::kGauge;
        v.value = metric.gauge->value();
        prev.value = v.value;
        window.series.emplace_back(key, v);
        break;
      }
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        const std::uint64_t dcount = h.count() - prev.count;
        if (prev.buckets.size() != h.bucket_count()) {
          prev.buckets.assign(h.bucket_count(), 0);
        }
        if (dcount > 0) {
          std::vector<std::uint64_t> delta(h.bucket_count());
          for (std::size_t i = 0; i < h.bucket_count(); ++i) {
            delta[i] = h.count_at(i) - prev.buckets[i];
          }
          TsValue v;
          v.kind = TsValue::Kind::kHist;
          v.count = dcount;
          v.sum = h.sum() - prev.sum;
          v.p50 = window_percentile(h, delta, dcount, 50.0);
          v.p90 = window_percentile(h, delta, dcount, 90.0);
          v.p99 = window_percentile(h, delta, dcount, 99.0);
          window.series.emplace_back(key, v);
        }
        prev.count = h.count();
        prev.sum = h.sum();
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          prev.buckets[i] = h.count_at(i);
        }
        break;
      }
    }
  }

  windows_.push_back(std::move(window));
  ++windows_closed_;
  window_start_ = end;
  ++next_index_;

  if (streaming_) {
    write_ts_window_json(windows_.back(), out_);
    out_ << "\n";
    out_.flush();  // live tailing (curb-watch --follow) sees whole lines
  }
  if (on_window_) on_window_(*this, windows_.back());
  while (windows_.size() > opts_.retention) windows_.pop_front();
}

void write_ts_window_json(const TsWindow& window, std::ostream& out) {
  out << "{\"w\":" << window.index << ",\"start_us\":" << window.start.as_micros()
      << ",\"end_us\":" << window.end.as_micros()
      << ",\"partial\":" << (window.partial ? "true" : "false") << ",\"series\":{";
  bool first = true;
  for (const auto& [key, v] : window.series) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":{\"kind\":\"" << to_string(v.kind) << "\"";
    switch (v.kind) {
      case TsValue::Kind::kRate:
      case TsValue::Kind::kGauge:
        out << ",\"value\":" << json_double(v.value);
        break;
      case TsValue::Kind::kHist:
        out << ",\"count\":" << v.count << ",\"sum\":" << json_double(v.sum)
            << ",\"p50\":" << json_double(v.p50) << ",\"p90\":" << json_double(v.p90)
            << ",\"p99\":" << json_double(v.p99);
        break;
    }
    out << "}";
  }
  out << "}}";
}

namespace {

/// Minimal parser for the exact JSON subset write_ts_window_json emits.
class TsLineParser {
 public:
  explicit TsLineParser(const std::string& line) : s_{line} {}

  TsWindow parse() {
    TsWindow window;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "w") window.index = static_cast<std::uint64_t>(parse_number());
      else if (key == "start_us") window.start = sim::SimTime::micros(parse_int());
      else if (key == "end_us") window.end = sim::SimTime::micros(parse_int());
      else if (key == "partial") window.partial = parse_bool();
      else if (key == "series") window.series = parse_series();
      else throw std::runtime_error{"parse_ts_jsonl: unknown key " + key};
    }
    expect('}');
    return window;
  }

 private:
  std::vector<std::pair<std::string, TsValue>> parse_series() {
    std::vector<std::pair<std::string, TsValue>> out;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      out.emplace_back(key, parse_value());
    }
    expect('}');
    return out;
  }

  TsValue parse_value() {
    TsValue v;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "kind") {
        const std::string kind = parse_string();
        if (kind == "rate") v.kind = TsValue::Kind::kRate;
        else if (kind == "gauge") v.kind = TsValue::Kind::kGauge;
        else if (kind == "hist") v.kind = TsValue::Kind::kHist;
        else throw std::runtime_error{"parse_ts_jsonl: unknown kind " + kind};
      } else if (key == "value") v.value = parse_number();
      else if (key == "count") v.count = static_cast<std::uint64_t>(parse_number());
      else if (key == "sum") v.sum = parse_number();
      else if (key == "p50") v.p50 = parse_number();
      else if (key == "p90") v.p90 = parse_number();
      else if (key == "p99") v.p99 = parse_number();
      else throw std::runtime_error{"parse_ts_jsonl: unknown value key " + key};
    }
    expect('}');
    return v;
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= s_.size()) throw std::runtime_error{"parse_ts_jsonl: truncated line"};
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error{std::string{"parse_ts_jsonl: expected '"} + c + "'"};
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              throw std::runtime_error{"parse_ts_jsonl: bad \\u escape"};
            }
            const unsigned code = std::stoul(s_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            out += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error{"parse_ts_jsonl: bad escape"};
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  bool parse_bool() {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw std::runtime_error{"parse_ts_jsonl: expected bool"};
  }

  std::int64_t parse_int() { return static_cast<std::int64_t>(parse_number()); }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error{"parse_ts_jsonl: expected number"};
    return std::stod(s_.substr(start, pos_ - start));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TsWindow> parse_ts_jsonl(std::istream& in) {
  std::vector<TsWindow> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A live producer may have been caught mid-line; only complete objects
    // (closed by '}') are parsed, anything else is a hard error unless it
    // is the trailing partial line.
    if (line.back() != '}') {
      if (in.peek() == std::istream::traits_type::eof()) break;
      throw std::runtime_error{"parse_ts_jsonl: malformed line"};
    }
    out.push_back(TsLineParser{line}.parse());
  }
  return out;
}

}  // namespace curb::obs
