#include "curb/obs/analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "curb/obs/net/complexity.hpp"

namespace curb::obs {

namespace {

using TxnKey = std::pair<std::uint32_t, std::uint64_t>;  // (switch, request)

const std::string* find_attr(const SpanRecord& s, std::string_view key) {
  for (const auto& [k, v] : s.attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Parse a `txns` attr ("switch:request,switch:request,...") into keys.
std::vector<TxnKey> parse_txns(const std::string& attr) {
  std::vector<TxnKey> keys;
  std::size_t pos = 0;
  while (pos < attr.size()) {
    std::size_t comma = attr.find(',', pos);
    if (comma == std::string::npos) comma = attr.size();
    const std::string pair = attr.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) continue;
    std::uint64_t sw = 0;
    std::uint64_t request = 0;
    if (parse_u64(pair.substr(0, colon), sw) && parse_u64(pair.substr(colon + 1), request)) {
      keys.emplace_back(static_cast<std::uint32_t>(sw), request);
    }
  }
  return keys;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

LatencyStats make_latency_stats(std::vector<std::int64_t> samples_us) {
  LatencyStats stats;
  if (samples_us.empty()) return stats;
  std::sort(samples_us.begin(), samples_us.end());
  stats.count = samples_us.size();
  for (const std::int64_t v : samples_us) stats.sum_us += v;
  stats.min_us = samples_us.front();
  stats.max_us = samples_us.back();
  // Nearest-rank percentiles: exact, deterministic, no interpolation.
  const auto rank = [&](double q) {
    const auto n = static_cast<double>(samples_us.size());
    auto idx = static_cast<std::size_t>(q / 100.0 * n + 0.999999);
    if (idx == 0) idx = 1;
    if (idx > samples_us.size()) idx = samples_us.size();
    return samples_us[idx - 1];
  };
  stats.p50_us = rank(50);
  stats.p90_us = rank(90);
  stats.p99_us = rank(99);
  return stats;
}

TraceAnalysis TraceAnalysis::from_tracer(const Tracer& tracer) {
  return TraceAnalysis{tracer.spans()};
}

TraceAnalysis::TraceAnalysis(std::vector<SpanRecord> spans) : spans_{std::move(spans)} {
  reconstruct_transactions();
  detect_anomalies();
  aggregate();
}

void TraceAnalysis::reconstruct_transactions() {
  // --- Stage indexes keyed by the contract's join attrs -------------------
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& s : spans_) {
    by_id.emplace(s.id, &s);
    if (s.parent != 0) children[s.parent].push_back(&s);
  }

  // Representative consensus slot per payload digest: the earliest-starting
  // closed slot (the proposing leader accepts first). View-change
  // re-proposals of the same payload produce later slots and lose the tie.
  std::map<std::string, const SpanRecord*> intra_by_digest;
  std::map<std::string, const SpanRecord*> final_by_digest;
  const auto consider = [](std::map<std::string, const SpanRecord*>& index,
                           const std::string& digest, const SpanRecord& s) {
    auto [it, inserted] = index.emplace(digest, &s);
    if (inserted) return;
    const SpanRecord& held = *it->second;
    if (s.start < held.start || (s.start == held.start && s.id < held.id)) {
      it->second = &s;
    }
  };

  // First AGREE / block_commit stage per transaction key.
  std::map<TxnKey, const SpanRecord*> agree_by_txn;
  std::map<TxnKey, const SpanRecord*> block_by_txn;

  for (const SpanRecord& s : spans_) {
    if (s.name == "intra_pbft" || s.name == "final_pbft") {
      if (s.open) continue;  // stalled slots are anomalies, not milestones
      if (const std::string* digest = find_attr(s, "digest")) {
        consider(s.name == "intra_pbft" ? intra_by_digest : final_by_digest, *digest, s);
      }
    } else if (s.name == "agree" || s.name == "block_commit") {
      if (const std::string* txns = find_attr(s, "txns")) {
        auto& index = s.name == "agree" ? agree_by_txn : block_by_txn;
        for (const TxnKey& key : parse_txns(*txns)) {
          const auto [it, inserted] = index.emplace(key, &s);
          if (!inserted && s.id < it->second->id) it->second = &s;
        }
      }
    }
  }

  // --- Per-root reconstruction -------------------------------------------
  for (const SpanRecord& root : spans_) {
    if (root.name != "pkt_in" && root.name != "reass_request") continue;
    TransactionTrace txn;
    txn.kind = root.name;
    txn.root_span = root.id;
    txn.start_us = root.start.as_micros();
    txn.end_us = root.end.as_micros();
    txn.complete = !root.open;
    const std::string* request_attr = find_attr(root, "request");
    const std::string* switch_attr = find_attr(root, "switch");
    std::uint64_t sw = 0;
    if (request_attr == nullptr || !parse_u64(*request_attr, txn.request_id)) continue;
    if (switch_attr != nullptr && parse_u64(*switch_attr, sw)) {
      txn.switch_id = static_cast<std::uint32_t>(sw);
    } else if (root.track.rfind("sw-", 0) == 0 && parse_u64(root.track.substr(3), sw)) {
      txn.switch_id = static_cast<std::uint32_t>(sw);  // pre-contract traces
    } else {
      continue;
    }
    const TxnKey key{txn.switch_id, txn.request_id};

    const auto child_it = children.find(root.id);
    if (child_it != children.end()) {
      for (const SpanRecord* c : child_it->second) {
        if (c->name == "reply_quorum" && txn.reply_span == 0) txn.reply_span = c->id;
      }
    }

    const SpanRecord* agree = nullptr;
    const SpanRecord* block = nullptr;
    const SpanRecord* intra = nullptr;
    const SpanRecord* final_slot = nullptr;
    if (const auto it = agree_by_txn.find(key); it != agree_by_txn.end()) {
      agree = it->second;
      txn.agree_span = agree->id;
      if (const std::string* inst = find_attr(*agree, "instance")) {
        std::uint64_t v = 0;
        if (parse_u64(*inst, v)) {
          txn.instance = static_cast<std::uint32_t>(v);
          txn.has_instance = true;
        }
      }
      if (const std::string* digest = find_attr(*agree, "digest")) {
        if (const auto slot = intra_by_digest.find(*digest); slot != intra_by_digest.end()) {
          intra = slot->second;
          txn.intra_span = intra->id;
        }
      }
    }
    if (const auto it = block_by_txn.find(key); it != block_by_txn.end()) {
      block = it->second;
      txn.block_span = block->id;
      if (const std::string* digest = find_attr(*block, "digest")) {
        if (const auto slot = final_by_digest.find(*digest); slot != final_by_digest.end()) {
          final_slot = slot->second;
          txn.final_span = final_slot->id;
        }
      }
    }

    // --- Critical path: clamped-monotonic milestone walk. A phase whose
    // closing milestone was never observed folds into the next observed
    // phase; negative inter-phase gaps (a stage reported marginally before
    // its predecessor closed) are clamped and tallied in overlap_us.
    if (txn.complete) {
      struct Milestone {
        Phase phase;
        bool present;
        std::int64_t at_us;
        std::uint64_t span;
      };
      const std::array<Milestone, 6> milestones{{
          {Phase::kDispatch, intra != nullptr,
           intra != nullptr ? intra->start.as_micros() : 0,
           intra != nullptr ? intra->id : 0},
          {Phase::kIntraPbft, agree != nullptr,
           agree != nullptr ? agree->start.as_micros() : 0,
           agree != nullptr ? agree->id : 0},
          {Phase::kAgree, agree != nullptr && !agree->open,
           agree != nullptr ? agree->end.as_micros() : 0,
           agree != nullptr ? agree->id : 0},
          {Phase::kBlockWait, block != nullptr,
           block != nullptr ? block->start.as_micros() : 0,
           block != nullptr ? block->id : 0},
          {Phase::kFinalPbft, block != nullptr && !block->open,
           block != nullptr ? block->end.as_micros() : 0,
           block != nullptr ? block->id : 0},
          {Phase::kReply, true, txn.end_us, txn.reply_span},
      }};
      std::int64_t cursor = txn.start_us;
      for (const Milestone& m : milestones) {
        if (!m.present) continue;
        const std::int64_t end = std::max(cursor, m.at_us);
        if (m.at_us < cursor) txn.overlap_us += cursor - m.at_us;
        txn.segments.push_back(Segment{m.phase, cursor, end, m.span});
        cursor = end;
      }
    }
    transactions_.push_back(std::move(txn));
  }

  std::sort(transactions_.begin(), transactions_.end(),
            [](const TransactionTrace& a, const TransactionTrace& b) {
              return a.root_span < b.root_span;
            });
}

void TraceAnalysis::detect_anomalies() {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans_) by_id.emplace(s.id, &s);

  // The set of transactions some block_commit sealed: an AGREE quorum whose
  // transactions never reached a block is a protocol conformance failure.
  std::set<std::uint64_t> sealed_agrees;
  {
    std::map<TxnKey, std::vector<std::uint64_t>> agree_txns;
    for (const SpanRecord& s : spans_) {
      if (s.name != "agree") continue;
      if (const std::string* txns = find_attr(s, "txns")) {
        for (const TxnKey& key : parse_txns(*txns)) agree_txns[key].push_back(s.id);
      }
    }
    for (const SpanRecord& s : spans_) {
      if (s.name != "block_commit") continue;
      if (const std::string* txns = find_attr(s, "txns")) {
        for (const TxnKey& key : parse_txns(*txns)) {
          if (const auto it = agree_txns.find(key); it != agree_txns.end()) {
            sealed_agrees.insert(it->second.begin(), it->second.end());
          }
        }
      }
    }
  }

  const auto attr_or = [](const SpanRecord& s, std::string_view key,
                          const char* fallback) -> std::string {
    const std::string* v = find_attr(s, key);
    return v != nullptr ? *v : fallback;
  };

  for (const SpanRecord& s : spans_) {
    // --- Open spans at export time ------------------------------------
    if (s.open) {
      if (s.name == "pkt_in" || s.name == "reass_request") {
        findings_.push_back(
            {"unserved_request", Finding::Severity::kError,
             s.name + " request " + attr_or(s, "request", "?") + " on switch " +
                 attr_or(s, "switch", "?") + " never reached a reply quorum",
             s.track,
             {s.id},
             s.start.as_micros()});
      } else if (s.name == "reply_quorum") {
        findings_.push_back(
            {"short_reply_quorum", Finding::Severity::kError,
             "reply quorum for request " + attr_or(s, "request", "?") + " on switch " +
                 attr_or(s, "switch", "?") + " saw a first REPLY but never f+1",
             s.track,
             {s.id},
             s.start.as_micros()});
      } else if (s.name == "agree") {
        findings_.push_back({"orphaned_agree", Finding::Severity::kError,
                             "AGREE stage for instance " + attr_or(s, "instance", "?") +
                                 " (digest " + attr_or(s, "digest", "?") +
                                 ") never assembled f+1 matching AGREEs",
                             s.track,
                             {s.id},
                             s.start.as_micros()});
      } else if (s.name == "block_commit") {
        findings_.push_back({"uncommitted_block", Finding::Severity::kError,
                             "block at height " + attr_or(s, "height", "?") +
                                 " was proposed but never applied by any controller",
                             s.track,
                             {s.id},
                             s.start.as_micros()});
      } else if (s.name == "intra_pbft" || s.name == "final_pbft") {
        findings_.push_back({"stalled_round", Finding::Severity::kError,
                             s.name + " slot seq=" + attr_or(s, "seq", "?") + " view=" +
                                 attr_or(s, "view", "?") + " on " + s.track +
                                 " accepted a proposal but never executed",
                             s.track,
                             {s.id},
                             s.start.as_micros()});
      } else {
        findings_.push_back({"open_span", Finding::Severity::kWarning,
                             "span '" + s.name + "' still open at export",
                             s.track,
                             {s.id},
                             s.start.as_micros()});
      }
      continue;
    }

    // --- Instants: timeouts and view changes --------------------------
    if (ends_with(s.name, ".timeout")) {
      findings_.push_back({"consensus_timeout", Finding::Severity::kWarning,
                           s.name + " seq=" + attr_or(s, "seq", "?") + " on " + s.track +
                               ": commit timeout fired, view change initiated",
                           s.track,
                           {s.id},
                           s.start.as_micros()});
    } else if (ends_with(s.name, ".view_change")) {
      findings_.push_back({"view_change", Finding::Severity::kWarning,
                           s.name + " on " + s.track + ": view " +
                               attr_or(s, "view", "?") +
                               " installed after the previous view stalled",
                           s.track,
                           {s.id},
                           s.start.as_micros()});
    } else if (s.name == "agree" && !sealed_agrees.contains(s.id)) {
      findings_.push_back({"unsealed_agree", Finding::Severity::kWarning,
                           "AGREE quorum for instance " + attr_or(s, "instance", "?") +
                               " (digest " + attr_or(s, "digest", "?") +
                               ") was never sealed into a committed block",
                           s.track,
                           {s.id},
                           s.end.as_micros()});
    }

    // --- Structural checks --------------------------------------------
    if (s.parent != 0) {
      const auto parent_it = by_id.find(s.parent);
      if (parent_it == by_id.end()) {
        findings_.push_back({"dangling_parent", Finding::Severity::kWarning,
                             "span '" + s.name + "' references missing parent span " +
                                 std::to_string(s.parent),
                             s.track,
                             {s.id},
                             s.start.as_micros()});
      } else {
        const SpanRecord& parent = *parent_it->second;
        const bool starts_early = s.start < parent.start;
        const bool ends_late = !parent.open && s.end > parent.end;
        if (starts_early || ends_late) {
          findings_.push_back(
              {"phase_order_violation", Finding::Severity::kError,
               "phase '" + s.name + "' runs outside its parent '" + parent.name +
                   "' (" + (starts_early ? "starts before it" : "ends after it") + ")",
               s.track,
               {s.id, parent.id},
               s.start.as_micros()});
        }
      }
    }
    if (s.end < s.start) {
      findings_.push_back({"phase_order_violation", Finding::Severity::kError,
                           "span '" + s.name + "' ends before it starts",
                           s.track,
                           {s.id},
                           s.start.as_micros()});
    }
  }

  // Complete transactions must carry a reply-quorum stage: acceptance
  // without one means the f+1 REPLY wave was never traced.
  for (const TransactionTrace& txn : transactions_) {
    if (txn.complete && txn.reply_span == 0) {
      findings_.push_back({"missing_reply_quorum", Finding::Severity::kWarning,
                           txn.kind + " request " + std::to_string(txn.request_id) +
                               " on switch " + std::to_string(txn.switch_id) +
                               " was accepted without a traced reply quorum",
                           "sw-" + std::to_string(txn.switch_id),
                           {txn.root_span},
                           txn.start_us});
    }
  }

  // Theorem 1 message-complexity audit: each round_complexity instant
  // carries the round's measured wire counts and the deployment shape
  // (c, k, N, R, B); the bound is recomputed here from the shape — never
  // trusted from the emitter — and PKT-IN rounds that exceed it are flagged
  // (duplicate or stacked protocol traffic). Reassignment rounds run the
  // OP() pipeline the theorem does not model and are reported only.
  for (const net::RoundComplexity& rc : net::extract_round_complexity(spans_)) {
    if (!rc.exceeds) continue;
    // Name what tripped: either a specific phase over its phase bound, or
    // the control-plane total over the summed bound.
    struct Phase {
      const char* name;
      std::uint64_t net::PhasePrediction::* field;
    };
    static constexpr Phase kPhases[] = {
        {"PKT-IN", &net::PhasePrediction::pkt_in},
        {"intra-pbft", &net::PhasePrediction::intra_pbft},
        {"AGREE", &net::PhasePrediction::agree},
        {"final-pbft", &net::PhasePrediction::final_pbft},
        {"FINAL-AGREE", &net::PhasePrediction::final_agree},
        {"REPLY", &net::PhasePrediction::reply},
    };
    std::string what;
    for (const Phase& phase : kPhases) {
      const std::uint64_t got = rc.phase_measured.*phase.field;
      const std::uint64_t cap = rc.bound.*phase.field;
      if (got <= cap) continue;
      if (!what.empty()) what += ", ";
      what += std::string{phase.name} + " " + std::to_string(got) + " > " +
              std::to_string(cap);
    }
    if (what.empty()) {
      what = "total " + std::to_string(rc.control_total) + " > " +
             std::to_string(rc.bound.total);
    }
    findings_.push_back(
        {"complexity_bound", Finding::Severity::kError,
         "round " + std::to_string(rc.round) +
             " exceeds the Theorem 1 analytic bound (" + what + ") for c=" +
             std::to_string(rc.params.c) + " gmax=" +
             std::to_string(rc.params.group_bound()) + " k=" +
             std::to_string(rc.params.k) + " N=" + std::to_string(rc.params.n) +
             " R=" + std::to_string(rc.params.requests) + " B=" +
             std::to_string(rc.params.blocks) +
             (rc.dup_wire > 0
                  ? " (" + std::to_string(rc.dup_wire) + " duplicate wire deliveries)"
                  : ""),
         "net",
         {rc.span_id},
         rc.at_us});
  }

  // Fault-injection markers (curb::fault records a "fault.<kind>" instant
  // per injected fault): one aggregated finding per fault kind, so a faulted
  // run is flagged loudly without drowning the report in per-message noise.
  {
    struct FaultGroup {
      std::uint64_t count = 0;
      std::int64_t first_us = 0;
      std::uint64_t first_span = 0;
    };
    std::map<std::string, FaultGroup> fault_groups;
    for (const SpanRecord& s : spans_) {
      if (!s.name.starts_with("fault.")) continue;
      auto [it, inserted] = fault_groups.try_emplace(s.name);
      if (inserted) {
        it->second.first_us = s.start.as_micros();
        it->second.first_span = s.id;
      }
      ++it->second.count;
    }
    for (const auto& [name, group] : fault_groups) {
      findings_.push_back({"fault_injection", Finding::Severity::kWarning,
                           name + " injected " + std::to_string(group.count) +
                               " time(s) — this run was deliberately faulted",
                           "fault",
                           {group.first_span},
                           group.first_us});
    }
  }

  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.at_us != b.at_us) return a.at_us < b.at_us;
                     const std::uint64_t sa = a.spans.empty() ? 0 : a.spans.front();
                     const std::uint64_t sb = b.spans.empty() ? 0 : b.spans.front();
                     if (sa != sb) return sa < sb;
                     return a.detector < b.detector;
                   });
}

void TraceAnalysis::aggregate() {
  std::vector<std::int64_t> e2e_samples;
  std::map<Phase, std::vector<std::int64_t>> phase_samples;
  std::map<std::uint32_t, std::vector<std::int64_t>> group_samples;
  for (const TransactionTrace& txn : transactions_) {
    if (!txn.complete) continue;
    ++complete_count_;
    e2e_samples.push_back(txn.latency_us());
    for (const Segment& seg : txn.segments) {
      phase_samples[seg.phase].push_back(seg.duration_us());
    }
    if (txn.has_instance) group_samples[txn.instance].push_back(txn.latency_us());
  }
  e2e_ = make_latency_stats(std::move(e2e_samples));
  for (auto& [phase, samples] : phase_samples) {
    phase_stats_.emplace(phase, make_latency_stats(std::move(samples)));
  }
  for (auto& [group, samples] : group_samples) {
    group_stats_.emplace(group, make_latency_stats(std::move(samples)));
  }
}

}  // namespace curb::obs
