#include "curb/obs/net/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "curb/obs/export.hpp"

namespace curb::obs::net {

namespace {

double link_util(const LinkEntry& link, const LinkReportOptions& options) {
  if (options.elapsed_s <= 0.0 || options.bandwidth_bps <= 0.0) return 0.0;
  return static_cast<double>(link.bytes) * 8.0 / options.bandwidth_bps /
         options.elapsed_s;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void write_link_matrix_json(const LinkStats& stats, const NodeNameFn& name,
                            const LinkReportOptions& options, std::ostream& out) {
  out << "{\"total\":{\"msgs\":" << stats.total_msgs()
      << ",\"bytes\":" << stats.total_bytes() << ",\"dups\":" << stats.total_dups()
      << ",\"drops\":" << stats.total_drops()
      << ",\"links\":" << stats.links().size()
      << ",\"bandwidth_bps\":" << json_double(options.bandwidth_bps)
      << ",\"elapsed_s\":" << json_double(options.elapsed_s) << "}";
  out << ",\"categories\":{";
  bool first = true;
  for (const auto& [category, totals] : stats.categories()) {
    out << (first ? "" : ",") << "\"" << json_escape(category)
        << "\":{\"msgs\":" << totals.msgs << ",\"bytes\":" << totals.bytes
        << ",\"dups\":" << totals.dups << "}";
    first = false;
  }
  out << "},\"links\":[";
  first = true;
  for (const auto& [key, link] : stats.links()) {
    out << (first ? "" : ",") << "{\"src\":" << key.src << ",\"src_name\":\""
        << json_escape(name(key.src)) << "\",\"dst\":" << key.dst
        << ",\"dst_name\":\"" << json_escape(name(key.dst))
        << "\",\"msgs\":" << link.msgs << ",\"bytes\":" << link.bytes
        << ",\"dups\":" << link.dups << ",\"drops\":" << link.drops
        << ",\"util\":" << json_double(link_util(link, options))
        << ",\"by_category\":{";
    bool first_cat = true;
    for (const auto& [category, count] : link.by_category) {
      out << (first_cat ? "" : ",") << "\"" << json_escape(category)
          << "\":" << count;
      first_cat = false;
    }
    out << "}}";
    first = false;
  }
  out << "]}\n";
}

void write_link_matrix_csv(const LinkStats& stats, const NodeNameFn& name,
                           const LinkReportOptions& options, std::ostream& out) {
  out << "src,src_name,dst,dst_name,msgs,bytes,dups,drops,util\n";
  for (const auto& [key, link] : stats.links()) {
    out << key.src << "," << name(key.src) << "," << key.dst << ","
        << name(key.dst) << "," << link.msgs << "," << link.bytes << ","
        << link.dups << "," << link.drops << ","
        << fmt(link_util(link, options)) << "\n";
  }
}

void write_link_dot(const LinkStats& stats, const NodeNameFn& name,
                    const LinkReportOptions& options, std::ostream& out) {
  std::uint64_t max_bytes = 0;
  for (const auto& [key, link] : stats.links()) {
    max_bytes = std::max(max_bytes, link.bytes);
  }
  out << "digraph curb_links {\n"
      << "  // per-link control-plane load; edge heat = bytes / hottest link\n"
      << "  graph [overlap=false, splines=true];\n"
      << "  node [shape=ellipse, fontsize=10];\n";
  for (const auto& [key, link] : stats.links()) {
    const double heat =
        max_bytes == 0 ? 0.0
                       : static_cast<double>(link.bytes) /
                             static_cast<double>(max_bytes);
    char attrs[160];
    // HSV red ramp: saturation tracks heat so cool links render near-gray.
    std::snprintf(attrs, sizeof attrs,
                  "penwidth=%.2f, color=\"0.000 %.3f 0.800\"",
                  0.5 + 4.0 * heat, heat);
    out << "  \"" << name(key.src) << "\" -> \"" << name(key.dst) << "\" [label=\""
        << link.msgs << " msg / " << link.bytes << " B";
    if (options.elapsed_s > 0.0) out << " / " << fmt(link_util(link, options)) << " util";
    out << "\", " << attrs << "];\n";
  }
  out << "}\n";
}

namespace {

template <typename Fn>
bool export_to(const std::string& path, Fn&& write) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  write(out);
  return out.good();
}

}  // namespace

bool export_link_matrix_json(const LinkStats& stats, const NodeNameFn& name,
                             const LinkReportOptions& options,
                             const std::string& path) {
  return export_to(path, [&](std::ostream& out) {
    write_link_matrix_json(stats, name, options, out);
  });
}

bool export_link_matrix_csv(const LinkStats& stats, const NodeNameFn& name,
                            const LinkReportOptions& options,
                            const std::string& path) {
  return export_to(path, [&](std::ostream& out) {
    write_link_matrix_csv(stats, name, options, out);
  });
}

bool export_link_dot(const LinkStats& stats, const NodeNameFn& name,
                     const LinkReportOptions& options, const std::string& path) {
  return export_to(path, [&](std::ostream& out) {
    write_link_dot(stats, name, options, out);
  });
}

void write_complexity_text(const std::vector<RoundComplexity>& rounds,
                           std::ostream& out) {
  out << "Theorem 1 message-complexity audit (" << rounds.size() << " round(s))\n";
  if (rounds.empty()) {
    out << "  no round_complexity instants in this trace — run with\n"
           "  observability on (curb-sim --trace-jsonl, or CURB_TRACE_JSONL\n"
           "  for the benches)\n";
    return;
  }
  char row[256];
  std::snprintf(row, sizeof row,
                "  %-6s%-8s%-10s%-5s%-5s%-5s%-5s%-5s%-5s%-10s%-10s%-8s%s\n",
                "round", "kind", "engine", "R", "B", "c", "g", "k", "N",
                "measured", "bound", "ratio", "status");
  out << row;
  std::uint64_t measured_sum = 0;
  std::uint64_t bound_sum = 0;
  std::uint64_t request_sum = 0;
  std::size_t violations = 0;
  struct Phase {
    const char* name;
    std::uint64_t PhasePrediction::* field;
  };
  static constexpr Phase kPhases[] = {
      {"PKT-IN", &PhasePrediction::pkt_in},
      {"intra-pbft", &PhasePrediction::intra_pbft},
      {"AGREE", &PhasePrediction::agree},
      {"final-pbft", &PhasePrediction::final_pbft},
      {"FINAL-AGREE", &PhasePrediction::final_agree},
      {"REPLY", &PhasePrediction::reply},
  };
  for (const RoundComplexity& rc : rounds) {
    const char* status = !rc.bounded ? "-" : rc.exceeds ? "EXCEEDS" : "ok";
    std::snprintf(
        row, sizeof row,
        "  %-6llu%-8s%-10s%-5llu%-5llu%-5llu%-5llu%-5llu%-5llu%-10llu%-10llu%-8s%s\n",
        static_cast<unsigned long long>(rc.round), rc.kind.c_str(),
        rc.params.engine.c_str(),
        static_cast<unsigned long long>(rc.params.requests),
        static_cast<unsigned long long>(rc.params.blocks),
        static_cast<unsigned long long>(rc.params.c),
        static_cast<unsigned long long>(rc.params.group_bound()),
        static_cast<unsigned long long>(rc.params.k),
        static_cast<unsigned long long>(rc.params.n),
        static_cast<unsigned long long>(rc.control_total),
        static_cast<unsigned long long>(rc.bound.total), fmt(rc.ratio()).c_str(),
        status);
    out << row;
    if (rc.dup_wire > 0) {
      out << "         ^ includes " << rc.dup_wire
          << " fault-injected duplicate wire deliveries\n";
    }
    if (rc.exceeds) {
      for (const Phase& phase : kPhases) {
        const std::uint64_t got = rc.phase_measured.*phase.field;
        const std::uint64_t cap = rc.bound.*phase.field;
        if (got > cap) {
          out << "         ^ " << phase.name << " " << got << " > " << cap
              << " phase bound\n";
        }
      }
    }
    if (!rc.bounded) continue;
    measured_sum += rc.control_total;
    bound_sum += rc.bound.total;
    request_sum += rc.params.requests;
    if (rc.exceeds) ++violations;
  }
  if (request_sum > 0) {
    out << "\n  pkt_in rounds: " << fmt(static_cast<double>(measured_sum) /
                                        static_cast<double>(request_sum))
        << " control msgs/request measured vs "
        << fmt(static_cast<double>(bound_sum) / static_cast<double>(request_sum))
        << " analytic bound (theorem 1 kc²+c²+2cN = "
        << theorem1_messages(rounds.front().params.c, rounds.front().params.k,
                             rounds.front().params.n)
        << " per round)\n";
  }
  if (violations > 0) {
    out << "  " << violations
        << " round(s) EXCEED the analytic bound — duplicate or stacked "
           "protocol traffic\n";
  } else {
    out << "  every bounded round satisfies the analytic bound\n";
  }
}

void write_complexity_json(const std::vector<RoundComplexity>& rounds,
                           std::ostream& out) {
  out << "{\"rounds\":[";
  bool first = true;
  std::uint64_t measured_sum = 0;
  std::uint64_t bound_sum = 0;
  std::uint64_t request_sum = 0;
  std::size_t violations = 0;
  for (const RoundComplexity& rc : rounds) {
    out << (first ? "" : ",") << "{\"round\":" << rc.round << ",\"kind\":\""
        << json_escape(rc.kind) << "\",\"engine\":\""
        << json_escape(rc.params.engine) << "\",\"requests\":" << rc.params.requests
        << ",\"blocks\":" << rc.params.blocks << ",\"c\":" << rc.params.c
        << ",\"gmax\":" << rc.params.group_bound() << ",\"k\":" << rc.params.k
        << ",\"n\":" << rc.params.n << ",\"measured\":{";
    bool first_cat = true;
    for (const auto& [category, count] : rc.measured) {
      out << (first_cat ? "" : ",") << "\"" << json_escape(category)
          << "\":" << count;
      first_cat = false;
    }
    const auto phases = [&out](const PhasePrediction& p) {
      out << "{\"pkt_in\":" << p.pkt_in << ",\"intra_pbft\":" << p.intra_pbft
          << ",\"agree\":" << p.agree << ",\"final_pbft\":" << p.final_pbft
          << ",\"final_agree\":" << p.final_agree << ",\"reply\":" << p.reply
          << ",\"total\":" << p.total << "}";
    };
    out << "},\"measured_total\":" << rc.measured_total
        << ",\"control_total\":" << rc.control_total
        << ",\"dup_wire\":" << rc.dup_wire << ",\"phases\":";
    phases(rc.phase_measured);
    out << ",\"bound\":";
    phases(rc.bound);
    out << ",\"ratio\":" << json_double(rc.ratio())
        << ",\"bounded\":" << (rc.bounded ? "true" : "false")
        << ",\"exceeds\":" << (rc.exceeds ? "true" : "false") << "}";
    first = false;
    if (!rc.bounded) continue;
    measured_sum += rc.control_total;
    bound_sum += rc.bound.total;
    request_sum += rc.params.requests;
    if (rc.exceeds) ++violations;
  }
  out << "],\"summary\":{\"bounded_rounds\":";
  std::size_t bounded = 0;
  for (const RoundComplexity& rc : rounds) bounded += rc.bounded ? 1 : 0;
  out << bounded << ",\"violations\":" << violations << ",\"measured_total\":"
      << measured_sum << ",\"bound_total\":" << bound_sum;
  if (request_sum > 0) {
    out << ",\"measured_per_request\":"
        << json_double(static_cast<double>(measured_sum) /
                       static_cast<double>(request_sum))
        << ",\"bound_per_request\":"
        << json_double(static_cast<double>(bound_sum) /
                       static_cast<double>(request_sum));
  }
  out << "}}\n";
}

void write_ledger_jsonl(const MsgLedger& ledger, std::ostream& out) {
  for (const auto& [key, entry] : ledger.entries()) {
    out << "{\"category\":\"" << json_escape(key.first) << "\",\"key\":\""
        << json_escape(key.second) << "\",\"msgs\":" << entry.msgs
        << ",\"bytes\":" << entry.bytes << "}\n";
  }
}

bool export_ledger_jsonl(const MsgLedger& ledger, const std::string& path) {
  return export_to(path,
                   [&](std::ostream& out) { write_ledger_jsonl(ledger, out); });
}

std::vector<LedgerRow> parse_ledger_jsonl(std::istream& in) {
  // Narrow parser for the fixed field layout write_ledger_jsonl emits; the
  // string fields (bus categories, digest hex, switch:request pairs) never
  // contain characters json_escape would rewrite.
  std::vector<LedgerRow> rows;
  std::string line;
  const auto string_field = [](const std::string& text, const char* field,
                               std::string& out_value) {
    const std::string tag = std::string{"\""} + field + "\":\"";
    const std::size_t at = text.find(tag);
    if (at == std::string::npos) return false;
    const std::size_t start = at + tag.size();
    const std::size_t end = text.find('"', start);
    if (end == std::string::npos) return false;
    out_value = text.substr(start, end - start);
    return true;
  };
  const auto u64_field = [](const std::string& text, const char* field,
                            std::uint64_t& out_value) {
    const std::string tag = std::string{"\""} + field + "\":";
    const std::size_t at = text.find(tag);
    if (at == std::string::npos) return false;
    out_value = std::strtoull(text.c_str() + at + tag.size(), nullptr, 10);
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LedgerRow row;
    if (string_field(line, "category", row.category) &&
        string_field(line, "key", row.key) && u64_field(line, "msgs", row.msgs) &&
        u64_field(line, "bytes", row.bytes)) {
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace curb::obs::net
