#include "curb/obs/net/link_stats.hpp"

namespace curb::obs::net {

void LinkStats::record(std::uint32_t src, std::uint32_t dst, std::size_t bytes,
                       std::size_t dups, bool dropped, const std::string& category) {
  LinkEntry& link = links_[LinkKey{src, dst}];
  ++link.msgs;
  link.bytes += bytes;
  link.dups += dups;
  if (dropped) ++link.drops;
  ++link.by_category[category];

  CategoryTotals& totals = categories_[category];
  ++totals.msgs;
  totals.bytes += bytes;
  totals.dups += dups;

  ++total_msgs_;
  total_bytes_ += bytes;
  total_dups_ += dups;
  if (dropped) ++total_drops_;
}

std::uint64_t LinkStats::category_dups(const std::string& category) const {
  const auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.dups;
}

void LinkStats::reset() {
  for (auto& [key, link] : links_) {
    const auto categories = link.by_category;  // keep the key set
    link = LinkEntry{};
    for (const auto& [category, count] : categories) link.by_category[category] = 0;
  }
  for (auto& [category, totals] : categories_) totals = CategoryTotals{};
  total_msgs_ = 0;
  total_bytes_ = 0;
  total_dups_ = 0;
  total_drops_ = 0;
}

}  // namespace curb::obs::net
