#include "curb/obs/net/complexity.hpp"

#include <cstdlib>

namespace curb::obs::net {

namespace {

const std::string* find_attr(const SpanRecord& s, std::string_view key) {
  for (const auto& [k, v] : s.attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool attr_u64(const SpanRecord& s, std::string_view key, std::uint64_t& out) {
  const std::string* v = find_attr(s, key);
  return v != nullptr && parse_u64(*v, out);
}

}  // namespace

PhasePrediction analytic_bound(const ComplexityParams& params) {
  const std::uint64_t c = params.c;
  const std::uint64_t g = params.group_bound();
  const std::uint64_t r = params.requests;
  const std::uint64_t b = params.blocks;
  const std::uint64_t n = params.n;
  PhasePrediction p;
  if (c == 0 || g == 0) return p;
  // One BFT decision at group size g costs at most 2g(g−1) bus messages:
  // PBFT pre-prepare (g−1) + prepare (g−1)² + commit g(g−1); HotStuff's
  // 7(g−1) is below that for every g ≥ 4, so one formula covers both
  // engines. Request-scaled phases use g (the largest serving-group size);
  // the final committee is always exactly c members.
  p.pkt_in = r * g;
  p.intra_pbft = r * 2 * g * (g - 1);
  p.agree = r * g * c;
  p.final_pbft = b * 2 * c * (c - 1);
  p.final_agree = n > 0 ? b * c * (n - 1) : 0;
  p.reply = r * g;
  p.total = p.pkt_in + p.intra_pbft + p.agree + p.final_pbft + p.final_agree + p.reply;
  return p;
}

std::uint64_t theorem1_messages(std::uint64_t c, std::uint64_t k, std::uint64_t n) {
  return k * c * c + c * c + 2 * c * n;
}

std::vector<RoundComplexity> extract_round_complexity(
    const std::vector<SpanRecord>& spans) {
  std::vector<RoundComplexity> rounds;
  for (const SpanRecord& s : spans) {
    if (s.name != "round_complexity") continue;
    RoundComplexity rc;
    rc.span_id = s.id;
    rc.at_us = s.start.as_micros();
    const std::string* kind = find_attr(s, "kind");
    if (kind == nullptr) continue;
    rc.kind = *kind;
    if (const std::string* engine = find_attr(s, "engine")) {
      rc.params.engine = *engine;
    }
    if (!attr_u64(s, "round", rc.round) || !attr_u64(s, "c", rc.params.c) ||
        !attr_u64(s, "k", rc.params.k) || !attr_u64(s, "n", rc.params.n) ||
        !attr_u64(s, "requests", rc.params.requests) ||
        !attr_u64(s, "blocks", rc.params.blocks) ||
        !attr_u64(s, "total", rc.measured_total)) {
      continue;
    }
    (void)attr_u64(s, "dup", rc.dup_wire);
    (void)attr_u64(s, "gmax", rc.params.gmax);
    // Per-category wire counts ride as "m:<category>" attrs.
    for (const auto& [key, value] : s.attrs) {
      if (key.rfind("m:", 0) != 0) continue;
      std::uint64_t count = 0;
      if (parse_u64(value, count)) rc.measured[key.substr(2)] = count;
    }
    const auto category = [&rc](const char* name) -> std::uint64_t {
      const auto it = rc.measured.find(name);
      return it == rc.measured.end() ? 0 : it->second;
    };
    rc.phase_measured.pkt_in = category("PKT-IN");
    rc.phase_measured.intra_pbft = category("intra-pbft");
    rc.phase_measured.agree = category("AGREE");
    rc.phase_measured.final_pbft = category("final-pbft");
    rc.phase_measured.final_agree = category("FINAL-AGREE");
    rc.phase_measured.reply = category("REPLY");
    rc.phase_measured.total = rc.phase_measured.pkt_in +
                              rc.phase_measured.intra_pbft +
                              rc.phase_measured.agree +
                              rc.phase_measured.final_pbft +
                              rc.phase_measured.final_agree +
                              rc.phase_measured.reply;
    rc.control_total = rc.phase_measured.total;
    rc.bound = analytic_bound(rc.params);
    rc.bounded = rc.kind == "pkt_in";
    // Per-phase first: slack in one phase must not launder excess in
    // another (a duplicated AGREE flood hides inside the intra-PBFT slack
    // if only totals are compared).
    rc.exceeds =
        rc.bounded && (rc.phase_measured.pkt_in > rc.bound.pkt_in ||
                       rc.phase_measured.intra_pbft > rc.bound.intra_pbft ||
                       rc.phase_measured.agree > rc.bound.agree ||
                       rc.phase_measured.final_pbft > rc.bound.final_pbft ||
                       rc.phase_measured.final_agree > rc.bound.final_agree ||
                       rc.phase_measured.reply > rc.bound.reply ||
                       rc.control_total > rc.bound.total);
    rounds.push_back(std::move(rc));
  }
  return rounds;
}

void MsgLedger::record(const std::string& category, const std::string& key,
                       std::uint64_t msgs, std::uint64_t bytes) {
  Entry& entry = entries_[{category, key}];
  entry.msgs += msgs;
  entry.bytes += bytes;
  total_msgs_ += msgs;
}

}  // namespace curb::obs::net
