#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "curb/obs/metrics.hpp"
#include "curb/obs/trace.hpp"

namespace curb::obs {

/// One span object per line: {"id":..,"parent":..,"name":"..","track":"..",
/// "start_us":..,"end_us":..,"open":..,"attrs":{..}}. Machine-diffable and
/// trivially streamable into the benchmark trajectory tooling.
void write_spans_jsonl(const Tracer& tracer, std::ostream& out);

/// Parse a JSONL span dump back (round-trip of write_spans_jsonl). Throws
/// std::runtime_error on malformed input. Only the subset of JSON that the
/// writer emits is accepted.
[[nodiscard]] std::vector<SpanRecord> parse_spans_jsonl(std::istream& in);

/// Chrome trace_event JSON ("X" complete events + thread-name metadata),
/// loadable in chrome://tracing and Perfetto. One tid per tracer track,
/// timestamps in virtual microseconds. Spans still open at export time are
/// clamped to the latest timestamp seen and tagged args.open = "true".
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

/// As above, plus one "C" (counter) event per counter/gauge series of the
/// registry at the trace-end timestamp, so final values render as counter
/// tracks alongside the spans. `registry` may be null.
void write_chrome_trace(const Tracer& tracer, const MetricsRegistry* registry,
                        std::ostream& out);

/// Full registry snapshot: counters/gauges with values, histograms with
/// count/sum/min/max/mean, interpolated p50/p90/p99, and non-empty buckets.
void write_metrics_json(const MetricsRegistry& registry, std::ostream& out);

/// Flat CSV (series,kind,count,sum,min,max,mean,p50,p90,p99,value) for
/// spreadsheet-style diffing of bench runs.
void write_metrics_csv(const MetricsRegistry& registry, std::ostream& out);

/// File-path conveniences; return false when the file cannot be opened.
bool export_spans_jsonl(const Tracer& tracer, const std::string& path);
bool export_chrome_trace(const Tracer& tracer, const std::string& path);
bool export_chrome_trace(const Tracer& tracer, const MetricsRegistry* registry,
                         const std::string& path);
bool export_metrics_json(const MetricsRegistry& registry, const std::string& path);
bool export_metrics_csv(const MetricsRegistry& registry, const std::string& path);

/// JSON string escaping (shared by the writers; exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trippable JSON number formatting (shared by the writers:
/// integers print without an exponent or trailing zeros, so exports stay
/// byte-stable and diffable).
[[nodiscard]] std::string json_double(double v);

}  // namespace curb::obs
