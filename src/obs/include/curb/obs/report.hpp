#pragma once

// Renderers over TraceAnalysis: the phase-breakdown report, per-transaction
// critical paths, the anomaly list, and a two-run phase-by-phase diff.
//
// Every JSON writer is deterministic — fixed key order, fixed float
// formatting — so reports of byte-identical span dumps are byte-identical,
// and two same-seed runs diff clean.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "curb/obs/analysis.hpp"

namespace curb::obs {

/// One LatencyStats as a JSON object (shared by the report writers and the
/// bench results file).
void write_latency_stats_json(const LatencyStats& stats, std::ostream& out);

/// Per-phase breakdown as a JSON array ([{"phase":..,"share_pct":..,
/// "stats":{..}}, ...]), shares relative to the end-to-end sum.
void write_phase_breakdown_json(const TraceAnalysis& analysis, std::ostream& out);

/// Human-readable summary: transaction counts, end-to-end latency, the
/// per-phase breakdown table (abs + % of end-to-end), per-group latency,
/// and the anomaly tally.
void write_report_text(const TraceAnalysis& analysis, std::ostream& out);

/// Machine-readable equivalent of write_report_text.
void write_report_json(const TraceAnalysis& analysis, std::ostream& out);

/// Per-transaction critical paths, slowest first. `limit` caps the number of
/// transactions shown (0 = all).
void write_critical_path_text(const TraceAnalysis& analysis, std::ostream& out,
                              std::size_t limit = 5);
void write_critical_path_json(const TraceAnalysis& analysis, std::ostream& out,
                              std::size_t limit = 0);

/// Protocol-conformance findings.
void write_anomalies_text(const TraceAnalysis& analysis, std::ostream& out);
void write_anomalies_json(const TraceAnalysis& analysis, std::ostream& out);

/// Phase-by-phase comparison of two runs.
struct DiffOptions {
  /// A phase regresses when its candidate p50 exceeds baseline p50 by more
  /// than threshold_pct percent AND more than floor_us microseconds (the
  /// floor suppresses noise on sub-millisecond phases).
  double threshold_pct = 10.0;
  std::int64_t floor_us = 100;
};

struct DiffEntry {
  std::string metric;  // "e2e" or a phase name
  bool in_baseline = false;
  bool in_candidate = false;
  std::int64_t base_p50_us = 0;
  std::int64_t cand_p50_us = 0;
  double base_mean_us = 0.0;
  double cand_mean_us = 0.0;
  double delta_pct = 0.0;  // p50 change, percent (0 when baseline p50 is 0)
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  // "e2e" first, then phases in protocol order
  std::size_t base_complete = 0;
  std::size_t cand_complete = 0;
  std::size_t base_anomalies = 0;
  std::size_t cand_anomalies = 0;
  [[nodiscard]] std::size_t regressions() const;
};

[[nodiscard]] DiffResult diff_analyses(const TraceAnalysis& baseline,
                                       const TraceAnalysis& candidate,
                                       const DiffOptions& options = {});

void write_diff_text(const DiffResult& diff, std::ostream& out);
void write_diff_json(const DiffResult& diff, std::ostream& out);

}  // namespace curb::obs
