#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace curb::obs {

/// Metric labels as sorted-on-registration (name, value) pairs. Two label
/// sets that differ only in pair order address the same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value (or high-water) measurement.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  /// High-water helper: keep the maximum ever observed.
  void set_max(double v) { value_ = std::max(value_, v); }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Bucket layout of a log-scale histogram: bucket i covers
/// (bound[i-1], bound[i]] with bound[i] = first_bound * growth^i, plus one
/// overflow bucket. Defaults span 1 us .. ~4.3 s when recording microseconds.
struct HistogramOptions {
  double first_bound = 1.0;
  double growth = 2.0;
  std::size_t finite_buckets = 32;
};

/// Fixed-bucket log-scale histogram. Recording is a binary search over the
/// precomputed bounds; quantiles interpolate within a bucket — there is no
/// per-query sort and no retained sample vector.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {}) {
    if (opts.finite_buckets == 0 || opts.growth <= 1.0 || opts.first_bound <= 0.0) {
      throw std::invalid_argument{"Histogram: bad bucket options"};
    }
    bounds_.reserve(opts.finite_buckets);
    double bound = opts.first_bound;
    for (std::size_t i = 0; i < opts.finite_buckets; ++i) {
      bounds_.push_back(bound);
      bound *= opts.growth;
    }
    counts_.assign(opts.finite_buckets + 1, 0);  // +1 = overflow bucket
  }

  void record(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  /// Inclusive upper bound of bucket i (+inf for the overflow bucket).
  [[nodiscard]] double upper_bound(std::size_t i) const {
    return i < bounds_.size() ? bounds_[i] : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] std::uint64_t count_at(std::size_t i) const { return counts_.at(i); }

  /// Quantile estimate (q in [0, 100]) by linear interpolation inside the
  /// containing bucket, clamped to the observed min/max.
  [[nodiscard]] double percentile(double q) const {
    if (q < 0.0 || q > 100.0) throw std::invalid_argument{"percentile out of range"};
    if (count_ == 0) return 0.0;
    const double rank = q / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const auto before = static_cast<double>(seen);
      seen += counts_[i];
      if (static_cast<double>(seen) < rank) continue;
      const double lo = i == 0 ? std::min(min_, upper_bound(0)) : upper_bound(i - 1);
      const double hi = i + 1 == counts_.size() ? max_ : upper_bound(i);
      const double frac = (rank - before) / static_cast<double>(counts_[i]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    return max_;
  }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named metrics addressable by (name, labels). Instruments have stable
/// addresses for the lifetime of the registry, so hot paths resolve once and
/// keep the pointer. Iteration order is deterministic (sorted by full key),
/// which makes exporter output reproducible.
class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Counter& counter(const std::string& name, Labels labels = {}) {
    Metric& m = resolve(name, std::move(labels), Kind::kCounter, {});
    return *m.counter;
  }
  Gauge& gauge(const std::string& name, Labels labels = {}) {
    Metric& m = resolve(name, std::move(labels), Kind::kGauge, {});
    return *m.gauge;
  }
  Histogram& histogram(const std::string& name, Labels labels = {},
                       HistogramOptions opts = {}) {
    Metric& m = resolve(name, std::move(labels), Kind::kHistogram, opts);
    return *m.histogram;
  }

  /// Canonical series key, e.g. `net.delay_us{category="AGREE"}`.
  [[nodiscard]] static std::string series_key(const std::string& name,
                                              const Labels& labels) {
    if (labels.empty()) return name;
    std::string key = name + "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ",";
      key += labels[i].first + "=\"" + labels[i].second + "\"";
    }
    key += "}";
    return key;
  }

  [[nodiscard]] const std::map<std::string, Metric>& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

  void reset() { metrics_.clear(); }

 private:
  Metric& resolve(const std::string& name, Labels labels, Kind kind,
                  HistogramOptions opts) {
    std::sort(labels.begin(), labels.end());
    const std::string key = series_key(name, labels);
    const auto it = metrics_.find(key);
    if (it != metrics_.end()) {
      if (it->second.kind != kind) {
        throw std::logic_error{"MetricsRegistry: kind mismatch for " + key};
      }
      return it->second;
    }
    Metric m{name, std::move(labels), kind, nullptr, nullptr, nullptr};
    switch (kind) {
      case Kind::kCounter: m.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: m.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: m.histogram = std::make_unique<Histogram>(opts); break;
    }
    return metrics_.emplace(key, std::move(m)).first->second;
  }

  std::map<std::string, Metric> metrics_;
};

}  // namespace curb::obs
