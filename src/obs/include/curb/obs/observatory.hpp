#pragma once

#include "curb/obs/metrics.hpp"
#include "curb/obs/trace.hpp"

namespace curb::obs {

/// The whole observability surface of a deployment: one metrics registry +
/// one span tracer, owned by the top-level network object and handed to
/// components as a nullable pointer. Components treat `nullptr` as
/// "observability off" and skip all bookkeeping — the enabled check is a
/// single pointer comparison and the disabled path allocates nothing.
struct Observatory {
  MetricsRegistry metrics;
  Tracer tracer;

  /// Bind the tracer to the deployment's virtual clock and start recording.
  void enable(const sim::Simulator& clock) {
    tracer.bind_clock(clock);
    tracer.set_enabled(true);
  }
};

}  // namespace curb::obs
