#pragma once

// Renderers for the topology-aware telemetry layer: link matrix (JSON/CSV),
// Graphviz DOT heatmap, Theorem 1 complexity audit (text/JSON for
// `curb-trace complexity`), and the message-ledger JSONL round-trip.
// All output is deterministically ordered (map iteration / span order) so
// same-seed runs export byte-identical files.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "curb/obs/net/complexity.hpp"
#include "curb/obs/net/link_stats.hpp"

namespace curb::obs::net {

/// Topology-node label lookup for link exports (index -> display name).
using NodeNameFn = std::function<std::string(std::uint32_t)>;

/// Serialization-model parameters the exports annotate utilization with.
struct LinkReportOptions {
  double bandwidth_bps = 100.0e6;  ///< the paper's 100 Mbps link model
  /// Virtual seconds the counters cover; > 0 enables utilization columns
  /// (bytes · 8 / bandwidth / elapsed).
  double elapsed_s = 0.0;
};

void write_link_matrix_json(const LinkStats& stats, const NodeNameFn& name,
                            const LinkReportOptions& options, std::ostream& out);
void write_link_matrix_csv(const LinkStats& stats, const NodeNameFn& name,
                           const LinkReportOptions& options, std::ostream& out);
/// Graphviz heatmap: one directed edge per link, pen width and color scaled
/// by the link's share of the hottest link's bytes.
void write_link_dot(const LinkStats& stats, const NodeNameFn& name,
                    const LinkReportOptions& options, std::ostream& out);

/// File-opening wrappers (false when the path cannot be opened).
[[nodiscard]] bool export_link_matrix_json(const LinkStats& stats,
                                           const NodeNameFn& name,
                                           const LinkReportOptions& options,
                                           const std::string& path);
[[nodiscard]] bool export_link_matrix_csv(const LinkStats& stats,
                                          const NodeNameFn& name,
                                          const LinkReportOptions& options,
                                          const std::string& path);
[[nodiscard]] bool export_link_dot(const LinkStats& stats, const NodeNameFn& name,
                                   const LinkReportOptions& options,
                                   const std::string& path);

/// `curb-trace complexity` renderers over audited rounds.
void write_complexity_text(const std::vector<RoundComplexity>& rounds,
                           std::ostream& out);
void write_complexity_json(const std::vector<RoundComplexity>& rounds,
                           std::ostream& out);

/// Ledger JSONL: one {"category","key","msgs","bytes"} object per line,
/// deterministically ordered.
void write_ledger_jsonl(const MsgLedger& ledger, std::ostream& out);
[[nodiscard]] bool export_ledger_jsonl(const MsgLedger& ledger,
                                       const std::string& path);

/// One parsed ledger row (`parse_ledger_jsonl` round-trips write_ledger_jsonl).
struct LedgerRow {
  std::string category;
  std::string key;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};
[[nodiscard]] std::vector<LedgerRow> parse_ledger_jsonl(std::istream& in);

}  // namespace curb::obs::net
