#pragma once

// Topology-aware per-link message accounting (curb::obs::net).
//
// LinkStats mirrors net::MessageStats at (src, dst) granularity: every send
// the bus accounts globally is also attributed to its directed link, by
// message category, including sends that are later dropped (partition,
// interceptor, fault) — so the per-link counters always sum exactly to the
// bus totals (the conservation invariant pinned in tests). Fault-injected
// duplicate deliveries are *wire* copies the bus never re-records; they are
// tracked separately per link and per category so
//   wire messages = msgs + dups
// and a duplication fault shows up as dups > 0 without breaking the
// conservation sum.
//
// This header deliberately depends on nothing from curb::net (the bus
// depends on curb::obs, not the other way round): node endpoints are plain
// u32 indices, and exports take a name-lookup callback for labels.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace curb::obs::net {

/// Directed link endpoint pair (topology node indices).
struct LinkKey {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  [[nodiscard]] friend bool operator<(const LinkKey& a, const LinkKey& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
  [[nodiscard]] friend bool operator==(const LinkKey& a, const LinkKey& b) {
    return a.src == b.src && a.dst == b.dst;
  }
};

/// Per-link counters. `msgs`/`bytes` count exactly what MessageStats counts
/// for the same sends (drops included); `drops` is the never-delivered
/// subset; `dups` counts fault-injected extra wire deliveries.
struct LinkEntry {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dups = 0;
  std::uint64_t drops = 0;
  /// Messages per category over this link (bus accounting categories:
  /// "PKT-IN", "intra-pbft", "AGREE", ...).
  std::map<std::string, std::uint64_t> by_category;
};

/// Per-category aggregate across all links (wire view: counts + dups).
struct CategoryTotals {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dups = 0;
};

class LinkStats {
 public:
  /// Attribute one accounted send. `dups` is the number of fault-injected
  /// extra deliveries scheduled for the same send; `dropped` marks sends
  /// that will never be delivered.
  void record(std::uint32_t src, std::uint32_t dst, std::size_t bytes,
              std::size_t dups, bool dropped, const std::string& category);

  [[nodiscard]] const std::map<LinkKey, LinkEntry>& links() const { return links_; }
  [[nodiscard]] const std::map<std::string, CategoryTotals>& categories() const {
    return categories_;
  }

  /// Conservation-side totals: must equal MessageStats::total_messages() /
  /// total_bytes() when every bus send is observed.
  [[nodiscard]] std::uint64_t total_msgs() const { return total_msgs_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  /// Fault-injected wire copies across all links (not part of the
  /// conservation sum; the bus never re-records duplicates).
  [[nodiscard]] std::uint64_t total_dups() const { return total_dups_; }
  [[nodiscard]] std::uint64_t total_drops() const { return total_drops_; }
  /// Duplicate wire copies recorded for one category.
  [[nodiscard]] std::uint64_t category_dups(const std::string& category) const;

  /// Zero every counter in place (links and categories are kept, mirroring
  /// MessageStats::reset()).
  void reset();

 private:
  std::map<LinkKey, LinkEntry> links_;
  std::map<std::string, CategoryTotals> categories_;
  std::uint64_t total_msgs_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_dups_ = 0;
  std::uint64_t total_drops_ = 0;
};

}  // namespace curb::obs::net
