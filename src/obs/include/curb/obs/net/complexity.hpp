#pragma once

// Theorem 1 message-complexity model and auditor (curb::obs::net).
//
// The paper bounds Curb's control-plane traffic per round by
// O(kc² + c² + 2cN) = O(N) (Theorem 1): k groups each run one intra-group
// PBFT instance (c² messages), the final committee runs one more (c²), and
// the committee disseminates the block to all N controllers (cN) while the
// serving groups reply to their switches (cN in the worst case). This module
// turns that asymptotic statement into an exact per-round analytic bound for
// this implementation's message flow (batch size 1, clean run):
//
//   PKT-IN      R·g            the switch asks every member of its group
//   intra-pbft  R·2g(g−1)      pre-prepare (g−1) + prepare (g−1)² + commit
//                              g(g−1) per txList decision
//   AGREE       R·g·c          every group member multicasts the committed
//                              txList to the c-member final committee
//   final-pbft  B·2c(c−1)      same PBFT shape per sealed block
//   FINAL-AGREE B·c(N−1)       every committee member multicasts the block
//                              to all N controllers
//   REPLY       R·g            every serving-group member answers the switch
//
// with R requests and B committed blocks. Theorem 1 assumes uniform groups
// of exactly c = 3f+1 members, but the CAP assignment is free to serve a
// switch with a *larger* group when placement constraints demand it — the
// Internet2 fixture yields groups of 4..7 members — so the request-scaled
// phases are parameterized on g = the largest serving-group size in the
// current assignment (gmax; g = c when unknown). Each individual decision
// at group size gᵢ ≤ g costs exactly 2gᵢ(gᵢ−1) ≤ 2g(g−1), so the bound
// stays sound while remaining O(N): g is capped by the capacity constraint,
// independent of N. HotStuff decisions cost 7(g−1) ≤ 2g(g−1) messages
// (proposal + three linear vote phases + three QC broadcasts), so the
// PBFT-shaped bound covers both engines. Request/block batching only lowers
// the decision counts, so the bound stays an upper bound for any batch size.
//
// The auditor side consumes `round_complexity` instant spans (emitted by
// CurbSimulation per round, attrs documented in DESIGN.md §16), recomputes
// the bound from (c, gmax, k, N, R, B), and flags rounds where any phase's
// measured wire count — bus accounting plus fault-injected duplicates —
// exceeds its phase bound, or the control-plane total exceeds the summed
// bound. The per-phase check matters: a duplicate-sender bug that doubles
// AGREE traffic trips the AGREE bound even while slack in the intra-PBFT
// bound keeps the total legal. This catches quorum-stacking regressions
// quantitatively instead of via protocol-state assertions.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "curb/obs/trace.hpp"

namespace curb::obs::net {

/// Deployment shape a bound is computed from.
struct ComplexityParams {
  std::uint64_t c = 4;         ///< committee / minimum group size (3f+1)
  std::uint64_t gmax = 0;      ///< largest serving-group size (0 ⇒ use c)
  std::uint64_t k = 1;         ///< number of controller groups
  std::uint64_t n = 4;         ///< total controllers N
  std::uint64_t requests = 0;  ///< requests issued this round (R)
  std::uint64_t blocks = 0;    ///< blocks committed this round (B)
  std::string engine = "pbft";

  /// Effective group-size bound g used by the request-scaled phases.
  [[nodiscard]] std::uint64_t group_bound() const {
    return gmax != 0 ? gmax : c;
  }
};

/// Exact per-phase analytic upper bound for one clean round.
struct PhasePrediction {
  std::uint64_t pkt_in = 0;
  std::uint64_t intra_pbft = 0;
  std::uint64_t agree = 0;
  std::uint64_t final_pbft = 0;
  std::uint64_t final_agree = 0;
  std::uint64_t reply = 0;
  std::uint64_t total = 0;
};

/// The per-round analytic bound (see the header comment for the formula).
[[nodiscard]] PhasePrediction analytic_bound(const ComplexityParams& params);

/// Theorem 1's asymptotic per-round message count kc² + c² + 2cN — the
/// quantity the paper's O(N) claim is stated over (for reports/docs).
[[nodiscard]] std::uint64_t theorem1_messages(std::uint64_t c, std::uint64_t k,
                                              std::uint64_t n);

/// One audited round, reconstructed from a `round_complexity` instant span.
struct RoundComplexity {
  std::uint64_t span_id = 0;
  std::int64_t at_us = 0;
  std::uint64_t round = 0;
  std::string kind;  ///< "pkt_in" | "reass"
  ComplexityParams params;
  /// Measured wire messages per bus category (accounted sends + duplicate
  /// wire copies for that category).
  std::map<std::string, std::uint64_t> measured;
  std::uint64_t measured_total = 0;
  /// Control-plane subset of measured_total: the six bounded phase
  /// categories, excluding data-plane (DATA) and reassignment traffic.
  std::uint64_t control_total = 0;
  /// Fault-injected duplicate wire copies included in measured_total.
  std::uint64_t dup_wire = 0;
  /// Measured wire counts regrouped into the analytic phases.
  PhasePrediction phase_measured;
  /// Recomputed analytic bound for params (not trusted from the span).
  PhasePrediction bound;
  /// Bound checks apply to pkt_in rounds only: reassignment rounds run the
  /// OP() pipeline with GROUP-UPDATE fan-out the theorem does not model.
  bool bounded = false;
  /// True when any phase (or the control-plane total) exceeds its bound.
  bool exceeds = false;

  [[nodiscard]] double ratio() const {
    return bound.total == 0 ? 0.0
                            : static_cast<double>(control_total) /
                                  static_cast<double>(bound.total);
  }
};

/// Extract and audit every `round_complexity` instant in a span dump,
/// in span order. Spans with unparsable attrs are skipped.
[[nodiscard]] std::vector<RoundComplexity> extract_round_complexity(
    const std::vector<SpanRecord>& spans);

/// Message-complexity ledger: attributes accounted sends per (category,
/// join-key). Keys follow the traced-event contract so `curb-trace
/// complexity --ledger` can join rows back to transactions: consensus
/// traffic is keyed by the 8-byte payload-digest hex that also appears on
/// intra_pbft/final_pbft/agree/block_commit spans; PKT-IN and REPLY rows by
/// the "switch:request" pair the `txns` attr uses.
class MsgLedger {
 public:
  struct Entry {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  void record(const std::string& category, const std::string& key,
              std::uint64_t msgs, std::uint64_t bytes);

  /// (category, key) -> counts, deterministically ordered.
  [[nodiscard]] const std::map<std::pair<std::string, std::string>, Entry>&
  entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t total_msgs() const { return total_msgs_; }

 private:
  std::map<std::pair<std::string, std::string>, Entry> entries_;
  std::uint64_t total_msgs_ = 0;
};

}  // namespace curb::obs::net
