#pragma once

// Causal protocol analytics over recorded span traces (curb-trace).
//
// TraceAnalysis ingests SpanRecords — straight from a live Tracer or parsed
// back from a spans-JSONL export — and reconstructs, per transaction, the
// causal chain of Algorithm 1:
//
//   pkt_in -> intra_pbft{pre_prepare,prepare,commit} -> agree -> final_pbft
//          -> block_commit -> reply_quorum
//
// The reconstruction never guesses by time proximity: it follows the join
// keys of the traced-event contract (DESIGN.md §9) — the `txns` attr on
// agree/block_commit stages names the (switch, request) pairs they carry,
// and the `digest` attr ties those stages to the consensus slot spans that
// ordered them.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "curb/obs/trace.hpp"

namespace curb::obs {

/// Critical-path phases of one transaction, in protocol order. Consecutive
/// phases share a boundary milestone, so the per-phase durations of a
/// complete transaction sum exactly to its end-to-end latency (overlap at a
/// boundary — a stage reported slightly before its predecessor closed — is
/// clamped to zero and accumulated in TransactionTrace::overlap_us).
enum class Phase : std::uint8_t {
  kDispatch,   // pkt_in open -> serving group's consensus slot accepts
  kIntraPbft,  // slot accept -> first group member commits (AGREE opens)
  kAgree,      // AGREE broadcast -> f+1 matching AGREEs at the committee
  kBlockWait,  // AGREE quorum -> final leader proposes the enclosing block
  kFinalPbft,  // block proposal -> first controller applies the block
  kReply,      // block applied -> f+1 matching REPLYs accepted at the switch
};

inline constexpr std::array<Phase, 6> kPhaseOrder{
    Phase::kDispatch, Phase::kIntraPbft, Phase::kAgree,
    Phase::kBlockWait, Phase::kFinalPbft, Phase::kReply,
};

[[nodiscard]] constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kDispatch: return "dispatch";
    case Phase::kIntraPbft: return "intra_pbft";
    case Phase::kAgree: return "agree";
    case Phase::kBlockWait: return "block_wait";
    case Phase::kFinalPbft: return "final_pbft";
    case Phase::kReply: return "reply";
  }
  return "?";
}

/// One segment of a transaction's critical path. `span_id` names the span
/// that defines the segment's closing milestone (0 when the milestone was
/// inferred from the root span itself).
struct Segment {
  Phase phase = Phase::kDispatch;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] std::int64_t duration_us() const { return end_us - start_us; }
};

/// One reconstructed transaction: a pkt_in / reass_request round span plus
/// every protocol stage reached on its behalf.
struct TransactionTrace {
  std::uint32_t switch_id = 0;
  std::uint64_t request_id = 0;
  std::string kind;  // root span name: "pkt_in" | "reass_request"
  std::uint64_t root_span = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  bool complete = false;  // root span closed (request accepted)
  /// Serving group's consensus instance (from the agree stage), when reached.
  std::uint32_t instance = 0;
  bool has_instance = false;
  /// Stage span ids along the chain; 0 = stage never observed.
  std::uint64_t intra_span = 0;
  std::uint64_t agree_span = 0;
  std::uint64_t block_span = 0;
  std::uint64_t final_span = 0;
  std::uint64_t reply_span = 0;
  /// Critical path: contiguous, clamped-monotonic segments covering
  /// [start_us, end_us] for complete transactions.
  std::vector<Segment> segments;
  /// Total negative inter-phase gap clamped away while building segments.
  std::int64_t overlap_us = 0;

  [[nodiscard]] std::int64_t latency_us() const { return end_us - start_us; }
};

/// A protocol-conformance finding. Findings with severity >= kWarning count
/// as anomalies; a clean run reports none.
struct Finding {
  enum class Severity : std::uint8_t { kWarning, kError };
  std::string detector;  // stable machine-readable id, e.g. "stalled_round"
  Severity severity = Severity::kWarning;
  std::string message;
  std::string track;
  std::vector<std::uint64_t> spans;  // offending span ids
  std::int64_t at_us = 0;
};

[[nodiscard]] constexpr std::string_view to_string(Finding::Severity s) {
  switch (s) {
    case Finding::Severity::kWarning: return "warning";
    case Finding::Severity::kError: return "error";
  }
  return "?";
}

/// Order statistics over a latency sample set (exact, nearest-rank).
struct LatencyStats {
  std::size_t count = 0;
  std::int64_t sum_us = 0;
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
  std::int64_t p50_us = 0;
  std::int64_t p90_us = 0;
  std::int64_t p99_us = 0;
  [[nodiscard]] double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / static_cast<double>(count);
  }
};

/// Build LatencyStats from raw samples (order-insensitive; sorts a copy).
[[nodiscard]] LatencyStats make_latency_stats(std::vector<std::int64_t> samples_us);

/// The analysis result over one span dump.
class TraceAnalysis {
 public:
  /// Analyze a span dump (e.g. from parse_spans_jsonl).
  explicit TraceAnalysis(std::vector<SpanRecord> spans);
  /// Analyze a live tracer's records in place.
  [[nodiscard]] static TraceAnalysis from_tracer(const Tracer& tracer);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Reconstructed transactions, ordered by root span id.
  [[nodiscard]] const std::vector<TransactionTrace>& transactions() const {
    return transactions_;
  }
  /// Protocol-conformance findings, ordered by (time, span id).
  [[nodiscard]] const std::vector<Finding>& findings() const { return findings_; }

  /// End-to-end latency over complete transactions.
  [[nodiscard]] const LatencyStats& e2e() const { return e2e_; }
  /// Per-phase latency attribution over complete transactions. Only phases
  /// that occurred appear.
  [[nodiscard]] const std::map<Phase, LatencyStats>& phase_stats() const {
    return phase_stats_;
  }
  /// End-to-end latency grouped by serving consensus instance ("group").
  [[nodiscard]] const std::map<std::uint32_t, LatencyStats>& group_stats() const {
    return group_stats_;
  }
  /// Complete transactions (denominator of the breakdown shares).
  [[nodiscard]] std::size_t complete_count() const { return complete_count_; }

 private:
  void reconstruct_transactions();
  void detect_anomalies();
  void aggregate();

  std::vector<SpanRecord> spans_;
  std::vector<TransactionTrace> transactions_;
  std::vector<Finding> findings_;
  LatencyStats e2e_;
  std::map<Phase, LatencyStats> phase_stats_;
  std::map<std::uint32_t, LatencyStats> group_stats_;
  std::size_t complete_count_ = 0;
};

}  // namespace curb::obs
