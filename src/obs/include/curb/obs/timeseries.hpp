#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "curb/obs/observatory.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::obs {

/// Windowed time-series telemetry over the metrics registry.
///
/// Every observability layer so far is end-of-run: the registry accumulates
/// for the whole run and is exported once. TsCollector makes the same data
/// observable *while* a run executes and keeps memory bounded: it samples
/// the cumulative registry at fixed virtual-time window boundaries and
/// stores per-window deltas — counter rates, gauge samples, per-window
/// histogram stats (count/sum/percentiles from bucket-count deltas) — in a
/// ring buffer of `retention` windows, optionally streaming each closed
/// window as one JSONL line. Nothing is added to any hot path: existing
/// instrumentation keeps feeding the registry and the collector reads it
/// O(series) once per window.
///
/// Determinism: window closes are ordinary simulator events whose callbacks
/// only read protocol state, so enabling the collector cannot change a
/// run's protocol outputs — same-seed runs stay byte-identical with
/// telemetry on, and the telemetry itself is byte-identical across
/// same-seed runs.
struct TsOptions {
  /// Window width in virtual time. Windows are aligned to the collector's
  /// start time: window k covers [start + k*width, start + (k+1)*width).
  sim::SimTime window = sim::SimTime::millis(100);
  /// Closed windows retained in memory. Older windows are evicted after
  /// the per-window callback ran (and the JSONL line, if streaming, was
  /// written), so memory is O(retention * series) regardless of run length.
  std::size_t retention = 64;
};

/// One sampled series value inside a closed window.
struct TsValue {
  enum class Kind : std::uint8_t {
    kRate,   ///< counter delta over the window
    kGauge,  ///< gauge value sampled at window close
    kHist,   ///< histogram delta: per-window count/sum/percentiles
  };
  Kind kind = Kind::kRate;
  /// kRate: counted increments; kGauge: sampled value; kHist: unused.
  double value = 0.0;
  // kHist only:
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  bool operator==(const TsValue&) const = default;
};

[[nodiscard]] const char* to_string(TsValue::Kind kind);

/// One closed window: counters that moved, histograms that recorded, and
/// every gauge (sampled each window so level series are always present).
struct TsWindow {
  std::uint64_t index = 0;
  sim::SimTime start;
  sim::SimTime end;
  /// True for the trailing window closed early by finalize().
  bool partial = false;
  /// Sorted by series key (registry iteration order).
  std::vector<std::pair<std::string, TsValue>> series;

  /// Value for a series key, or nullptr when it did not move this window.
  [[nodiscard]] const TsValue* find(const std::string& key) const;
};

class TsCollector {
 public:
  /// The collector samples `obs.metrics` on `sim`'s clock. Both must
  /// outlive the collector.
  TsCollector(Observatory& obs, sim::Simulator& sim, TsOptions opts);
  ~TsCollector();
  TsCollector(const TsCollector&) = delete;
  TsCollector& operator=(const TsCollector&) = delete;

  /// Run before each sampling pass — the owner pushes values the registry
  /// cannot pull itself (e.g. simulator counters, which live below obs).
  void set_presample_hook(std::function<void()> hook);

  /// Called after each window closes, before retention eviction, with the
  /// full retained ring (newest window = windows().back()). The SLO engine
  /// hangs off this.
  using WindowCallback = std::function<void(const TsCollector&, const TsWindow&)>;
  void set_window_callback(WindowCallback cb);

  /// Stream closed windows to `path` as JSONL (one line per window,
  /// written at window close so a live run can be tailed). Returns false
  /// when the file cannot be opened.
  [[nodiscard]] bool set_output(const std::string& path);

  /// Schedule the first window close at now + width and start ticking.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// Close the current partial window (if any virtual time elapsed in it),
  /// stop ticking, and flush/close the output stream. Idempotent; also run
  /// by the destructor so aborted runs still flush.
  void finalize();

  [[nodiscard]] const TsOptions& options() const { return opts_; }
  [[nodiscard]] const std::deque<TsWindow>& windows() const { return windows_; }
  /// Total windows closed over the collector's lifetime (>= windows().size()).
  [[nodiscard]] std::uint64_t windows_closed() const { return windows_closed_; }

 private:
  void on_tick();
  void close_window(sim::SimTime end, bool partial);
  /// True when a counter or histogram moved since the last window close
  /// (finalize uses this to keep boundary-time samples).
  [[nodiscard]] bool has_unsampled_deltas() const;

  Observatory& obs_;
  sim::Simulator& sim_;
  TsOptions opts_;

  /// Per-series cumulative snapshot from the previous window close.
  struct Cumulative {
    double value = 0.0;                   // counter value / last gauge
    std::uint64_t count = 0;              // histogram count
    double sum = 0.0;                     // histogram sum
    std::vector<std::uint64_t> buckets;   // histogram bucket counts
  };
  std::map<std::string, Cumulative> last_;

  std::deque<TsWindow> windows_;
  std::uint64_t windows_closed_ = 0;
  sim::SimTime window_start_;
  std::uint64_t next_index_ = 0;
  sim::EventHandle tick_;
  bool started_ = false;
  bool finalized_ = false;

  std::ofstream out_;
  bool streaming_ = false;

  std::function<void()> presample_;
  WindowCallback on_window_;
};

/// One window as one JSON object:
/// {"w":0,"start_us":0,"end_us":100000,"partial":false,"series":{
///   "core.rounds":{"kind":"rate","value":1},
///   "net.delay_us{category=\"REPLY\"}":{"kind":"hist","count":12,
///     "sum":34567,"p50":..,"p90":..,"p99":..},
///   "sim.now_us":{"kind":"gauge","value":100000}}}
void write_ts_window_json(const TsWindow& window, std::ostream& out);

/// Parse a telemetry JSONL dump back (round-trip of the streaming writer).
/// Throws std::runtime_error on malformed input; only the subset the writer
/// emits is accepted. Incomplete trailing lines (a live file mid-write) are
/// ignored, which is what lets curb-watch tail a running sim.
[[nodiscard]] std::vector<TsWindow> parse_ts_jsonl(std::istream& in);

}  // namespace curb::obs
