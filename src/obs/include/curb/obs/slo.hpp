#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "curb/obs/timeseries.hpp"

namespace curb::obs {

/// Declarative SLO rules over the windowed telemetry stream.
///
/// Grammar (';'-separated rules, whitespace-insensitive):
///
///   rule   := agg '(' series ')' op value [unit] ['over' N]
///   agg    := p50 | p90 | p99 | mean | max | rate | count | sum | gauge
///   op     := '<' | '<=' | '>' | '>=' | '==' | '!='
///   value  := decimal number
///   unit   := us | ms | s            (time values convert to microseconds)
///   N      := trailing windows aggregated (default 1)
///
/// `series` is a registry series key, labels included, e.g.
///   p99(core.request_latency_us) < 80ms over 5
///   rate(net.dropped{category="REPLY",reason="fault"}) == 0
///   gauge(sim.queue_high_water) < 20000
///
/// A rule asserts its comparison; a breach is recorded at each window close
/// where the assertion fails. Aggregation over the trailing `over` windows:
///   rate/count/sum  sum across windows (missing windows contribute 0)
///   mean            total sum / total count of the histogram deltas
///   p50/p90/p99     worst (max) per-window percentile with data
///   gauge           most recent sampled value
///   max             max of per-window values (gauge/rate) or p99 (hist)
/// A rule with no data in the trailing windows does not fire: absence of
/// evidence is not a breach (use rate()==0 assertions to demand silence).
struct SloError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class SloAgg : std::uint8_t {
  kP50,
  kP90,
  kP99,
  kMean,
  kMax,
  kRate,
  kCount,
  kSum,
  kGauge,
};

enum class SloOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] const char* to_string(SloAgg agg);
[[nodiscard]] const char* to_string(SloOp op);

struct SloRule {
  SloAgg agg = SloAgg::kRate;
  std::string series;
  SloOp op = SloOp::kLt;
  double limit = 0.0;      // after unit conversion (time limits in us)
  std::size_t over = 1;    // trailing windows aggregated

  /// Canonical text, e.g. "p99(core.request_latency_us) < 80000 over 5".
  [[nodiscard]] std::string text() const;

  /// Parse one rule; throws SloError with a pointed message.
  [[nodiscard]] static SloRule parse(const std::string& text);
};

struct SloRuleSet {
  std::vector<SloRule> rules;

  /// Parse a ';'-separated rule list (empty string = empty set).
  [[nodiscard]] static SloRuleSet parse(const std::string& text);
};

struct SloBreach {
  std::uint64_t window = 0;  // index of the window whose close fired the rule
  sim::SimTime at;           // window end (virtual time of the alert)
  std::size_t rule = 0;      // index into the rule set
  double observed = 0.0;
  double limit = 0.0;
};

/// Aggregate `rule` over the trailing `rule.over` windows of `windows`
/// (newest last). Returns nullopt when no window carried data for the
/// series. Shared by the live engine and curb-watch's offline replay.
[[nodiscard]] std::optional<double> evaluate_rule(const SloRule& rule,
                                                  const std::deque<TsWindow>& windows);

/// True when `observed op limit` holds (the rule's assertion passes).
[[nodiscard]] bool slo_compare(SloOp op, double observed, double limit);

/// Live watchdog: evaluates every rule at each window close. Breaches are
/// recorded, counted into the `slo.breaches{rule=...}` metric, and emitted
/// as `slo.breach` instants on the trace stream when an observatory is
/// attached (alerts become part of the run's causal record).
class SloEngine {
 public:
  explicit SloEngine(SloRuleSet rules) : rules_{std::move(rules)} {}

  /// Evaluate at a window close. `obs` may be null (offline replay).
  void on_window(Observatory* obs, const std::deque<TsWindow>& windows);

  [[nodiscard]] const SloRuleSet& rules() const { return rules_; }
  [[nodiscard]] const std::vector<SloBreach>& breaches() const { return breaches_; }
  [[nodiscard]] bool breached() const { return !breaches_.empty(); }

  /// Machine-readable breach report:
  /// {"rules":[{"rule":"...","breaches":N,"worst":V}],"total_breaches":N,
  ///  "breaches":[{"window":..,"at_us":..,"rule":"...","observed":..,
  ///               "limit":..}]}
  void write_report_json(std::ostream& out) const;
  /// One line per breach, human-readable (stderr summaries).
  void write_report_text(std::ostream& out) const;

 private:
  SloRuleSet rules_;
  std::vector<SloBreach> breaches_;
};

}  // namespace curb::obs
