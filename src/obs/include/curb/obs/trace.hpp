#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::obs {

/// Span attributes, exported verbatim into trace args.
using Attrs = std::vector<std::pair<std::string, std::string>>;

/// Opaque handle returned by Tracer::begin. The zero id is invalid, which is
/// what a disabled tracer hands out: end(invalid) is a no-op, so call sites
/// do not need their own enabled checks.
struct SpanId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// One recorded span. `track` names the timeline row the span renders on
/// (a tid in Chrome trace terms): one per controller, switch, or consensus
/// group. `parent` points at the innermost span open on the same track when
/// this one began, forming the per-round span tree.
struct SpanRecord {
  std::uint64_t id = 0;      // 1-based, in begin order
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  std::string track;
  sim::SimTime start;
  sim::SimTime end;
  bool open = true;
  Attrs attrs;
};

/// Protocol span recorder bound to the virtual clock. All state lives in
/// plain vectors; ids are dense sequence numbers, so two runs that execute
/// the same event sequence produce byte-identical exports.
///
/// The disabled path is near-zero cost: one branch, no allocation — begin()
/// returns the invalid id and every other entry point returns immediately.
class Tracer {
 public:
  /// Bind the virtual clock. Must be called before enabling.
  void bind_clock(const sim::Simulator& sim) { sim_ = &sim; }

  void set_enabled(bool on) { enabled_ = on && sim_ != nullptr; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a span. Nested under the innermost span still open on `track`.
  SpanId begin(std::string_view name, std::string_view track, Attrs attrs = {});

  /// Open a span with an explicit parent (invalid id = root), bypassing the
  /// open-stack. Concurrent protocol slots interleave on a shared track, so
  /// stack nesting would attach a phase to whichever slot opened last;
  /// explicit parenting keeps each phase under its own slot. Spans opened
  /// this way never become implicit parents of later begin() calls.
  SpanId begin_under(SpanId parent, std::string_view name, std::string_view track,
                     Attrs attrs = {});

  /// Close a span; no-op for invalid ids or spans already closed.
  void end(SpanId id);

  /// Keyed spans stitch one logical protocol stage across components: the
  /// first begin_keyed for a key opens the span, later ones are ignored
  /// (e.g. every group member reaching intra-group commit reports the same
  /// AGREE stage). A key is single-use: once end_keyed closes it, later
  /// begin_keyed calls for the same key are also ignored — a straggler
  /// reaching the stage after the quorum already closed it must not re-open
  /// the stage as a phantom never-ending span. Returns true when this call
  /// opened the span.
  bool begin_keyed(std::uint64_t key, std::string_view name, std::string_view track,
                   Attrs attrs = {});
  /// Close the span opened for `key`, if any. Returns true when closed now.
  bool end_keyed(std::uint64_t key);

  /// Zero-duration marker (view change, accusation, ...).
  void instant(std::string_view name, std::string_view track, Attrs attrs = {});

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_count() const;
  /// Tracks in first-use order (stable tid assignment for exporters).
  [[nodiscard]] const std::vector<std::string>& tracks() const { return track_order_; }

  void clear();

 private:
  std::uint64_t track_index(std::string_view track);

  const sim::Simulator* sim_ = nullptr;
  bool enabled_ = false;
  std::vector<SpanRecord> spans_;
  std::vector<std::string> track_order_;
  std::map<std::string, std::uint64_t, std::less<>> track_ids_;
  /// track index -> stack of open span ids (innermost last).
  std::vector<std::vector<std::uint64_t>> open_stacks_;
  std::map<std::uint64_t, std::uint64_t> keyed_open_;  // key -> span id
  std::set<std::uint64_t> keyed_closed_;               // single-use key tombstones
};

/// RAII helper for synchronous sections (exporter timing, solver calls).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name, std::string_view track,
             Attrs attrs = {})
      : tracer_{tracer}, id_{tracer.begin(name, track, std::move(attrs))} {}
  ~ScopedSpan() { tracer_.end(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer& tracer_;
  SpanId id_;
};

/// The one handle a component needs: metrics registry + tracer. Components
/// hold a nullable Observatory*; a null pointer is the disabled fast path.
struct Observatory;

}  // namespace curb::obs
