#pragma once

// Memory-profile reporting: serialize a res::MemSnapshot to JSON, render the
// human top-allocator table, export per-frame allocation flamegraphs in the
// same collapsed-stack format as host-time profiles, and diff two profiles
// with regression thresholds (`curb-prof mem-report` / `mem-diff`).
//
// Everything here reports *host* measurements — profiles go to their own
// files and never into the deterministic trace/telemetry streams.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "curb/obs/res/account.hpp"

namespace curb::obs::res {

/// Serialize a snapshot as a standalone JSON document (tags in enum order;
/// all-zero tags are skipped). Round-trips through parse_mem_profile_json.
void write_mem_profile_json(const MemSnapshot& snap, std::ostream& out);

/// Parse a mem-profile JSON document (throws std::runtime_error on malformed
/// input; unknown tag names throw, missing tags read as zero).
[[nodiscard]] MemSnapshot parse_mem_profile_json(std::istream& in);

/// Human report: totals, attribution coverage, and the per-tag allocator
/// table sorted by cumulative bytes.
void write_mem_report(const MemSnapshot& snap, std::ostream& out);

/// Collapsed-stack memory flamegraph: one line per attribution-tree frame
/// with nonzero allocated bytes, `frame;frame <bytes>` — flamegraph.pl's
/// `--countname=bytes` renders it directly. `frames` is indexed like
/// `profiler.nodes()` (see frame_allocations()); out-of-range entries are
/// ignored so a stale table cannot crash the export.
void write_mem_collapsed(const prof::Profiler& profiler,
                         const std::vector<FrameAlloc>& frames, std::ostream& out);

struct MemDiffOptions {
  /// Relative-change gate, percent, applied to per-tag cumulative bytes,
  /// allocation counts, and peak-live bytes.
  double threshold_pct = 25.0;
  /// Absolute byte/count change below this is ignored (malloc jitter).
  double floor = 4096.0;
  /// Downgrade regressions to warnings (CI smoke mode).
  bool warn_only = false;
};

struct MemDelta {
  std::string metric;  // "crypto.alloc_bytes", "total.peak_live_bytes", ...
  std::uint64_t base = 0;
  std::uint64_t candidate = 0;
  double delta_pct = 0.0;
  bool regressed = false;  // false = warn-only or improvement
};

struct MemDiffResult {
  std::vector<MemDelta> deltas;  // beyond-threshold changes only
  std::size_t metrics_compared = 0;

  [[nodiscard]] std::size_t regressions() const;
};

/// Compare candidate against baseline: growth in cumulative bytes, allocs, or
/// peak beyond the threshold regresses (shrinkage only ever reports).
[[nodiscard]] MemDiffResult mem_diff(const MemSnapshot& base,
                                     const MemSnapshot& candidate,
                                     const MemDiffOptions& options = {});

void write_mem_diff_text(const MemDiffResult& diff, std::ostream& out);

/// File-path conveniences; false when the file cannot be opened.
bool export_mem_profile(const MemSnapshot& snap, const std::string& path);
bool export_mem_collapsed(const prof::Profiler& profiler,
                          const std::vector<FrameAlloc>& frames,
                          const std::string& path);

}  // namespace curb::obs::res
