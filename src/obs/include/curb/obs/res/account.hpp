#pragma once

// curb::obs::res — tagged allocation accounting.
//
// curb::prof answers "where does host *time* go"; this layer answers "where
// does host *memory* go". A process-wide replacement of operator new/delete
// (account.cpp) attributes every allocation to the innermost active
// curb::prof component tag (crypto/solver/bus/bft/chain/obs/sim), keeping
// per-tag live bytes, cumulative allocation counts/bytes, and peak-live
// high-water marks in thread-safe counters — plus, when a prof::Profiler is
// installed on the allocating thread, cumulative bytes per attribution-tree
// frame so memory flamegraphs fall out of the same collapsed-stack pipeline
// as time flamegraphs.
//
// Enablement is a one-way latch read from the environment at the process's
// FIRST allocation (static initialization, before main): set
// CURB_MEM_ACCOUNT=1 — or any of CURB_MEM_OUT / CURB_MEM_FOLDED — and every
// allocation carries a 32-byte accounting header; leave them unset and
// operator new degrades to plain malloc plus one predictable branch. The
// latch cannot flip mid-process: headers must be all-or-nothing, because
// operator delete decides how to free by reading the header.
//
// Determinism: the accountant only *observes* allocations — nothing it
// counts feeds the metrics registry, the virtual clock, or any protocol
// decision, so same-seed runs stay byte-identical in every trace/telemetry
// output with accounting on. Memory reports go to their own files
// (CURB_MEM_OUT / CURB_MEM_FOLDED), which are host-dependent by nature.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "curb/prof/profiler.hpp"

namespace curb::obs::res {

/// Number of attribution tags (mirrors prof::ComponentTag).
inline constexpr std::size_t kTagCount = prof::kComponentTagCount;

/// Snapshot of one tag's counters. All monotone except live_bytes.
struct TagCounters {
  std::uint64_t allocs = 0;       ///< cumulative allocation count
  std::uint64_t frees = 0;        ///< cumulative deallocation count
  std::uint64_t alloc_bytes = 0;  ///< cumulative bytes requested
  std::uint64_t freed_bytes = 0;  ///< cumulative bytes released
  std::uint64_t live_bytes = 0;   ///< currently outstanding bytes
  std::uint64_t peak_live_bytes = 0;  ///< high-water of live_bytes
};

/// Full accounting snapshot: totals, the per-tag split, and the bytes the
/// accounting headers themselves consumed (not part of any tag).
struct MemSnapshot {
  TagCounters total;
  std::array<TagCounters, kTagCount> tags{};
  std::uint64_t header_bytes = 0;

  /// Cumulative bytes attributed to a *named* subsystem tag — everything
  /// except untagged; the attribution-coverage ratio reported by mem-report.
  [[nodiscard]] std::uint64_t tagged_alloc_bytes() const;
};

/// True when the accounting latch is on for this process (env-decided at the
/// first allocation; constant afterwards).
[[nodiscard]] bool enabled();

/// Read every counter (relaxed loads; exact when the process is quiescent,
/// approximate while other threads allocate).
[[nodiscard]] MemSnapshot snapshot();

/// Reset every peak-live high-water mark to the current live bytes. Benches
/// call this between configurations so each entry reports its own peak.
void reset_peaks();

/// Cumulative allocations attributed to one prof attribution-tree frame.
struct FrameAlloc {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
};

/// Per-frame allocation counts for the calling thread, indexed like
/// prof::Profiler::nodes() of the profiler that was installed while the
/// allocations happened. Empty when no profiler was ever installed on this
/// thread or accounting is off.
[[nodiscard]] std::vector<FrameAlloc> frame_allocations();

/// Forget the calling thread's per-frame attribution (tests; also the right
/// call after Profiler::clear(), since node indices restart).
void clear_frame_allocations();

namespace detail {
/// Counter-path test hooks: record an allocation/free of `size` bytes under
/// `tag` exactly as the interposed operator new/delete would, without going
/// through the allocator. Lets the accounting logic be unit-tested even when
/// the process-wide latch is off.
void record_alloc(std::size_t size, prof::ComponentTag tag);
void record_free(std::size_t size, prof::ComponentTag tag);
}  // namespace detail

}  // namespace curb::obs::res
