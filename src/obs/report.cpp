#include "curb/obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>

#include "curb/obs/export.hpp"

namespace curb::obs {

namespace {

/// Fixed three-decimal formatting: deterministic across platforms, unlike
/// ostream double insertion with locale-dependent state.
std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fixed1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

double share_pct(std::int64_t part, std::int64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

void write_finding_json(const Finding& f, std::ostream& out) {
  out << "{\"detector\":\"" << json_escape(f.detector) << "\",\"severity\":\""
      << to_string(f.severity) << "\",\"at_us\":" << f.at_us << ",\"track\":\""
      << json_escape(f.track) << "\",\"spans\":[";
  for (std::size_t i = 0; i < f.spans.size(); ++i) {
    if (i != 0) out << ",";
    out << f.spans[i];
  }
  out << "],\"message\":\"" << json_escape(f.message) << "\"}";
}

void write_txn_json(const TransactionTrace& txn, std::ostream& out) {
  out << "{\"switch\":" << txn.switch_id << ",\"request\":" << txn.request_id
      << ",\"kind\":\"" << json_escape(txn.kind) << "\",\"root_span\":" << txn.root_span
      << ",\"start_us\":" << txn.start_us << ",\"end_us\":" << txn.end_us
      << ",\"latency_us\":" << txn.latency_us()
      << ",\"complete\":" << (txn.complete ? "true" : "false");
  if (txn.has_instance) out << ",\"group\":" << txn.instance;
  out << ",\"overlap_us\":" << txn.overlap_us << ",\"segments\":[";
  for (std::size_t i = 0; i < txn.segments.size(); ++i) {
    const Segment& seg = txn.segments[i];
    if (i != 0) out << ",";
    out << "{\"phase\":\"" << to_string(seg.phase) << "\",\"start_us\":" << seg.start_us
        << ",\"end_us\":" << seg.end_us << ",\"duration_us\":" << seg.duration_us()
        << ",\"share_pct\":" << fixed3(share_pct(seg.duration_us(), txn.latency_us()))
        << ",\"span\":" << seg.span_id << "}";
  }
  out << "]}";
}

/// Complete transactions, slowest first (ties: root span id), capped.
std::vector<const TransactionTrace*> slowest_complete(const TraceAnalysis& analysis,
                                                      std::size_t limit) {
  std::vector<const TransactionTrace*> txns;
  for (const TransactionTrace& txn : analysis.transactions()) {
    if (txn.complete) txns.push_back(&txn);
  }
  std::sort(txns.begin(), txns.end(),
            [](const TransactionTrace* a, const TransactionTrace* b) {
              if (a->latency_us() != b->latency_us()) {
                return a->latency_us() > b->latency_us();
              }
              return a->root_span < b->root_span;
            });
  if (limit != 0 && txns.size() > limit) txns.resize(limit);
  return txns;
}

}  // namespace

void write_latency_stats_json(const LatencyStats& s, std::ostream& out) {
  out << "{\"count\":" << s.count << ",\"sum_us\":" << s.sum_us
      << ",\"mean_us\":" << fixed3(s.mean_us()) << ",\"min_us\":" << s.min_us
      << ",\"max_us\":" << s.max_us << ",\"p50_us\":" << s.p50_us
      << ",\"p90_us\":" << s.p90_us << ",\"p99_us\":" << s.p99_us << "}";
}

void write_phase_breakdown_json(const TraceAnalysis& analysis, std::ostream& out) {
  out << "[";
  bool first = true;
  for (const Phase phase : kPhaseOrder) {
    const auto it = analysis.phase_stats().find(phase);
    if (it == analysis.phase_stats().end()) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"phase\":\"" << to_string(phase) << "\",\"share_pct\":"
        << fixed3(share_pct(it->second.sum_us, analysis.e2e().sum_us)) << ",\"stats\":";
    write_latency_stats_json(it->second, out);
    out << "}";
  }
  out << "]";
}

void write_report_text(const TraceAnalysis& analysis, std::ostream& out) {
  const LatencyStats& e2e = analysis.e2e();
  out << "curb-trace report\n";
  out << "  spans:        " << analysis.spans().size() << "\n";
  out << "  transactions: " << analysis.transactions().size() << " ("
      << analysis.complete_count() << " complete)\n";
  out << "  end-to-end (pkt_in -> reply_quorum, us): count=" << e2e.count
      << " mean=" << fixed1(e2e.mean_us()) << " p50=" << e2e.p50_us
      << " p90=" << e2e.p90_us << " p99=" << e2e.p99_us << " min=" << e2e.min_us
      << " max=" << e2e.max_us << "\n";

  out << "\nphase breakdown (complete transactions; shares sum to 100%):\n";
  out << "  " << std::left << std::setw(12) << "phase" << std::right << std::setw(8)
      << "count" << std::setw(12) << "mean_us" << std::setw(10) << "p50_us"
      << std::setw(10) << "p90_us" << std::setw(10) << "p99_us" << std::setw(9)
      << "share%" << "\n";
  for (const Phase phase : kPhaseOrder) {
    const auto it = analysis.phase_stats().find(phase);
    if (it == analysis.phase_stats().end()) continue;
    const LatencyStats& s = it->second;
    out << "  " << std::left << std::setw(12) << to_string(phase) << std::right
        << std::setw(8) << s.count << std::setw(12) << fixed1(s.mean_us())
        << std::setw(10) << s.p50_us << std::setw(10) << s.p90_us << std::setw(10)
        << s.p99_us << std::setw(9) << fixed1(share_pct(s.sum_us, e2e.sum_us)) << "\n";
  }

  if (!analysis.group_stats().empty()) {
    out << "\nper-group end-to-end (us):\n";
    for (const auto& [group, s] : analysis.group_stats()) {
      out << "  group " << group << ": count=" << s.count << " mean="
          << fixed1(s.mean_us()) << " p50=" << s.p50_us << " p90=" << s.p90_us
          << " p99=" << s.p99_us << "\n";
    }
  }

  std::size_t warnings = 0;
  std::size_t errors = 0;
  for (const Finding& f : analysis.findings()) {
    (f.severity == Finding::Severity::kError ? errors : warnings)++;
  }
  out << "\nanomalies: " << errors << " errors, " << warnings << " warnings\n";
}

void write_report_json(const TraceAnalysis& analysis, std::ostream& out) {
  const LatencyStats& e2e = analysis.e2e();
  out << "{\"spans\":" << analysis.spans().size()
      << ",\"transactions\":" << analysis.transactions().size()
      << ",\"complete\":" << analysis.complete_count() << ",\"e2e_us\":";
  write_latency_stats_json(e2e, out);
  out << ",\"phases\":";
  write_phase_breakdown_json(analysis, out);
  out << ",\"groups\":[";
  bool first = true;
  for (const auto& [group, s] : analysis.group_stats()) {
    if (!first) out << ",";
    first = false;
    out << "{\"group\":" << group << ",\"stats\":";
    write_latency_stats_json(s, out);
    out << "}";
  }
  std::size_t warnings = 0;
  std::size_t errors = 0;
  for (const Finding& f : analysis.findings()) {
    (f.severity == Finding::Severity::kError ? errors : warnings)++;
  }
  out << "],\"anomalies\":{\"errors\":" << errors << ",\"warnings\":" << warnings
      << ",\"findings\":[";
  first = true;
  for (const Finding& f : analysis.findings()) {
    if (!first) out << ",";
    first = false;
    write_finding_json(f, out);
  }
  out << "]}}\n";
}

void write_critical_path_text(const TraceAnalysis& analysis, std::ostream& out,
                              std::size_t limit) {
  const auto txns = slowest_complete(analysis, limit);
  out << "critical paths, slowest first (" << txns.size() << " of "
      << analysis.complete_count() << " complete transactions):\n";
  for (const TransactionTrace* txn : txns) {
    out << "\n" << txn->kind << " switch=" << txn->switch_id << " request="
        << txn->request_id << " latency_us=" << txn->latency_us();
    if (txn->has_instance) out << " group=" << txn->instance;
    if (txn->overlap_us != 0) out << " overlap_us=" << txn->overlap_us;
    out << "\n";
    for (const Segment& seg : txn->segments) {
      out << "  " << std::left << std::setw(12) << to_string(seg.phase) << std::right
          << std::setw(10) << seg.duration_us() << " us  " << std::setw(6)
          << fixed1(share_pct(seg.duration_us(), txn->latency_us())) << "%  [span "
          << seg.span_id << "]\n";
    }
  }
}

void write_critical_path_json(const TraceAnalysis& analysis, std::ostream& out,
                              std::size_t limit) {
  const auto txns = slowest_complete(analysis, limit);
  out << "{\"complete\":" << analysis.complete_count() << ",\"transactions\":[";
  for (std::size_t i = 0; i < txns.size(); ++i) {
    if (i != 0) out << ",";
    write_txn_json(*txns[i], out);
  }
  out << "]}\n";
}

void write_anomalies_text(const TraceAnalysis& analysis, std::ostream& out) {
  if (analysis.findings().empty()) {
    out << "no anomalies: " << analysis.complete_count() << " of "
        << analysis.transactions().size()
        << " transactions completed cleanly, all spans closed\n";
    return;
  }
  out << analysis.findings().size() << " finding(s):\n";
  for (const Finding& f : analysis.findings()) {
    out << "  [" << to_string(f.severity) << "] " << f.detector << " at "
        << f.at_us << "us on " << f.track << ": " << f.message << " (spans:";
    for (const std::uint64_t id : f.spans) out << " " << id;
    out << ")\n";
  }
}

void write_anomalies_json(const TraceAnalysis& analysis, std::ostream& out) {
  std::size_t warnings = 0;
  std::size_t errors = 0;
  for (const Finding& f : analysis.findings()) {
    (f.severity == Finding::Severity::kError ? errors : warnings)++;
  }
  out << "{\"errors\":" << errors << ",\"warnings\":" << warnings << ",\"findings\":[";
  bool first = true;
  for (const Finding& f : analysis.findings()) {
    if (!first) out << ",";
    first = false;
    write_finding_json(f, out);
  }
  out << "]}\n";
}

std::size_t DiffResult::regressions() const {
  std::size_t n = 0;
  for (const DiffEntry& e : entries) {
    if (e.regression) ++n;
  }
  return n;
}

DiffResult diff_analyses(const TraceAnalysis& baseline, const TraceAnalysis& candidate,
                         const DiffOptions& options) {
  DiffResult diff;
  diff.base_complete = baseline.complete_count();
  diff.cand_complete = candidate.complete_count();
  diff.base_anomalies = baseline.findings().size();
  diff.cand_anomalies = candidate.findings().size();

  const auto compare = [&](const std::string& metric, const LatencyStats* base,
                           const LatencyStats* cand) {
    DiffEntry entry;
    entry.metric = metric;
    entry.in_baseline = base != nullptr && base->count > 0;
    entry.in_candidate = cand != nullptr && cand->count > 0;
    if (entry.in_baseline) {
      entry.base_p50_us = base->p50_us;
      entry.base_mean_us = base->mean_us();
    }
    if (entry.in_candidate) {
      entry.cand_p50_us = cand->p50_us;
      entry.cand_mean_us = cand->mean_us();
    }
    if (entry.in_baseline && entry.in_candidate) {
      const std::int64_t delta = entry.cand_p50_us - entry.base_p50_us;
      if (entry.base_p50_us != 0) {
        entry.delta_pct = 100.0 * static_cast<double>(delta) /
                          static_cast<double>(entry.base_p50_us);
      }
      entry.regression =
          delta > options.floor_us && entry.delta_pct > options.threshold_pct;
    } else if (entry.in_candidate && !entry.in_baseline) {
      // A phase that appears only in the candidate run is a structural
      // change worth flagging, not a silent pass.
      entry.regression = entry.cand_p50_us > options.floor_us;
    }
    diff.entries.push_back(entry);
  };

  compare("e2e", &baseline.e2e(), &candidate.e2e());
  for (const Phase phase : kPhaseOrder) {
    const auto base_it = baseline.phase_stats().find(phase);
    const auto cand_it = candidate.phase_stats().find(phase);
    const LatencyStats* base =
        base_it != baseline.phase_stats().end() ? &base_it->second : nullptr;
    const LatencyStats* cand =
        cand_it != candidate.phase_stats().end() ? &cand_it->second : nullptr;
    if (base == nullptr && cand == nullptr) continue;
    compare(std::string{to_string(phase)}, base, cand);
  }
  return diff;
}

void write_diff_text(const DiffResult& diff, std::ostream& out) {
  out << "curb-trace diff (baseline -> candidate)\n";
  out << "  complete transactions: " << diff.base_complete << " -> "
      << diff.cand_complete << "\n";
  out << "  anomalies:             " << diff.base_anomalies << " -> "
      << diff.cand_anomalies << "\n\n";
  out << "  " << std::left << std::setw(12) << "metric" << std::right << std::setw(14)
      << "base_p50_us" << std::setw(14) << "cand_p50_us" << std::setw(10) << "delta%"
      << "  verdict\n";
  for (const DiffEntry& e : diff.entries) {
    out << "  " << std::left << std::setw(12) << e.metric << std::right;
    if (e.in_baseline) {
      out << std::setw(14) << e.base_p50_us;
    } else {
      out << std::setw(14) << "-";
    }
    if (e.in_candidate) {
      out << std::setw(14) << e.cand_p50_us;
    } else {
      out << std::setw(14) << "-";
    }
    if (e.in_baseline && e.in_candidate) {
      out << std::setw(10) << fixed1(e.delta_pct);
    } else {
      out << std::setw(10) << "-";
    }
    out << "  " << (e.regression ? "REGRESSION" : "ok") << "\n";
  }
  out << "\n" << diff.regressions() << " regression(s)\n";
}

void write_diff_json(const DiffResult& diff, std::ostream& out) {
  out << "{\"base_complete\":" << diff.base_complete
      << ",\"cand_complete\":" << diff.cand_complete
      << ",\"base_anomalies\":" << diff.base_anomalies
      << ",\"cand_anomalies\":" << diff.cand_anomalies
      << ",\"regressions\":" << diff.regressions() << ",\"entries\":[";
  for (std::size_t i = 0; i < diff.entries.size(); ++i) {
    const DiffEntry& e = diff.entries[i];
    if (i != 0) out << ",";
    out << "{\"metric\":\"" << json_escape(e.metric) << "\",\"in_baseline\":"
        << (e.in_baseline ? "true" : "false")
        << ",\"in_candidate\":" << (e.in_candidate ? "true" : "false")
        << ",\"base_p50_us\":" << e.base_p50_us << ",\"cand_p50_us\":" << e.cand_p50_us
        << ",\"base_mean_us\":" << fixed3(e.base_mean_us)
        << ",\"cand_mean_us\":" << fixed3(e.cand_mean_us)
        << ",\"delta_pct\":" << fixed3(e.delta_pct)
        << ",\"regression\":" << (e.regression ? "true" : "false") << "}";
  }
  out << "]}\n";
}

}  // namespace curb::obs
