// Control-plane design comparison on Internet2 (34 switches, one PKT-IN
// per switch): Curb vs the prior-art architectures the paper positions
// against (Section II): a single centralized controller, a MORPH-style
// primary-backup comparator scheme [4]/[5], and a flat SimpleBFT-style
// PBFT control plane [1]. Latency and message cost quantify the price of
// each trust level.

#include <cstdio>

#include "common.hpp"
#include "curb/core/baselines.hpp"
#include "curb/core/simulation.hpp"
#include "curb/net/topology.hpp"

namespace {

using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::RoundMetrics;

void print_row(const char* name, const RoundMetrics& m, const char* guarantees) {
  curb::bench::print_cell(std::string{name});
  curb::bench::print_cell(m.mean_latency_ms);
  curb::bench::print_cell(m.accepted > 0 ? static_cast<double>(m.messages) /
                                               static_cast<double>(m.accepted)
                                         : -1.0);
  curb::bench::print_cell(std::string{guarantees});
  curb::bench::end_row();
}

}  // namespace

int main() {
  curb::bench::print_header("Control-plane architectures on Internet2",
                            "Section II comparison (extension table)");
  curb::bench::print_row_header({"architecture", "latency_ms", "msgs/req", "guarantees"});

  const auto topo = curb::net::internet2();
  const std::size_t switches = 34;

  {
    curb::core::SingleControllerBaseline single{topo, {}};
    (void)single.run_round(switches);
    print_row("single-controller", single.run_round(switches), "none");
  }
  {
    curb::core::PrimaryBackupBaseline pb{topo, {}};
    (void)pb.run_round(switches);
    print_row("primary-backup", pb.run_round(switches), "detect-only");
  }
  {
    CurbOptions opts;
    opts.controller_capacity = 12.0;
    opts.max_cs_delay_ms = 14.0;
    opts.op_time_mode = curb::core::OpTimeMode::kFixed;
    curb::core::FlatPbftBaseline flat{topo, opts};
    (void)flat.run_round(switches);
    print_row("flat-pbft", flat.run_round(switches), "BFT, O(N^2) msgs");
  }
  for (const auto engine :
       {curb::bft::ConsensusEngine::kPbft, curb::bft::ConsensusEngine::kHotstuff}) {
    CurbOptions opts;
    opts.controller_capacity = 12.0;
    opts.max_cs_delay_ms = 14.0;
    opts.op_time_mode = curb::core::OpTimeMode::kFixed;
    opts.consensus_engine = engine;
    CurbSimulation sim{topo, opts};
    (void)sim.run_packet_in_round();
    const char* name = engine == curb::bft::ConsensusEngine::kPbft
                           ? "curb (pbft groups)"
                           : "curb (hotstuff)";
    print_row(name, sim.run_packet_in_round(), "BFT+chain, O(N)");
  }
  std::printf(
      "\nNote: baselines run without the 15 ms per-message calibration\n"
      "overhead or blockchain pipeline; the latency column shows the\n"
      "inherent cost ladder of each design, the msgs/req column the\n"
      "communication price Curb's grouping avoids at scale.\n");
  return 0;
}
