#pragma once

// Shared helpers for the figure-reproduction benchmark binaries. Each binary
// regenerates one table/figure from the paper's evaluation (Section IV),
// printing the same series the figure plots. Absolute values depend on the
// simulated substrate; the shapes are the reproduction target (see
// EXPERIMENTS.md).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "curb/core/env.hpp"
#include "curb/core/network.hpp"
#include "curb/core/options.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/report.hpp"
#include "curb/obs/res/account.hpp"
#include "curb/obs/res/report.hpp"
#include "curb/prof/export.hpp"
#include "curb/prof/profiler.hpp"
#include "curb/sim/stats.hpp"

namespace curb::bench {

/// Environment-driven host profiling: set CURB_PROF to a path to write a
/// collapsed-stack (flamegraph.pl) profile of the whole run, and/or
/// CURB_PROF_CHROME for the Chrome-trace rendering. Either installs the
/// process profiler for the main thread; at exit the profile files are
/// written and a one-line host summary is printed. Host time never feeds the
/// virtual clock, so profiled runs stay byte-identical to unprofiled ones.
///
/// Memory accounting rides the same exit path: CURB_MEM_OUT writes the
/// per-tag allocation profile (curb-prof mem-report/mem-diff input) and
/// CURB_MEM_FOLDED the collapsed-stack memory flamegraph (bytes per
/// attribution frame; implies installing the profiler, which supplies the
/// frames). Either latches the allocation accountant on — see
/// curb::obs::res.
class HostProfile {
 public:
  /// Idempotent; benches call this from print_header so any bench binary
  /// honours CURB_PROF without per-bench wiring.
  static void install_from_env() { (void)instance(); }

  [[nodiscard]] static bool enabled() { return instance().active_; }

 private:
  HostProfile() {
    if (const char* path = std::getenv("CURB_PROF")) collapsed_path_ = path;
    if (const char* path = std::getenv("CURB_PROF_CHROME")) chrome_path_ = path;
    if (const char* path = std::getenv("CURB_MEM_OUT")) mem_out_path_ = path;
    if (const char* path = std::getenv("CURB_MEM_FOLDED")) mem_folded_path_ = path;
    active_ = !collapsed_path_.empty() || !chrome_path_.empty() ||
              !mem_folded_path_.empty();
    if (active_) prof::set_thread_profiler(&profiler_);
  }

  ~HostProfile() {
    if (!active_ && mem_out_path_.empty()) return;
    if (active_) prof::set_thread_profiler(nullptr);
    const double wall_s = wall_.elapsed_ms() / 1000.0;
    const std::uint64_t events = profiler_.calls("sim.event");
    std::string written;
    if (!collapsed_path_.empty() && prof::export_collapsed(profiler_, collapsed_path_)) {
      written = collapsed_path_;
    }
    if (!chrome_path_.empty() && prof::export_chrome_profile(profiler_, chrome_path_)) {
      if (!written.empty()) written += ", ";
      written += chrome_path_;
    }
    if (obs::res::enabled()) {
      const obs::res::MemSnapshot snap = obs::res::snapshot();
      if (!mem_out_path_.empty() &&
          obs::res::export_mem_profile(snap, mem_out_path_)) {
        if (!written.empty()) written += ", ";
        written += mem_out_path_;
      }
      if (!mem_folded_path_.empty() &&
          obs::res::export_mem_collapsed(profiler_, obs::res::frame_allocations(),
                                         mem_folded_path_)) {
        if (!written.empty()) written += ", ";
        written += mem_folded_path_;
      }
      const double denom = snap.total.alloc_bytes > 0
                               ? static_cast<double>(snap.total.alloc_bytes)
                               : 1.0;
      std::fprintf(stderr,
                   "mem: alloc=%.1fMiB peak=%.1fMiB tagged=%.1f%%\n",
                   static_cast<double>(snap.total.alloc_bytes) / (1024.0 * 1024.0),
                   static_cast<double>(snap.total.peak_live_bytes) /
                       (1024.0 * 1024.0),
                   100.0 * static_cast<double>(snap.tagged_alloc_bytes()) / denom);
    }
    if (active_) {
      std::fprintf(stderr, "host: wall=%.2fs events/s=%.0f profile written to %s\n",
                   wall_s, wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0,
                   written.empty() ? "(none)" : written.c_str());
    }
  }

  static HostProfile& instance() {
    static HostProfile profile;
    return profile;
  }

  friend class BenchResults;

  prof::Profiler profiler_;
  prof::StopWatch wall_;
  std::string collapsed_path_;
  std::string chrome_path_;
  std::string mem_out_path_;
  std::string mem_folded_path_;
  bool active_ = false;
};

void warm_bench_results();

inline void print_header(const std::string& title, const std::string& paper_ref) {
  // Line-buffer stdout so partial results survive a killed run.
  static const bool unbuffered = [] {
    setvbuf(stdout, nullptr, _IOLBF, 0);
    return true;
  }();
  (void)unbuffered;
  HostProfile::install_from_env();
  // Birth the results singleton (and its entry StopWatch) now: the first
  // add() otherwise creates it mid-call and reports a ~0 ms first lap.
  warm_bench_results();
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
}

inline void print_row_header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%-18s", "---");
  std::printf("\n");
}

inline void print_cell(double value) { std::printf("%-18.2f", value); }
inline void print_cell(const std::string& value) { std::printf("%-18s", value.c_str()); }
inline void end_row() { std::printf("\n"); }

/// Apply every option-affecting CURB_* environment variable (solver, fault
/// plan, time-series telemetry, SLO rules — see core::curb_env_vars() for
/// the documented table) so any bench binary honours them without
/// recompiling, e.g.
///   CURB_FAULT='drop(p=0.05,cat=REPLY)' CURB_TS_OUT=ts.jsonl
///     CURB_SLO='p99(core.request_latency_us) < 400ms' ./bench_pkt_in_latency
inline void apply_curb_env(core::CurbOptions& opts) {
  std::string error;
  if (!core::apply_env_to_options(opts, &error)) {
    std::fprintf(stderr, "bench: %s\n", error.c_str());
    std::exit(2);
  }
}

/// Paper-calibrated options for the protocol benches: Internet2, f = 1,
/// 500 ms timeout. The per-message overhead models the controller-side
/// processing cost of the paper's Python/Ryu/gRPC stack (calibrated so the
/// PKT-IN latency lands in the paper's 200-260 ms band; see EXPERIMENTS.md).
inline core::CurbOptions paper_options() {
  core::CurbOptions opts;
  opts.f = 1;
  opts.max_cs_delay_ms = 14.0;  // every switch keeps >= 6 eligible controllers,
                                // so removing up to 2 byzantine ones stays feasible
  opts.controller_capacity = 12.0;
  opts.link_model.per_message_overhead = curb::sim::SimTime::millis(15);
  // The end-to-end reply latency in this deployment is ~270 ms; a node is
  // "lazy" when its replies trail the pack but still beat the timeout
  // (paper exp. 3). Between those two lines:
  opts.lazy_threshold = curb::sim::SimTime::millis(350);
  // Reassignment churn transiently delays replies; demand several
  // consecutive misses before accusing a controller (the paper's
  // "application-specific waiting time" policy).
  opts.max_silent_rounds = 3;
  opts.op_time_mode = core::OpTimeMode::kMeasured;
  opts.observability = core::env_observability_requested();
  apply_curb_env(opts);
  return opts;
}

/// Consolidated machine-readable bench results. Each bench appends one entry
/// per measured configuration; the collected entries are written as a JSON
/// array at process exit to CURB_BENCH_OUT (default BENCH_results.json; set
/// it to the empty string to disable). When the configuration's network ran
/// with observability on, the entry also carries the end-to-end latency
/// stats and the per-phase breakdown from curb-trace analysis.
class BenchResults {
 public:
  /// `extra_json` is an optional raw JSON fragment spliced into the entry
  /// verbatim (e.g. ",\"msg_complexity\":{...}"); it must start with a comma
  /// and contain complete key:value members.
  static void add(const std::string& bench,
                  const std::vector<std::pair<std::string, std::string>>& params,
                  const std::vector<std::pair<std::string, double>>& metrics,
                  core::CurbNetwork* network = nullptr,
                  const std::string& extra_json = "") {
    std::ostringstream entry;
    entry << "{\"bench\":\"" << obs::json_escape(bench) << "\",\"params\":{";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) entry << ",";
      entry << "\"" << obs::json_escape(params[i].first) << "\":\""
            << obs::json_escape(params[i].second) << "\"";
    }
    entry << "},\"metrics\":{";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      char value[64];
      std::snprintf(value, sizeof value, "%.3f", metrics[i].second);
      if (i > 0) entry << ",";
      entry << "\"" << obs::json_escape(metrics[i].first) << "\":" << value;
    }
    entry << "}";
    if (!extra_json.empty()) entry << extra_json;
    append_host_section(entry, network);
    append_memory_section(entry, network);
    if (network != nullptr && network->observatory() != nullptr) {
      const obs::TraceAnalysis analysis =
          obs::TraceAnalysis::from_tracer(network->observatory()->tracer);
      entry << ",\"e2e_us\":";
      obs::write_latency_stats_json(analysis.e2e(), entry);
      entry << ",\"phases\":";
      obs::write_phase_breakdown_json(analysis, entry);
      entry << ",\"anomalies\":" << analysis.findings().size();
    }
    if (network != nullptr && network->ts() != nullptr) {
      append_window_series(entry, *network->ts());
    }
    entry << "}";
    instance().entries_.push_back(entry.str());
  }

 private:
  /// Host-time section: wall-clock milliseconds since the previous entry
  /// (always recorded, even with profiling off), the configuration's event
  /// throughput, and — when a profiler is installed — the per-component
  /// share of host time spent since the previous entry. Machine-dependent
  /// by nature; kept in its own section so virtual metrics stay comparable
  /// across hosts (and so perf-diff can hold host.* to looser thresholds).
  ///
  /// events_per_sec divides the network's executed events by the host time
  /// its simulator spent *inside the event loop* (Simulator::host_run_ns),
  /// not by the entry-to-entry wall lap. The wall lap conflates one-off
  /// setup — on fig5-size runs the initial MILP CAP solve used to be ~99%
  /// of it — and was garbage for the first entry (the lap started inside
  /// the first add() call), so the old figure measured the solver, not the
  /// event loop it claims to describe.
  static void append_host_section(std::ostringstream& entry,
                                  core::CurbNetwork* network) {
    const double wall_ms = instance().entry_wall_.lap_ms();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", wall_ms);
    entry << ",\"host\":{\"wall_ms\":" << buf;
    if (network != nullptr && network->simulator().host_run_ns() > 0) {
      const double events =
          static_cast<double>(network->simulator().events_executed());
      const double run_s =
          static_cast<double>(network->simulator().host_run_ns()) / 1e9;
      std::snprintf(buf, sizeof buf, "%.1f", events / run_s);
      entry << ",\"events_per_sec\":" << buf;
    }
    if (const prof::Profiler* profiler = prof::thread_profiler()) {
      auto& previous = instance().component_ns_;
      const std::map<std::string, std::uint64_t> current =
          profiler->exclusive_by_component();
      std::uint64_t delta_total = 0;
      std::map<std::string, std::uint64_t> delta;
      for (const auto& [component, ns] : current) {
        const auto it = previous.find(component);
        const std::uint64_t d = ns - (it != previous.end() ? it->second : 0);
        if (d > 0) delta[component] = d;
        delta_total += d;
      }
      if (delta_total > 0) {
        entry << ",\"components\":[";
        bool first = true;
        for (const auto& [component, ns] : delta) {
          std::snprintf(buf, sizeof buf, "%.2f",
                        100.0 * static_cast<double>(ns) /
                            static_cast<double>(delta_total));
          entry << (first ? "" : ",") << "{\"component\":\""
                << obs::json_escape(component) << "\",\"share_pct\":" << buf << "}";
          first = false;
        }
        entry << "]";
      }
      previous = current;
    }
    entry << "}";
  }

  /// Memory section (only when the allocation accountant is latched on):
  /// bytes/allocations since the previous entry plus the peak live footprint
  /// over that interval (peaks reset per entry so each configuration reports
  /// its own high-water). allocs_per_event and bytes_per_committed_txn are
  /// normalized against *this* entry's network — benches build a fresh
  /// network per configuration, so its lifetime totals are the entry's.
  /// Machine-dependent like host.*: perf-diff holds memory.* to the looser
  /// warn-only thresholds.
  static void append_memory_section(std::ostringstream& entry,
                                    core::CurbNetwork* network) {
    if (!obs::res::enabled()) return;
    const obs::res::MemSnapshot snap = obs::res::snapshot();
    auto& prev = instance().mem_prev_;
    const std::uint64_t alloc_bytes = snap.total.alloc_bytes - prev.alloc_bytes;
    const std::uint64_t allocs = snap.total.allocs - prev.allocs;
    prev = snap.total;
    entry << ",\"memory\":{\"peak_live_bytes\":" << snap.total.peak_live_bytes
          << ",\"alloc_bytes\":" << alloc_bytes << ",\"allocs\":" << allocs;
    if (network != nullptr) {
      const auto events = network->simulator().events_executed();
      if (events > 0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.2f",
                      static_cast<double>(allocs) / static_cast<double>(events));
        entry << ",\"allocs_per_event\":" << buf;
      }
      if (network->num_controllers() > 0 && network->controller(0).has_blockchain()) {
        const std::size_t txns =
            network->controller(0).blockchain().total_transactions();
        if (txns > 0) {
          char buf[64];
          std::snprintf(buf, sizeof buf, "%.1f",
                        static_cast<double>(alloc_bytes) /
                            static_cast<double>(txns));
          entry << ",\"bytes_per_committed_txn\":" << buf;
        }
      }
    }
    entry << "}";
    obs::res::reset_peaks();
  }

  /// Windowed-telemetry section: per-series summary over the retained ring
  /// (bounded by ts_retention, so entries stay small no matter how long the
  /// configuration ran). Full resolution lives in the CURB_TS_OUT JSONL.
  static void append_window_series(std::ostringstream& entry,
                                   const obs::TsCollector& ts) {
    entry << ",\"window_series\":{\"window_us\":" << ts.options().window.as_micros()
          << ",\"windows_closed\":" << ts.windows_closed()
          << ",\"retained\":" << ts.windows().size() << ",\"series\":{";
    // Per-series stats across retained windows (sorted: map iteration).
    struct Stats {
      const char* kind = "";
      std::size_t windows = 0;
      double sum = 0.0, max = 0.0, last = 0.0;
    };
    std::map<std::string, Stats> stats;
    for (const auto& window : ts.windows()) {
      for (const auto& [key, value] : window.series) {
        Stats& s = stats[key];
        s.kind = obs::to_string(value.kind);
        ++s.windows;
        const double v = value.kind == obs::TsValue::Kind::kHist ? value.p99
                                                                 : value.value;
        s.sum += v;
        s.max = s.windows == 1 ? v : std::max(s.max, v);
        s.last = v;
      }
    }
    bool first = true;
    for (const auto& [key, s] : stats) {
      entry << (first ? "" : ",") << "\"" << obs::json_escape(key)
            << "\":{\"kind\":\"" << s.kind << "\",\"windows\":" << s.windows
            << ",\"mean\":" << obs::json_double(s.sum / static_cast<double>(s.windows))
            << ",\"max\":" << obs::json_double(s.max)
            << ",\"last\":" << obs::json_double(s.last) << "}";
      first = false;
    }
    entry << "}}";
  }

  friend void warm_bench_results();

  BenchResults() = default;
  ~BenchResults() {
    if (entries_.empty()) return;
    const char* env = std::getenv("CURB_BENCH_OUT");
    const std::string path = env != nullptr ? env : "BENCH_results.json";
    if (path.empty()) return;
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (!out) return;
    out << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "]\n";
  }

  static BenchResults& instance() {
    static BenchResults results;
    return results;
  }

  std::vector<std::string> entries_;
  prof::StopWatch entry_wall_;
  std::map<std::string, std::uint64_t> component_ns_;
  obs::res::TagCounters mem_prev_;
};

inline void warm_bench_results() { (void)BenchResults::instance(); }

/// Write whatever the CURB_* env vars request from this network's
/// observatory. No-op when observability is off. Closes the trailing
/// telemetry window first so the JSONL stream and the SLO report cover the
/// whole run; breaches are summarized on stderr (benches keep exit 0 — the
/// watchdog exit code belongs to curb-sim/curb-watch).
inline void export_obs_from_env(core::CurbNetwork& network) {
  network.finalize_telemetry();
  if (obs::SloEngine* slo = network.slo(); slo != nullptr) {
    if (const auto path = core::env_get("CURB_SLO_OUT")) {
      std::ofstream out{*path, std::ios::binary | std::ios::trunc};
      if (out) slo->write_report_json(out);
    }
    if (slo->breached()) {
      std::fprintf(stderr, "bench: %zu SLO breach(es):\n", slo->breaches().size());
      std::ostringstream text;
      slo->write_report_text(text);
      std::fputs(text.str().c_str(), stderr);
    }
  }
  if (const obs::net::LinkStats* links = network.link_stats(); links != nullptr) {
    const obs::net::NodeNameFn names = network.link_node_names();
    obs::net::LinkReportOptions report;
    report.bandwidth_bps = network.options().link_model.bandwidth_bps;
    report.elapsed_s = network.simulator().now().as_seconds_f();
    if (const auto path = core::env_get("CURB_LINK_MATRIX")) {
      (void)obs::net::export_link_matrix_json(*links, names, report, *path);
    }
    if (const auto path = core::env_get("CURB_LINK_CSV")) {
      (void)obs::net::export_link_matrix_csv(*links, names, report, *path);
    }
    if (const auto path = core::env_get("CURB_LINK_DOT")) {
      (void)obs::net::export_link_dot(*links, names, report, *path);
    }
  }
  if (obs::net::MsgLedger* ledger = network.msg_ledger(); ledger != nullptr) {
    if (const auto path = core::env_get("CURB_LEDGER_OUT")) {
      (void)obs::net::export_ledger_jsonl(*ledger, *path);
    }
  }
  obs::Observatory* obsy = network.observatory();
  if (obsy == nullptr) return;
  network.snapshot_runtime_metrics();
  if (const char* path = std::getenv("CURB_TRACE")) {
    obs::export_chrome_trace(obsy->tracer, path);
  }
  if (const char* path = std::getenv("CURB_TRACE_JSONL")) {
    obs::export_spans_jsonl(obsy->tracer, path);
  }
  if (const char* path = std::getenv("CURB_METRICS_OUT")) {
    obs::export_metrics_json(obsy->metrics, path);
  }
  if (const char* path = std::getenv("CURB_METRICS_CSV")) {
    obs::export_metrics_csv(obsy->metrics, path);
  }
}

}  // namespace curb::bench
