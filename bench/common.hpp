#pragma once

// Shared helpers for the figure-reproduction benchmark binaries. Each binary
// regenerates one table/figure from the paper's evaluation (Section IV),
// printing the same series the figure plots. Absolute values depend on the
// simulated substrate; the shapes are the reproduction target (see
// EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "curb/core/network.hpp"
#include "curb/core/options.hpp"
#include "curb/obs/export.hpp"
#include "curb/sim/stats.hpp"

namespace curb::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  // Line-buffer stdout so partial results survive a killed run.
  static const bool unbuffered = [] {
    setvbuf(stdout, nullptr, _IOLBF, 0);
    return true;
  }();
  (void)unbuffered;
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
}

inline void print_row_header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%-18s", "---");
  std::printf("\n");
}

inline void print_cell(double value) { std::printf("%-18.2f", value); }
inline void print_cell(const std::string& value) { std::printf("%-18s", value.c_str()); }
inline void end_row() { std::printf("\n"); }

/// Environment-driven observability: set CURB_TRACE / CURB_TRACE_JSONL /
/// CURB_METRICS_OUT / CURB_METRICS_CSV to file paths to capture a protocol
/// trace or metrics snapshot from any bench binary without recompiling.
inline bool obs_enabled_from_env() {
  return std::getenv("CURB_TRACE") != nullptr ||
         std::getenv("CURB_TRACE_JSONL") != nullptr ||
         std::getenv("CURB_METRICS_OUT") != nullptr ||
         std::getenv("CURB_METRICS_CSV") != nullptr;
}

/// Paper-calibrated options for the protocol benches: Internet2, f = 1,
/// 500 ms timeout. The per-message overhead models the controller-side
/// processing cost of the paper's Python/Ryu/gRPC stack (calibrated so the
/// PKT-IN latency lands in the paper's 200-260 ms band; see EXPERIMENTS.md).
inline core::CurbOptions paper_options() {
  core::CurbOptions opts;
  opts.f = 1;
  opts.max_cs_delay_ms = 14.0;  // every switch keeps >= 6 eligible controllers,
                                // so removing up to 2 byzantine ones stays feasible
  opts.controller_capacity = 12.0;
  opts.link_model.per_message_overhead = curb::sim::SimTime::millis(15);
  // The end-to-end reply latency in this deployment is ~270 ms; a node is
  // "lazy" when its replies trail the pack but still beat the timeout
  // (paper exp. 3). Between those two lines:
  opts.lazy_threshold = curb::sim::SimTime::millis(350);
  // Reassignment churn transiently delays replies; demand several
  // consecutive misses before accusing a controller (the paper's
  // "application-specific waiting time" policy).
  opts.max_silent_rounds = 3;
  opts.op_time_mode = core::OpTimeMode::kMeasured;
  opts.observability = obs_enabled_from_env();
  return opts;
}

/// Write whatever the CURB_* env vars request from this network's
/// observatory. No-op when observability is off.
inline void export_obs_from_env(core::CurbNetwork& network) {
  obs::Observatory* obsy = network.observatory();
  if (obsy == nullptr) return;
  network.snapshot_runtime_metrics();
  if (const char* path = std::getenv("CURB_TRACE")) {
    obs::export_chrome_trace(obsy->tracer, path);
  }
  if (const char* path = std::getenv("CURB_TRACE_JSONL")) {
    obs::export_spans_jsonl(obsy->tracer, path);
  }
  if (const char* path = std::getenv("CURB_METRICS_OUT")) {
    obs::export_metrics_json(obsy->metrics, path);
  }
  if (const char* path = std::getenv("CURB_METRICS_CSV")) {
    obs::export_metrics_csv(obsy->metrics, path);
  }
}

}  // namespace curb::bench
