// Reproduces Fig. 7: number of controllers used by OP() vs D_c,s.
// Paper findings: higher D_c,s -> fewer controllers (wider reach per
// controller); TCR and LCR use the same count (both minimize usage first);
// adding the C2C constraint enrolls MORE controllers.

#include <cstdio>

#include "common.hpp"
#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"

namespace {

using curb::opt::Assignment;
using curb::opt::CapInstance;
using curb::opt::CapObjective;
using curb::opt::CapResult;

CapInstance internet2_instance(double max_cs_delay_ms, bool c2c) {
  const auto topo = curb::net::internet2();
  const auto ctls = topo.nodes_of_kind(curb::net::NodeKind::kController);
  const auto sws = topo.nodes_of_kind(curb::net::NodeKind::kSwitch);
  const curb::net::LinkModel lm;
  CapInstance inst = CapInstance::uniform(sws.size(), ctls.size(), 4, 1.0, 34.0);
  for (std::size_t i = 0; i < sws.size(); ++i) {
    for (std::size_t j = 0; j < ctls.size(); ++j) {
      inst.cs_delay[i][j] =
          lm.propagation_delay(topo.distance_km(sws[i], ctls[j])).as_millis_f();
    }
  }
  for (std::size_t j = 0; j < ctls.size(); ++j) {
    for (std::size_t j2 = 0; j2 < ctls.size(); ++j2) {
      inst.cc_delay[j][j2] =
          lm.propagation_delay(topo.distance_km(ctls[j], ctls[j2])).as_millis_f();
    }
  }
  inst.max_cs_delay = max_cs_delay_ms;
  if (c2c) inst.max_cc_delay = 12.0;
  return inst;
}

/// Reassignment after removing one used controller; returns controllers
/// used by the chosen objective, or -1 when infeasible.
double used_after_reassign(double d, bool c2c, CapObjective objective) {
  CapInstance inst = internet2_instance(d, c2c);
  curb::opt::MilpOptions base_mo;
  base_mo.max_wall_ms = 3000.0;
  const CapResult base =
      curb::opt::solve_cap(inst, CapObjective::kTrivial, nullptr, base_mo);
  if (!base.feasible) return -1.0;
  std::size_t victim = 0;
  std::size_t best = SIZE_MAX;
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    const std::size_t count = base.assignment.switches_of(j).size();
    if (count > 0 && count < best) {
      best = count;
      victim = j;
    }
  }
  inst.byzantine[victim] = true;
  curb::opt::MilpOptions mo;
  mo.max_wall_ms = 3000.0;  // bound the quadratic-constraint blow-up
  const CapResult r = curb::opt::solve_cap(inst, objective, &base.assignment, mo);
  if (!r.feasible) return -1.0;
  return static_cast<double>(r.assignment.controllers_used());
}

}  // namespace

int main() {
  curb::bench::print_header("Controllers used by OP() vs D_c,s", "Fig. 7");
  curb::bench::print_row_header({"D_cs_ms", "TCR", "LCR", "TCR+C2C", "LCR+C2C"});
  for (const double d : {10.0, 11.0, 12.0, 14.0, 16.0, 18.0}) {
    curb::bench::print_cell(d);
    curb::bench::print_cell(used_after_reassign(d, false, CapObjective::kTrivial));
    curb::bench::print_cell(used_after_reassign(d, false, CapObjective::kLeastMovement));
    curb::bench::print_cell(used_after_reassign(d, true, CapObjective::kTrivial));
    curb::bench::print_cell(used_after_reassign(d, true, CapObjective::kLeastMovement));
    curb::bench::end_row();
  }
  std::printf("(-1.00 marks an infeasible configuration)\n");
  return 0;
}
