// Reproduces Fig. 6: OP() solve time vs D_c,s for the two reassignment
// solvers (TCR, LCR) under three constraint sets:
//   base            — [O2] + [C2.1..C2.3] + [C2.5]
//   +leader         — adds the leader-fixing constraint [C2.6]
//   +C2C            — adds the quadratic C2C-delay constraint [C2.4]
// Paper findings to reproduce: the leader constraint is nearly free; the
// C2C constraint (an IQCP for Gurobi, a large pair-exclusion family here)
// costs far more; TCR is slightly cheaper than LCR; D_c,s hardly matters.

#include <cstdio>

#include "common.hpp"
#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"
#include "curb/sim/stats.hpp"

namespace {

using curb::opt::Assignment;
using curb::opt::CapInstance;
using curb::opt::CapObjective;
using curb::opt::CapResult;

constexpr int kRepetitions = 3;

/// Internet2-derived CAP instance (f = 1, uncapped capacity so the D_c,s
/// delay constraint is what binds — the regime Figs. 6-8 explore).
CapInstance internet2_instance(double max_cs_delay_ms) {
  const auto topo = curb::net::internet2();
  const auto ctls = topo.nodes_of_kind(curb::net::NodeKind::kController);
  const auto sws = topo.nodes_of_kind(curb::net::NodeKind::kSwitch);
  const curb::net::LinkModel lm;
  CapInstance inst = CapInstance::uniform(sws.size(), ctls.size(), 4, 1.0, 34.0);
  for (std::size_t i = 0; i < sws.size(); ++i) {
    for (std::size_t j = 0; j < ctls.size(); ++j) {
      inst.cs_delay[i][j] =
          lm.propagation_delay(topo.distance_km(sws[i], ctls[j])).as_millis_f();
    }
  }
  for (std::size_t j = 0; j < ctls.size(); ++j) {
    for (std::size_t j2 = 0; j2 < ctls.size(); ++j2) {
      inst.cc_delay[j][j2] =
          lm.propagation_delay(topo.distance_km(ctls[j], ctls[j2])).as_millis_f();
    }
  }
  inst.max_cs_delay = max_cs_delay_ms;
  return inst;
}

/// Reassignment scenario: solve the base problem, mark one used non-leader
/// controller byzantine, and measure the re-solve (exactly what a Curb
/// leader runs for a RE-ASS request).
struct Scenario {
  CapInstance instance;
  Assignment previous;
  std::size_t victim = 0;
};

Scenario make_scenario(double max_cs_delay_ms, bool leader_constraint,
                       bool c2c_constraint) {
  Scenario s{internet2_instance(max_cs_delay_ms), {}, 0};
  const CapResult base = curb::opt::solve_cap(s.instance);
  if (!base.feasible) return s;
  s.previous = base.assignment;
  // Victim: the used controller serving the fewest switches (always
  // removable when every switch has spare eligible controllers).
  std::size_t best_count = SIZE_MAX;
  for (std::size_t j = 0; j < s.instance.num_controllers; ++j) {
    const std::size_t count = base.assignment.switches_of(j).size();
    if (count > 0 && count < best_count) {
      best_count = count;
      s.victim = j;
    }
  }
  s.instance.byzantine[s.victim] = true;
  if (leader_constraint) {
    for (std::size_t sw = 0; sw < s.instance.num_switches; ++sw) {
      const auto group = base.assignment.group_of(sw);
      // Leader = lowest member id (Curb's default), unless it is the victim.
      for (const std::size_t m : group) {
        if (m != s.victim) {
          s.instance.fixed_leader[sw] = static_cast<int>(m);
          break;
        }
      }
    }
  }
  if (c2c_constraint) {
    s.instance.max_cc_delay = 12.0;  // ~2400 km controller-to-controller
  }
  return s;
}

double measure_ms(const Scenario& s, CapObjective objective) {
  if (s.previous.num_switches() == 0) return -1.0;
  curb::opt::MilpOptions mo;
  // The quadratic-constraint instances can blow the branch-and-bound tree
  // up (the paper sees the same blow-up as Gurobi IQCP time); bound the
  // node budget so a sweep cell costs seconds, not minutes.
  mo.max_wall_ms = 3000.0;  // generous; only hard C2C cells ever hit it
  curb::sim::Summary times;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const CapResult r = curb::opt::solve_cap(s.instance, objective, &s.previous, mo);
    if (!r.feasible) return -1.0;
    times.add(r.stats.wall_time_ms);
  }
  return times.mean();
}

}  // namespace

int main() {
  curb::bench::print_header("OP() reassignment solve time vs D_c,s", "Fig. 6");
  curb::bench::print_row_header({"D_cs_ms", "TCR_ms", "LCR_ms", "TCR+leader_ms",
                                 "LCR+leader_ms", "TCR+C2C_ms", "LCR+C2C_ms"});
  for (const double d : {10.0, 11.0, 12.0, 14.0, 16.0, 18.0}) {
    const Scenario base = make_scenario(d, false, false);
    const Scenario leader = make_scenario(d, true, false);
    const Scenario c2c = make_scenario(d, false, true);
    curb::bench::print_cell(d);
    curb::bench::print_cell(measure_ms(base, CapObjective::kTrivial));
    curb::bench::print_cell(measure_ms(base, CapObjective::kLeastMovement));
    curb::bench::print_cell(measure_ms(leader, CapObjective::kTrivial));
    curb::bench::print_cell(measure_ms(leader, CapObjective::kLeastMovement));
    curb::bench::print_cell(measure_ms(c2c, CapObjective::kTrivial));
    curb::bench::print_cell(measure_ms(c2c, CapObjective::kLeastMovement));
    curb::bench::end_row();
  }
  std::printf("(-1.00 marks an infeasible configuration)\n");
  return 0;
}
