// Reproduces Fig. 5: performance of handling PACKET_IN requests.
//  (a) latency vs number of switches in [4, 34]
//  (b) throughput vs number of switches, non-parallel and parallel
//  (c) latency vs f in {1..4}
//  (d) throughput vs f
// Setup: Internet2 topology (16 controllers / 34 switches), f = 1 unless
// swept; each round every active switch issues one table-miss PKT-IN.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hpp"
#include "curb/core/simulation.hpp"

namespace {

// CURB_BENCH_FAST=1 trims the sweeps to their smallest points for CI smoke
// runs. Each configuration builds a fresh deterministic simulation, so the
// entries a fast run produces are byte-identical (up to the host section) to
// the corresponding entries of a full run.
bool fast_mode() {
  const char* env = std::getenv("CURB_BENCH_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

using curb::bench::paper_options;
using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::RoundMetrics;

constexpr int kWarmupRounds = 1;
constexpr int kRounds = 5;

struct Sample {
  double latency_ms = 0.0;
  double latency_err = 0.0;
  double tps = 0.0;
};

Sample measure(CurbSimulation& sim, std::size_t active_switches,
               std::size_t requests_per_switch = 1) {
  sim.set_active_switches(active_switches);
  for (int i = 0; i < kWarmupRounds; ++i) {
    (void)sim.run_packet_in_round(requests_per_switch);
  }
  curb::sim::Summary latency;
  curb::sim::Summary tps;
  for (int i = 0; i < kRounds; ++i) {
    const RoundMetrics m = sim.run_packet_in_round(requests_per_switch);
    if (m.accepted == 0) continue;
    latency.add(m.mean_latency_ms);
    tps.add(m.throughput_tps);
  }
  return {latency.mean(), latency.stddev(), tps.mean()};
}

}  // namespace

int main() {
  curb::bench::print_header("PACKET_IN handling vs number of switches",
                            "Fig. 5(a) latency, Fig. 5(b) throughput");
  curb::bench::print_row_header(
      {"switches", "lat_ms", "lat_err", "tps_parallel", "tps_nonparallel"});
  const std::vector<std::size_t> switch_sweep =
      fast_mode() ? std::vector<std::size_t>{4, 16}
                  : std::vector<std::size_t>{4, 10, 16, 22, 28, 34};
  for (const std::size_t switches : switch_sweep) {
    CurbOptions parallel = paper_options();
    CurbSimulation sim_p{parallel};
    const Sample p = measure(sim_p, switches);
    // Throughput comparison under sustained load (3 requests per switch
    // per round) where pipelining matters.
    const Sample p_tp = measure(sim_p, switches, 3);

    CurbOptions serial = paper_options();
    serial.parallel = false;
    CurbSimulation sim_s{serial};
    const Sample s_tp = measure(sim_s, switches, 3);
    // CURB_TRACE / CURB_METRICS_OUT capture the last configuration swept.
    curb::bench::export_obs_from_env(sim_p.network());
    curb::bench::BenchResults::add(
        "fig5_pktin",
        {{"sweep", "switches"}, {"switches", std::to_string(switches)}, {"f", "1"}},
        {{"latency_ms", p.latency_ms},
         {"latency_err_ms", p.latency_err},
         {"tps_parallel", p_tp.tps},
         {"tps_nonparallel", s_tp.tps},
         {"messages", static_cast<double>(sim_p.total_messages())}},
        &sim_p.network());

    curb::bench::print_cell(static_cast<double>(switches));
    curb::bench::print_cell(p.latency_ms);
    curb::bench::print_cell(p.latency_err);
    curb::bench::print_cell(p_tp.tps);
    curb::bench::print_cell(s_tp.tps);
    curb::bench::end_row();
  }

  curb::bench::print_header("PACKET_IN handling vs fault tolerance f",
                            "Fig. 5(c) latency, Fig. 5(d) throughput");
  curb::bench::print_row_header({"f", "group_size", "lat_ms", "lat_err", "tps"});
  const std::vector<std::size_t> f_sweep =
      fast_mode() ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 2, 3, 4};
  for (const std::size_t f : f_sweep) {
    CurbOptions opts = paper_options();
    opts.f = f;
    // Larger groups need more controller headroom (paper: "the larger the
    // f, the more controllers are required"); relax capacity/delay limits
    // so 3f+1-sized groups exist on the 16-controller Internet2.
    opts.controller_capacity = 40.0;
    opts.max_cs_delay_ms = curb::opt::CapInstance::kNoLimit;
    CurbSimulation sim{opts};
    const Sample sample = measure(sim, 34, 3);
    curb::bench::export_obs_from_env(sim.network());
    curb::bench::BenchResults::add(
        "fig5_pktin",
        {{"sweep", "f"}, {"switches", "34"}, {"f", std::to_string(f)}},
        {{"latency_ms", sample.latency_ms},
         {"latency_err_ms", sample.latency_err},
         {"tps", sample.tps},
         {"messages", static_cast<double>(sim.total_messages())}},
        &sim.network());
    curb::bench::print_cell(static_cast<double>(f));
    curb::bench::print_cell(static_cast<double>(3 * f + 1));
    curb::bench::print_cell(sample.latency_ms);
    curb::bench::print_cell(sample.latency_err);
    curb::bench::print_cell(sample.tps);
    curb::bench::end_row();
  }
  return 0;
}
