// Reproduces Fig. 8: percentage of dynamic links (PDL) vs D_c,s after a
// reassignment. Paper findings: PDL grows with D_c,s (fewer controllers,
// each carrying more links, so replacing one churns more); LCR < TCR (its
// objective penalizes changed links); the leader constraint lowers PDL.

#include <cstdio>

#include "common.hpp"
#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"

namespace {

using curb::opt::Assignment;
using curb::opt::CapInstance;
using curb::opt::CapObjective;
using curb::opt::CapResult;

CapInstance internet2_instance(double max_cs_delay_ms) {
  const auto topo = curb::net::internet2();
  const auto ctls = topo.nodes_of_kind(curb::net::NodeKind::kController);
  const auto sws = topo.nodes_of_kind(curb::net::NodeKind::kSwitch);
  const curb::net::LinkModel lm;
  CapInstance inst = CapInstance::uniform(sws.size(), ctls.size(), 4, 1.0, 34.0);
  for (std::size_t i = 0; i < sws.size(); ++i) {
    for (std::size_t j = 0; j < ctls.size(); ++j) {
      inst.cs_delay[i][j] =
          lm.propagation_delay(topo.distance_km(sws[i], ctls[j])).as_millis_f();
    }
  }
  inst.max_cs_delay = max_cs_delay_ms;
  return inst;
}

/// Mean PDL over every possible single-controller removal (alternate optima
/// make a single-victim measurement a knife edge; the paper's trend lives
/// in the average behaviour).
double pdl_after_reassign(double d, CapObjective objective, bool leader_constraint) {
  const CapInstance base_inst = internet2_instance(d);
  curb::opt::MilpOptions mo;
  mo.max_wall_ms = 2000.0;
  const CapResult base =
      curb::opt::solve_cap(base_inst, CapObjective::kTrivial, nullptr, mo);
  if (!base.feasible) return -1.0;

  double pdl_sum = 0.0;
  std::size_t feasible_victims = 0;
  for (std::size_t victim = 0; victim < base_inst.num_controllers; ++victim) {
    if (base.assignment.switches_of(victim).empty()) continue;
    CapInstance inst = base_inst;
    inst.byzantine[victim] = true;
    if (leader_constraint) {
      for (std::size_t sw = 0; sw < inst.num_switches; ++sw) {
        for (const std::size_t m : base.assignment.group_of(sw)) {
          if (m != victim) {
            inst.fixed_leader[sw] = static_cast<int>(m);
            break;
          }
        }
      }
    }
    const CapResult r = curb::opt::solve_cap(inst, objective, &base.assignment, mo);
    if (!r.feasible) continue;
    pdl_sum += 100.0 * Assignment::pdl(base.assignment, r.assignment);
    ++feasible_victims;
  }
  if (feasible_victims == 0) return -1.0;
  return pdl_sum / static_cast<double>(feasible_victims);
}

}  // namespace

int main() {
  curb::bench::print_header("Percentage of dynamic links vs D_c,s", "Fig. 8");
  curb::bench::print_row_header(
      {"D_cs_ms", "TCR_%", "LCR_%", "TCR+leader_%", "LCR+leader_%"});
  for (const double d : {10.0, 11.0, 12.0, 14.0, 16.0, 18.0}) {
    curb::bench::print_cell(d);
    curb::bench::print_cell(pdl_after_reassign(d, CapObjective::kTrivial, false));
    curb::bench::print_cell(pdl_after_reassign(d, CapObjective::kLeastMovement, false));
    curb::bench::print_cell(pdl_after_reassign(d, CapObjective::kTrivial, true));
    curb::bench::print_cell(pdl_after_reassign(d, CapObjective::kLeastMovement, true));
    curb::bench::end_row();
  }
  std::printf("(-1.00 marks an infeasible configuration)\n");
  return 0;
}
