// Primitive-level microbenchmarks (google-benchmark): the building blocks
// whose costs shape every protocol number — hashing, signatures, Merkle
// trees, the LP/MILP solver, one PBFT round, and raw simulator throughput.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "curb/bft/group.hpp"
#include "curb/crypto/merkle.hpp"
#include "curb/crypto/secp256k1.hpp"
#include "curb/crypto/sha256.hpp"
#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"
#include "curb/opt/lp.hpp"
#include "curb/sim/simulator.hpp"

#include "common.hpp"

namespace {

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(curb::crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = curb::crypto::KeyPair::from_seed("bench");
  const auto digest = curb::crypto::Sha256::digest("message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = curb::crypto::KeyPair::from_seed("bench");
  const auto digest = curb::crypto::Sha256::digest("message");
  const auto sig = key.sign(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curb::crypto::verify(key.public_key(), digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<curb::crypto::Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(curb::crypto::Sha256::digest("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curb::crypto::MerkleTree::root_of(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256);

void BM_LpSolve(benchmark::State& state) {
  // Covering LP shaped like a CAP relaxation.
  const int sets = static_cast<int>(state.range(0));
  curb::opt::LpProblem p;
  std::vector<int> vars;
  for (int j = 0; j < sets; ++j) vars.push_back(p.add_variable(1.0, 0.0, 1.0));
  for (int e = 0; e < 3 * sets; ++e) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < sets; ++j) {
      if ((e + j) % 3 != 0) terms.push_back({vars[static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(terms), curb::opt::LpProblem::Sense::kGe, 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curb::opt::solve_lp(p));
  }
}
BENCHMARK(BM_LpSolve)->Arg(16)->Arg(64);

void BM_CapSolveInternet2(benchmark::State& state) {
  const auto topo = curb::net::internet2();
  const auto ctls = topo.nodes_of_kind(curb::net::NodeKind::kController);
  const auto sws = topo.nodes_of_kind(curb::net::NodeKind::kSwitch);
  auto inst = curb::opt::CapInstance::uniform(sws.size(), ctls.size(), 4, 1.0, 12.0);
  const curb::net::LinkModel lm;
  for (std::size_t i = 0; i < sws.size(); ++i) {
    for (std::size_t j = 0; j < ctls.size(); ++j) {
      inst.cs_delay[i][j] =
          lm.propagation_delay(topo.distance_km(sws[i], ctls[j])).as_millis_f();
    }
  }
  inst.max_cs_delay = 14.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curb::opt::solve_cap(inst));
  }
}
BENCHMARK(BM_CapSolveInternet2)->Unit(benchmark::kMillisecond);

void BM_PbftRound(benchmark::State& state) {
  const auto group_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    curb::sim::Simulator sim;
    curb::bft::PbftGroup group{sim, {.group_size = group_size}};
    group.replica(0).propose({0x01, 0x02});
    sim.run_until(curb::sim::SimTime::millis(400));
    benchmark::DoNotOptimize(group.messages_sent());
  }
}
BENCHMARK(BM_PbftRound)->Arg(4)->Arg(7)->Arg(13);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    curb::sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(curb::sim::SimTime::micros(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEvents);

}  // namespace

// Expanded BENCHMARK_MAIN with host profiling: CURB_PROF / CURB_PROF_CHROME
// install the process profiler before any benchmark runs (common.hpp's
// HostProfile writes the profile files and prints the host summary at exit).
int main(int argc, char** argv) {
  curb::bench::HostProfile::install_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
