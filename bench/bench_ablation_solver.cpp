// Ablation: exact branch-and-bound OP() vs the greedy heuristic — solve
// time and controller usage across instance sizes. Justifies DESIGN.md's
// "exact MILP warm-started by greedy" choice: the heuristic alone can
// over-provision; the MILP alone can be slow without the warm start.

#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"

namespace {

using curb::opt::CapInstance;
using curb::opt::CapResult;

CapInstance instance_for(std::size_t controllers, std::size_t switches,
                         std::uint64_t seed) {
  const auto topo = curb::net::random_geo_topology(controllers, switches, seed);
  const auto ctls = topo.nodes_of_kind(curb::net::NodeKind::kController);
  const auto sws = topo.nodes_of_kind(curb::net::NodeKind::kSwitch);
  const curb::net::LinkModel lm;
  CapInstance inst =
      CapInstance::uniform(sws.size(), ctls.size(), 4, 1.0,
                           2.0 + 4.0 * static_cast<double>(switches) /
                                     static_cast<double>(controllers));
  for (std::size_t i = 0; i < sws.size(); ++i) {
    for (std::size_t j = 0; j < ctls.size(); ++j) {
      inst.cs_delay[i][j] =
          lm.propagation_delay(topo.distance_km(sws[i], ctls[j])).as_millis_f();
    }
  }
  return inst;
}

}  // namespace

int main() {
  curb::bench::print_header("Exact MILP vs greedy heuristic", "solver ablation");
  curb::bench::print_row_header({"ctls", "switches", "milp_used", "greedy_used",
                                 "milp_ms", "greedy_ms", "milp_nodes"});
  for (const auto& [controllers, switches] :
       {std::pair<std::size_t, std::size_t>{8, 16},
        std::pair<std::size_t, std::size_t>{16, 34},
        std::pair<std::size_t, std::size_t>{24, 48},
        std::pair<std::size_t, std::size_t>{32, 64}}) {
    const CapInstance inst = instance_for(controllers, switches, 1234);

    curb::opt::MilpOptions mo;
    mo.max_wall_ms = 5000.0;
    const CapResult exact = curb::opt::solve_cap(inst, curb::opt::CapObjective::kTrivial,
                                                 nullptr, mo);

    const auto t0 = std::chrono::steady_clock::now();
    const auto greedy = curb::opt::greedy_assign(inst);
    const auto t1 = std::chrono::steady_clock::now();
    const double greedy_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    curb::bench::print_cell(static_cast<double>(controllers));
    curb::bench::print_cell(static_cast<double>(switches));
    curb::bench::print_cell(exact.feasible
                                ? static_cast<double>(exact.assignment.controllers_used())
                                : -1.0);
    curb::bench::print_cell(greedy ? static_cast<double>(greedy->controllers_used())
                                   : -1.0);
    curb::bench::print_cell(exact.stats.wall_time_ms);
    curb::bench::print_cell(greedy_ms);
    curb::bench::print_cell(static_cast<double>(exact.stats.milp_nodes));
    curb::bench::end_row();
  }
  return 0;
}
