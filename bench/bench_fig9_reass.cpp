// Reproduces Fig. 9: performance of handling RE_ASSIGNMENT requests.
//  (a)/(b) latency vs number of requesting switches, TCR vs LCR
//  (c)     throughput vs number of switches and vs f
// Paper findings: latency rises slowly with switches; LCR is a bit slower
// than TCR (costlier objective) with a widening gap; throughput rises with
// switches and falls with f.
//
// Workload: forced empty-accusation reassignment probes — each requesting
// switch drives the full RE-ASS pipeline (OP solve with measured wall time,
// Intra-PBFT, Final-PBFT, blockchain commit, ctrList replies) without
// degrading the network, so rounds repeat cleanly.

#include <cstdio>

#include "common.hpp"
#include "curb/core/simulation.hpp"

namespace {

using curb::bench::paper_options;
using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::RoundMetrics;
using curb::opt::CapObjective;

constexpr int kRounds = 2;

struct Sample {
  double latency_ms = 0.0;
  double tps = 0.0;
};

Sample measure(CurbSimulation& sim, std::size_t requesters) {
  curb::sim::Summary latency;
  curb::sim::Summary tps;
  for (int i = 0; i < kRounds; ++i) {
    const RoundMetrics m = sim.run_reassignment_round(requesters);
    if (m.accepted == 0) continue;
    latency.add(m.mean_latency_ms);
    tps.add(m.throughput_tps);
  }
  return {latency.mean(), tps.mean()};
}

CurbOptions reass_options(CapObjective objective, std::size_t f) {
  CurbOptions opts = paper_options();
  opts.reass_always_solve = true;
  opts.reassign_objective = objective;
  opts.f = f;
  // Uncapped capacity keeps the probe OP solves in the paper's <100 ms
  // band so replies land well inside the 500 ms switch timeout.
  opts.controller_capacity = 1e9;
  opts.max_cs_delay_ms = 10.0;
  opts.op_wall_limit_ms = 400.0;
  if (f > 1) {
    // Bigger groups need more headroom on the 16-controller Internet2.
    opts.controller_capacity = 40.0;
    opts.max_cs_delay_ms = curb::opt::CapInstance::kNoLimit;
  }
  return opts;
}

}  // namespace

int main() {
  curb::bench::print_header("RE_ASSIGNMENT handling vs number of switches",
                            "Fig. 9(a)(b) latency, Fig. 9(c) throughput");
  curb::bench::print_row_header(
      {"switches", "TCR_lat_ms", "LCR_lat_ms", "TCR_tps", "LCR_tps"});
  for (const std::size_t switches : {4u, 13u, 22u, 34u}) {
    CurbSimulation tcr{reass_options(CapObjective::kTrivial, 1)};
    CurbSimulation lcr{reass_options(CapObjective::kLeastMovement, 1)};
    const Sample t = measure(tcr, switches);
    const Sample l = measure(lcr, switches);
    // CURB_TRACE / CURB_METRICS_OUT capture the last configuration swept.
    curb::bench::export_obs_from_env(tcr.network());
    curb::bench::BenchResults::add(
        "fig9_reass",
        {{"sweep", "switches"}, {"switches", std::to_string(switches)},
         {"objective", "TCR"}, {"f", "1"}},
        {{"latency_ms", t.latency_ms},
         {"tps", t.tps},
         {"messages", static_cast<double>(tcr.total_messages())}},
        &tcr.network());
    curb::bench::BenchResults::add(
        "fig9_reass",
        {{"sweep", "switches"}, {"switches", std::to_string(switches)},
         {"objective", "LCR"}, {"f", "1"}},
        {{"latency_ms", l.latency_ms},
         {"tps", l.tps},
         {"messages", static_cast<double>(lcr.total_messages())}},
        &lcr.network());
    curb::bench::print_cell(static_cast<double>(switches));
    curb::bench::print_cell(t.latency_ms);
    curb::bench::print_cell(l.latency_ms);
    curb::bench::print_cell(t.tps);
    curb::bench::print_cell(l.tps);
    curb::bench::end_row();
  }

  curb::bench::print_header("RE_ASSIGNMENT throughput vs f", "Fig. 9(c) inset");
  curb::bench::print_row_header({"f", "group_size", "tps"});
  for (const std::size_t f : {1u, 2u}) {
    CurbSimulation sim{reass_options(CapObjective::kTrivial, f)};
    const Sample s = measure(sim, 34);
    curb::bench::export_obs_from_env(sim.network());
    curb::bench::BenchResults::add(
        "fig9_reass",
        {{"sweep", "f"}, {"switches", "34"}, {"objective", "TCR"},
         {"f", std::to_string(f)}},
        {{"tps", s.tps}, {"messages", static_cast<double>(sim.total_messages())}},
        &sim.network());
    curb::bench::print_cell(static_cast<double>(f));
    curb::bench::print_cell(static_cast<double>(3 * f + 1));
    curb::bench::print_cell(s.tps);
    curb::bench::end_row();
  }
  return 0;
}
