// Ablation / Theorem 1 validation: control-plane messages per round as the
// network grows, Curb's group-based design vs a flat PBFT control plane
// over all N controllers. Curb should grow ~linearly in N; flat PBFT
// quadratically. (This is the headline scalability claim of the paper.)

#include <cstdio>

#include "common.hpp"
#include "curb/core/baselines.hpp"
#include "curb/core/simulation.hpp"
#include "curb/net/topology.hpp"

namespace {

using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::FlatPbftBaseline;

}  // namespace

int main() {
  curb::bench::print_header("Messages per handled request vs network size",
                            "Theorem 1 (O(N) vs O(N^2))");
  curb::bench::print_row_header({"controllers", "switches", "curb_pbft/req",
                                 "curb_hs/req", "flat_pbft/req", "curb_total",
                                 "flat_total"});
  for (const std::size_t scale : {1u, 2u, 3u, 4u}) {
    const std::size_t controllers = 8 * scale;
    const std::size_t switches = 16 * scale;
    const auto topo = curb::net::random_geo_topology(controllers, switches, 77);

    CurbOptions opts;
    opts.controller_capacity = 10.0;  // keeps group count growing with N
    opts.op_time_mode = curb::core::OpTimeMode::kFixed;
    CurbSimulation curb_sim{topo, opts};
    (void)curb_sim.run_packet_in_round();  // warm-up
    const auto curb_m = curb_sim.run_packet_in_round();

    CurbOptions hs_opts = opts;
    hs_opts.consensus_engine = curb::bft::ConsensusEngine::kHotstuff;
    CurbSimulation hs_sim{topo, hs_opts};
    (void)hs_sim.run_packet_in_round();
    const auto hs_m = hs_sim.run_packet_in_round();

    FlatPbftBaseline flat{topo, opts};
    (void)flat.run_round(switches);
    const auto flat_m = flat.run_round(switches);

    const double curb_per_req =
        curb_m.accepted > 0
            ? static_cast<double>(curb_m.messages) / static_cast<double>(curb_m.accepted)
            : -1.0;
    const double flat_per_req =
        flat_m.accepted > 0
            ? static_cast<double>(flat_m.messages) / static_cast<double>(flat_m.accepted)
            : -1.0;
    const double hs_per_req =
        hs_m.accepted > 0
            ? static_cast<double>(hs_m.messages) / static_cast<double>(hs_m.accepted)
            : -1.0;
    curb::bench::print_cell(static_cast<double>(controllers));
    curb::bench::print_cell(static_cast<double>(switches));
    curb::bench::print_cell(curb_per_req);
    curb::bench::print_cell(hs_per_req);
    curb::bench::print_cell(flat_per_req);
    curb::bench::print_cell(static_cast<double>(curb_m.messages));
    curb::bench::print_cell(static_cast<double>(flat_m.messages));
    curb::bench::end_row();
  }
  std::printf(
      "\nExpected shape: curb msgs/req stays near-constant (O(N) total for O(N)\n"
      "requests) with hotstuff below pbft (O(c) vs O(c^2) per group decision);\n"
      "flat_pbft/req grows ~linearly in N (O(N^2) total).\n");
  return 0;
}
