// Ablation / Theorem 1 validation: control-plane messages per round as the
// network grows, Curb's group-based design vs a flat PBFT control plane
// over all N controllers. Curb should grow ~linearly in N; flat PBFT
// quadratically. (This is the headline scalability claim of the paper.)
//
// Each scale's BENCH_results.json entry carries a "msg_complexity" section:
// the measured per-category wire counts for the measured round, the
// per-phase analytic bound from curb::obs::net::analytic_bound (c, gmax, k,
// N, R, B), their ratio, and a within_bound verdict — the machine-readable
// form of the Theorem 1 audit that curb-trace complexity runs over traces.

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "common.hpp"
#include "curb/core/baselines.hpp"
#include "curb/core/simulation.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/net/complexity.hpp"

namespace {

using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::FlatPbftBaseline;

void append_phases(std::ostringstream& out,
                   const curb::obs::net::PhasePrediction& p) {
  out << "{\"pkt_in\":" << p.pkt_in << ",\"intra_pbft\":" << p.intra_pbft
      << ",\"agree\":" << p.agree << ",\"final_pbft\":" << p.final_pbft
      << ",\"final_agree\":" << p.final_agree << ",\"reply\":" << p.reply
      << ",\"total\":" << p.total << "}";
}

/// Measured-vs-analytic audit of one round: per-category wire deltas
/// (MessageStats is always on, so this needs no observability), the phase
/// bound, and the verdict. Returns the raw ",\"msg_complexity\":{...}"
/// fragment BenchResults::add splices into the entry.
std::string msg_complexity_json(
    CurbSimulation& sim, const CurbOptions& opts,
    const std::map<std::string, std::uint64_t>& categories_before,
    std::uint64_t height_before, const curb::core::RoundMetrics& metrics,
    bool* within_bound) {
  using curb::obs::net::PhasePrediction;

  std::map<std::string, std::uint64_t> measured;
  for (const auto& [category, entry] : sim.network().bus().stats().categories()) {
    const auto before = categories_before.find(category);
    const std::uint64_t delta =
        entry.count - (before != categories_before.end() ? before->second : 0);
    if (delta > 0) measured[category] = delta;
  }
  const auto category = [&measured](const char* name) -> std::uint64_t {
    const auto it = measured.find(name);
    return it == measured.end() ? 0 : it->second;
  };
  PhasePrediction got;
  got.pkt_in = category("PKT-IN");
  got.intra_pbft = category("intra-pbft");
  got.agree = category("AGREE");
  got.final_pbft = category("final-pbft");
  got.final_agree = category("FINAL-AGREE");
  got.reply = category("REPLY");
  got.total = got.pkt_in + got.intra_pbft + got.agree + got.final_pbft +
              got.final_agree + got.reply;

  curb::obs::net::ComplexityParams params;
  params.c = 3 * opts.f + 1;
  params.gmax = params.c;
  const auto& state = sim.network().controller(0).state();
  for (const auto& group : state.groups()) {
    params.gmax = std::max<std::uint64_t>(params.gmax, group.members.size());
  }
  params.k = state.groups().size();
  params.n = sim.network().num_controllers();
  params.requests = metrics.issued;
  const curb::core::Controller& c0 = sim.network().controller(0);
  const std::uint64_t height = c0.has_blockchain() ? c0.blockchain().height() : 0;
  params.blocks = height > height_before ? height - height_before : 0;
  params.engine = curb::bft::to_string(opts.consensus_engine);
  const PhasePrediction bound = curb::obs::net::analytic_bound(params);

  const bool ok = got.pkt_in <= bound.pkt_in &&
                  got.intra_pbft <= bound.intra_pbft && got.agree <= bound.agree &&
                  got.final_pbft <= bound.final_pbft &&
                  got.final_agree <= bound.final_agree && got.reply <= bound.reply &&
                  got.total <= bound.total;
  if (within_bound != nullptr) *within_bound = ok;

  std::ostringstream out;
  out << ",\"msg_complexity\":{\"engine\":\"" << params.engine
      << "\",\"c\":" << params.c << ",\"gmax\":" << params.gmax
      << ",\"k\":" << params.k << ",\"n\":" << params.n
      << ",\"requests\":" << params.requests << ",\"blocks\":" << params.blocks
      << ",\"measured\":";
  append_phases(out, got);
  out << ",\"analytic\":";
  append_phases(out, bound);
  char ratio[32];
  std::snprintf(ratio, sizeof ratio, "%.3f",
                bound.total > 0 ? static_cast<double>(got.total) /
                                      static_cast<double>(bound.total)
                                : 0.0);
  out << ",\"ratio\":" << ratio << ",\"theorem1_per_round\":"
      << curb::obs::net::theorem1_messages(params.c, params.k, params.n)
      << ",\"within_bound\":" << (ok ? "true" : "false") << "}";
  return out.str();
}

std::map<std::string, std::uint64_t> category_counts(CurbSimulation& sim) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [category, entry] : sim.network().bus().stats().categories()) {
    counts[category] = entry.count;
  }
  return counts;
}

}  // namespace

int main() {
  curb::bench::print_header("Messages per handled request vs network size",
                            "Theorem 1 (O(N) vs O(N^2))");
  curb::bench::print_row_header({"controllers", "switches", "curb_pbft/req",
                                 "curb_hs/req", "flat_pbft/req", "curb_total",
                                 "flat_total", "bound_ok"});
  bool all_within = true;
  for (const std::size_t scale : {1u, 2u, 3u, 4u}) {
    const std::size_t controllers = 8 * scale;
    const std::size_t switches = 16 * scale;
    const auto topo = curb::net::random_geo_topology(controllers, switches, 77);

    CurbOptions opts;
    opts.controller_capacity = 10.0;  // keeps group count growing with N
    opts.op_time_mode = curb::core::OpTimeMode::kFixed;
    CurbSimulation curb_sim{topo, opts};
    (void)curb_sim.run_packet_in_round();  // warm-up
    const auto categories_before = category_counts(curb_sim);
    const curb::core::Controller& c0 = curb_sim.network().controller(0);
    const std::uint64_t height_before =
        c0.has_blockchain() ? c0.blockchain().height() : 0;
    const auto curb_m = curb_sim.run_packet_in_round();
    bool within_bound = false;
    const std::string complexity = msg_complexity_json(
        curb_sim, opts, categories_before, height_before, curb_m, &within_bound);
    all_within = all_within && within_bound;

    CurbOptions hs_opts = opts;
    hs_opts.consensus_engine = curb::bft::ConsensusEngine::kHotstuff;
    CurbSimulation hs_sim{topo, hs_opts};
    (void)hs_sim.run_packet_in_round();
    const auto hs_m = hs_sim.run_packet_in_round();

    FlatPbftBaseline flat{topo, opts};
    (void)flat.run_round(switches);
    const auto flat_m = flat.run_round(switches);

    const double curb_per_req =
        curb_m.accepted > 0
            ? static_cast<double>(curb_m.messages) / static_cast<double>(curb_m.accepted)
            : -1.0;
    const double flat_per_req =
        flat_m.accepted > 0
            ? static_cast<double>(flat_m.messages) / static_cast<double>(flat_m.accepted)
            : -1.0;
    const double hs_per_req =
        hs_m.accepted > 0
            ? static_cast<double>(hs_m.messages) / static_cast<double>(hs_m.accepted)
            : -1.0;
    curb::bench::print_cell(static_cast<double>(controllers));
    curb::bench::print_cell(static_cast<double>(switches));
    curb::bench::print_cell(curb_per_req);
    curb::bench::print_cell(hs_per_req);
    curb::bench::print_cell(flat_per_req);
    curb::bench::print_cell(static_cast<double>(curb_m.messages));
    curb::bench::print_cell(static_cast<double>(flat_m.messages));
    curb::bench::print_cell(std::string{within_bound ? "yes" : "NO"});
    curb::bench::end_row();

    curb::bench::export_obs_from_env(curb_sim.network());
    curb::bench::BenchResults::add(
        "msg_complexity",
        {{"controllers", std::to_string(controllers)},
         {"switches", std::to_string(switches)},
         {"f", std::to_string(opts.f)}},
        {{"curb_pbft_per_req", curb_per_req},
         {"curb_hs_per_req", hs_per_req},
         {"flat_pbft_per_req", flat_per_req},
         {"curb_messages", static_cast<double>(curb_m.messages)},
         {"flat_messages", static_cast<double>(flat_m.messages)}},
        &curb_sim.network(), complexity);
  }
  std::printf(
      "\nExpected shape: curb msgs/req stays near-constant (O(N) total for O(N)\n"
      "requests) with hotstuff below pbft (O(c) vs O(c^2) per group decision);\n"
      "flat_pbft/req grows ~linearly in N (O(N^2) total); bound_ok asserts the\n"
      "measured round stays inside the Theorem 1 per-phase analytic bound.\n");
  if (!all_within) {
    std::printf("WARNING: a measured round exceeded the analytic bound\n");
  }
  return 0;
}
