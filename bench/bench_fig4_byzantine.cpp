// Reproduces Fig. 4: byzantine resilience of Curb on Internet2.
//  Experiment 1: one silent byzantine node (no response within the 500 ms
//                timeout). The paper detects it in round 5 and removes it in
//                round 6, after which latency/throughput recover.
//  Experiment 2: three silent byzantine nodes in different groups, removed
//                with one OP() calculation; recovery within two rounds.
//  Experiment 3: three "lazy" nodes responding in (200, 500) ms — inside
//                the timeout but slow. Tolerated for 5 rounds, then treated
//                as byzantine. Also compares parallel vs non-parallel mode.

#include <cstdio>
#include <set>
#include <vector>

#include "common.hpp"
#include "curb/core/simulation.hpp"

namespace {

using curb::bench::paper_options;
using curb::bft::Behavior;
using curb::core::CurbOptions;
using curb::core::CurbSimulation;
using curb::core::RoundMetrics;

constexpr int kRounds = 10;

/// Pick controllers in distinct groups that are not group leaders (silent
/// leaders are a different failure mode covered by the view-change path).
std::vector<std::uint32_t> pick_victims(const CurbSimulation& sim, std::size_t count) {
  const auto& state = sim.network().genesis_state();
  std::set<std::uint32_t> leaders;
  for (const auto& g : state.groups()) leaders.insert(g.leader);
  std::vector<std::uint32_t> victims;
  std::set<std::uint32_t> used_groups;
  for (const auto& g : state.groups()) {
    if (victims.size() >= count) break;
    if (used_groups.contains(g.id)) continue;
    for (const std::uint32_t m : g.members) {
      if (!leaders.contains(m) &&
          std::find(victims.begin(), victims.end(), m) == victims.end()) {
        victims.push_back(m);
        used_groups.insert(g.id);
        break;
      }
    }
  }
  return victims;
}

void run_series(const char* name, CurbSimulation& sim,
                const std::vector<std::uint32_t>& victims, Behavior behavior,
                int inject_round, std::size_t detection_window) {
  std::printf("\n-- %s --\n", name);
  curb::bench::print_row_header({"round", "lat_ms", "tps", "removed"});
  curb::sim::Summary lat_all;
  curb::sim::Summary tps_all;
  for (int round = 1; round <= kRounds; ++round) {
    if (round == inject_round) {
      for (const auto v : victims) {
        sim.network().controller(v).set_behavior(behavior);
        if (behavior == Behavior::kLazy) {
          // Per-message extra delay; total response time lands in the
          // paper's (200, 500) ms window given the ~270 ms pipeline.
          sim.network().controller(v).set_lazy_range(curb::sim::SimTime::millis(100),
                                                     curb::sim::SimTime::millis(200));
        }
      }
    }
    const RoundMetrics m = sim.run_packet_in_round();
    std::size_t removed = 0;
    const auto& byz = sim.network().controller(victims.empty() ? 0 : (victims[0] + 1) %
                                               sim.network().num_controllers())
                          .state()
                          .byzantine();
    for (const auto v : victims) {
      if (std::find(byz.begin(), byz.end(), v) != byz.end()) ++removed;
    }
    curb::bench::print_cell(static_cast<double>(round));
    curb::bench::print_cell(m.mean_latency_ms);
    curb::bench::print_cell(m.throughput_tps);
    curb::bench::print_cell(static_cast<double>(removed));
    curb::bench::end_row();
    lat_all.add(m.mean_latency_ms);
    tps_all.add(m.throughput_tps);
  }
  curb::bench::BenchResults::add(
      "fig4_byzantine",
      {{"experiment", name}, {"victims", std::to_string(victims.size())}},
      {{"latency_ms", lat_all.mean()},
       {"tps", tps_all.mean()},
       {"messages", static_cast<double>(sim.total_messages())}},
      &sim.network());
  (void)detection_window;
}

}  // namespace

int main() {
  curb::bench::print_header("Byzantine resilience", "Fig. 4(a)(b)(c)");

  {
    // Experiment 1: one silent node, detected after several timed-out
    // rounds (the paper waits ~4 rounds before declaring it byzantine; the
    // detection window is an s-agent policy, set here to match).
    CurbOptions opts = paper_options();
    // Match the paper's round-5 detection: each driver round yields ~2
    // timeout observations per switch (ingress + egress PKT-INs), so an
    // 8-observation window reports around driver round 5 and the
    // reassignment lands in round 6 (paper Fig. 4(a) timeline).
    opts.max_silent_rounds = 8;
    CurbSimulation sim{opts};
    const auto victims = pick_victims(sim, 1);
    run_series("Experiment 1: one silent byzantine node", sim, victims,
               Behavior::kSilent, /*inject_round=*/2, 4);
  }
  {
    // Experiment 2: three silent nodes in different groups.
    CurbOptions opts = paper_options();
    CurbSimulation sim{opts};
    const auto victims = pick_victims(sim, 3);
    run_series("Experiment 2: three silent byzantine nodes (distinct groups)", sim,
               victims, Behavior::kSilent, /*inject_round=*/2, 1);
  }
  {
    // Experiment 3: three lazy nodes (response 200-450 ms), tolerated for
    // max_lazy_rounds = 5 rounds and then removed.
    CurbOptions opts = paper_options();
    opts.max_lazy_rounds = 5;
    CurbSimulation sim{opts};
    const auto victims = pick_victims(sim, 3);
    run_series("Experiment 3: three lazy nodes (200-450 ms responses)", sim, victims,
               Behavior::kLazy, /*inject_round=*/2, 5);
  }
  {
    // Parallel vs non-parallel throughput under the lazy scenario
    // (Fig. 4(c) inset: parallel has ~2-3x the non-parallel throughput).
    std::printf("\n-- Parallel vs non-parallel (steady state, load 3/switch) --\n");
    curb::bench::print_row_header({"mode", "tps"});
    for (const bool parallel : {true, false}) {
      CurbOptions opts = paper_options();
      opts.parallel = parallel;
      CurbSimulation sim{opts};
      (void)sim.run_packet_in_round(2);  // warm-up
      curb::sim::Summary tps;
      for (int i = 0; i < 4; ++i) tps.add(sim.run_packet_in_round(2).throughput_tps);
      curb::bench::print_cell(std::string{parallel ? "parallel" : "non-parallel"});
      curb::bench::print_cell(tps.mean());
      curb::bench::end_row();
    }
  }
  return 0;
}
