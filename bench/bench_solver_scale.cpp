// Solver-backend scaling: solve time, controllers used and (where an exact
// optimum is provable) the optimality gap, for each CapSolver backend across
// instance sizes from Internet2-class up to 1000 switches x 100 controllers.
// The dense tableau stops being measured once its working set would dominate
// the runtime (its per-node cost is O(rows x cols) on ~100k columns); the
// sparse revised simplex carries the exact line further, and the partition
// heuristic covers the far end in milliseconds. Reassignment rows solve the
// same instance twice — cold, then warm from the first solution with a few
// controllers turned byzantine — which is where the sparse backend's
// warm-basis reuse and incumbent seeding show up.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "curb/opt/instance_gen.hpp"
#include "curb/opt/solver.hpp"

namespace {

using curb::opt::CapInstance;
using curb::opt::CapResult;
using curb::opt::CapSolverBackend;
using curb::opt::GenProfile;

struct Size {
  std::size_t switches;
  std::size_t controllers;
  bool exact_ok;  // run the exact backends (affordable at this size)?
};

CapInstance instance_for(const Size& size) {
  GenProfile profile;
  profile.switches = size.switches;
  profile.controllers = size.controllers;
  profile.faults_tolerated = 1;
  profile.capacity_slack = 1.5;
  profile.cs_delay_cap = true;
  profile.seed = 97;
  return curb::opt::generate_instance(profile);
}

void run_backend(const CapInstance& inst, CapSolverBackend backend, const Size& size) {
  curb::opt::CapSolverOptions options;
  // Sizes past the proof frontier report the truncated search's incumbent;
  // 10s keeps the whole sweep around a minute.
  options.milp.max_wall_ms = 10'000.0;
  auto solver = curb::opt::make_cap_solver(backend, options);

  const CapResult cold = solver->solve(inst);

  // Warm re-solve: the paper's RE-ASS path. Flag two controllers byzantine
  // and hand the cold solution back as `previous`.
  CapInstance reass = inst;
  reass.byzantine.assign(inst.num_controllers, false);
  reass.byzantine[0] = true;
  reass.byzantine[inst.num_controllers / 2] = true;
  CapResult warm;
  if (cold.feasible) {
    warm = solver->solve(reass, curb::opt::CapObjective::kTrivial, &cold.assignment);
  }

  double gap = -1.0;
  if (backend == CapSolverBackend::kHeuristic && cold.feasible && size.exact_ok) {
    curb::opt::MilpOptions exact_options;
    exact_options.max_wall_ms =
        std::getenv("CURB_BENCH_FAST") != nullptr ? 5'000.0 : 30'000.0;
    if (const auto g = curb::opt::optimality_gap(inst, curb::opt::CapObjective::kTrivial,
                                                 nullptr, cold.objective, exact_options)) {
      gap = *g;
    }
  }

  curb::bench::print_cell(std::string{curb::opt::to_string(backend)});
  curb::bench::print_cell(static_cast<double>(size.switches));
  curb::bench::print_cell(static_cast<double>(size.controllers));
  curb::bench::print_cell(cold.feasible
                              ? static_cast<double>(cold.assignment.controllers_used())
                              : -1.0);
  curb::bench::print_cell(cold.stats.wall_time_ms);
  curb::bench::print_cell(warm.feasible ? warm.stats.wall_time_ms : -1.0);
  curb::bench::print_cell(static_cast<double>(cold.stats.lp_warm_hits +
                                              warm.stats.lp_warm_hits));
  curb::bench::print_cell(gap);
  curb::bench::end_row();

  curb::bench::BenchResults::add(
      "solver_scale",
      {{"backend", curb::opt::to_string(backend)},
       {"switches", std::to_string(size.switches)},
       {"controllers", std::to_string(size.controllers)}},
      {{"used", cold.feasible
                    ? static_cast<double>(cold.assignment.controllers_used())
                    : -1.0},
       {"solve_ms", cold.stats.wall_time_ms},
       {"warm_solve_ms", warm.feasible ? warm.stats.wall_time_ms : -1.0},
       {"milp_nodes", static_cast<double>(cold.stats.milp_nodes)},
       {"lp_warm_hits",
        static_cast<double>(cold.stats.lp_warm_hits + warm.stats.lp_warm_hits)},
       {"gap", gap}});
}

}  // namespace

int main() {
  curb::bench::print_header("CAP solver backends at scale",
                            "scaling past Internet2, ROADMAP item 1");
  curb::bench::print_row_header({"backend", "switches", "ctls", "used", "solve_ms",
                                 "warm_ms", "warm_hits", "gap"});

  // CURB_BENCH_FAST trims the sweep to the sizes CI can afford. exact_ok
  // marks sizes where branch-and-bound proves the optimum in seconds; the
  // frontier is driven by controller count (the x_j branching layer), not
  // switch count — 100x20 already needs minutes to prove, while 60x12 does
  // not.
  const bool fast = std::getenv("CURB_BENCH_FAST") != nullptr;
  std::vector<Size> sizes = {{16, 8, true}, {50, 10, true}};
  if (!fast) {
    sizes.push_back({60, 12, true});
    sizes.push_back({100, 20, false});
    sizes.push_back({300, 40, false});
    sizes.push_back({1000, 100, false});
  }

  for (const Size& size : sizes) {
    const CapInstance inst = instance_for(size);
    if (size.exact_ok) {
      run_backend(inst, CapSolverBackend::kDense, size);
      run_backend(inst, CapSolverBackend::kSparse, size);
    } else if (size.switches <= 300) {
      // Dense is already impractical here; sparse still proves optima.
      run_backend(inst, CapSolverBackend::kSparse, size);
    }
    run_backend(inst, CapSolverBackend::kHeuristic, size);
  }
  return 0;
}
