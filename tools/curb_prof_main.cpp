// curb-prof: host-time and host-memory profile reports and bench regression
// gating.
//
//   curb-prof report     <profile.folded> [--top N]
//   curb-prof perf-diff  <base.json> <candidate.json> [--json]
//                        [--threshold PCT] [--host-threshold PCT]
//                        [--floor ABS] [--warn-only]
//   curb-prof mem-report <profile.json> [--folded FILE]
//   curb-prof mem-diff   <base.json> <candidate.json>
//                        [--threshold PCT] [--floor ABS] [--warn-only]
//
// `report` renders a collapsed-stack profile (CURB_PROF=FILE on any bench
// binary, or curb-sim --prof FILE) as a per-component share table plus the
// top-N self-time frames. `perf-diff` compares two BENCH_results.json files
// metric by metric and exits 1 when a virtual-time metric regressed past the
// threshold (host.* and memory.* metrics only ever warn — they measure the
// machine, not the protocol).
//
// `mem-report` renders a memory profile (CURB_MEM_OUT=FILE on any bench
// binary or curb-sim) as the per-tag allocator table; with --folded it also
// summarizes a collapsed-stack memory flamegraph (CURB_MEM_FOLDED=FILE) by
// allocation-site frames. `mem-diff` compares two memory profiles and exits
// 1 on growth past the threshold.
//
// Exit codes (curb/core/exit_codes.hpp): 0 ok, 1 regression, 2 usage/parse.
//
// Example:
//   CURB_PROF=run.folded CURB_MEM_OUT=run.mem.json ./build/bench/bench_fig5_pktin
//   curb-prof report run.folded
//   curb-prof mem-report run.mem.json
//   curb-prof perf-diff BENCH_baseline.json BENCH_results.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "curb/core/exit_codes.hpp"
#include "curb/obs/res/report.hpp"
#include "curb/prof/bench_diff.hpp"
#include "curb/prof/export.hpp"

namespace {

using curb::core::kExitFinding;
using curb::core::kExitOk;
using curb::core::kExitUsage;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s report     <profile.folded> [--top N]\n"
               "       %s perf-diff  <base.json> <candidate.json> [--json]\n"
               "                     [--threshold PCT] [--host-threshold PCT]\n"
               "                     [--floor ABS] [--warn-only]\n"
               "       %s mem-report <profile.json> [--folded FILE]\n"
               "       %s mem-diff   <base.json> <candidate.json>\n"
               "                     [--threshold PCT] [--floor ABS] [--warn-only]\n",
               argv0, argv0, argv0, argv0);
  std::exit(kExitUsage);
}

double parse_double(const char* argv0, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: bad number '%s'\n", argv0, text);
    std::exit(kExitUsage);
  }
  return value;
}

int run_report(const char* argv0, const std::vector<std::string>& args) {
  if (args.empty()) usage(argv0);
  std::string path;
  std::size_t top_n = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      if (i + 1 >= args.size()) usage(argv0);
      top_n = static_cast<std::size_t>(parse_double(argv0, args[++i].c_str()));
    } else if (path.empty()) {
      path = args[i];
    } else {
      usage(argv0);
    }
  }
  if (path.empty()) usage(argv0);
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    return kExitUsage;
  }
  try {
    const std::vector<curb::prof::FoldedLine> lines = curb::prof::parse_collapsed(in);
    curb::prof::write_profile_report(lines, std::cout, top_n);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    return kExitUsage;
  }
  return kExitOk;
}

std::vector<curb::prof::BenchEntry> load_bench(const char* argv0,
                                               const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    std::exit(kExitUsage);
  }
  try {
    return curb::prof::parse_bench_json(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    std::exit(kExitUsage);
  }
}

int run_perf_diff(const char* argv0, const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  curb::prof::PerfDiffOptions options;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--threshold") {
      if (i + 1 >= args.size()) usage(argv0);
      options.threshold_pct = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--host-threshold") {
      if (i + 1 >= args.size()) usage(argv0);
      options.host_threshold_pct = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--floor") {
      if (i + 1 >= args.size()) usage(argv0);
      options.floor = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--warn-only") {
      options.warn_only = true;
    } else if (args[i].rfind("--", 0) == 0) {
      usage(argv0);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) usage(argv0);
  const auto base = load_bench(argv0, paths[0]);
  const auto candidate = load_bench(argv0, paths[1]);
  const curb::prof::PerfDiffResult diff =
      curb::prof::perf_diff(base, candidate, options);
  if (as_json) {
    curb::prof::write_perf_diff_json(diff, std::cout);
  } else {
    curb::prof::write_perf_diff_text(diff, std::cout);
  }
  return diff.regressions() > 0 ? kExitFinding : kExitOk;
}

curb::obs::res::MemSnapshot load_mem_profile(const char* argv0,
                                             const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    std::exit(kExitUsage);
  }
  try {
    return curb::obs::res::parse_mem_profile_json(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    std::exit(kExitUsage);
  }
}

int run_mem_report(const char* argv0, const std::vector<std::string>& args) {
  std::string path;
  std::string folded_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--folded") {
      if (i + 1 >= args.size()) usage(argv0);
      folded_path = args[++i];
    } else if (path.empty()) {
      path = args[i];
    } else {
      usage(argv0);
    }
  }
  if (path.empty()) usage(argv0);
  const curb::obs::res::MemSnapshot snap = load_mem_profile(argv0, path);
  curb::obs::res::write_mem_report(snap, std::cout);
  if (!folded_path.empty()) {
    std::ifstream in{folded_path};
    if (!in) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv0, folded_path.c_str());
      return kExitUsage;
    }
    try {
      // A memory flamegraph is the same collapsed-stack format with bytes as
      // the value — the time-profile report renders it with byte totals
      // shown in the "ms" columns scaled 1e6 (i.e. MB); print a header so
      // the units read right.
      const std::vector<curb::prof::FoldedLine> lines =
          curb::prof::parse_collapsed(in);
      std::cout << "\nallocation-site frames (values are bytes; table units "
                   "read as MB)\n";
      curb::prof::write_profile_report(lines, std::cout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s: %s\n", argv0, folded_path.c_str(), e.what());
      return kExitUsage;
    }
  }
  return kExitOk;
}

int run_mem_diff(const char* argv0, const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  curb::obs::res::MemDiffOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold") {
      if (i + 1 >= args.size()) usage(argv0);
      options.threshold_pct = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--floor") {
      if (i + 1 >= args.size()) usage(argv0);
      options.floor = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--warn-only") {
      options.warn_only = true;
    } else if (args[i].rfind("--", 0) == 0) {
      usage(argv0);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) usage(argv0);
  const curb::obs::res::MemSnapshot base = load_mem_profile(argv0, paths[0]);
  const curb::obs::res::MemSnapshot candidate = load_mem_profile(argv0, paths[1]);
  const curb::obs::res::MemDiffResult diff =
      curb::obs::res::mem_diff(base, candidate, options);
  curb::obs::res::write_mem_diff_text(diff, std::cout);
  return diff.regressions() > 0 ? kExitFinding : kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (command == "report") return run_report(argv[0], args);
  if (command == "perf-diff") return run_perf_diff(argv[0], args);
  if (command == "mem-report") return run_mem_report(argv[0], args);
  if (command == "mem-diff") return run_mem_diff(argv[0], args);
  usage(argv[0]);
}
