// curb-prof: host-time profile reports and bench regression gating.
//
//   curb-prof report    <profile.folded> [--top N]
//   curb-prof perf-diff <base.json> <candidate.json> [--json]
//                       [--threshold PCT] [--host-threshold PCT]
//                       [--floor ABS] [--warn-only]
//
// `report` renders a collapsed-stack profile (CURB_PROF=FILE on any bench
// binary, or curb-sim --prof FILE) as a per-component share table plus the
// top-N self-time frames. `perf-diff` compares two BENCH_results.json files
// metric by metric and exits 1 when a virtual-time metric regressed past the
// threshold (host.* metrics only ever warn — they measure the machine, not
// the protocol). Exit codes: 0 ok, 1 regression, 2 usage/parse error.
//
// Example:
//   CURB_PROF=run.folded ./build/bench/bench_fig5_pktin
//   curb-prof report run.folded
//   curb-prof perf-diff BENCH_baseline.json BENCH_results.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "curb/prof/bench_diff.hpp"
#include "curb/prof/export.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s report    <profile.folded> [--top N]\n"
               "       %s perf-diff <base.json> <candidate.json> [--json]\n"
               "                    [--threshold PCT] [--host-threshold PCT]\n"
               "                    [--floor ABS] [--warn-only]\n",
               argv0, argv0);
  std::exit(2);
}

double parse_double(const char* argv0, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: bad number '%s'\n", argv0, text);
    std::exit(2);
  }
  return value;
}

int run_report(const char* argv0, const std::vector<std::string>& args) {
  if (args.empty()) usage(argv0);
  std::string path;
  std::size_t top_n = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      if (i + 1 >= args.size()) usage(argv0);
      top_n = static_cast<std::size_t>(parse_double(argv0, args[++i].c_str()));
    } else if (path.empty()) {
      path = args[i];
    } else {
      usage(argv0);
    }
  }
  if (path.empty()) usage(argv0);
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    return 2;
  }
  try {
    const std::vector<curb::prof::FoldedLine> lines = curb::prof::parse_collapsed(in);
    curb::prof::write_profile_report(lines, std::cout, top_n);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    return 2;
  }
  return 0;
}

std::vector<curb::prof::BenchEntry> load_bench(const char* argv0,
                                               const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    std::exit(2);
  }
  try {
    return curb::prof::parse_bench_json(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    std::exit(2);
  }
}

int run_perf_diff(const char* argv0, const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  curb::prof::PerfDiffOptions options;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--threshold") {
      if (i + 1 >= args.size()) usage(argv0);
      options.threshold_pct = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--host-threshold") {
      if (i + 1 >= args.size()) usage(argv0);
      options.host_threshold_pct = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--floor") {
      if (i + 1 >= args.size()) usage(argv0);
      options.floor = parse_double(argv0, args[++i].c_str());
    } else if (args[i] == "--warn-only") {
      options.warn_only = true;
    } else if (args[i].rfind("--", 0) == 0) {
      usage(argv0);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) usage(argv0);
  const auto base = load_bench(argv0, paths[0]);
  const auto candidate = load_bench(argv0, paths[1]);
  const curb::prof::PerfDiffResult diff =
      curb::prof::perf_diff(base, candidate, options);
  if (as_json) {
    curb::prof::write_perf_diff_json(diff, std::cout);
  } else {
    curb::prof::write_perf_diff_text(diff, std::cout);
  }
  return diff.regressions() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (command == "report") return run_report(argv[0], args);
  if (command == "perf-diff") return run_perf_diff(argv[0], args);
  usage(argv[0]);
}
