// curb-trace: causal protocol analytics over curb span dumps.
//
//   curb-trace report        <spans.jsonl> [--json]
//   curb-trace critical-path <spans.jsonl> [--json] [--limit N]
//   curb-trace anomalies     <spans.jsonl> [--json]
//   curb-trace complexity    <spans.jsonl> [--json] [--ledger FILE] [--limit N]
//   curb-trace diff          <base.jsonl> <cand.jsonl> [--json]
//                            [--threshold PCT] [--floor US]
//
// Input is a spans-JSONL dump (curb-sim --trace-jsonl FILE, or the
// CURB_TRACE_JSONL env var understood by the benches). `report` prints the
// per-phase latency breakdown, `critical-path` the slowest transactions'
// segment walks, `anomalies` the protocol-conformance findings (exit 1 if
// any), `complexity` the Theorem 1 message-complexity audit over the run's
// round_complexity instants (exit 1 when any PKT-IN round exceeds the
// analytic bound; --ledger joins in a curb-sim --ledger-out dump), and
// `diff` a phase-by-phase comparison of two runs (exit 1 on regressions).
// Exit codes follow curb/core/exit_codes.hpp.
//
// Example: curb-sim --rounds 5 --trace-jsonl t.jsonl && curb-trace report t.jsonl

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "curb/core/exit_codes.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/net/report.hpp"
#include "curb/obs/report.hpp"

namespace {

using curb::core::kExitFinding;
using curb::core::kExitOk;
using curb::core::kExitUsage;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s report        <spans.jsonl> [--json]\n"
               "       %s critical-path <spans.jsonl> [--json] [--limit N]\n"
               "       %s anomalies     <spans.jsonl> [--json]\n"
               "       %s complexity    <spans.jsonl> [--json] [--ledger FILE]"
               " [--limit N]\n"
               "       %s diff          <base.jsonl> <cand.jsonl> [--json]\n"
               "                        [--threshold PCT] [--floor US]\n",
               argv0, argv0, argv0, argv0, argv0);
  std::exit(kExitUsage);
}

curb::obs::TraceAnalysis load(const char* argv0, const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path.c_str());
    std::exit(kExitUsage);
  }
  try {
    return curb::obs::TraceAnalysis{curb::obs::parse_spans_jsonl(in)};
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    std::exit(kExitUsage);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];

  std::vector<std::string> paths;
  bool json = false;
  std::size_t limit = 5;
  bool limit_set = false;
  std::string ledger_path;
  curb::obs::DiffOptions diff_options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--ledger") {
      ledger_path = value();
    } else if (arg == "--limit") {
      limit = std::strtoull(value(), nullptr, 10);
      limit_set = true;
    } else if (arg == "--threshold") {
      diff_options.threshold_pct = std::strtod(value(), nullptr);
    } else if (arg == "--floor") {
      diff_options.floor_us = std::strtoll(value(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (command == "report") {
    if (paths.size() != 1) usage(argv[0]);
    const curb::obs::TraceAnalysis analysis = load(argv[0], paths[0]);
    if (json) {
      curb::obs::write_report_json(analysis, std::cout);
    } else {
      curb::obs::write_report_text(analysis, std::cout);
    }
    return kExitOk;
  }
  if (command == "critical-path") {
    if (paths.size() != 1) usage(argv[0]);
    const curb::obs::TraceAnalysis analysis = load(argv[0], paths[0]);
    if (json) {
      // JSON consumers get every transaction unless explicitly capped.
      curb::obs::write_critical_path_json(analysis, std::cout, limit_set ? limit : 0);
    } else {
      curb::obs::write_critical_path_text(analysis, std::cout, limit);
    }
    return kExitOk;
  }
  if (command == "anomalies") {
    if (paths.size() != 1) usage(argv[0]);
    const curb::obs::TraceAnalysis analysis = load(argv[0], paths[0]);
    if (json) {
      curb::obs::write_anomalies_json(analysis, std::cout);
    } else {
      curb::obs::write_anomalies_text(analysis, std::cout);
    }
    return analysis.findings().empty() ? kExitOk : kExitFinding;
  }
  if (command == "complexity") {
    if (paths.size() != 1) usage(argv[0]);
    const curb::obs::TraceAnalysis analysis = load(argv[0], paths[0]);
    const std::vector<curb::obs::net::RoundComplexity> rounds =
        curb::obs::net::extract_round_complexity(analysis.spans());
    std::vector<curb::obs::net::LedgerRow> ledger;
    if (!ledger_path.empty()) {
      std::ifstream in{ledger_path};
      if (!in) {
        std::fprintf(stderr, "%s: cannot open %s\n", argv[0], ledger_path.c_str());
        return kExitUsage;
      }
      ledger = curb::obs::net::parse_ledger_jsonl(in);
    }
    if (json) {
      if (ledger_path.empty()) {
        curb::obs::net::write_complexity_json(rounds, std::cout);
      } else {
        std::ostringstream complexity;
        curb::obs::net::write_complexity_json(rounds, complexity);
        std::string body = complexity.str();
        while (!body.empty() && body.back() == '\n') body.pop_back();
        std::cout << "{\"complexity\":" << body << ",\"ledger\":[";
        bool first = true;
        for (const auto& row : ledger) {
          std::cout << (first ? "" : ",") << "{\"category\":\""
                    << curb::obs::json_escape(row.category) << "\",\"key\":\""
                    << curb::obs::json_escape(row.key) << "\",\"msgs\":" << row.msgs
                    << ",\"bytes\":" << row.bytes << "}";
          first = false;
        }
        std::cout << "]}\n";
      }
    } else {
      curb::obs::net::write_complexity_text(rounds, std::cout);
      if (!ledger_path.empty()) {
        // Per-category rollup of the per-transaction ledger, then the
        // heaviest join keys — stacked traffic shows up as one key with an
        // outsized message count.
        struct CatAgg {
          std::uint64_t keys = 0;
          std::uint64_t msgs = 0;
          std::uint64_t bytes = 0;
        };
        std::map<std::string, CatAgg> by_category;
        for (const auto& row : ledger) {
          CatAgg& agg = by_category[row.category];
          ++agg.keys;
          agg.msgs += row.msgs;
          agg.bytes += row.bytes;
        }
        std::cout << "\nledger (" << ledger.size() << " row(s) from " << ledger_path
                  << ")\n";
        for (const auto& [category, agg] : by_category) {
          std::cout << "  " << category << ": " << agg.keys << " key(s), "
                    << agg.msgs << " wire msg(s), " << agg.bytes << " B\n";
        }
        std::vector<const curb::obs::net::LedgerRow*> top;
        top.reserve(ledger.size());
        for (const auto& row : ledger) top.push_back(&row);
        std::stable_sort(top.begin(), top.end(),
                         [](const auto* a, const auto* b) { return a->msgs > b->msgs; });
        std::cout << "  heaviest keys:\n";
        for (std::size_t i = 0; i < top.size() && i < limit; ++i) {
          std::cout << "    " << top[i]->category << " " << top[i]->key << ": "
                    << top[i]->msgs << " msg(s), " << top[i]->bytes << " B\n";
        }
      }
    }
    for (const auto& rc : rounds) {
      if (rc.exceeds) return kExitFinding;
    }
    return kExitOk;
  }
  if (command == "diff") {
    if (paths.size() != 2) usage(argv[0]);
    const curb::obs::TraceAnalysis baseline = load(argv[0], paths[0]);
    const curb::obs::TraceAnalysis candidate = load(argv[0], paths[1]);
    const curb::obs::DiffResult diff =
        curb::obs::diff_analyses(baseline, candidate, diff_options);
    if (json) {
      curb::obs::write_diff_json(diff, std::cout);
    } else {
      curb::obs::write_diff_text(diff, std::cout);
    }
    return diff.regressions() == 0 ? kExitOk : kExitFinding;
  }
  usage(argv[0]);
}
