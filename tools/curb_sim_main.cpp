// curb-sim: command-line experiment runner for the Curb control plane.
//
//   curb-sim [options]
//     --topology internet2|random   (default internet2)
//     --controllers N --switches M  (random topology dimensions, default 8/16)
//     --seed S                      (default 42)
//     --f F                         (default 1; group size 3f+1)
//     --engine pbft|hotstuff        (default pbft)
//     --rounds R                    (default 5)
//     --load L                      (PKT-INs per switch per round, default 1)
//     --parallel 0|1                (default 1)
//     --capacity C                  (controller capacity, default 12)
//     --dcs MS                      (D_c,s in ms; 0 disables, default 14)
//     --solver dense|sparse|heuristic (OP() backend, default dense; dense is
//                                    the byte-stable baseline, sparse scales
//                                    the exact solver, heuristic trades the
//                                    optimality proof for millisecond solves)
//     --overhead MS                 (per-message processing overhead, default 0)
//     --reassign                    (run RE-ASS probe rounds instead of PKT-IN)
//     --csv                         (machine-readable output)
//     --trace FILE                  (Chrome trace_event JSON; open in Perfetto)
//     --trace-jsonl FILE            (span dump, one JSON object per line)
//     --metrics-out FILE            (metrics registry snapshot, JSON)
//     --metrics-csv FILE            (metrics registry snapshot, CSV)
//     --phase-report                (per-phase latency breakdown after the run;
//                                    implies tracing, see curb-trace for more)
//     --fault SPEC                  (deterministic fault injection, e.g.
//                                    "drop(p=0.05,cat=REPLY);crash(node=ctrl1,at=500)")
//     --fault-seed S                (fault schedule seed, default 1; same
//                                    (seed, spec) reproduces the same run)
//     --prof FILE                   (host-time profile, collapsed-stack format;
//                                    feed into flamegraph.pl or curb-prof report)
//     --prof-chrome FILE            (host-time profile as Chrome trace JSON)
//
// Example: curb-sim --engine hotstuff --rounds 10 --load 3 --csv
// Example: curb-sim --rounds 5 --trace t.json --metrics-out m.json
// Example: curb-sim --rounds 5 --fault "delay(p=0.3,min=20,max=120,src=ctrl1)"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

#include "curb/core/simulation.hpp"
#include "curb/fault/spec.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/report.hpp"
#include "curb/prof/export.hpp"
#include "curb/prof/profiler.hpp"

#include <iostream>

namespace {

struct CliOptions {
  std::string topology = "internet2";
  std::size_t controllers = 8;
  std::size_t switches = 16;
  std::uint64_t seed = 42;
  std::size_t f = 1;
  std::string engine = "pbft";
  std::size_t rounds = 5;
  std::size_t load = 1;
  bool parallel = true;
  double capacity = 12.0;
  double dcs_ms = 14.0;
  std::string solver = "dense";
  double overhead_ms = 0.0;
  bool reassign = false;
  bool csv = false;
  std::string trace_file;
  std::string trace_jsonl_file;
  std::string metrics_json_file;
  std::string metrics_csv_file;
  bool phase_report = false;
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  std::string prof_file;
  std::string prof_chrome_file;

  [[nodiscard]] bool profiling() const {
    return !prof_file.empty() || !prof_chrome_file.empty();
  }

  [[nodiscard]] bool observability() const {
    return phase_report || !trace_file.empty() || !trace_jsonl_file.empty() ||
           !metrics_json_file.empty() || !metrics_csv_file.empty();
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology internet2|random] [--controllers N]\n"
               "          [--switches M] [--seed S] [--f F] [--engine pbft|hotstuff]\n"
               "          [--rounds R] [--load L] [--parallel 0|1] [--capacity C]\n"
               "          [--dcs MS] [--solver dense|sparse|heuristic]\n"
               "          [--overhead MS] [--reassign] [--csv]\n"
               "          [--trace FILE] [--trace-jsonl FILE]\n"
               "          [--metrics-out FILE] [--metrics-csv FILE] [--phase-report]\n"
               "          [--fault SPEC] [--fault-seed S]\n"
               "          [--prof FILE] [--prof-chrome FILE]\n",
               argv0);
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--topology") opts.topology = value();
    else if (arg == "--controllers") opts.controllers = std::strtoull(value(), nullptr, 10);
    else if (arg == "--switches") opts.switches = std::strtoull(value(), nullptr, 10);
    else if (arg == "--seed") opts.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--f") opts.f = std::strtoull(value(), nullptr, 10);
    else if (arg == "--engine") opts.engine = value();
    else if (arg == "--rounds") opts.rounds = std::strtoull(value(), nullptr, 10);
    else if (arg == "--load") opts.load = std::strtoull(value(), nullptr, 10);
    else if (arg == "--parallel") opts.parallel = std::strtol(value(), nullptr, 10) != 0;
    else if (arg == "--capacity") opts.capacity = std::strtod(value(), nullptr);
    else if (arg == "--dcs") opts.dcs_ms = std::strtod(value(), nullptr);
    else if (arg == "--solver") opts.solver = value();
    else if (arg == "--overhead") opts.overhead_ms = std::strtod(value(), nullptr);
    else if (arg == "--reassign") opts.reassign = true;
    else if (arg == "--csv") opts.csv = true;
    else if (arg == "--trace") opts.trace_file = value();
    else if (arg == "--trace-jsonl") opts.trace_jsonl_file = value();
    else if (arg == "--metrics-out") opts.metrics_json_file = value();
    else if (arg == "--metrics-csv") opts.metrics_csv_file = value();
    else if (arg == "--phase-report") opts.phase_report = true;
    else if (arg == "--fault") opts.fault_spec = value();
    else if (arg == "--fault-seed") opts.fault_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--prof") opts.prof_file = value();
    else if (arg == "--prof-chrome") opts.prof_chrome_file = value();
    else usage(argv[0]);
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);

  curb::core::CurbOptions options;
  options.f = cli.f;
  options.seed = cli.seed;
  options.parallel = cli.parallel;
  options.controller_capacity = cli.capacity;
  options.max_cs_delay_ms =
      cli.dcs_ms > 0 ? cli.dcs_ms : curb::opt::CapInstance::kNoLimit;
  if (const auto backend = curb::opt::parse_cap_solver_backend(cli.solver)) {
    options.op_solver = *backend;
  } else {
    std::fprintf(stderr, "curb-sim: unknown --solver '%s'\n", cli.solver.c_str());
    usage(argv[0]);
  }
  options.link_model.per_message_overhead =
      curb::sim::SimTime::from_seconds_f(cli.overhead_ms / 1000.0);
  options.reass_always_solve = cli.reassign;
  options.observability = cli.observability();
  options.fault_spec = cli.fault_spec;
  options.fault_seed = cli.fault_seed;
  if (cli.engine == "hotstuff") {
    options.consensus_engine = curb::bft::ConsensusEngine::kHotstuff;
  } else if (cli.engine != "pbft") {
    usage(argv[0]);
  }

  if (!cli.fault_spec.empty()) {
    try {
      (void)curb::fault::FaultPlan::parse(cli.fault_spec, cli.fault_seed);
    } catch (const curb::fault::SpecError& e) {
      std::fprintf(stderr, "curb-sim: bad --fault spec: %s\n", e.what());
      return 2;
    }
  }

  // Host-time profiling: installed before the simulation is built so setup
  // (keygen, topology, genesis) is attributed too. Host time never touches
  // the virtual clock, so --prof cannot change the run's outputs.
  curb::prof::Profiler profiler;
  curb::prof::StopWatch wall;
  if (cli.profiling()) curb::prof::set_thread_profiler(&profiler);

  auto topology = cli.topology == "random"
                      ? curb::net::random_geo_topology(cli.controllers, cli.switches,
                                                       cli.seed)
                      : curb::net::internet2();
  if (cli.topology != "random" && cli.topology != "internet2") usage(argv[0]);

  // OP() throws when no feasible initial assignment exists — easy to hit
  // with --topology random at low controller counts, or --solver heuristic
  // on the marginally-feasible default Internet2 instance (the heuristic
  // has no optimality proof and can miss groupings the exact backends
  // find). Surface it as a clean error, not an abort.
  std::optional<curb::core::CurbSimulation> sim_storage;
  try {
    sim_storage.emplace(std::move(topology), options);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "curb-sim: %s\n", e.what());
    return 1;
  }
  curb::core::CurbSimulation& sim = *sim_storage;
  const auto& state = sim.network().genesis_state();
  if (!cli.csv) {
    std::printf("curb-sim: %zu controllers, %zu switches, %zu groups, engine=%s\n",
                sim.network().num_controllers(), sim.network().num_switches(),
                state.groups().size(), cli.engine.c_str());
    std::printf("%-8s%-10s%-10s%-14s%-12s%-12s\n", "round", "issued", "served",
                "latency_ms", "tps", "messages");
  } else {
    std::printf("round,issued,served,latency_ms,tps,messages\n");
  }

  for (std::size_t round = 1; round <= cli.rounds; ++round) {
    const curb::core::RoundMetrics m =
        cli.reassign ? sim.run_reassignment_round(sim.active_switches())
                     : sim.run_packet_in_round(cli.load);
    if (cli.csv) {
      std::printf("%zu,%zu,%zu,%.3f,%.3f,%llu\n", round, m.issued, m.accepted,
                  m.mean_latency_ms, m.throughput_tps,
                  static_cast<unsigned long long>(m.messages));
    } else {
      std::printf("%-8zu%-10zu%-10zu%-14.1f%-12.1f%-12llu\n", round, m.issued,
                  m.accepted, m.mean_latency_ms, m.throughput_tps,
                  static_cast<unsigned long long>(m.messages));
    }
  }
  if (!cli.csv) {
    std::printf("\nchain height %llu, consistent: %s, no fork: %s, "
                "total messages %llu\n",
                static_cast<unsigned long long>(sim.chain_height()),
                sim.chains_consistent() ? "yes" : "NO",
                sim.chains_prefix_consistent() ? "yes" : "NO",
                static_cast<unsigned long long>(sim.total_messages()));
  }

  if (curb::obs::Observatory* obsy = sim.network().observatory(); obsy != nullptr) {
    sim.network().snapshot_runtime_metrics();
    bool ok = true;
    auto check = [&ok](bool wrote, const std::string& path) {
      if (!wrote) {
        std::fprintf(stderr, "curb-sim: cannot write %s\n", path.c_str());
        ok = false;
      }
    };
    if (!cli.trace_file.empty()) {
      check(curb::obs::export_chrome_trace(obsy->tracer, &obsy->metrics, cli.trace_file),
            cli.trace_file);
    }
    if (!cli.trace_jsonl_file.empty()) {
      check(curb::obs::export_spans_jsonl(obsy->tracer, cli.trace_jsonl_file),
            cli.trace_jsonl_file);
    }
    if (!cli.metrics_json_file.empty()) {
      check(curb::obs::export_metrics_json(obsy->metrics, cli.metrics_json_file),
            cli.metrics_json_file);
    }
    if (!cli.metrics_csv_file.empty()) {
      check(curb::obs::export_metrics_csv(obsy->metrics, cli.metrics_csv_file),
            cli.metrics_csv_file);
    }
    if (cli.phase_report) {
      std::printf("\n");
      curb::obs::write_report_text(curb::obs::TraceAnalysis::from_tracer(obsy->tracer),
                                   std::cout);
    }
    if (!ok) return 1;
  }
  if (cli.profiling()) {
    curb::prof::set_thread_profiler(nullptr);
    bool ok = true;
    std::string written;
    if (!cli.prof_file.empty()) {
      if (curb::prof::export_collapsed(profiler, cli.prof_file)) {
        written = cli.prof_file;
      } else {
        std::fprintf(stderr, "curb-sim: cannot write %s\n", cli.prof_file.c_str());
        ok = false;
      }
    }
    if (!cli.prof_chrome_file.empty()) {
      if (curb::prof::export_chrome_profile(profiler, cli.prof_chrome_file)) {
        if (!written.empty()) written += ", ";
        written += cli.prof_chrome_file;
      } else {
        std::fprintf(stderr, "curb-sim: cannot write %s\n",
                     cli.prof_chrome_file.c_str());
        ok = false;
      }
    }
    const double wall_s = wall.elapsed_ms() / 1000.0;
    const double events = static_cast<double>(sim.network().simulator().events_executed());
    std::fprintf(stderr, "host: wall=%.2fs events/s=%.0f profile written to %s\n",
                 wall_s, wall_s > 0.0 ? events / wall_s : 0.0,
                 written.empty() ? "(none)" : written.c_str());
    if (!ok) return 1;
  }

  // Clean runs must end fully converged (equal tips). A faulted run may
  // legitimately stop with live controllers lagging (deliveries still in
  // flight) or crashed without recovery, so only a genuine fork — diverging
  // blocks at a common height — fails it.
  const bool ok_chains = cli.fault_spec.empty() ? sim.chains_consistent()
                                                : sim.chains_prefix_consistent();
  return ok_chains ? 0 : 1;
}
