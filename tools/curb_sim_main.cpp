// curb-sim: command-line experiment runner for the Curb control plane.
//
//   curb-sim [options]
//     --topology internet2|random   (default internet2)
//     --controllers N --switches M  (random topology dimensions, default 8/16)
//     --seed S                      (default 42)
//     --f F                         (default 1; group size 3f+1)
//     --engine pbft|hotstuff        (default pbft)
//     --rounds R                    (default 5)
//     --load L                      (PKT-INs per switch per round, default 1)
//     --parallel 0|1                (default 1)
//     --capacity C                  (controller capacity, default 12)
//     --dcs MS                      (D_c,s in ms; 0 disables, default 14)
//     --solver dense|sparse|heuristic (OP() backend, default dense; dense is
//                                    the byte-stable baseline, sparse scales
//                                    the exact solver, heuristic trades the
//                                    optimality proof for millisecond solves)
//     --overhead MS                 (per-message processing overhead, default 0)
//     --reassign                    (run RE-ASS probe rounds instead of PKT-IN)
//     --csv                         (machine-readable output)
//     --trace FILE                  (Chrome trace_event JSON; open in Perfetto)
//     --trace-jsonl FILE            (span dump, one JSON object per line)
//     --metrics-out FILE            (metrics registry snapshot, JSON)
//     --metrics-csv FILE            (metrics registry snapshot, CSV)
//     --phase-report                (per-phase latency breakdown after the run;
//                                    implies tracing, see curb-trace for more)
//     --link-matrix FILE            (per-link telemetry matrix, JSON: msgs/
//                                    bytes/dups/drops/utilization per (src,dst))
//     --link-csv FILE               (the same matrix as CSV)
//     --link-dot FILE               (Graphviz heatmap of per-link bytes)
//     --ledger-out FILE             (message-complexity ledger, JSONL: wire
//                                    msgs/bytes per (category, transaction
//                                    join key); join with curb-trace
//                                    complexity --ledger)
//     --ts-out FILE                 (windowed telemetry stream, one JSON object
//                                    per closed window; tail with curb-watch)
//     --ts-window MS                (telemetry window width in virtual ms;
//                                    default 100 when telemetry is on)
//     --ts-retention N              (closed windows kept in memory, default 64)
//     --slo RULES                   (';'-separated SLO watchdog rules, e.g.
//                                    "p99(core.request_latency_us) < 80ms over 5";
//                                    a breach stops the run, exit code 3)
//     --slo-out FILE                (machine-readable breach report, JSON)
//     --fault SPEC                  (deterministic fault injection, e.g.
//                                    "drop(p=0.05,cat=REPLY);crash(node=ctrl1,at=500)")
//     --fault-seed S                (fault schedule seed, default 1; same
//                                    (seed, spec) reproduces the same run)
//     --prof FILE                   (host-time profile, collapsed-stack format;
//                                    feed into flamegraph.pl or curb-prof report)
//     --prof-chrome FILE            (host-time profile as Chrome trace JSON)
//     --mem-out FILE                (per-tag memory profile JSON; feed into
//                                    curb-prof mem-report / mem-diff)
//     --mem-folded FILE             (collapsed-stack memory flamegraph, bytes
//                                    per attribution frame; implies --prof-style
//                                    profiler installation)
//     --help                        (this text plus the CURB_* env var table)
//
// Exit codes (curb/core/exit_codes.hpp): 0 ok, 1 run/output failure, 2 usage,
// 3 SLO watchdog breach.
//
// CURB_* environment variables (see --help for the full table) are applied
// first; command-line flags override them.
//
// Example: curb-sim --engine hotstuff --rounds 10 --load 3 --csv
// Example: curb-sim --rounds 5 --trace t.json --metrics-out m.json
// Example: curb-sim --rounds 5 --fault "delay(p=0.3,min=20,max=120,src=ctrl1)"
// Example: curb-sim --rounds 20 --ts-out ts.jsonl --slo 'rate(bft.view_changes) == 0'

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "curb/core/env.hpp"
#include "curb/core/exit_codes.hpp"
#include "curb/core/simulation.hpp"
#include "curb/obs/res/account.hpp"
#include "curb/obs/res/report.hpp"
#include "curb/fault/spec.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/report.hpp"
#include "curb/obs/slo.hpp"
#include "curb/prof/export.hpp"
#include "curb/prof/profiler.hpp"

#include <iostream>

namespace {

struct CliOptions {
  std::string topology = "internet2";
  std::size_t controllers = 8;
  std::size_t switches = 16;
  std::uint64_t seed = 42;
  std::size_t f = 1;
  std::string engine = "pbft";
  std::size_t rounds = 5;
  std::size_t load = 1;
  bool parallel = true;
  double capacity = 12.0;
  double dcs_ms = 14.0;
  std::string solver;  // empty: CURB_SOLVER or the dense default
  double overhead_ms = 0.0;
  bool reassign = false;
  bool csv = false;
  std::string trace_file;
  std::string trace_jsonl_file;
  std::string metrics_json_file;
  std::string metrics_csv_file;
  bool phase_report = false;
  std::string link_matrix_file;
  std::string link_csv_file;
  std::string link_dot_file;
  std::string ledger_out_file;
  std::string ts_out;
  std::optional<double> ts_window_ms;
  std::optional<std::size_t> ts_retention;
  std::string slo_rules;
  std::string slo_out;
  std::string fault_spec;
  std::optional<std::uint64_t> fault_seed;
  std::string prof_file;
  std::string prof_chrome_file;
  std::string mem_out_file;
  std::string mem_folded_file;

  [[nodiscard]] bool profiling() const {
    // A memory flamegraph needs the attribution tree, so --mem-folded
    // installs the profiler too.
    return !prof_file.empty() || !prof_chrome_file.empty() ||
           !mem_folded_file.empty();
  }

  [[nodiscard]] bool observability() const {
    return phase_report || !trace_file.empty() || !trace_jsonl_file.empty() ||
           !metrics_json_file.empty() || !metrics_csv_file.empty();
  }
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--topology internet2|random] [--controllers N]\n"
               "          [--switches M] [--seed S] [--f F] [--engine pbft|hotstuff]\n"
               "          [--rounds R] [--load L] [--parallel 0|1] [--capacity C]\n"
               "          [--dcs MS] [--solver dense|sparse|heuristic]\n"
               "          [--overhead MS] [--reassign] [--csv]\n"
               "          [--trace FILE] [--trace-jsonl FILE]\n"
               "          [--metrics-out FILE] [--metrics-csv FILE] [--phase-report]\n"
               "          [--link-matrix FILE] [--link-csv FILE] [--link-dot FILE]\n"
               "          [--ledger-out FILE]\n"
               "          [--ts-out FILE] [--ts-window MS] [--ts-retention N]\n"
               "          [--slo RULES] [--slo-out FILE]\n"
               "          [--fault SPEC] [--fault-seed S]\n"
               "          [--prof FILE] [--prof-chrome FILE]\n"
               "          [--mem-out FILE] [--mem-folded FILE] [--help]\n"
               "\n"
               "environment (applied first; flags override; the bench binaries\n"
               "honour the same variables):\n",
               argv0);
  for (const curb::core::EnvVar& var : curb::core::curb_env_vars()) {
    std::fprintf(out, "  %-18s %-24s %s\n", var.name, var.value_hint,
                 var.description);
  }
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0);
  std::exit(curb::core::kExitUsage);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--topology") opts.topology = value();
    else if (arg == "--controllers") opts.controllers = std::strtoull(value(), nullptr, 10);
    else if (arg == "--switches") opts.switches = std::strtoull(value(), nullptr, 10);
    else if (arg == "--seed") opts.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--f") opts.f = std::strtoull(value(), nullptr, 10);
    else if (arg == "--engine") opts.engine = value();
    else if (arg == "--rounds") opts.rounds = std::strtoull(value(), nullptr, 10);
    else if (arg == "--load") opts.load = std::strtoull(value(), nullptr, 10);
    else if (arg == "--parallel") opts.parallel = std::strtol(value(), nullptr, 10) != 0;
    else if (arg == "--capacity") opts.capacity = std::strtod(value(), nullptr);
    else if (arg == "--dcs") opts.dcs_ms = std::strtod(value(), nullptr);
    else if (arg == "--solver") opts.solver = value();
    else if (arg == "--overhead") opts.overhead_ms = std::strtod(value(), nullptr);
    else if (arg == "--reassign") opts.reassign = true;
    else if (arg == "--csv") opts.csv = true;
    else if (arg == "--trace") opts.trace_file = value();
    else if (arg == "--trace-jsonl") opts.trace_jsonl_file = value();
    else if (arg == "--metrics-out") opts.metrics_json_file = value();
    else if (arg == "--metrics-csv") opts.metrics_csv_file = value();
    else if (arg == "--phase-report") opts.phase_report = true;
    else if (arg == "--link-matrix") opts.link_matrix_file = value();
    else if (arg == "--link-csv") opts.link_csv_file = value();
    else if (arg == "--link-dot") opts.link_dot_file = value();
    else if (arg == "--ledger-out") opts.ledger_out_file = value();
    else if (arg == "--ts-out") opts.ts_out = value();
    else if (arg == "--ts-window") opts.ts_window_ms = std::strtod(value(), nullptr);
    else if (arg == "--ts-retention") opts.ts_retention = std::strtoull(value(), nullptr, 10);
    else if (arg == "--slo") opts.slo_rules = value();
    else if (arg == "--slo-out") opts.slo_out = value();
    else if (arg == "--fault") opts.fault_spec = value();
    else if (arg == "--fault-seed") opts.fault_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--prof") opts.prof_file = value();
    else if (arg == "--prof-chrome") opts.prof_chrome_file = value();
    else if (arg == "--mem-out") opts.mem_out_file = value();
    else if (arg == "--mem-folded") opts.mem_folded_file = value();
    else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(curb::core::kExitOk);
    }
    else usage(argv[0]);
  }
  return opts;
}

/// Default an unset CLI path from its environment variable.
void env_default(std::string& field, const char* var) {
  if (field.empty()) {
    if (const auto value = curb::core::env_get(var)) field = *value;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli = parse(argc, argv);
  // Output-path options without a dedicated CurbOptions field fall back to
  // their env vars so curb-sim honours the whole documented table.
  env_default(cli.trace_file, "CURB_TRACE");
  env_default(cli.trace_jsonl_file, "CURB_TRACE_JSONL");
  env_default(cli.metrics_json_file, "CURB_METRICS_OUT");
  env_default(cli.metrics_csv_file, "CURB_METRICS_CSV");
  env_default(cli.link_matrix_file, "CURB_LINK_MATRIX");
  env_default(cli.link_csv_file, "CURB_LINK_CSV");
  env_default(cli.link_dot_file, "CURB_LINK_DOT");
  env_default(cli.ledger_out_file, "CURB_LEDGER_OUT");
  env_default(cli.slo_out, "CURB_SLO_OUT");
  env_default(cli.prof_file, "CURB_PROF");
  env_default(cli.prof_chrome_file, "CURB_PROF_CHROME");
  env_default(cli.mem_out_file, "CURB_MEM_OUT");
  env_default(cli.mem_folded_file, "CURB_MEM_FOLDED");
  if ((!cli.mem_out_file.empty() || !cli.mem_folded_file.empty()) &&
      !curb::obs::res::enabled()) {
    // The accountant latches at the process's first allocation (before main),
    // so a bare --mem-out flag is too late to turn it on: only the
    // environment can. Warn instead of writing an all-zero profile.
    std::fprintf(stderr,
                 "curb-sim: memory accounting is off — set CURB_MEM_ACCOUNT=1 "
                 "(or CURB_MEM_OUT/CURB_MEM_FOLDED) in the environment\n");
  }

  curb::core::CurbOptions options;
  // Environment first, explicit flags override.
  std::string env_error;
  if (!curb::core::apply_env_to_options(options, &env_error)) {
    std::fprintf(stderr, "curb-sim: %s\n", env_error.c_str());
    return curb::core::kExitUsage;
  }
  options.f = cli.f;
  options.seed = cli.seed;
  options.parallel = cli.parallel;
  options.controller_capacity = cli.capacity;
  options.max_cs_delay_ms =
      cli.dcs_ms > 0 ? cli.dcs_ms : curb::opt::CapInstance::kNoLimit;
  if (!cli.solver.empty()) {
    if (const auto backend = curb::opt::parse_cap_solver_backend(cli.solver)) {
      options.op_solver = *backend;
    } else {
      std::fprintf(stderr, "curb-sim: unknown --solver '%s'\n", cli.solver.c_str());
      usage(argv[0]);
    }
  }
  options.link_model.per_message_overhead =
      curb::sim::SimTime::from_seconds_f(cli.overhead_ms / 1000.0);
  options.reass_always_solve = cli.reassign;
  options.observability = cli.observability();
  // Link exports only need the counters, not the full observatory.
  if (!cli.link_matrix_file.empty() || !cli.link_csv_file.empty() ||
      !cli.link_dot_file.empty()) {
    options.link_telemetry = true;
  }
  if (!cli.ledger_out_file.empty()) options.msg_ledger = true;
  if (!cli.fault_spec.empty()) options.fault_spec = cli.fault_spec;
  if (cli.fault_seed) options.fault_seed = *cli.fault_seed;
  if (!cli.ts_out.empty()) options.ts_out = cli.ts_out;
  if (cli.ts_window_ms) {
    if (!(*cli.ts_window_ms > 0.0)) {
      std::fprintf(stderr, "curb-sim: --ts-window wants ms > 0\n");
      return curb::core::kExitUsage;
    }
    options.ts_window = curb::sim::SimTime::micros(
        static_cast<std::int64_t>(std::llround(*cli.ts_window_ms * 1000.0)));
  }
  if (cli.ts_retention) options.ts_retention = *cli.ts_retention;
  if (!cli.slo_rules.empty()) options.slo_rules = cli.slo_rules;
  // --ts-out without a width still wants telemetry (mirrors CURB_TS_OUT).
  if (!options.ts_out.empty() && options.ts_window <= curb::sim::SimTime::zero()) {
    options.ts_window = curb::sim::SimTime::millis(100);
  }
  if (cli.engine == "hotstuff") {
    options.consensus_engine = curb::bft::ConsensusEngine::kHotstuff;
  } else if (cli.engine != "pbft") {
    usage(argv[0]);
  }

  if (!options.fault_spec.empty()) {
    try {
      (void)curb::fault::FaultPlan::parse(options.fault_spec, options.fault_seed);
    } catch (const curb::fault::SpecError& e) {
      std::fprintf(stderr, "curb-sim: bad --fault spec: %s\n", e.what());
      return curb::core::kExitUsage;
    }
  }
  if (!options.slo_rules.empty()) {
    try {
      (void)curb::obs::SloRuleSet::parse(options.slo_rules);
    } catch (const curb::obs::SloError& e) {
      std::fprintf(stderr, "curb-sim: %s\n", e.what());
      return curb::core::kExitUsage;
    }
  }

  // Host-time profiling: installed before the simulation is built so setup
  // (keygen, topology, genesis) is attributed too. Host time never touches
  // the virtual clock, so --prof cannot change the run's outputs.
  curb::prof::Profiler profiler;
  curb::prof::StopWatch wall;
  if (cli.profiling()) curb::prof::set_thread_profiler(&profiler);

  auto topology = cli.topology == "random"
                      ? curb::net::random_geo_topology(cli.controllers, cli.switches,
                                                       cli.seed)
                      : curb::net::internet2();
  if (cli.topology != "random" && cli.topology != "internet2") usage(argv[0]);

  std::optional<curb::core::CurbSimulation> sim_storage;
  try {
    sim_storage.emplace(std::move(topology), options,
                        curb::core::CurbSimulation::DeferInit{});
  } catch (const std::exception& e) {
    // Unopenable --ts-out, a too-small topology, and the like: no network
    // exists yet, nothing to flush.
    std::fprintf(stderr, "curb-sim: %s\n", e.what());
    return curb::core::kExitFinding;
  }
  curb::core::CurbSimulation& sim = *sim_storage;

  // Every requested output is written through here, on every exit path —
  // an aborted run (infeasible assignment, SLO breach) still flushes and
  // closes its metrics/telemetry files, truncated to what actually ran.
  auto flush_outputs = [&]() -> bool {
    bool ok = true;
    auto check = [&ok](bool wrote, const std::string& path) {
      if (!wrote) {
        std::fprintf(stderr, "curb-sim: cannot write %s\n", path.c_str());
        ok = false;
      }
    };
    sim.network().finalize_telemetry();
    if (curb::obs::SloEngine* slo = sim.network().slo(); slo != nullptr) {
      if (!cli.slo_out.empty()) {
        std::ofstream out{cli.slo_out, std::ios::binary | std::ios::trunc};
        if (out) {
          slo->write_report_json(out);
        } else {
          check(false, cli.slo_out);
        }
      }
      if (slo->breached()) {
        std::fprintf(stderr, "curb-sim: %zu SLO breach(es):\n",
                     slo->breaches().size());
        std::ostringstream text;
        slo->write_report_text(text);
        std::fputs(text.str().c_str(), stderr);
      }
    }
    if (const curb::obs::net::LinkStats* links = sim.network().link_stats();
        links != nullptr) {
      const curb::obs::net::NodeNameFn names = sim.network().link_node_names();
      curb::obs::net::LinkReportOptions report;
      report.bandwidth_bps = options.link_model.bandwidth_bps;
      report.elapsed_s = sim.network().simulator().now().as_seconds_f();
      if (!cli.link_matrix_file.empty()) {
        check(curb::obs::net::export_link_matrix_json(*links, names, report,
                                                      cli.link_matrix_file),
              cli.link_matrix_file);
      }
      if (!cli.link_csv_file.empty()) {
        check(curb::obs::net::export_link_matrix_csv(*links, names, report,
                                                     cli.link_csv_file),
              cli.link_csv_file);
      }
      if (!cli.link_dot_file.empty()) {
        check(curb::obs::net::export_link_dot(*links, names, report,
                                              cli.link_dot_file),
              cli.link_dot_file);
      }
    }
    if (const curb::obs::net::MsgLedger* ledger = sim.network().msg_ledger();
        ledger != nullptr && !cli.ledger_out_file.empty()) {
      check(curb::obs::net::export_ledger_jsonl(*ledger, cli.ledger_out_file),
            cli.ledger_out_file);
    }
    curb::obs::Observatory* obsy = sim.network().observatory();
    if (obsy == nullptr) return ok;
    sim.network().snapshot_runtime_metrics();
    if (!cli.trace_file.empty()) {
      check(curb::obs::export_chrome_trace(obsy->tracer, &obsy->metrics, cli.trace_file),
            cli.trace_file);
    }
    if (!cli.trace_jsonl_file.empty()) {
      check(curb::obs::export_spans_jsonl(obsy->tracer, cli.trace_jsonl_file),
            cli.trace_jsonl_file);
    }
    if (!cli.metrics_json_file.empty()) {
      check(curb::obs::export_metrics_json(obsy->metrics, cli.metrics_json_file),
            cli.metrics_json_file);
    }
    if (!cli.metrics_csv_file.empty()) {
      check(curb::obs::export_metrics_csv(obsy->metrics, cli.metrics_csv_file),
            cli.metrics_csv_file);
    }
    if (cli.phase_report) {
      std::printf("\n");
      curb::obs::write_report_text(curb::obs::TraceAnalysis::from_tracer(obsy->tracer),
                                   std::cout);
    }
    return ok;
  };

  // OP() throws when no feasible initial assignment exists — easy to hit
  // with --topology random at low controller counts, or --solver heuristic
  // on the marginally-feasible default Internet2 instance (the heuristic
  // has no optimality proof and can miss groupings the exact backends
  // find). Surface it as a clean error, not an abort — and still flush the
  // requested outputs from the constructed network.
  try {
    sim.initialize();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "curb-sim: %s\n", e.what());
    (void)flush_outputs();
    return curb::core::kExitFinding;
  }

  const auto& state = sim.network().genesis_state();
  if (!cli.csv) {
    std::printf("curb-sim: %zu controllers, %zu switches, %zu groups, engine=%s\n",
                sim.network().num_controllers(), sim.network().num_switches(),
                state.groups().size(), cli.engine.c_str());
    std::printf("%-8s%-10s%-10s%-14s%-12s%-12s\n", "round", "issued", "served",
                "latency_ms", "tps", "messages");
  } else {
    std::printf("round,issued,served,latency_ms,tps,messages\n");
  }

  bool watchdog_fired = false;
  for (std::size_t round = 1; round <= cli.rounds; ++round) {
    const curb::core::RoundMetrics m =
        cli.reassign ? sim.run_reassignment_round(sim.active_switches())
                     : sim.run_packet_in_round(cli.load);
    if (cli.csv) {
      std::printf("%zu,%zu,%zu,%.3f,%.3f,%llu\n", round, m.issued, m.accepted,
                  m.mean_latency_ms, m.throughput_tps,
                  static_cast<unsigned long long>(m.messages));
    } else {
      std::printf("%-8zu%-10zu%-10zu%-14.1f%-12.1f%-12llu\n", round, m.issued,
                  m.accepted, m.mean_latency_ms, m.throughput_tps,
                  static_cast<unsigned long long>(m.messages));
    }
    // Watchdog: an SLO breach aborts the remaining rounds. Outputs are still
    // flushed below, so the breach report and partial telemetry survive.
    if (curb::obs::SloEngine* slo = sim.network().slo();
        slo != nullptr && slo->breached()) {
      watchdog_fired = true;
      std::fprintf(stderr, "curb-sim: SLO watchdog fired after round %zu\n", round);
      break;
    }
  }
  if (!cli.csv && !watchdog_fired) {
    std::printf("\nchain height %llu, consistent: %s, no fork: %s, "
                "total messages %llu\n",
                static_cast<unsigned long long>(sim.chain_height()),
                sim.chains_consistent() ? "yes" : "NO",
                sim.chains_prefix_consistent() ? "yes" : "NO",
                static_cast<unsigned long long>(sim.total_messages()));
  }

  const bool outputs_ok = flush_outputs();

  if (cli.profiling()) {
    curb::prof::set_thread_profiler(nullptr);
    bool ok = true;
    std::string written;
    if (!cli.prof_file.empty()) {
      if (curb::prof::export_collapsed(profiler, cli.prof_file)) {
        written = cli.prof_file;
      } else {
        std::fprintf(stderr, "curb-sim: cannot write %s\n", cli.prof_file.c_str());
        ok = false;
      }
    }
    if (!cli.prof_chrome_file.empty()) {
      if (curb::prof::export_chrome_profile(profiler, cli.prof_chrome_file)) {
        if (!written.empty()) written += ", ";
        written += cli.prof_chrome_file;
      } else {
        std::fprintf(stderr, "curb-sim: cannot write %s\n",
                     cli.prof_chrome_file.c_str());
        ok = false;
      }
    }
    const double wall_s = wall.elapsed_ms() / 1000.0;
    const double events = static_cast<double>(sim.network().simulator().events_executed());
    std::fprintf(stderr, "host: wall=%.2fs events/s=%.0f profile written to %s\n",
                 wall_s, wall_s > 0.0 ? events / wall_s : 0.0,
                 written.empty() ? "(none)" : written.c_str());
    if (!ok) return curb::core::kExitFinding;
  }

  if (curb::obs::res::enabled()) {
    const curb::obs::res::MemSnapshot snap = curb::obs::res::snapshot();
    bool ok = true;
    if (!cli.mem_out_file.empty() &&
        !curb::obs::res::export_mem_profile(snap, cli.mem_out_file)) {
      std::fprintf(stderr, "curb-sim: cannot write %s\n", cli.mem_out_file.c_str());
      ok = false;
    }
    if (!cli.mem_folded_file.empty() &&
        !curb::obs::res::export_mem_collapsed(
            profiler, curb::obs::res::frame_allocations(), cli.mem_folded_file)) {
      std::fprintf(stderr, "curb-sim: cannot write %s\n",
                   cli.mem_folded_file.c_str());
      ok = false;
    }
    const double denom = snap.total.alloc_bytes > 0
                             ? static_cast<double>(snap.total.alloc_bytes)
                             : 1.0;
    std::fprintf(stderr, "mem: alloc=%.1fMiB peak=%.1fMiB tagged=%.1f%%\n",
                 static_cast<double>(snap.total.alloc_bytes) / (1024.0 * 1024.0),
                 static_cast<double>(snap.total.peak_live_bytes) / (1024.0 * 1024.0),
                 100.0 * static_cast<double>(snap.tagged_alloc_bytes()) / denom);
    if (!ok) return curb::core::kExitFinding;
  }

  if (watchdog_fired) return curb::core::kExitSloBreach;
  if (!outputs_ok) return curb::core::kExitFinding;

  // Clean runs must end fully converged (equal tips). A faulted run may
  // legitimately stop with live controllers lagging (deliveries still in
  // flight) or crashed without recovery, so only a genuine fork — diverging
  // blocks at a common height — fails it.
  const bool ok_chains = options.fault_spec.empty() ? sim.chains_consistent()
                                                    : sim.chains_prefix_consistent();
  return ok_chains ? curb::core::kExitOk : curb::core::kExitFinding;
}
