// curb-watch: tail and evaluate windowed telemetry (curb::obs::ts JSONL).
//
//   curb-watch [options] FILE
//     --slo RULES     evaluate SLO rules over the stream (curb::obs::slo
//                     grammar, ';'-separated) — replays the same engine the
//                     live watchdog runs, so verdicts match curb-sim's
//     --follow        keep tailing FILE as it grows (live run); stops after
//                     --idle-ms of no growth (0 = until interrupted)
//     --idle-ms MS    follow idle cutoff, wall milliseconds (default 2000)
//     --poll-ms MS    follow poll interval, wall milliseconds (default 50)
//     --series SUBSTR only render series whose key contains SUBSTR
//                     (repeatable; default: all)
//     --links N       after the sparklines, print the N hottest links by
//                     peak net.link_util gauge (0 = off, default 0)
//     --width N       sparkline width in windows (default 48)
//     --report FILE   write the machine-readable breach report JSON
//     --quiet         no rendering, just evaluate (exit code + breach lines)
//
// Offline: parses the whole file, renders one sparkline per series over the
// trailing --width windows, marks rule thresholds, prints breaches.
// Follow: prints one line per newly closed window plus breach alerts as
// they fire, then the final sparkline view.
//
// Link telemetry: curb-sim publishes per-link utilization gauges keyed
// net.link_util{link="SRC->DST"} (top talkers per snapshot) whenever
// observability is on, so link SLOs are ordinary gauge rules, e.g.
//   --slo 'gauge(net.link_util{link="SEAT->LOSA"}) < 0.8'
//   --slo 'gauge(net.link_util_max) < 0.9 over 5'
//
// Exit codes (curb/core/exit_codes.hpp): 0 no breach, 1 I/O error, 2 usage,
// 3 SLO breach (the same code curb-sim's in-process watchdog uses).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "curb/core/exit_codes.hpp"
#include "curb/obs/slo.hpp"
#include "curb/obs/timeseries.hpp"

namespace {

struct CliOptions {
  std::string file;
  std::string slo_rules;
  bool follow = false;
  long idle_ms = 2000;
  long poll_ms = 50;
  std::vector<std::string> series_filters;
  std::size_t links = 0;
  std::size_t width = 48;
  std::string report_file;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--slo RULES] [--follow] [--idle-ms MS] [--poll-ms MS]\n"
               "          [--series SUBSTR]... [--links N] [--width N]\n"
               "          [--report FILE] [--quiet] FILE\n"
               "\n"
               "--links N prints the N hottest links by peak utilization from\n"
               "the net.link_util{link=\"SRC->DST\"} gauges curb-sim publishes\n"
               "when observability is on. Link SLOs are plain gauge rules:\n"
               "  --slo 'gauge(net.link_util{link=\"SEAT->LOSA\"}) < 0.8'\n"
               "  --slo 'gauge(net.link_util_max) < 0.9 over 5'\n",
               argv0);
  std::exit(curb::core::kExitUsage);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--slo") opts.slo_rules = value();
    else if (arg == "--follow") opts.follow = true;
    else if (arg == "--idle-ms") opts.idle_ms = std::strtol(value(), nullptr, 10);
    else if (arg == "--poll-ms") opts.poll_ms = std::strtol(value(), nullptr, 10);
    else if (arg == "--series") opts.series_filters.emplace_back(value());
    else if (arg == "--links") opts.links = std::strtoull(value(), nullptr, 10);
    else if (arg == "--width") opts.width = std::strtoull(value(), nullptr, 10);
    else if (arg == "--report") opts.report_file = value();
    else if (arg == "--quiet") opts.quiet = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else if (opts.file.empty()) opts.file = arg;
    else usage(argv[0]);
  }
  if (opts.file.empty() || opts.width == 0 || opts.poll_ms <= 0) usage(argv[0]);
  return opts;
}

/// The scalar a window contributes to a series' sparkline: the counted rate,
/// the sampled gauge, or the per-window p99 for histograms.
double plot_value(const curb::obs::TsValue& value) {
  return value.kind == curb::obs::TsValue::Kind::kHist ? value.p99 : value.value;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double lo = 0.0, hi = 0.0;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    const double span = hi - lo;
    const int idx =
        span > 0.0 ? std::min(7, static_cast<int>(std::floor((v - lo) / span * 8.0)))
                   : 0;
    out += kBlocks[idx];
  }
  return out;
}

std::string format_value(double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  }
  return buf;
}

bool series_selected(const std::string& key, const std::vector<std::string>& filters) {
  if (filters.empty()) return true;
  return std::any_of(filters.begin(), filters.end(), [&](const std::string& f) {
    return key.find(f) != std::string::npos;
  });
}

/// Per-series trailing plot window + threshold marks from matching rules.
void render(const std::deque<curb::obs::TsWindow>& windows,
            const curb::obs::SloRuleSet& rules, const CliOptions& cli) {
  if (windows.empty()) {
    std::printf("curb-watch: no closed windows\n");
    return;
  }
  const std::size_t first =
      windows.size() > cli.width ? windows.size() - cli.width : 0;
  // The trailing window may be a short partial close; report the width of
  // the last full window when there is one.
  const curb::obs::TsWindow* whole = &windows.back();
  for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
    if (!it->partial) {
      whole = &*it;
      break;
    }
  }
  std::printf("windows %llu..%llu (%zu shown, window %.1f ms)\n",
              static_cast<unsigned long long>(windows[first].index),
              static_cast<unsigned long long>(windows.back().index),
              windows.size() - first,
              static_cast<double>((whole->end - whole->start).as_micros()) /
                  1000.0);
  // Collect the key set across the plotted range (sorted via map).
  std::map<std::string, std::vector<double>> plots;
  for (std::size_t i = first; i < windows.size(); ++i) {
    for (const auto& [key, value] : windows[i].series) {
      if (series_selected(key, cli.series_filters)) {
        plots[key];  // ensure the row exists even before its first value
      }
    }
  }
  for (auto& [key, plot] : plots) {
    for (std::size_t i = first; i < windows.size(); ++i) {
      const curb::obs::TsValue* value = windows[i].find(key);
      plot.push_back(value != nullptr ? plot_value(*value) : 0.0);
    }
  }
  for (const auto& [key, plot] : plots) {
    double hi = 0.0, last = plot.empty() ? 0.0 : plot.back();
    for (const double v : plot) hi = std::max(hi, v);
    std::printf("  %-52s %s max=%s last=%s", key.c_str(), sparkline(plot).c_str(),
                format_value(hi).c_str(), format_value(last).c_str());
    for (const curb::obs::SloRule& rule : rules.rules) {
      if (rule.series != key) continue;
      const std::optional<double> observed = curb::obs::evaluate_rule(rule, windows);
      const bool pass =
          !observed || curb::obs::slo_compare(rule.op, *observed, rule.limit);
      std::printf("  [%s %s %s: %s]", curb::obs::to_string(rule.agg),
                  curb::obs::to_string(rule.op), format_value(rule.limit).c_str(),
                  pass ? "ok" : "BREACH");
    }
    std::printf("\n");
  }
}

/// Top-N hottest links by peak utilization, from the per-link gauges
/// (net.link_util{link="SRC->DST"}). The gauges are top-talker sampled per
/// snapshot, so "peak" means the hottest the link ever got while it was
/// among the top talkers — exactly the saturation question an operator asks.
void render_links(const std::deque<curb::obs::TsWindow>& windows, std::size_t n) {
  static const std::string kPrefix = "net.link_util{link=\"";
  struct LinkRow {
    std::string link;
    double peak = 0.0;
    double last = 0.0;
    std::uint64_t last_window = 0;
  };
  std::map<std::string, LinkRow> links;
  for (const curb::obs::TsWindow& window : windows) {
    for (const auto& [key, value] : window.series) {
      if (key.rfind(kPrefix, 0) != 0) continue;
      const std::size_t end = key.find('"', kPrefix.size());
      if (end == std::string::npos) continue;
      LinkRow& row = links[key.substr(kPrefix.size(), end - kPrefix.size())];
      row.peak = std::max(row.peak, value.value);
      row.last = value.value;
      row.last_window = window.index;
    }
  }
  if (links.empty()) {
    std::printf("\nhottest links: no net.link_util gauges in this stream\n");
    return;
  }
  std::vector<LinkRow> rows;
  rows.reserve(links.size());
  for (auto& [link, row] : links) {
    row.link = link;
    rows.push_back(row);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const LinkRow& a, const LinkRow& b) {
    return a.peak > b.peak;
  });
  std::printf("\nhottest links (top %zu of %zu by peak utilization)\n",
              std::min(n, rows.size()), rows.size());
  std::printf("  %-28s%-10s%-10s%s\n", "link", "peak", "last", "last-window");
  for (std::size_t i = 0; i < rows.size() && i < n; ++i) {
    std::printf("  %-28s%-10.3f%-10.3f%llu\n", rows[i].link.c_str(), rows[i].peak,
                rows[i].last, static_cast<unsigned long long>(rows[i].last_window));
  }
}

/// Incremental reader: re-opens the file each poll, resumes at the byte
/// offset after the last complete line, and parses only whole lines (a live
/// writer may be mid-line at the read instant).
class JsonlTail {
 public:
  explicit JsonlTail(std::string path) : path_{std::move(path)} {}

  /// Append newly completed windows to `out`. False when the file cannot be
  /// opened; parse errors throw.
  bool poll(std::vector<curb::obs::TsWindow>& out) {
    std::ifstream in{path_, std::ios::binary};
    if (!in) return false;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < offset_) {
      // The file shrank: truncated or rotated (a new run reopened the same
      // path). Restart from the top instead of spinning forever on a stale
      // offset waiting for the file to regrow past it.
      offset_ = 0;
    }
    if (size <= offset_) return true;
    in.seekg(offset_);
    std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(in.gcount()));
    const std::size_t complete = chunk.rfind('\n');
    if (complete == std::string::npos) return true;
    std::istringstream lines{chunk.substr(0, complete + 1)};
    for (const auto& window : curb::obs::parse_ts_jsonl(lines)) {
      out.push_back(window);
    }
    offset_ += static_cast<std::streamoff>(complete + 1);
    return true;
  }

 private:
  std::string path_;
  std::streamoff offset_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);

  curb::obs::SloRuleSet rules;
  if (!cli.slo_rules.empty()) {
    try {
      rules = curb::obs::SloRuleSet::parse(cli.slo_rules);
    } catch (const curb::obs::SloError& e) {
      std::fprintf(stderr, "curb-watch: %s\n", e.what());
      return curb::core::kExitUsage;
    }
  }
  curb::obs::SloEngine engine{rules};

  JsonlTail tail{cli.file};
  std::deque<curb::obs::TsWindow> windows;
  std::size_t breaches_reported = 0;

  auto ingest = [&](const std::vector<curb::obs::TsWindow>& fresh) {
    for (const curb::obs::TsWindow& window : fresh) {
      windows.push_back(window);
      // Replay the live watchdog: evaluate at each window close, against
      // the stream seen so far.
      engine.on_window(nullptr, windows);
      if (cli.follow && !cli.quiet) {
        std::printf("w=%llu end=%.1fms series=%zu%s\n",
                    static_cast<unsigned long long>(window.index),
                    static_cast<double>(window.end.as_micros()) / 1000.0,
                    window.series.size(), window.partial ? " (partial)" : "");
      }
      for (; breaches_reported < engine.breaches().size(); ++breaches_reported) {
        const curb::obs::SloBreach& b = engine.breaches()[breaches_reported];
        std::fprintf(stderr, "curb-watch: BREACH w=%llu %s (observed %s)\n",
                     static_cast<unsigned long long>(b.window),
                     engine.rules().rules[b.rule].text().c_str(),
                     format_value(b.observed).c_str());
      }
    }
  };

  bool opened = false;
  std::vector<curb::obs::TsWindow> fresh;
  try {
    if (cli.follow) {
      // Wall-clock tail: poll until the file stops growing for idle_ms.
      // Virtual time is irrelevant here — this follows a live process.
      const auto poll_interval = std::chrono::milliseconds{cli.poll_ms};
      auto last_growth = std::chrono::steady_clock::now();
      while (true) {
        fresh.clear();
        if (tail.poll(fresh)) {
          opened = true;
          if (!fresh.empty()) {
            ingest(fresh);
            last_growth = std::chrono::steady_clock::now();
          }
        }
        if (cli.idle_ms > 0 &&
            std::chrono::steady_clock::now() - last_growth >
                std::chrono::milliseconds{cli.idle_ms}) {
          break;
        }
        std::this_thread::sleep_for(poll_interval);
      }
    } else {
      if (tail.poll(fresh)) {
        opened = true;
        ingest(fresh);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "curb-watch: %s: %s\n", cli.file.c_str(), e.what());
    return curb::core::kExitFinding;
  }
  if (!opened) {
    std::fprintf(stderr, "curb-watch: cannot open %s\n", cli.file.c_str());
    return curb::core::kExitFinding;
  }

  if (!cli.quiet) {
    render(windows, rules, cli);
    if (cli.links > 0) render_links(windows, cli.links);
  }

  if (!cli.report_file.empty()) {
    std::ofstream out{cli.report_file, std::ios::binary | std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "curb-watch: cannot write %s\n", cli.report_file.c_str());
      return curb::core::kExitFinding;
    }
    engine.write_report_json(out);
  }
  if (engine.breached()) {
    std::fprintf(stderr, "curb-watch: %zu SLO breach(es)\n", engine.breaches().size());
    return curb::core::kExitSloBreach;
  }
  return curb::core::kExitOk;
}
