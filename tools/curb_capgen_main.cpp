// curb-capgen: generate, solve and store CAP instances.
//
//   curb-capgen [options]
//     --switches N --controllers M  (default 12/6)
//     --f F                         (group size 3f+1, default 1)
//     --slack X                     (capacity headroom, default 1.5;
//                                    < 1 usually makes the instance infeasible)
//     --dcs --dcc                   (impose the cs / cc delay caps)
//     --byzantine FRAC --leaders FRAC
//     --seed S                      (default 1)
//     --in FILE                     (load instead of generating)
//     --out FILE                    (write the instance JSON)
//     --solve                       (solve and print one summary line)
//     --backend dense|sparse|heuristic (default sparse)
//     --wall-ms MS                  (MILP wall-clock budget; 0 = unlimited)
//     --prove                       (record the exact optimum / feasibility in
//                                    the written JSON — this is how the golden
//                                    corpus under tests/opt/corpus is made;
//                                    the optimum is only recorded when the
//                                    budget sufficed to prove it)
//
// Examples:
//   curb-capgen --switches 500 --controllers 50 --backend heuristic --solve
//   curb-capgen --switches 10 --controllers 5 --seed 3 --prove --out c.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "curb/opt/instance_gen.hpp"
#include "curb/opt/instance_io.hpp"
#include "curb/opt/solver.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--switches N] [--controllers M] [--f F] [--slack X]\n"
               "          [--dcs] [--dcc] [--byzantine FRAC] [--leaders FRAC]\n"
               "          [--seed S] [--in FILE] [--out FILE] [--solve]\n"
               "          [--backend dense|sparse|heuristic] [--wall-ms MS] [--prove]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  curb::opt::GenProfile profile;
  std::string in_path;
  std::string out_path;
  std::string backend_name = "sparse";
  bool solve = false;
  bool prove = false;
  curb::opt::MilpOptions milp;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--switches") profile.switches = std::strtoull(value(), nullptr, 10);
    else if (arg == "--controllers") profile.controllers = std::strtoull(value(), nullptr, 10);
    else if (arg == "--f") profile.faults_tolerated = static_cast<int>(std::strtol(value(), nullptr, 10));
    else if (arg == "--slack") profile.capacity_slack = std::strtod(value(), nullptr);
    else if (arg == "--dcs") profile.cs_delay_cap = true;
    else if (arg == "--dcc") profile.cc_delay_cap = true;
    else if (arg == "--byzantine") profile.byzantine_frac = std::strtod(value(), nullptr);
    else if (arg == "--leaders") profile.fixed_leader_frac = std::strtod(value(), nullptr);
    else if (arg == "--seed") profile.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--in") in_path = value();
    else if (arg == "--out") out_path = value();
    else if (arg == "--solve") solve = true;
    else if (arg == "--backend") backend_name = value();
    else if (arg == "--wall-ms") milp.max_wall_ms = std::strtoull(value(), nullptr, 10);
    else if (arg == "--prove") prove = true;
    else usage(argv[0]);
  }

  const auto backend = curb::opt::parse_cap_solver_backend(backend_name);
  if (!backend) {
    std::fprintf(stderr, "curb-capgen: unknown --backend '%s'\n", backend_name.c_str());
    usage(argv[0]);
  }

  curb::opt::StoredInstance stored;
  try {
    if (!in_path.empty()) {
      stored = curb::opt::load_instance(in_path);
    } else {
      stored.instance = curb::opt::generate_instance(profile);
      stored.name = "gen-s" + std::to_string(profile.switches) + "-c" +
                    std::to_string(profile.controllers) + "-seed" +
                    std::to_string(profile.seed);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "curb-capgen: %s\n", e.what());
    return 1;
  }

  if (prove) {
    // The sparse exact backend proves the optimum (or infeasibility). A
    // feasible assignment certifies feasibility by itself; infeasibility and
    // optimality claims additionally need the search to have completed.
    const curb::opt::CapResult exact = curb::opt::solve_cap_with(
        curb::opt::CapSolverBackend::kSparse, stored.instance,
        curb::opt::CapObjective::kTrivial, nullptr, milp);
    if (exact.feasible) {
      stored.feasible = true;
      if (exact.stats.proven) stored.tcr_optimum = exact.objective;
    } else if (exact.stats.proven) {
      stored.feasible = false;
    }
    std::printf("prove: feasible=%s optimum=%s\n",
                stored.feasible ? (*stored.feasible ? "1" : "0") : "(unproven)",
                stored.tcr_optimum ? std::to_string(*stored.tcr_optimum).c_str()
                                   : "(unproven)");
  }

  if (solve) {
    const curb::opt::CapResult result = curb::opt::solve_cap_with(
        *backend, stored.instance, curb::opt::CapObjective::kTrivial, nullptr, milp);
    std::printf(
        "solve: backend=%s feasible=%d objective=%.1f used=%zu nodes=%zu "
        "lp_iters=%zu warm_hits=%zu fallback=%d wall_ms=%.1f\n",
        result.stats.backend.c_str(), result.feasible ? 1 : 0, result.objective,
        result.feasible ? result.assignment.controllers_used() : 0,
        result.stats.milp_nodes, result.stats.lp_iterations, result.stats.lp_warm_hits,
        result.stats.used_greedy_fallback ? 1 : 0, result.stats.wall_time_ms);
    if (!result.feasible && stored.feasible.value_or(false)) {
      std::fprintf(stderr, "curb-capgen: backend missed a known-feasible instance\n");
      return 1;
    }
  }

  if (!out_path.empty()) {
    if (!curb::opt::save_instance(stored, out_path)) {
      std::fprintf(stderr, "curb-capgen: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
