// Edge-computing scenario from the paper's introduction: a burst of IoT
// traffic hits the edge network and every switch needs flow rules at once.
// Demonstrates:
//   - sustained multi-round load handled by parallel controller groups,
//   - throughput scaling as more edge sites come online,
//   - the blockchain as an audit log for every installed rule.

#include <cstdio>

#include "curb/core/simulation.hpp"

int main() {
  using namespace curb;

  core::CurbOptions options;
  options.f = 1;
  options.max_cs_delay_ms = 14.0;
  options.controller_capacity = 12;
  core::CurbSimulation sim{options};

  std::printf("IoT burst on Internet2: activating edge sites in waves\n\n");
  std::printf("%-12s%-12s%-14s%-12s\n", "sites", "requests", "latency_ms", "tps");

  // Waves: more and more edge sites (switches) join the burst. Each site
  // fires 2 flow setups per round.
  for (const std::size_t sites : {8u, 16u, 24u, 34u}) {
    sim.set_active_switches(sites);
    const core::RoundMetrics m = sim.run_packet_in_round(/*requests_per_switch=*/2);
    std::printf("%-12zu%-12zu%-14.1f%-12.1f\n", sites, m.accepted, m.mean_latency_ms,
                m.throughput_tps);
  }

  // Audit: every flow rule that was installed is on the replicated chain,
  // so any edge operator can verify who configured what, and when.
  const auto& chain = sim.network().controller(0).blockchain();
  std::size_t flow_updates = 0;
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      if (tx.type() == chain::RequestType::kPacketIn) ++flow_updates;
    }
  }
  std::printf("\naudit: %zu flow updates recorded across %llu blocks; ", flow_updates,
              static_cast<unsigned long long>(chain.height()));
  std::printf("all %zu controllers agree: %s\n", sim.network().num_controllers(),
              sim.chains_consistent() ? "yes" : "NO");

  // End-to-end check: the data plane actually delivered the IoT packets.
  std::size_t delivered = 0;
  for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
    delivered += sim.network().switch_node(sw).delivered_packets().size();
  }
  std::printf("data plane: %zu packets delivered end-to-end\n", delivered);
  return 0;
}
