// Topology/assignment visualisation export — the C++ counterpart of the
// paper's HTML topology viewer (~2200 lines of HTML in the original stack).
// Emits Graphviz DOT on stdout: controller sites as boxes, switch sites as
// circles, fibre links solid, controller-group membership dashed and
// coloured per group.
//
//   ./examples/export_topology | dot -Tsvg > internet2.svg

#include <cstdio>

#include "curb/core/simulation.hpp"

int main() {
  using namespace curb;

  core::CurbOptions options;
  options.f = 1;
  options.max_cs_delay_ms = 14.0;
  options.controller_capacity = 12;
  core::CurbSimulation sim{options};
  const auto& topo = sim.network().topology();
  const auto& state = sim.network().genesis_state();

  static constexpr const char* kPalette[] = {
      "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02",
      "#a6761d", "#666666", "#1f78b4", "#b2df8a", "#fb9a99", "#cab2d6",
  };
  constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

  std::printf("graph curb_internet2 {\n");
  std::printf("  layout=neato; overlap=false; splines=true;\n");
  std::printf("  node [fontsize=9];\n");

  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const auto& node = topo.node(net::NodeId{i});
    // Longitude/latitude as plot coordinates (scaled for readability).
    const double x = (node.location.lon_deg + 124.0) * 0.45;
    const double y = (node.location.lat_deg - 24.0) * 0.45;
    if (node.kind == net::NodeKind::kController) {
      std::printf(
          "  \"%s\" [shape=box style=filled fillcolor=\"#4477aa\" fontcolor=white "
          "pos=\"%.2f,%.2f!\"];\n",
          node.name.c_str(), x, y);
    } else {
      std::printf(
          "  \"%s\" [shape=ellipse style=filled fillcolor=\"#eecc66\" "
          "pos=\"%.2f,%.2f!\"];\n",
          node.name.c_str(), x, y);
    }
  }
  for (const auto& link : topo.links()) {
    std::printf("  \"%s\" -- \"%s\" [color=\"#bbbbbb\"];\n",
                topo.node(link.a).name.c_str(), topo.node(link.b).name.c_str());
  }
  // Controller-group membership (the OP() assignment) as dashed edges.
  for (const auto& group : state.groups()) {
    const char* color = kPalette[group.id % kPaletteSize];
    for (const std::uint32_t sw : group.switches) {
      const auto& sw_name =
          topo.node(sim.network().switch_topo_node(sw)).name;
      for (const std::uint32_t ctl : group.members) {
        const auto& ctl_name =
            topo.node(sim.network().controller_topo_node(ctl)).name;
        std::printf("  \"%s\" -- \"%s\" [style=dashed penwidth=0.5 color=\"%s\"];\n",
                    sw_name.c_str(), ctl_name.c_str(), color);
      }
    }
  }
  std::printf("}\n");

  std::fprintf(stderr, "exported %zu nodes, %zu links, %zu controller groups\n",
               topo.node_count(), topo.link_count(), state.groups().size());
  return 0;
}
