// Quickstart: bring up a Curb control plane on the paper's Internet2
// topology, serve one round of PACKET_IN requests, and inspect the results.
//
//   $ ./examples/quickstart
//
// Walks through the public API surface: CurbOptions -> CurbSimulation ->
// rounds -> metrics, plus the per-controller blockchain view.

#include <cstdio>

#include "curb/core/simulation.hpp"

int main() {
  using namespace curb;

  // 1. Configure the deployment. Defaults follow the paper: f = 1 (groups
  //    of 3f+1 = 4 controllers), 500 ms request timeout, PBFT consensus.
  core::CurbOptions options;
  options.f = 1;
  options.max_cs_delay_ms = 14.0;    // D_c,s: switch-controller delay bound
  options.controller_capacity = 12;  // C_j: switches per controller
  options.seed = 7;

  // 2. Build the network: Internet2 (16 controllers / 34 switches), keys,
  //    the OP() controller assignment, the final committee, and the genesis
  //    block — the paper's Step 0.
  core::CurbSimulation sim{options};
  const auto& state = sim.network().genesis_state();
  std::printf("deployment: %zu controllers, %zu switches, %zu controller groups\n",
              sim.network().num_controllers(), sim.network().num_switches(),
              state.groups().size());
  std::printf("final committee:");
  for (const auto id : state.final_committee()) std::printf(" ctl-%u", id);
  std::printf(" (leader ctl-%u)\n\n", state.final_leader());

  // 3. Run one round: every switch receives a packet that misses its flow
  //    table, raises PKT-IN, and the control plane answers through
  //    intra-group consensus -> final consensus -> blockchain -> REPLY.
  const core::RoundMetrics metrics = sim.run_packet_in_round();
  std::printf("round 1: %zu/%zu requests served, mean latency %.1f ms, %.1f TPS\n",
              metrics.accepted, metrics.issued, metrics.mean_latency_ms,
              metrics.throughput_tps);
  std::printf("control messages this round: %llu\n",
              static_cast<unsigned long long>(metrics.messages));

  // 4. Every controller holds the identical blockchain.
  std::printf("chain height %llu, consistent across all controllers: %s\n",
              static_cast<unsigned long long>(sim.chain_height()),
              sim.chains_consistent() ? "yes" : "NO");

  // 5. Traceability: find the block that recorded switch 0's flow rule.
  const auto& chain = sim.network().controller(0).blockchain();
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      if (tx.switch_id() == 0) {
        std::printf("switch 0's flow update is recorded in block %llu (tx %s...)\n",
                    static_cast<unsigned long long>(h),
                    crypto::short_hex(tx.id()).c_str());
        return 0;
      }
    }
  }
  return 0;
}
