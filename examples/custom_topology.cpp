// Deploying Curb on your own topology: build a metro edge network from
// scratch with the net::Topology API, tune the OP() constraints, and watch
// how the assignment reacts — including solving reassignment with the two
// OP objectives (TCR vs LCR) directly through the curb::opt API.

#include <cstdio>

#include "curb/core/simulation.hpp"
#include "curb/opt/cap.hpp"

int main() {
  using namespace curb;

  // A nine-site metro ring with two data-center controller sites plus four
  // micro-edge controllers co-located with aggregation switches.
  net::Topology metro;
  const auto dc1 = metro.add_node("dc-north", net::NodeKind::kController, {52.54, 13.35});
  const auto dc2 = metro.add_node("dc-south", net::NodeKind::kController, {52.45, 13.45});
  const auto e1 = metro.add_node("edge-1", net::NodeKind::kController, {52.52, 13.30});
  const auto e2 = metro.add_node("edge-2", net::NodeKind::kController, {52.50, 13.50});
  const auto e3 = metro.add_node("edge-3", net::NodeKind::kController, {52.47, 13.33});
  const auto e4 = metro.add_node("edge-4", net::NodeKind::kController, {52.55, 13.44});
  std::vector<net::NodeId> rings;
  for (int i = 0; i < 8; ++i) {
    rings.push_back(metro.add_node("agg-" + std::to_string(i), net::NodeKind::kSwitch,
                                   {52.44 + 0.015 * i, 13.28 + 0.025 * i}));
  }
  for (std::size_t i = 0; i < rings.size(); ++i) {
    metro.add_link(rings[i], rings[(i + 1) % rings.size()]);
  }
  metro.add_link(dc1, rings[0]);
  metro.add_link(dc2, rings[4]);
  metro.add_link(e1, rings[1]);
  metro.add_link(e2, rings[3]);
  metro.add_link(e3, rings[5]);
  metro.add_link(e4, rings[7]);

  core::CurbOptions options;
  options.f = 1;                      // groups of 4 out of 6 controllers
  options.controller_capacity = 8.0;  // micro-edges are small
  core::CurbSimulation sim{metro, options};

  const auto& state = sim.network().genesis_state();
  std::printf("metro deployment: %zu groups over 6 controllers\n", state.groups().size());
  for (const auto& g : state.groups()) {
    std::printf("  group %u: leader ctl-%u, %zu switches\n", g.id, g.leader,
                g.switches.size());
  }

  const core::RoundMetrics m = sim.run_packet_in_round();
  std::printf("round: %zu/%zu served, %.1f ms mean latency\n\n", m.accepted, m.issued,
              m.mean_latency_ms);

  // Direct OP() usage: compare the TCR and LCR reassignment objectives when
  // controller "edge-2" (id 3) is taken offline for maintenance.
  opt::CapInstance inst = sim.network().build_cap_instance({3});
  const opt::Assignment before = state.assignment();
  const auto tcr = opt::solve_cap(inst, opt::CapObjective::kTrivial, &before);
  const auto lcr = opt::solve_cap(inst, opt::CapObjective::kLeastMovement, &before);
  if (tcr.feasible && lcr.feasible) {
    std::printf("maintenance reassignment without ctl-3:\n");
    std::printf("  TCR: %zu controllers used, PDL %.1f%% (solve %.1f ms)\n",
                tcr.assignment.controllers_used(),
                100.0 * opt::Assignment::pdl(before, tcr.assignment),
                tcr.stats.wall_time_ms);
    std::printf("  LCR: %zu controllers used, PDL %.1f%% (solve %.1f ms)\n",
                lcr.assignment.controllers_used(),
                100.0 * opt::Assignment::pdl(before, lcr.assignment),
                lcr.stats.wall_time_ms);
  } else {
    std::printf("maintenance reassignment infeasible (too few controllers)\n");
  }
  return 0;
}
