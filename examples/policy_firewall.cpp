// Northbound API scenario: a security application pushes firewall policies
// into the Curb control plane. Policy updates go through the same
// consensus + blockchain pipeline as flow rules, so no single compromised
// controller can sneak a policy in or suppress one — and every policy
// decision is auditable on-chain.

#include <cstdio>

#include "curb/core/simulation.hpp"

int main() {
  using namespace curb;

  core::CurbOptions options;
  options.f = 1;
  options.max_cs_delay_ms = 14.0;
  options.controller_capacity = 12;
  core::CurbSimulation sim{options};
  auto& net = sim.network();

  auto settle = [&] {
    net.simulator().run_until(net.simulator().now() + sim::SimTime::seconds(3));
  };
  auto try_flow = [&](std::uint32_t src, std::uint32_t dst) {
    const std::size_t before = net.switch_node(dst).delivered_packets().size();
    net.switch_node(src).reset_flow_table();
    net.switch_node(src).host_send(dst);
    settle();
    return net.switch_node(dst).delivered_packets().size() > before;
  };

  std::printf("1. baseline: host 2 -> host 9 ... %s\n",
              try_flow(2, 9) ? "delivered" : "BLOCKED");

  // The security app quarantines host 2 (deny everything it sends) via the
  // northbound API of controller 5.
  std::printf("2. app submits quarantine policy for host 2 via ctl-5\n");
  net.controller(5).submit_policy(
      {2, sdn::PolicyRule::kAny, sdn::PolicyRule::Action::kDeny, 50});
  settle();

  std::printf("3. host 2 -> host 9 ... %s\n", try_flow(2, 9) ? "delivered" : "BLOCKED");
  std::printf("   host 2 -> host 7 ... %s\n", try_flow(2, 7) ? "delivered" : "BLOCKED");
  std::printf("   host 4 -> host 9 ... %s (others unaffected)\n",
              try_flow(4, 9) ? "delivered" : "BLOCKED");

  // A higher-priority carve-out: host 2 may still reach the monitoring
  // host 0.
  std::printf("4. app adds carve-out: host 2 -> host 0 allowed (priority 60)\n");
  net.controller(5).submit_policy({2, 0, sdn::PolicyRule::Action::kAllow, 60});
  settle();
  std::printf("   host 2 -> host 0 ... %s\n", try_flow(2, 0) ? "delivered" : "BLOCKED");

  // Audit trail: every policy decision is a blockchain transaction.
  const auto& chain = net.controller(0).blockchain();
  std::printf("\naudit: policy transactions on the chain:\n");
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      if (tx.type() != chain::RequestType::kPolicyUpdate) continue;
      std::printf("  block %llu: policy update (tx %s...)\n",
                  static_cast<unsigned long long>(h), crypto::short_hex(tx.id()).c_str());
    }
  }
  std::printf("all %zu controllers hold the same policy table: ",
              net.num_controllers());
  bool same = true;
  for (std::uint32_t c = 1; c < net.num_controllers(); ++c) {
    same &= net.controller(c).policy_table() == net.controller(0).policy_table();
  }
  std::printf("%s\n", same ? "yes" : "NO");
  return 0;
}
