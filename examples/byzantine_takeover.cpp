// Byzantine takeover attempt: a compromised controller first feeds switches
// corrupted flow configs, then goes silent. Demonstrates the full defense
// loop of the paper:
//   1. s-agents cross-check REPLYs and detect the conflicting config,
//   2. switches raise RE_ASSIGNMENT accusing the liar,
//   3. the honest majority re-runs OP(), commits the new assignment to the
//      blockchain, and the liar is expelled from every controller group,
//   4. service continues (latency/throughput recover).

#include <algorithm>
#include <cstdio>

#include "curb/core/simulation.hpp"

int main() {
  using namespace curb;

  core::CurbOptions options;
  options.f = 1;
  options.max_cs_delay_ms = 14.0;
  options.controller_capacity = 12;
  options.max_silent_rounds = 2;
  core::CurbSimulation sim{options};

  // Choose the attacker: a non-leader member of switch 0's group.
  const auto& genesis = sim.network().genesis_state();
  const auto& group = genesis.group(genesis.group_of_switch(0));
  const std::uint32_t attacker =
      group.members[0] == group.leader ? group.members[1] : group.members[0];
  std::printf("attacker: ctl-%u (member of switch 0's group {", attacker);
  for (const auto m : group.members) std::printf(" %u", m);
  std::printf(" }, leader ctl-%u)\n\n", group.leader);

  std::printf("%-8s%-22s%-12s%-14s%-10s\n", "round", "attacker behaviour", "served",
              "latency_ms", "expelled");
  for (int round = 1; round <= 8; ++round) {
    const char* behaviour = "honest";
    if (round == 2) {
      sim.network().controller(attacker).set_bad_config(true);
      behaviour = "corrupting configs";
    } else if (round > 2 && round < 5) {
      behaviour = "corrupting configs";
    } else if (round == 5) {
      sim.network().controller(attacker).set_bad_config(false);
      sim.network().controller(attacker).set_behavior(bft::Behavior::kSilent);
      behaviour = "silent";
    } else if (round > 5) {
      behaviour = "silent";
    }

    const core::RoundMetrics m = sim.run_packet_in_round();

    bool expelled = false;
    for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
      if (c == attacker) continue;
      const auto& byz = sim.network().controller(c).state().byzantine();
      expelled |= std::find(byz.begin(), byz.end(), attacker) != byz.end();
    }
    std::printf("%-8d%-22s%zu/%-10zu%-14.1f%-10s\n", round, behaviour, m.accepted,
                m.issued, m.mean_latency_ms, expelled ? "yes" : "no");
  }

  // The accusation and the reassignment are on the chain — immutable
  // evidence of both the attack response and the new assignment.
  const auto& chain = sim.network().controller(0).blockchain();
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      if (tx.type() != chain::RequestType::kReassign) continue;
      const auto state = core::AssignmentState::deserialize(tx.config());
      if (std::find(state.byzantine().begin(), state.byzantine().end(), attacker) !=
          state.byzantine().end()) {
        std::printf("\nblock %llu records the reassignment that expelled ctl-%u\n",
                    static_cast<unsigned long long>(h), attacker);
        std::printf("switches that accused it:");
        for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
          if (sim.network().switch_node(sw).reported_byzantine().contains(attacker)) {
            std::printf(" sw-%u", sw);
          }
        }
        std::printf("\n");
        return 0;
      }
    }
  }
  std::printf("\n(attacker was not expelled within 8 rounds)\n");
  return 0;
}
