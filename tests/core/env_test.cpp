// apply_env_to_options must reject malformed CURB_* values with an error
// message that names the variable and the expected shape — a silent fallback
// to defaults would make a typo'd CI pipeline measure the wrong thing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "curb/core/env.hpp"
#include "curb/core/options.hpp"

namespace curb::core {
namespace {

// Scoped setenv: restores (or unsets) every touched variable on destruction
// so tests cannot leak state into each other or the surrounding process.
class ScopedEnv {
 public:
  void set(const char* name, const char* value) {
    save(name);
    ::setenv(name, value, 1);
  }
  void unset(const char* name) {
    save(name);
    ::unsetenv(name);
  }
  ~ScopedEnv() {
    for (const auto& [name, old] : saved_) {
      if (old.has_value()) {
        ::setenv(name.c_str(), old->c_str(), 1);
      } else {
        ::unsetenv(name.c_str());
      }
    }
  }

 private:
  void save(const char* name) {
    for (const auto& [seen, _] : saved_) {
      if (seen == name) return;  // keep the oldest value
    }
    const char* current = std::getenv(name);
    saved_.emplace_back(name, current != nullptr
                                  ? std::optional<std::string>{current}
                                  : std::nullopt);
  }
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

std::string expect_rejected(ScopedEnv& env, const char* name, const char* value) {
  env.set(name, value);
  CurbOptions opts;
  std::string error;
  EXPECT_FALSE(apply_env_to_options(opts, &error))
      << name << "='" << value << "' should not parse";
  EXPECT_NE(error.find(name), std::string::npos)
      << "error should name the variable: " << error;
  env.unset(name);
  return error;
}

TEST(EnvTest, CleanEnvironmentApplies) {
  ScopedEnv env;
  for (const EnvVar& var : curb_env_vars()) env.unset(var.name);
  CurbOptions opts;
  std::string error;
  EXPECT_TRUE(apply_env_to_options(opts, &error)) << error;
  EXPECT_TRUE(error.empty());
}

TEST(EnvTest, RejectsUnknownSolver) {
  ScopedEnv env;
  const std::string error = expect_rejected(env, "CURB_SOLVER", "quantum");
  EXPECT_NE(error.find("dense|sparse|heuristic"), std::string::npos) << error;
}

TEST(EnvTest, RejectsMalformedFaultSeed) {
  ScopedEnv env;
  expect_rejected(env, "CURB_FAULT_SEED", "not-a-number");
  expect_rejected(env, "CURB_FAULT_SEED", "12abc");
  expect_rejected(env, "CURB_FAULT_SEED", "-7");
}

TEST(EnvTest, RejectsNonPositiveTsWindow) {
  ScopedEnv env;
  expect_rejected(env, "CURB_TS_WINDOW", "0");
  expect_rejected(env, "CURB_TS_WINDOW", "-50");
  expect_rejected(env, "CURB_TS_WINDOW", "fast");
  expect_rejected(env, "CURB_TS_WINDOW", "50ms");  // units belong to the var
}

TEST(EnvTest, RejectsNonNumericOrZeroRetention) {
  ScopedEnv env;
  expect_rejected(env, "CURB_TS_RETENTION", "many");
  expect_rejected(env, "CURB_TS_RETENTION", "0");
  expect_rejected(env, "CURB_TS_RETENTION", "-3");
  expect_rejected(env, "CURB_TS_RETENTION", "4.5");
}

TEST(EnvTest, RejectsEmptyOrMalformedSloRule) {
  ScopedEnv env;
  // ";;" survives env_get's empty-string filter but contains no rule.
  expect_rejected(env, "CURB_SLO", ";;");
  expect_rejected(env, "CURB_SLO", "p99(latency) <");
  expect_rejected(env, "CURB_SLO", "nonsense without operators");
}

TEST(EnvTest, AcceptsWellFormedValues) {
  ScopedEnv env;
  for (const EnvVar& var : curb_env_vars()) env.unset(var.name);
  env.set("CURB_SOLVER", "sparse");
  env.set("CURB_FAULT_SEED", "42");
  env.set("CURB_TS_WINDOW", "250");
  env.set("CURB_TS_RETENTION", "16");
  CurbOptions opts;
  std::string error;
  ASSERT_TRUE(apply_env_to_options(opts, &error)) << error;
  EXPECT_EQ(opts.fault_seed, 42u);
  EXPECT_EQ(opts.ts_window, sim::SimTime::millis(250));
  EXPECT_EQ(opts.ts_retention, 16u);
}

TEST(EnvTest, MemAccountVariablesAreDocumented) {
  // The accountant is latched from raw getenv before main (it cannot use this
  // table), but the table is the single source of user documentation — keep
  // the two in sync.
  bool account = false, out = false, folded = false;
  for (const EnvVar& var : curb_env_vars()) {
    account |= std::string{var.name} == "CURB_MEM_ACCOUNT";
    out |= std::string{var.name} == "CURB_MEM_OUT";
    folded |= std::string{var.name} == "CURB_MEM_FOLDED";
  }
  EXPECT_TRUE(account);
  EXPECT_TRUE(out);
  EXPECT_TRUE(folded);
}

}  // namespace
}  // namespace curb::core
