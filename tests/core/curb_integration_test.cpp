#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "curb/core/simulation.hpp"
#include "curb/crypto/sha256.hpp"
#include "curb/crypto/sigcache.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/observatory.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

/// Paper-default options tuned for fast tests: Internet2-scale constraints
/// but fixed OP compute delay for determinism.
CurbOptions test_options() {
  CurbOptions opts;
  opts.max_cs_delay_ms = 10.0;
  opts.controller_capacity = 12.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  return opts;
}

/// A small fast deployment (8 controllers / 10 switches, several groups).
CurbSimulation small_sim(CurbOptions opts = test_options()) {
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  return CurbSimulation{net::random_geo_topology(8, 10, 99), opts};
}

TEST(CurbNetwork, InitializationSatisfiesPaperConstraints) {
  CurbSimulation sim{test_options()};
  const auto& state = sim.network().genesis_state();
  const auto& opts = sim.network().options();
  // [C1.1] every switch governed by >= 3f+1 controllers.
  for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
    EXPECT_GE(state.group(state.group_of_switch(sw)).members.size(), 3 * opts.f + 1);
  }
  // [C1.3] all C2S links within D_c,s.
  for (const auto& g : state.groups()) {
    for (const std::uint32_t sw : g.switches) {
      for (const std::uint32_t c : g.members) {
        EXPECT_LE(sim.network().cs_delay_ms(sw, c), opts.max_cs_delay_ms + 1e-9);
      }
    }
  }
  // [C1.2] capacity respected.
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    EXPECT_LE(state.assignment().switches_of(c).size(),
              static_cast<std::size_t>(opts.controller_capacity));
  }
  // finalCom has 3f+1 members; leader has the highest id.
  EXPECT_EQ(state.final_committee().size(), 3 * opts.f + 1);
  EXPECT_EQ(state.final_leader(), state.final_committee().back());
}

TEST(CurbNetwork, GenesisBlockSharedByAllControllers) {
  CurbSimulation sim{test_options()};
  const auto genesis_hash = sim.network().genesis_block().hash();
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    EXPECT_EQ(sim.network().controller(c).blockchain().genesis().hash(), genesis_hash);
  }
  EXPECT_TRUE(sim.chains_consistent());
}

TEST(CurbIntegration, PacketInRoundAllAccepted) {
  CurbSimulation sim{test_options()};
  const RoundMetrics m = sim.run_packet_in_round();
  // 34 ingress PKT-INs plus the egress-switch PKT-INs for arriving packets.
  EXPECT_GE(m.issued, sim.network().num_switches());
  EXPECT_EQ(m.accepted, m.issued);
  EXPECT_GT(m.mean_latency_ms, 0.0);
  EXPECT_LT(m.mean_latency_ms, 500.0);  // all within the request timeout
  EXPECT_TRUE(sim.chains_consistent());
  EXPECT_GT(sim.chain_height(), 0u);
}

TEST(CurbIntegration, PacketsDeliveredEndToEnd) {
  CurbSimulation sim{test_options()};
  (void)sim.run_packet_in_round();
  // Every packet sent in the round must eventually reach its destination
  // host (flow rules installed at ingress + egress, PACKET_OUT released).
  std::size_t delivered = 0;
  for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
    delivered += sim.network().switch_node(sw).delivered_packets().size();
  }
  EXPECT_EQ(delivered, sim.network().num_switches());
}

TEST(CurbIntegration, FlowRulesRecordedOnChain) {
  CurbSimulation sim{test_options()};
  (void)sim.run_packet_in_round();
  const auto& chain = sim.network().controller(0).blockchain();
  EXPECT_GT(chain.total_transactions(), sim.network().num_switches());
  // Every accepted request must correspond to an on-chain transaction.
  std::size_t on_chain_pktin = 0;
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      if (tx.type() == chain::RequestType::kPacketIn) ++on_chain_pktin;
    }
  }
  EXPECT_GE(on_chain_pktin, sim.network().num_switches());
}

TEST(CurbIntegration, MultipleRoundsStayConsistent) {
  auto sim = small_sim();
  for (int round = 0; round < 3; ++round) {
    const RoundMetrics m = sim.run_packet_in_round();
    EXPECT_EQ(m.accepted, m.issued) << "round " << round;
  }
  EXPECT_TRUE(sim.chains_consistent());
}

TEST(CurbIntegration, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto sim = small_sim();
    (void)sim.run_packet_in_round();
    (void)sim.run_packet_in_round();
    return std::make_pair(sim.total_messages(), sim.chain_height());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CurbIntegration, ReassignmentProbeRoundCompletes) {
  CurbOptions opts = test_options();
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.reass_always_solve = true;
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  const RoundMetrics m = sim.run_reassignment_round(3);
  EXPECT_EQ(m.issued, 3u);
  EXPECT_EQ(m.accepted, m.issued);
  EXPECT_TRUE(sim.chains_consistent());
  EXPECT_GT(sim.chain_height(), 0u);
}

TEST(CurbIntegration, ConcurrentConflictingAccusationsEventuallyResolve) {
  // Three switches accuse three DIFFERENT controllers at once. The
  // reassignments race, but the monotone byzantine set guarantees every
  // accusation is eventually absorbed (paper exp. 2 removes three byzantine
  // nodes in one round; across groups it may take a few chained blocks).
  auto sim = small_sim();
  const auto& state = sim.network().genesis_state();
  // Accuse three distinct non-leader controllers.
  std::vector<std::uint32_t> accused;
  for (std::uint32_t c = 0; c < sim.network().num_controllers() && accused.size() < 3;
       ++c) {
    bool is_leader = false;
    for (const auto& g : state.groups()) is_leader |= g.leader == c;
    if (!is_leader) accused.push_back(c);
  }
  ASSERT_EQ(accused.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    sim.network().switch_node(i).request_reassignment({accused[i]});
  }
  sim.network().simulator().run_until(sim.network().simulator().now() +
                                      sim::SimTime::seconds(10));

  const auto& final_state = sim.network().controller(0).state();
  for (const std::uint32_t a : accused) {
    EXPECT_TRUE(std::find(final_state.byzantine().begin(), final_state.byzantine().end(),
                          a) != final_state.byzantine().end())
        << "controller " << a << " not excluded";
    EXPECT_FALSE(final_state.assignment().controller_used(a));
  }
  EXPECT_TRUE(sim.chains_consistent());
}

TEST(CurbByzantine, BadConfigControllerDetectedAndRemoved) {
  auto sim = small_sim();
  // Pick a controller serving switch 0 that is NOT the group leader.
  const auto& state = sim.network().genesis_state();
  const auto& group = state.group(state.group_of_switch(0));
  const std::uint32_t victim =
      group.members[0] == group.leader ? group.members[1] : group.members[0];
  sim.network().controller(victim).set_bad_config(true);

  (void)sim.run_packet_in_round();
  (void)sim.run_packet_in_round();

  // Some switch reported the liar...
  bool reported = false;
  for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
    reported |= sim.network().switch_node(sw).reported_byzantine().contains(victim);
  }
  EXPECT_TRUE(reported);
  // ...and the committed reassignment excludes it from every group.
  bool reassigned = false;
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    if (c == victim) continue;
    const auto& cur = sim.network().controller(c).state();
    if (cur.epoch() > 0) {
      reassigned = true;
      EXPECT_FALSE(cur.assignment().controller_used(victim));
      EXPECT_TRUE(std::find(cur.byzantine().begin(), cur.byzantine().end(), victim) !=
                  cur.byzantine().end());
    }
  }
  EXPECT_TRUE(reassigned);
}

TEST(CurbByzantine, SilentFollowerDetectedAndRemoved) {
  auto sim = small_sim();
  const auto& state = sim.network().genesis_state();
  const auto& group = state.group(state.group_of_switch(0));
  const std::uint32_t victim =
      group.members[0] == group.leader ? group.members[1] : group.members[0];
  sim.network().controller(victim).set_behavior(bft::Behavior::kSilent);

  (void)sim.run_packet_in_round();
  (void)sim.run_packet_in_round();
  (void)sim.run_packet_in_round();

  bool excluded = false;
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    if (c == victim) continue;
    const auto& cur = sim.network().controller(c).state();
    if (cur.epoch() > 0 && !cur.assignment().controller_used(victim)) excluded = true;
  }
  EXPECT_TRUE(excluded);
  // The network still serves requests after the reassignment.
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_GT(m.accepted, 0u);
}

TEST(CurbByzantine, SilentLeaderRecovered) {
  auto sim = small_sim();
  const auto& state = sim.network().genesis_state();
  const std::uint32_t victim = state.group(state.group_of_switch(0)).leader;
  sim.network().controller(victim).set_behavior(bft::Behavior::kSilent);

  for (int round = 0; round < 4; ++round) (void)sim.run_packet_in_round();

  // Requests to the victim's group eventually succeed again (view change or
  // reassignment recovered the group).
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_EQ(m.accepted, m.issued);
}

TEST(CurbByzantine, LazyControllerFlaggedAfterWindow) {
  CurbOptions opts = test_options();
  opts.max_lazy_rounds = 3;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};

  const auto& state = sim.network().genesis_state();
  const auto& group = state.group(state.group_of_switch(0));
  const std::uint32_t victim =
      group.members[0] == group.leader ? group.members[1] : group.members[0];
  sim.network().controller(victim).set_behavior(bft::Behavior::kLazy);
  sim.network().controller(victim).set_lazy_range(250_ms, 400_ms);

  for (int round = 0; round < 6; ++round) (void)sim.run_packet_in_round();

  bool reported = false;
  for (std::uint32_t sw = 0; sw < sim.network().num_switches(); ++sw) {
    reported |= sim.network().switch_node(sw).reported_byzantine().contains(victim);
  }
  EXPECT_TRUE(reported);
}

TEST(CurbModes, ParallelBeatsNonParallelThroughput) {
  CurbOptions parallel = test_options();
  parallel.parallel = true;
  CurbOptions serial = test_options();
  serial.parallel = false;

  CurbSimulation p{parallel};
  CurbSimulation s{serial};
  // Average a few rounds each.
  double tps_p = 0.0;
  double tps_s = 0.0;
  for (int i = 0; i < 2; ++i) tps_p += p.run_packet_in_round().throughput_tps;
  for (int i = 0; i < 2; ++i) tps_s += s.run_packet_in_round().throughput_tps;
  EXPECT_GT(tps_p, tps_s);
}

TEST(CurbScalability, MessagesPerRoundGrowLinearly) {
  // Theorem 1: message complexity O(N). Doubling network size should scale
  // messages by ~2x, far below the ~4x a flat O(N^2) protocol would show.
  CurbOptions opts;
  opts.controller_capacity = 10.0;
  opts.op_time_mode = OpTimeMode::kFixed;

  CurbSimulation small{net::random_geo_topology(8, 16, 7), opts};
  CurbSimulation big{net::random_geo_topology(16, 32, 7), opts};
  const auto m_small = small.run_packet_in_round();
  const auto m_big = big.run_packet_in_round();
  ASSERT_GT(m_small.messages, 0u);
  const double ratio =
      static_cast<double>(m_big.messages) / static_cast<double>(m_small.messages);
  EXPECT_LT(ratio, 3.2);  // linear-ish (2x size -> ~2x messages, slack for overlap)
  EXPECT_GT(ratio, 1.2);
}

TEST(CurbIntegration, SignedTransactionsVerify) {
  // With signature verification on, every transaction carries a real ECDSA
  // signature from its handling leader, and the chain verifies end to end.
  CurbOptions opts = test_options();
  opts.verify_signatures = true;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  CurbSimulation sim{net::random_geo_topology(8, 6, 99), opts};
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_EQ(m.accepted, m.issued);
  const auto& chain = sim.network().controller(0).blockchain();
  std::size_t verified = 0;
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      ASSERT_TRUE(tx.signature().has_value());
      EXPECT_TRUE(
          tx.verify(sim.network().controller(tx.controller_id()).public_key()));
      // And a wrong key must not verify.
      const auto other = (tx.controller_id() + 1) % sim.network().num_controllers();
      EXPECT_FALSE(tx.verify(sim.network().controller(other).public_key()));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

TEST(CurbIntegration, MerkleProofForServedRequest) {
  // Verifiability: a switch (or auditor) can check any flow update against
  // just the block header via a Merkle inclusion proof.
  auto sim = small_sim();
  (void)sim.run_packet_in_round();
  const auto& chain = sim.network().controller(0).blockchain();
  ASSERT_GT(chain.height(), 0u);
  const auto& block = chain.at(1);
  ASSERT_FALSE(block.transactions().empty());
  const auto proof = block.merkle_proof(0);
  EXPECT_TRUE(
      chain::Block::verify_inclusion(block.transactions()[0], proof, block.header()));
}

TEST(CurbIntegration, HotstuffEngineServesRounds) {
  // The paper notes Curb works with other BFT engines (Tendermint,
  // HotStuff); swap in the linear-communication engine and re-check the
  // round invariants plus the message saving.
  CurbOptions pbft_opts = test_options();
  pbft_opts.controller_capacity = 8.0;
  pbft_opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  CurbOptions hs_opts = pbft_opts;
  hs_opts.consensus_engine = bft::ConsensusEngine::kHotstuff;

  const auto topo = net::random_geo_topology(8, 10, 99);
  CurbSimulation pbft_sim{topo, pbft_opts};
  CurbSimulation hs_sim{topo, hs_opts};

  const RoundMetrics pm = pbft_sim.run_packet_in_round();
  const RoundMetrics hm = hs_sim.run_packet_in_round();
  EXPECT_EQ(hm.accepted, hm.issued);
  EXPECT_TRUE(hs_sim.chains_consistent());
  // Same workload, fewer consensus messages with leader-aggregated voting.
  EXPECT_LT(hm.messages, pm.messages);
}

TEST(CurbIntegration, HotstuffSurvivesSilentFollower) {
  CurbOptions opts = test_options();
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.consensus_engine = bft::ConsensusEngine::kHotstuff;
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  const auto& state = sim.network().genesis_state();
  const auto& group = state.group(state.group_of_switch(0));
  const std::uint32_t victim =
      group.members[0] == group.leader ? group.members[1] : group.members[0];
  sim.network().controller(victim).set_behavior(bft::Behavior::kSilent);
  for (int round = 0; round < 3; ++round) (void)sim.run_packet_in_round();
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_GT(m.accepted, 0u);
  EXPECT_TRUE(sim.chains_consistent());
}

TEST(CurbNorthbound, PolicyDenyBlocksTrafficEverywhere) {
  auto sim = small_sim();
  // Baseline: host 0 -> host 3 flows.
  sim.network().switch_node(0).host_send(3);
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);
  const std::size_t delivered_before =
      sim.network().switch_node(3).delivered_packets().size();
  EXPECT_EQ(delivered_before, 1u);

  // An application denies 0 -> 3 via ANY controller's northbound API.
  sdn::PolicyRule rule{0, 3, sdn::PolicyRule::Action::kDeny, 10};
  sim.network().controller(2).submit_policy(rule);
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);

  // Every controller's replicated policy table agrees.
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    EXPECT_FALSE(sim.network().controller(c).policy_table().allows(0, 3)) << c;
    EXPECT_TRUE(sim.network().controller(c).policy_table().allows(3, 0)) << c;
  }
  // And the update is on the chain.
  bool on_chain = false;
  const auto& chain_db = sim.network().controller(0).blockchain();
  for (std::uint64_t h = 1; h <= chain_db.height(); ++h) {
    for (const auto& tx : chain_db.at(h).transactions()) {
      on_chain |= tx.type() == chain::RequestType::kPolicyUpdate;
    }
  }
  EXPECT_TRUE(on_chain);

  // New flow setups for the denied pair get a drop rule, not a path.
  sim.network().switch_node(0).reset_flow_table();
  sim.network().switch_node(0).host_send(3);
  sim.network().switch_node(0).host_send(4);  // unrelated pair still works
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);
  EXPECT_EQ(sim.network().switch_node(3).delivered_packets().size(), delivered_before);
  EXPECT_EQ(sim.network().switch_node(4).delivered_packets().size(), 1u);
}

TEST(CurbNorthbound, PolicyRemoveRestoresTraffic) {
  auto sim = small_sim();
  const sdn::PolicyRule rule{0, 3, sdn::PolicyRule::Action::kDeny, 10};
  sim.network().controller(0).submit_policy(rule);
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);
  ASSERT_FALSE(sim.network().controller(1).policy_table().allows(0, 3));

  sim.network().controller(0).submit_policy(rule, Controller::PolicyOp::kRemove);
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);
  for (std::uint32_t c = 0; c < sim.network().num_controllers(); ++c) {
    EXPECT_TRUE(sim.network().controller(c).policy_table().allows(0, 3)) << c;
  }
  sim.network().switch_node(0).host_send(3);
  sim.network().simulator().run_until(sim.network().simulator().now() + 3_s);
  EXPECT_EQ(sim.network().switch_node(3).delivered_packets().size(), 1u);
}

TEST(CurbObservability, DisabledByDefault) {
  CurbSimulation sim{test_options()};
  EXPECT_EQ(sim.network().observatory(), nullptr);
  // Instrumented paths must still work with the observatory off.
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_EQ(m.accepted, m.issued);
}

TEST(CurbObservability, PacketInRoundProducesProtocolSpanTree) {
  CurbOptions opts = test_options();
  opts.observability = true;
  CurbSimulation sim{opts};
  ASSERT_NE(sim.network().observatory(), nullptr);
  (void)sim.run_packet_in_round();

  const obs::Tracer& tracer = sim.network().observatory()->tracer;
  std::map<std::string, std::size_t> by_name;
  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& s : tracer.spans()) {
    ++by_name[s.name];
    by_id[s.id] = &s;
  }
  // Every protocol stage of the Curb pipeline shows up at least once.
  for (const char* stage :
       {"pkt_in", "intra_pbft", "intra_pbft.pre_prepare", "intra_pbft.prepare",
        "intra_pbft.commit", "agree", "final_pbft", "final_pbft.prepare",
        "final_pbft.commit", "block_commit", "reply_quorum"}) {
    EXPECT_GT(by_name[stage], 0u) << "missing protocol stage span: " << stage;
  }
  // Phase spans nest under their slot span on the same replica track.
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name != "intra_pbft.prepare" && s.name != "intra_pbft.commit") continue;
    ASSERT_NE(s.parent, 0u) << s.name << " must not be a root span";
    const obs::SpanRecord& parent = *by_id.at(s.parent);
    EXPECT_EQ(parent.name, "intra_pbft");
    EXPECT_EQ(parent.track, s.track);
    EXPECT_GE(s.start, parent.start);
  }
  // reply_quorum hangs directly off the switch's pkt_in request span.
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name != "reply_quorum") continue;
    ASSERT_NE(s.parent, 0u);
    EXPECT_EQ(by_id.at(s.parent)->name, "pkt_in");
    EXPECT_EQ(by_id.at(s.parent)->track, s.track);
  }
  // Cross-controller keyed stages closed exactly once (nothing left open).
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "agree" || s.name == "block_commit") {
      EXPECT_FALSE(s.open) << s.name << " span never closed";
    }
  }
  // Tracks exist for switches, controllers, and the shared protocol rail.
  std::set<std::string> tracks{tracer.tracks().begin(), tracer.tracks().end()};
  EXPECT_TRUE(tracks.contains("protocol"));
  EXPECT_TRUE(tracks.contains("sw-0"));
  EXPECT_TRUE(tracks.contains("ctrl-0"));
}

TEST(CurbObservability, MetricsCoverHotPaths) {
  CurbOptions opts = test_options();
  opts.observability = true;
  CurbSimulation sim{opts};
  const RoundMetrics m = sim.run_packet_in_round();
  sim.network().snapshot_runtime_metrics();

  obs::MetricsRegistry& reg = sim.network().observatory()->metrics;
  EXPECT_EQ(reg.counter("core.rounds").value(), 1u);
  EXPECT_EQ(reg.histogram("core.request_latency_us").count(), m.accepted);
  EXPECT_GT(reg.counter("net.messages", {{"category", "REPLY"}}).value(), 0u);
  EXPECT_GT(reg.counter("net.bytes", {{"category", "REPLY"}}).value(), 0u);
  EXPECT_GT(reg.histogram("net.delay_us", {{"category", "REPLY"}}).count(), 0u);
  EXPECT_GT(reg.gauge("sim.events_executed").value(), 0.0);
  EXPECT_GT(reg.gauge("sim.queue_high_water").value(), 0.0);
  // Per-controller chain metrics follow the shared chain height.
  EXPECT_EQ(reg.gauge("chain.height", {{"owner", "ctrl-0"}}).value(),
            static_cast<double>(sim.chain_height()));
}

TEST(CurbObservability, TraceByteIdenticalAcrossIdenticalRuns) {
  auto run_once = [] {
    CurbOptions opts = test_options();
    opts.observability = true;
    auto sim = small_sim(opts);
    (void)sim.run_packet_in_round();
    (void)sim.run_packet_in_round();
    sim.network().snapshot_runtime_metrics();
    std::stringstream trace;
    std::stringstream jsonl;
    std::stringstream metrics;
    obs::write_chrome_trace(sim.network().observatory()->tracer, trace);
    obs::write_spans_jsonl(sim.network().observatory()->tracer, jsonl);
    obs::write_metrics_json(sim.network().observatory()->metrics, metrics);
    return trace.str() + "\x1e" + jsonl.str() + "\x1e" + metrics.str();
  };
  const std::string first = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_once());
}

TEST(CurbObservability, ViewChangeLeavesNoOpenSlotSpans) {
  CurbOptions opts = test_options();
  opts.observability = true;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  const auto& state = sim.network().genesis_state();
  const std::uint32_t victim = state.group(state.group_of_switch(0)).leader;
  sim.network().controller(victim).set_behavior(bft::Behavior::kSilent);
  for (int round = 0; round < 4; ++round) (void)sim.run_packet_in_round();

  const obs::Tracer& tracer = sim.network().observatory()->tracer;
  bool saw_view_change = false;
  for (const obs::SpanRecord& s : tracer.spans()) {
    saw_view_change |= s.name == "intra_pbft.view_change";
    // Slot/phase spans on the silenced group must have been reset, not
    // leaked open, when the view changed.
    if (s.name == "intra_pbft.prepare" || s.name == "intra_pbft.commit") {
      EXPECT_FALSE(s.open) << "phase span leaked open across view change";
    }
  }
  EXPECT_TRUE(saw_view_change);
  EXPECT_GT(sim.network()
                .observatory()
                ->metrics.counter("bft.view_changes", {{"layer", "intra_pbft"}})
                .value(),
            0u);
}

TEST(CurbSimulationApi, ActiveSwitchSubsetting) {
  CurbSimulation sim{test_options()};
  sim.set_active_switches(4);
  EXPECT_EQ(sim.active_switches(), 4u);
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_GE(m.issued, 4u);
  EXPECT_LE(m.issued, 8u);  // 4 ingress + at most 4 egress PKT-INs
  sim.set_active_switches(9999);
  EXPECT_EQ(sim.active_switches(), sim.network().num_switches());
}

/// Restore the process-wide signature cache to its default state no matter
/// how the test exits — other suites in this binary share the singleton.
struct SigCacheGuard {
  ~SigCacheGuard() {
    crypto::SigCache::instance().set_enabled(true);
    crypto::SigCache::instance().clear();
  }
};

TEST(CurbIntegration, SigCacheOnOffRunsAreByteIdentical) {
  // The cache only short-circuits a pure function: a hit returns exactly
  // what re-verification would. Same-seed runs with the cache on vs. off
  // must therefore be byte-identical in every simulation-visible output —
  // trace spans, chain state, and round metrics. (Runtime *gauges* differ
  // by design — sigcache hit/miss counters are host-side telemetry — so the
  // comparison covers spans, not the metrics registry; see DESIGN.md §15.)
  const SigCacheGuard guard;
  auto run_once = [](bool cache_on) {
    crypto::SigCache::instance().set_enabled(cache_on);
    crypto::SigCache::instance().clear();
    CurbOptions opts = test_options();
    opts.verify_signatures = true;
    opts.observability = true;
    opts.controller_capacity = 8.0;
    opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
    CurbSimulation sim{net::random_geo_topology(8, 6, 99), opts};
    const RoundMetrics m = sim.run_packet_in_round();
    std::stringstream out;
    obs::write_spans_jsonl(sim.network().observatory()->tracer, out);
    out << "\x1e" << m.issued << ',' << m.accepted << ',' << m.messages << ','
        << m.mean_latency_ms << ',' << m.round_duration_ms;
    const auto& chain = sim.network().controller(0).blockchain();
    out << "\x1e" << crypto::to_hex(chain.at(chain.height()).hash());
    return out.str();
  };
  const std::string with_cache = run_once(true);
  const std::string without_cache = run_once(false);
  EXPECT_EQ(with_cache, without_cache);
  // And the cached run actually exercised the cache.
  crypto::SigCache::instance().set_enabled(true);
  crypto::SigCache::instance().clear();
  const auto before = crypto::SigCache::instance().stats();
  (void)run_once(true);
  const auto after = crypto::SigCache::instance().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_GT(after.misses, before.misses);
}

TEST(CurbIntegration, CorruptFaultsNeverPoisonTheSignatureCache) {
  // Corruption flips payload bytes after signing; the corrupted tuple's
  // cache key (keyed by digest) differs from the pristine one, so a
  // tampered message can neither reuse a pristine verdict nor poison it.
  // The run must complete with consistent chains, and every committed
  // transaction must still verify through the cache afterwards.
  const SigCacheGuard guard;
  crypto::SigCache::instance().set_enabled(true);
  crypto::SigCache::instance().clear();
  CurbOptions opts = test_options();
  opts.verify_signatures = true;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.fault_spec = "corrupt(p=0.3,cat=AGREE)";
  opts.fault_seed = 7;
  CurbSimulation sim{net::random_geo_topology(8, 6, 99), opts};
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_GT(m.issued, 0u);
  const auto& chain = sim.network().controller(0).blockchain();
  std::size_t verified = 0;
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions()) {
      ASSERT_TRUE(tx.signature().has_value());
      EXPECT_TRUE(
          tx.verify(sim.network().controller(tx.controller_id()).public_key()));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
  // All controllers agree on the committed prefix despite the corruption.
  const std::uint64_t height = chain.height();
  for (std::uint32_t c = 1; c < sim.network().num_controllers(); ++c) {
    const auto& other = sim.network().controller(c).blockchain();
    const std::uint64_t min_height = std::min(height, other.height());
    EXPECT_EQ(other.at(min_height).hash(), chain.at(min_height).hash());
  }
}

}  // namespace
}  // namespace curb::core
