#include "curb/core/codec.hpp"

#include <gtest/gtest.h>

#include "curb/core/messages.hpp"

namespace curb::core {
namespace {

TEST(Codec, TxListRoundTrip) {
  std::vector<chain::Transaction> txs;
  txs.emplace_back(chain::RequestType::kPacketIn, 1, 2, 3,
                   std::vector<std::uint8_t>{0xaa});
  txs.emplace_back(chain::RequestType::kReassign, 4, 5, 6,
                   std::vector<std::uint8_t>{0xbb, 0xcc});
  const auto bytes = serialize_tx_list(txs);
  const auto restored = deserialize_tx_list(bytes);
  EXPECT_EQ(restored, txs);
}

TEST(Codec, EmptyTxList) {
  EXPECT_TRUE(deserialize_tx_list(serialize_tx_list({})).empty());
}

TEST(Codec, PacketRoundTrip) {
  const sdn::Packet p{7, 9, 1234, 800};
  const auto restored = deserialize_packet(serialize_packet(p));
  EXPECT_EQ(restored, p);
}

TEST(Codec, IdListRoundTrip) {
  const std::vector<std::uint32_t> ids{5, 1, 9, 9};
  EXPECT_EQ(deserialize_id_list(serialize_id_list(ids)), ids);
  EXPECT_TRUE(deserialize_id_list(serialize_id_list({})).empty());
}

TEST(Codec, TruncatedInputThrows) {
  auto bytes = serialize_tx_list({chain::Transaction{}});
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)deserialize_tx_list(bytes), std::out_of_range);
}

TEST(CurbMessages, CategoriesAndSizes) {
  const CurbMessage request{sdn::RequestMsg{chain::RequestType::kPacketIn, 1, 2, {0xff}}};
  EXPECT_EQ(category_of(request), "PKT-IN");
  EXPECT_GT(wire_size(request), 0u);

  PbftEnvelope intra;
  intra.instance = 3;
  EXPECT_EQ(category_of(CurbMessage{intra}), "intra-pbft");
  PbftEnvelope final_env;
  final_env.instance = PbftEnvelope::kFinalInstance;
  EXPECT_EQ(category_of(CurbMessage{final_env}), "final-pbft");

  EXPECT_EQ(category_of(CurbMessage{AgreeMsg{}}), "AGREE");
  EXPECT_EQ(category_of(CurbMessage{FinalAgreeMsg{}}), "FINAL-AGREE");
  EXPECT_EQ(category_of(CurbMessage{ReplyMsg{}}), "REPLY");
  EXPECT_EQ(category_of(CurbMessage{GroupUpdateMsg{}}), "GROUP-UPDATE");
  EXPECT_EQ(category_of(CurbMessage{DataPacketMsg{}}), "DATA");
}

TEST(CurbMessages, WireSizeGrowsWithPayload) {
  AgreeMsg small{1, 2, std::vector<std::uint8_t>(10)};
  AgreeMsg big{1, 2, std::vector<std::uint8_t>(1000)};
  EXPECT_LT(CurbMessage{small}.index(), std::variant_size_v<CurbMessage>);
  EXPECT_LT(wire_size(CurbMessage{small}), wire_size(CurbMessage{big}));
}

}  // namespace
}  // namespace curb::core
