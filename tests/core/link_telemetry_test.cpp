// Link-telemetry and Theorem 1 auditor integration: real CurbSimulation
// runs with the send observer on, pinning the conservation invariant
// (per-link counters sum exactly to the bus totals), deterministic exports,
// and the complexity auditor's clean-vs-faulted verdicts.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "curb/core/simulation.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/net/complexity.hpp"
#include "curb/obs/net/link_stats.hpp"
#include "curb/obs/net/report.hpp"
#include "curb/obs/observatory.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

CurbOptions telemetry_options() {
  CurbOptions opts;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.controller_capacity = 8.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  opts.observability = true;  // implies link_telemetry
  opts.msg_ledger = true;
  return opts;
}

CurbSimulation telemetry_sim(CurbOptions opts = telemetry_options()) {
  return CurbSimulation{net::random_geo_topology(8, 10, 99), opts};
}

void expect_conservation(CurbNetwork& network) {
  const obs::net::LinkStats* links = network.link_stats();
  ASSERT_NE(links, nullptr);
  // Per-link message/byte sums equal the bus totals exactly — every
  // accounted send (drops included) is attributed to exactly one link.
  std::uint64_t link_msgs = 0, link_bytes = 0;
  for (const auto& [key, entry] : links->links()) {
    link_msgs += entry.msgs;
    link_bytes += entry.bytes;
  }
  EXPECT_EQ(link_msgs, network.bus().stats().total_messages());
  EXPECT_EQ(link_bytes, network.bus().stats().total_bytes());
  EXPECT_EQ(links->total_msgs(), link_msgs);
  // Category totals are the same sends regrouped.
  std::uint64_t category_msgs = 0;
  for (const auto& [category, totals] : links->categories()) {
    category_msgs += totals.msgs;
  }
  EXPECT_EQ(category_msgs, link_msgs);
}

TEST(LinkTelemetry, CleanRunConservesAndSatisfiesBound) {
  CurbSimulation sim = telemetry_sim();
  for (int round = 0; round < 2; ++round) {
    const RoundMetrics m = sim.run_packet_in_round(2);
    ASSERT_EQ(m.issued, m.accepted);
  }
  expect_conservation(sim.network());
  EXPECT_EQ(sim.network().link_stats()->total_dups(), 0u);

  const obs::TraceAnalysis analysis =
      obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
  const auto rounds = obs::net::extract_round_complexity(analysis.spans());
  ASSERT_EQ(rounds.size(), 2u);
  for (const obs::net::RoundComplexity& rc : rounds) {
    EXPECT_TRUE(rc.bounded);
    EXPECT_FALSE(rc.exceeds) << "round " << rc.round << " measured "
                             << rc.control_total << " vs bound " << rc.bound.total;
    EXPECT_GT(rc.control_total, 0u);
    EXPECT_LE(rc.control_total, rc.bound.total);
    EXPECT_EQ(rc.dup_wire, 0u);
  }
  for (const obs::Finding& f : analysis.findings()) {
    EXPECT_NE(f.detector, "complexity_bound")
        << "clean run flagged: " << f.message;
  }

  // The ledger's wire total covers every accounted send (no dups here).
  const obs::net::MsgLedger* ledger = sim.network().msg_ledger();
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->total_msgs(), sim.network().bus().stats().total_messages());
}

TEST(LinkTelemetry, DuplicateFaultIsFlaggedAndStaysConserved) {
  CurbOptions opts = telemetry_options();
  opts.fault_spec = "dup(p=1,cat=AGREE,copies=1)";
  CurbSimulation sim = telemetry_sim(opts);
  (void)sim.run_packet_in_round(2);

  // Duplicates are wire-only: the conservation sum is untouched, the dup
  // counters carry the extra copies.
  expect_conservation(sim.network());
  const obs::net::LinkStats* links = sim.network().link_stats();
  EXPECT_GT(links->total_dups(), 0u);
  EXPECT_EQ(links->category_dups("AGREE"), links->total_dups());

  // Wire view: ledger rows count msgs + dups.
  EXPECT_EQ(sim.network().msg_ledger()->total_msgs(),
            sim.network().bus().stats().total_messages() + links->total_dups());

  const obs::TraceAnalysis analysis =
      obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
  const auto rounds = obs::net::extract_round_complexity(analysis.spans());
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_TRUE(rounds[0].exceeds);
  EXPECT_GT(rounds[0].dup_wire, 0u);
  EXPECT_GT(rounds[0].phase_measured.agree, rounds[0].bound.agree);
  bool flagged = false;
  for (const obs::Finding& f : analysis.findings()) {
    flagged = flagged || f.detector == "complexity_bound";
  }
  EXPECT_TRUE(flagged);
}

TEST(LinkTelemetry, SameSeedRunsExportIdenticalReports) {
  std::string matrix[2], csv[2], dot[2], complexity[2], ledger[2];
  for (int run = 0; run < 2; ++run) {
    CurbSimulation sim = telemetry_sim();
    (void)sim.run_packet_in_round(2);
    (void)sim.run_packet_in_round(2);
    const obs::net::NodeNameFn names = sim.network().link_node_names();
    obs::net::LinkReportOptions options;
    options.bandwidth_bps = sim.network().options().link_model.bandwidth_bps;
    options.elapsed_s = sim.network().simulator().now().as_seconds_f();
    std::ostringstream m, c, d, x, l;
    obs::net::write_link_matrix_json(*sim.network().link_stats(), names, options, m);
    obs::net::write_link_matrix_csv(*sim.network().link_stats(), names, options, c);
    obs::net::write_link_dot(*sim.network().link_stats(), names, options, d);
    const obs::TraceAnalysis analysis =
        obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
    obs::net::write_complexity_json(obs::net::extract_round_complexity(analysis.spans()),
                                    x);
    obs::net::write_ledger_jsonl(*sim.network().msg_ledger(), l);
    matrix[run] = m.str();
    csv[run] = c.str();
    dot[run] = d.str();
    complexity[run] = x.str();
    ledger[run] = l.str();
  }
  EXPECT_EQ(matrix[0], matrix[1]);
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(dot[0], dot[1]);
  EXPECT_EQ(complexity[0], complexity[1]);
  EXPECT_EQ(ledger[0], ledger[1]);
  EXPECT_NE(matrix[0].find("\"links\":["), std::string::npos);
  EXPECT_NE(complexity[0].find("\"violations\":0"), std::string::npos);
}

TEST(LinkTelemetry, LinkTelemetryAloneNeedsNoObservatory) {
  CurbOptions opts = telemetry_options();
  opts.observability = false;
  opts.link_telemetry = true;
  opts.msg_ledger = false;
  CurbSimulation sim = telemetry_sim(opts);
  (void)sim.run_packet_in_round(2);
  ASSERT_EQ(sim.network().observatory(), nullptr);
  ASSERT_NE(sim.network().link_stats(), nullptr);
  EXPECT_EQ(sim.network().msg_ledger(), nullptr);
  expect_conservation(sim.network());
}

TEST(LinkTelemetry, UtilizationGaugesPublishTopLinks) {
  CurbSimulation sim = telemetry_sim();
  (void)sim.run_packet_in_round(2);
  sim.network().snapshot_runtime_metrics();
  obs::MetricsRegistry& registry = sim.network().observatory()->metrics;
  EXPECT_GT(registry.gauge("net.links_active").value(), 0.0);
  EXPECT_GE(registry.gauge("net.link_util_max").value(), 0.0);
}

}  // namespace
}  // namespace curb::core
