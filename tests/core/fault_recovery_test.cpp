// Regression tests for the protocol bugfix sweep: switch-side group-update
// quorum bookkeeping (duplicate senders, leader election, epoch-vote
// pruning) and controller crash/recovery from the replicated blockchain.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "curb/core/simulation.hpp"
#include "curb/net/topology.hpp"
#include "curb/opt/cap.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

CurbOptions fast_options() {
  CurbOptions opts;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  return opts;
}

CurbSimulation small_sim() {
  return CurbSimulation{net::random_geo_topology(8, 10, 99), fast_options()};
}

GroupUpdateMsg update_for(const SwitchNode& sw, std::uint64_t epoch,
                          std::vector<std::uint32_t> new_group,
                          std::uint32_t sender) {
  GroupUpdateMsg msg;
  msg.controller_id = sender;
  msg.switch_id = sw.id();
  msg.epoch = epoch;
  msg.new_group = std::move(new_group);
  return msg;
}

TEST(SwitchNodeGroupUpdate, DuplicateSenderDoesNotCountTowardQuorum) {
  CurbSimulation sim = small_sim();
  SwitchNode& sw = sim.network().switch_node(0);
  const std::vector<std::uint32_t> group = sw.agent().controller_group();
  ASSERT_GE(group.size(), 2u);
  const std::uint64_t epoch = sw.current_epoch();

  // The same controller voting twice must stay one vote (f + 1 = 2 needed).
  const GroupUpdateMsg vote = update_for(sw, epoch + 1, group, group[0]);
  sw.on_message(net::NodeId{0}, CurbMessage{vote});
  sw.on_message(net::NodeId{0}, CurbMessage{vote});
  EXPECT_EQ(sw.current_epoch(), epoch);

  // A second distinct controller completes the quorum.
  sw.on_message(net::NodeId{0}, CurbMessage{update_for(sw, epoch + 1, group, group[1])});
  EXPECT_EQ(sw.current_epoch(), epoch + 1);
}

TEST(SwitchNodeGroupUpdate, AdoptionUsesLowestIdAsLeader) {
  CurbSimulation sim = small_sim();
  SwitchNode& sw = sim.network().switch_node(0);
  const std::vector<std::uint32_t> group = sw.agent().controller_group();
  ASSERT_GE(group.size(), 2u);
  const std::uint32_t lowest = *std::min_element(group.begin(), group.end());

  // Rotate so the wire order does NOT lead with the lowest id — the leader
  // hint must come from min_element, not from new_group.front().
  std::vector<std::uint32_t> rotated{group.begin() + 1, group.end()};
  rotated.push_back(group.front());
  ASSERT_NE(rotated.front(), lowest);

  const std::uint64_t epoch = sw.current_epoch();
  sw.on_message(net::NodeId{0},
                CurbMessage{update_for(sw, epoch + 1, rotated, group[0])});
  sw.on_message(net::NodeId{0},
                CurbMessage{update_for(sw, epoch + 1, rotated, group[1])});
  ASSERT_EQ(sw.current_epoch(), epoch + 1);
  ASSERT_TRUE(sw.agent().group_leader().has_value());
  EXPECT_EQ(*sw.agent().group_leader(), lowest);
}

TEST(SwitchNodeGroupUpdate, AdoptionPrunesStaleEpochVotes) {
  CurbSimulation sim = small_sim();
  SwitchNode& sw = sim.network().switch_node(0);
  const std::vector<std::uint32_t> group = sw.agent().controller_group();
  ASSERT_GE(group.size(), 2u);
  const std::uint64_t epoch = sw.current_epoch();

  // Single (sub-quorum) votes at two future epochs linger as pending state.
  sw.on_message(net::NodeId{0}, CurbMessage{update_for(sw, epoch + 1, group, group[0])});
  sw.on_message(net::NodeId{0}, CurbMessage{update_for(sw, epoch + 3, group, group[1])});
  EXPECT_EQ(sw.pending_group_update_epochs().size(), 2u);

  // Adopting epoch + 5 makes every earlier vote set obsolete; the fixed
  // adopt_group prunes all entries <= the adopted epoch, not just its own.
  sw.on_message(net::NodeId{0}, CurbMessage{update_for(sw, epoch + 5, group, group[0])});
  sw.on_message(net::NodeId{0}, CurbMessage{update_for(sw, epoch + 5, group, group[1])});
  EXPECT_EQ(sw.current_epoch(), epoch + 5);
  EXPECT_TRUE(sw.pending_group_update_epochs().empty());
}

TEST(ControllerRecovery, CrashedControllerRecoversFromDonorChain) {
  CurbSimulation sim = small_sim();
  CurbNetwork& network = sim.network();

  const RoundMetrics before = sim.run_packet_in_round();
  EXPECT_EQ(before.accepted, before.issued);

  network.controller(1).crash();
  EXPECT_TRUE(network.controller(1).crashed());
  EXPECT_FALSE(network.controller(1).has_blockchain());

  // One faulty controller (f = 1): the control plane keeps serving.
  const RoundMetrics during = sim.run_packet_in_round();
  EXPECT_GT(during.accepted, 0u);

  // Recover from a live peer's replicated chain.
  network.controller(1).restart_from(network.controller(0).blockchain());
  EXPECT_FALSE(network.controller(1).crashed());
  ASSERT_TRUE(network.controller(1).has_blockchain());
  EXPECT_EQ(network.controller(1).blockchain().tip().hash(),
            network.controller(0).blockchain().tip().hash());
  EXPECT_EQ(network.controller(1).blockchain().total_transactions(),
            network.controller(0).blockchain().total_transactions());

  const RoundMetrics after = sim.run_packet_in_round();
  EXPECT_GT(after.accepted, 0u);
  // The recovered controller keeps appending alongside the others: its tip
  // must still sit on the common prefix (same hash at the common height).
  const auto& donor = network.controller(0).blockchain();
  const auto& revived = network.controller(1).blockchain();
  const std::uint64_t common = std::min(donor.height(), revived.height());
  EXPECT_EQ(donor.at(common).hash(), revived.at(common).hash());
}

TEST(ControllerRecovery, CrashedControllerIgnoresTraffic) {
  CurbSimulation sim = small_sim();
  CurbNetwork& network = sim.network();
  network.controller(2).crash();
  // Crash twice is a no-op; messages and rounds must not resurrect state.
  network.controller(2).crash();
  const RoundMetrics m = sim.run_packet_in_round();
  EXPECT_GT(m.accepted, 0u);
  EXPECT_TRUE(network.controller(2).crashed());
  EXPECT_FALSE(network.controller(2).has_blockchain());
  // restart_from on a live controller is likewise a no-op.
  network.controller(0).restart_from(network.controller(3).blockchain());
  EXPECT_FALSE(network.controller(0).crashed());
}

}  // namespace
}  // namespace curb::core
